//! Property-based tests for the wifi-frames crate: wire-format roundtrips,
//! FCS integrity, radiotap roundtrips, and timing-math invariants.

use proptest::prelude::*;
use wifi_frames::fc::{FcFlags, FrameKind};
use wifi_frames::frame::{Ack, Beacon, Cts, Data, Frame, Rts, SeqCtl};
use wifi_frames::mac::MacAddr;
use wifi_frames::phy::{Channel, Preamble, Rate};
use wifi_frames::radiotap::{self, CaptureMeta};
use wifi_frames::record::FrameRecord;
use wifi_frames::{fcs, timing, wire};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_rate() -> impl Strategy<Value = Rate> {
    prop_oneof![
        Just(Rate::R1),
        Just(Rate::R2),
        Just(Rate::R5_5),
        Just(Rate::R11)
    ]
}

fn arb_channel() -> impl Strategy<Value = Channel> {
    (1u8..=14).prop_map(|n| Channel::new(n).unwrap())
}

fn arb_flags() -> impl Strategy<Value = FcFlags> {
    any::<u8>().prop_map(FcFlags::from_bits)
}

fn arb_seq() -> impl Strategy<Value = SeqCtl> {
    (0u16..4096, 0u8..16).prop_map(|(s, f)| SeqCtl::new(s, f))
}

fn arb_data_frame() -> impl Strategy<Value = Frame> {
    (
        arb_flags(),
        any::<u16>(),
        arb_mac(),
        arb_mac(),
        arb_mac(),
        arb_seq(),
        proptest::collection::vec(any::<u8>(), 0..2304),
        any::<bool>(),
    )
        .prop_map(
            |(flags, duration, addr1, addr2, addr3, seq, payload, null)| {
                Frame::Data(Data {
                    flags,
                    duration,
                    addr1,
                    addr2,
                    addr3,
                    seq,
                    payload: if null { Vec::new() } else { payload },
                    null,
                })
            },
        )
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u16>(), arb_mac(), arb_mac()).prop_map(|(duration, receiver, transmitter)| {
            Frame::Rts(Rts {
                duration,
                receiver,
                transmitter,
            })
        }),
        (any::<u16>(), arb_mac())
            .prop_map(|(duration, receiver)| Frame::Cts(Cts { duration, receiver })),
        (any::<u16>(), arb_mac())
            .prop_map(|(duration, receiver)| Frame::Ack(Ack { duration, receiver })),
        arb_data_frame(),
        (
            arb_mac(),
            arb_seq(),
            any::<u64>(),
            any::<u16>(),
            any::<u16>(),
            "[a-z0-9]{0,16}",
            arb_channel()
        )
            .prop_map(
                |(ap, seq, timestamp, interval_tu, capability, ssid, channel)| {
                    Frame::Beacon(Beacon {
                        duration: 0,
                        dest: MacAddr::BROADCAST,
                        source: ap,
                        bssid: ap,
                        seq,
                        timestamp,
                        interval_tu,
                        capability,
                        ssid,
                        channel,
                    })
                }
            ),
    ]
}

proptest! {
    #[test]
    fn wire_roundtrip(frame in arb_frame()) {
        let bytes = wire::encode(&frame);
        prop_assert_eq!(bytes.len(), frame.size_bytes());
        let parsed = wire::parse(&bytes).unwrap();
        prop_assert_eq!(parsed, frame);
    }

    #[test]
    fn fcs_always_verifies_after_append(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut f = body;
        fcs::append_fcs(&mut f);
        prop_assert!(fcs::verify_fcs(&f));
    }

    #[test]
    fn fcs_detects_single_flip(
        body in proptest::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut f = body;
        fcs::append_fcs(&mut f);
        let idx = flip_byte.index(f.len());
        f[idx] ^= 1 << flip_bit;
        prop_assert!(!fcs::verify_fcs(&f));
    }

    #[test]
    fn radiotap_roundtrip(
        tsft in any::<u64>(),
        flags in any::<u8>(),
        rate in arb_rate(),
        channel in arb_channel(),
        signal in -100i8..0,
        noise in -110i8..-60,
        antenna in any::<u8>(),
        frame in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let meta = CaptureMeta { tsft_us: tsft, flags, rate, channel, signal_dbm: signal, noise_dbm: noise, antenna };
        let pkt = radiotap::encode_packet(&meta, &frame);
        let (m, f) = radiotap::parse_packet(&pkt).unwrap();
        prop_assert_eq!(m, meta);
        prop_assert_eq!(f, &frame[..]);
    }

    #[test]
    fn header_parse_agrees_with_full_parse(frame in arb_frame()) {
        let bytes = wire::encode(&frame);
        let h = wire::parse_header(&bytes).unwrap();
        prop_assert_eq!(h.kind, frame.kind());
        prop_assert_eq!(h.receiver, frame.receiver());
        prop_assert_eq!(h.transmitter, frame.transmitter());
        prop_assert_eq!(h.duration, frame.duration());
        prop_assert_eq!(h.seq.map(|s| s.seq), frame.seq().map(|s| s.seq));
    }

    #[test]
    fn record_from_truncation_preserves_sizes(frame in arb_data_frame(), snap in 24usize..2048) {
        let bytes = wire::encode(&frame);
        let cut = snap.min(bytes.len());
        let h = match wire::parse_header(&bytes[..cut]) {
            Ok(h) => h,
            Err(_) => return Ok(()), // snap shorter than the header: nothing to check
        };
        let meta = CaptureMeta {
            tsft_us: 0, flags: 0, rate: Rate::R11,
            channel: Channel::new(1).unwrap(), signal_dbm: -50, noise_dbm: -95, antenna: 0,
        };
        let r = FrameRecord::from_header(&h, bytes.len() as u32, &meta);
        prop_assert_eq!(r.mac_bytes as usize, frame.size_bytes());
        if frame.kind() == FrameKind::Data {
            prop_assert_eq!(r.payload_bytes as usize, frame.payload_len());
        }
    }

    #[test]
    fn data_airtime_monotone(size_a in 0u64..2304, size_b in 0u64..2304, rate in arb_rate()) {
        let (lo, hi) = if size_a <= size_b { (size_a, size_b) } else { (size_b, size_a) };
        prop_assert!(timing::data_airtime_us(lo, rate) <= timing::data_airtime_us(hi, rate));
    }

    #[test]
    fn data_airtime_rate_dominance(size in 0u64..2304) {
        // A faster rate never takes longer for the same frame.
        let times: Vec<u64> = Rate::ALL.iter().map(|&r| timing::data_airtime_us(size, r)).collect();
        for w in times.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn frame_airtime_at_least_preamble(bytes in 0u64..4096, rate in arb_rate()) {
        for p in [Preamble::Long, Preamble::Short] {
            prop_assert!(timing::frame_airtime_us(bytes, rate, p) >= p.duration_us());
        }
    }

    #[test]
    fn cw_growth_monotone_and_bounded(retries_a in 0u32..20, retries_b in 0u32..20) {
        let d = timing::Dcf::standard();
        let (lo, hi) = if retries_a <= retries_b { (retries_a, retries_b) } else { (retries_b, retries_a) };
        prop_assert!(d.cw_after(lo) <= d.cw_after(hi));
        prop_assert!(d.cw_after(hi) <= d.cw_max);
        prop_assert!(d.cw_after(lo) >= d.cw_min);
    }

    #[test]
    fn seqctl_raw_roundtrip(raw in any::<u16>()) {
        let s = SeqCtl::from_raw(raw);
        prop_assert_eq!(s.to_raw(), raw);
    }

    #[test]
    fn mac_display_parse_roundtrip(mac in arb_mac()) {
        let s = mac.to_string();
        prop_assert_eq!(s.parse::<MacAddr>().unwrap(), mac);
    }
}
