//! Adversarial-input tests: the parsers must return clean errors — never
//! panic, never over-read — on arbitrary byte soup, truncations, and
//! bit-flipped captures.

use proptest::prelude::*;
use wifi_frames::{radiotap, wire};

proptest! {
    #[test]
    fn wire_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = wire::parse(&bytes);
        let _ = wire::parse_body(&bytes);
        let _ = wire::parse_header(&bytes);
    }

    #[test]
    fn radiotap_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = radiotap::parse_packet(&bytes);
    }

    #[test]
    fn truncations_of_valid_frames_error_cleanly(
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        cut_frac in 0.0f64..1.0,
    ) {
        use wifi_frames::fc::FcFlags;
        use wifi_frames::frame::{Data, Frame, SeqCtl};
        use wifi_frames::mac::MacAddr;
        let frame = Frame::Data(Data {
            flags: FcFlags::default(),
            duration: 0,
            addr1: MacAddr::from_id(1),
            addr2: MacAddr::from_id(2),
            addr3: MacAddr::from_id(3),
            seq: SeqCtl::new(0, 0),
            payload,
            null: false,
        });
        let bytes = wire::encode(&frame);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Any prefix must parse-or-error without panicking; full length must
        // parse successfully.
        let _ = wire::parse(&bytes[..cut]);
        prop_assert!(wire::parse(&bytes).is_ok());
    }

    #[test]
    fn bit_flips_in_radiotap_header_error_or_differ(
        flip_byte in 0usize..25,
        flip_bit in 0u8..8,
    ) {
        use wifi_frames::phy::{Channel, Rate};
        use wifi_frames::radiotap::CaptureMeta;
        let meta = CaptureMeta {
            tsft_us: 424_242,
            flags: 0x10,
            rate: Rate::R5_5,
            channel: Channel::new(11).unwrap(),
            signal_dbm: -70,
            noise_dbm: -95,
            antenna: 0,
        };
        let mut pkt = radiotap::encode_packet(&meta, b"payload");
        pkt[flip_byte] ^= 1 << flip_bit;
        // A surviving parse must still be internally consistent; clean
        // rejection is fine.
        if let Ok((parsed, rest)) = radiotap::parse_packet(&pkt) {
            prop_assert!(rest.len() <= pkt.len());
            let _ = parsed.snr_db();
        }
    }
}

#[test]
fn empty_and_tiny_inputs() {
    assert!(wire::parse(&[]).is_err());
    assert!(wire::parse(&[0x08]).is_err());
    assert!(wire::parse_header(&[0xB4, 0x00]).is_err());
    assert!(radiotap::parse_packet(&[]).is_err());
    assert!(radiotap::parse_packet(&[0; 7]).is_err());
}

#[test]
fn declared_radiotap_length_cannot_overread() {
    // Header claims 200 bytes but the buffer holds 30.
    let mut pkt = vec![0u8, 0];
    pkt.extend_from_slice(&200u16.to_le_bytes());
    pkt.extend_from_slice(&0u32.to_le_bytes());
    pkt.extend_from_slice(&[0u8; 22]);
    assert!(radiotap::parse_packet(&pkt).is_err());
}
