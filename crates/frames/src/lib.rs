//! # wifi-frames
//!
//! IEEE 802.11 (b) MAC frame model, on-air serialization, radiotap capture
//! metadata, and 802.11b PHY/DCF timing — the shared vocabulary of the
//! congestion-study workspace.
//!
//! This crate underpins the reproduction of *Understanding Congestion in IEEE
//! 802.11b Wireless Networks* (Jardosh et al., IMC 2005):
//!
//! * [`frame::Frame`] / [`wire`] — typed frames and the exact transmitted
//!   octets, FCS included, plus header-only parsing for snaplen-truncated
//!   captures.
//! * [`radiotap`] — the per-frame metadata an RFMon sniffer records.
//! * [`timing`] — Table 2 of the paper (delay components), the channel
//!   busy-time charges of Equations 2–6, and the standard DCF parameter set
//!   used by the simulator.
//! * [`record::FrameRecord`] — the compact representation the analysis
//!   pipeline consumes.
//!
//! ## Example
//!
//! ```
//! use wifi_frames::frame::{Data, Frame, SeqCtl};
//! use wifi_frames::fc::FcFlags;
//! use wifi_frames::mac::MacAddr;
//! use wifi_frames::phy::Rate;
//! use wifi_frames::{timing, wire};
//!
//! let frame = Frame::Data(Data {
//!     flags: FcFlags::default(),
//!     duration: 0,
//!     addr1: MacAddr::from_id(1),
//!     addr2: MacAddr::from_id(2),
//!     addr3: MacAddr::from_id(1),
//!     seq: SeqCtl::new(0, 0),
//!     payload: vec![0; 1472],
//!     null: false,
//! });
//! let bytes = wire::encode(&frame);
//! assert_eq!(bytes.len(), 1500);
//! assert_eq!(wire::parse(&bytes).unwrap(), frame);
//!
//! // The paper's busy-time charge for this frame at 11 Mbps:
//! let cbt = timing::cbt::data(1472, Rate::R11);
//! assert_eq!(cbt, 50 + 192 + 1096);
//! ```

#![warn(missing_docs)]

pub mod fc;
pub mod fcs;
pub mod frame;
pub mod mac;
pub mod phy;
pub mod radiotap;
pub mod record;
pub mod timing;
pub mod wire;

pub use fc::{FcFlags, FrameClass, FrameControl, FrameKind};
pub use frame::Frame;
pub use mac::MacAddr;
pub use phy::{Channel, Preamble, Rate};
pub use record::FrameRecord;
pub use timing::{Dcf, Micros, SECOND};
