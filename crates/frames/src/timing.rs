//! IEEE 802.11b timing: the paper's Table 2 delay components, the channel
//! busy-time (CBT) accounting of Section 5.1 (Equations 2–6), and the *real*
//! DCF timing parameters used by the simulator.
//!
//! Two views of time coexist deliberately:
//!
//! * [`delay`] reproduces Table 2 of the paper verbatim. These constants feed
//!   the busy-time *metric*, which charges a fixed DIFS per data frame, a SIFS
//!   before every CTS/ACK, and assumes the average backoff is zero (at least
//!   one station always has an expired backoff timer in a saturated network).
//! * [`Dcf`] holds the standard-conformant parameter set (slot time, CWmin,
//!   CWmax, retry limits) that the simulator enforces on the air. The metric
//!   is an *estimator* computed over traffic produced by the real rules —
//!   exactly the situation the paper's sniffers faced.
//!
//! All durations are integer microseconds ([`Micros`]).

use crate::phy::{Preamble, Rate};

/// A duration or timestamp in microseconds. One second = 1_000_000.
pub type Micros = u64;

/// One second, in microseconds — the aggregation interval used throughout the
/// paper's analysis.
pub const SECOND: Micros = 1_000_000;

/// Table 2 of the paper: delay components in microseconds.
pub mod delay {
    use super::Micros;

    /// Distributed Inter-Frame Spacing.
    pub const DIFS: Micros = 50;
    /// Short Inter-Frame Spacing.
    pub const SIFS: Micros = 10;
    /// Air time of an RTS frame (20 bytes at 1 Mbps behind a long preamble).
    pub const RTS: Micros = 352;
    /// Air time of a CTS frame (14 bytes at 1 Mbps behind a long preamble).
    pub const CTS: Micros = 304;
    /// Air time of an ACK frame (identical in size to CTS).
    pub const ACK: Micros = 304;
    /// Air time charged for a beacon frame by the metric.
    pub const BEACON: Micros = 304;
    /// Average backoff charged by the metric: zero, by the saturation
    /// argument of Section 5.1.
    pub const BO: Micros = 0;
    /// PLCP preamble + header at the long preamble (192 µs).
    pub const PLCP: Micros = 192;
}

/// `D_DATA(size)(rate)` from Table 2: the air time in microseconds of a data
/// frame whose *payload* is `size` bytes sent at `rate`.
///
/// The paper's formula is `D_PLCP + 8 * (34 + size) / rate` with `rate` in
/// Mbps; the 34-byte constant covers the MAC overhead the metric attributes
/// to every data frame. Computed exactly in integer arithmetic via the kbps
/// representation, rounding up (a partial microsecond still occupies the
/// channel).
pub const fn data_airtime_us(payload_size: u64, rate: Rate) -> Micros {
    // bits * 1000 / kbps == bits / mbps, kept integral.
    let bits = 8 * (34 + payload_size);
    delay::PLCP + div_ceil_u64(bits * 1000, rate_kbps(rate))
}

const fn rate_kbps(rate: Rate) -> u64 {
    match rate {
        Rate::R1 => 1_000,
        Rate::R2 => 2_000,
        Rate::R5_5 => 5_500,
        Rate::R11 => 11_000,
    }
}

const fn div_ceil_u64(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Air time of an arbitrary MAC frame of `frame_bytes` total bytes (header +
/// body + FCS) at `rate` behind the given preamble. This is the *physical*
/// transmission time the simulator uses, as opposed to the metric's
/// [`data_airtime_us`].
pub const fn frame_airtime_us(frame_bytes: u64, rate: Rate, preamble: Preamble) -> Micros {
    preamble.duration_us() + div_ceil_u64(8 * frame_bytes * 1000, rate_kbps(rate))
}

/// Channel busy-time charged to each frame kind by the paper's metric
/// (Equations 2–6 of Section 5.1).
pub mod cbt {
    use super::{data_airtime_us, delay, Micros};
    use crate::phy::Rate;

    /// Equation 2: `CBT_DATA = D_DIFS + D_DATA(S)(R)`.
    pub const fn data(payload_size: u64, rate: Rate) -> Micros {
        delay::DIFS + data_airtime_us(payload_size, rate)
    }

    /// Equation 3: `CBT_RTS = D_RTS`.
    pub const fn rts() -> Micros {
        delay::RTS
    }

    /// Equation 4: `CBT_CTS = D_SIFS + D_CTS`.
    pub const fn cts() -> Micros {
        delay::SIFS + delay::CTS
    }

    /// Equation 5: `CBT_ACK = D_SIFS + D_ACK`.
    pub const fn ack() -> Micros {
        delay::SIFS + delay::ACK
    }

    /// Equation 6: `CBT_BEACON = D_DIFS + D_BEACON`.
    pub const fn beacon() -> Micros {
        delay::DIFS + delay::BEACON
    }
}

/// Standard-conformant 802.11b DCF parameters used by the simulator.
///
/// Note the paper's protocol overview quotes a 10 µs slot and a 255-slot
/// maximum contention window; the 802.11b standard (long-preamble HR/DSSS)
/// specifies a 20 µs slot and CWmax = 1023. Both are expressible here; the
/// default is the standard set, and [`Dcf::paper`] gives the paper's variant
/// for sensitivity ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dcf {
    /// Slot time in microseconds.
    pub slot_us: Micros,
    /// SIFS in microseconds.
    pub sifs_us: Micros,
    /// Minimum contention window (slots); the first backoff draws from
    /// `0..=cw_min`.
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Retry limit for frames short enough to skip RTS/CTS ("short retry
    /// limit" in the standard; 7 by default).
    pub short_retry_limit: u32,
    /// Retry limit for frames sent under RTS/CTS protection (4 by default).
    pub long_retry_limit: u32,
}

impl Dcf {
    /// The IEEE 802.11b standard parameter set.
    pub const fn standard() -> Dcf {
        Dcf {
            slot_us: 20,
            sifs_us: 10,
            cw_min: 31,
            cw_max: 1023,
            short_retry_limit: 7,
            long_retry_limit: 4,
        }
    }

    /// The parameter set as quoted in Section 3 of the paper (10 µs slot,
    /// CW growing 31 → 255).
    pub const fn paper() -> Dcf {
        Dcf {
            slot_us: 10,
            sifs_us: 10,
            cw_min: 31,
            cw_max: 255,
            short_retry_limit: 7,
            long_retry_limit: 4,
        }
    }

    /// DIFS = SIFS + 2 × slot.
    pub const fn difs_us(&self) -> Micros {
        self.sifs_us + 2 * self.slot_us
    }

    /// EIFS = SIFS + DIFS + ACK-at-lowest-rate; used after a reception error.
    pub const fn eifs_us(&self) -> Micros {
        self.sifs_us + self.difs_us() + delay::ACK
    }

    /// The contention window after `retries` consecutive failures:
    /// `min(cw_max, (cw_min + 1) * 2^retries - 1)`.
    pub fn cw_after(&self, retries: u32) -> u32 {
        let grown = (self.cw_min as u64 + 1)
            .saturating_mul(1u64 << retries.min(16))
            .saturating_sub(1);
        grown.min(self.cw_max as u64) as u32
    }
}

impl Default for Dcf {
    fn default() -> Self {
        Dcf::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        assert_eq!(delay::DIFS, 50);
        assert_eq!(delay::SIFS, 10);
        assert_eq!(delay::RTS, 352);
        assert_eq!(delay::CTS, 304);
        assert_eq!(delay::ACK, 304);
        assert_eq!(delay::BEACON, 304);
        assert_eq!(delay::BO, 0);
        assert_eq!(delay::PLCP, 192);
    }

    #[test]
    fn data_airtime_matches_paper_formula() {
        // 1500-byte payload at 1 Mbps: 192 + 8*1534/1 = 12_464 µs.
        assert_eq!(data_airtime_us(1500, Rate::R1), 12_464);
        // Same at 11 Mbps: 192 + ceil(12272/11) = 192 + 1116 = 1308 µs.
        assert_eq!(data_airtime_us(1500, Rate::R11), 1_308);
        // Zero payload still pays PLCP + overhead bytes.
        assert_eq!(data_airtime_us(0, Rate::R1), 192 + 272);
        // 2 Mbps halves the serialization time of 1 Mbps exactly for even bit
        // counts.
        assert_eq!(data_airtime_us(100, Rate::R2), 192 + (8 * 134) / 2);
    }

    #[test]
    fn data_airtime_rounds_up() {
        // 8*(34+1) = 280 bits at 5.5 Mbps = 50.909.. µs -> 51.
        assert_eq!(data_airtime_us(1, Rate::R5_5), 192 + 51);
    }

    #[test]
    fn table2_control_durations_are_consistent_with_phy() {
        // Table 2's control-frame durations equal the physical air time of the
        // real control frames at 1 Mbps behind a long preamble.
        assert_eq!(frame_airtime_us(20, Rate::R1, Preamble::Long), delay::RTS);
        assert_eq!(frame_airtime_us(14, Rate::R1, Preamble::Long), delay::CTS);
        assert_eq!(frame_airtime_us(14, Rate::R1, Preamble::Long), delay::ACK);
    }

    #[test]
    fn cbt_equations() {
        assert_eq!(cbt::rts(), 352);
        assert_eq!(cbt::cts(), 314);
        assert_eq!(cbt::ack(), 314);
        assert_eq!(cbt::beacon(), 354);
        assert_eq!(cbt::data(1500, Rate::R1), 50 + 12_464);
    }

    #[test]
    fn airtime_monotone_in_size_and_antitone_in_rate() {
        for r in Rate::ALL {
            assert!(data_airtime_us(100, r) < data_airtime_us(1500, r));
        }
        for s in [0u64, 40, 400, 1200, 1500, 2304] {
            assert!(data_airtime_us(s, Rate::R1) > data_airtime_us(s, Rate::R2));
            assert!(data_airtime_us(s, Rate::R2) > data_airtime_us(s, Rate::R5_5));
            assert!(data_airtime_us(s, Rate::R5_5) > data_airtime_us(s, Rate::R11));
        }
    }

    #[test]
    fn dcf_standard_parameters() {
        let d = Dcf::standard();
        assert_eq!(d.slot_us, 20);
        assert_eq!(d.difs_us(), 50);
        assert_eq!(d.cw_min, 31);
        assert_eq!(d.cw_max, 1023);
    }

    #[test]
    fn dcf_paper_parameters() {
        let d = Dcf::paper();
        assert_eq!(d.slot_us, 10);
        assert_eq!(d.difs_us(), 30);
        assert_eq!(d.cw_max, 255);
    }

    #[test]
    fn contention_window_growth() {
        let d = Dcf::standard();
        assert_eq!(d.cw_after(0), 31);
        assert_eq!(d.cw_after(1), 63);
        assert_eq!(d.cw_after(2), 127);
        assert_eq!(d.cw_after(3), 255);
        assert_eq!(d.cw_after(4), 511);
        assert_eq!(d.cw_after(5), 1023);
        assert_eq!(d.cw_after(6), 1023, "clamps at CWmax");
        assert_eq!(d.cw_after(40), 1023, "no overflow at absurd retry counts");
        let p = Dcf::paper();
        assert_eq!(p.cw_after(3), 255);
        assert_eq!(p.cw_after(10), 255);
    }

    #[test]
    fn eifs_exceeds_difs() {
        assert!(Dcf::standard().eifs_us() > Dcf::standard().difs_us());
    }
}
