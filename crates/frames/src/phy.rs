//! IEEE 802.11b physical-layer vocabulary: data rates, channels, preambles,
//! and modulation schemes.

use core::fmt;

/// The four IEEE 802.11b (HR/DSSS) data rates.
///
/// Rates are ordered: `R1 < R2 < R5_5 < R11`, which lets rate-adaptation code
/// use comparison operators directly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Rate {
    /// 1 Mbps — DBPSK, the basic (mandatory) rate.
    R1,
    /// 2 Mbps — DQPSK.
    R2,
    /// 5.5 Mbps — CCK.
    R5_5,
    /// 11 Mbps — CCK, the highest 802.11b rate.
    R11,
}

impl Rate {
    /// All four rates, slowest first.
    pub const ALL: [Rate; 4] = [Rate::R1, Rate::R2, Rate::R5_5, Rate::R11];

    /// Rate in kilobits per second (exact, avoids the 5.5 fraction).
    pub const fn kbps(self) -> u64 {
        match self {
            Rate::R1 => 1_000,
            Rate::R2 => 2_000,
            Rate::R5_5 => 5_500,
            Rate::R11 => 11_000,
        }
    }

    /// Rate in megabits per second as a float (for reporting only).
    pub fn mbps(self) -> f64 {
        self.kbps() as f64 / 1000.0
    }

    /// Rate in units of 500 kbps, the encoding used by the 802.11
    /// Supported Rates information element and by radiotap.
    pub const fn units_500kbps(self) -> u8 {
        match self {
            Rate::R1 => 2,
            Rate::R2 => 4,
            Rate::R5_5 => 11,
            Rate::R11 => 22,
        }
    }

    /// Decodes the 500 kbps-unit encoding (the basic-rate flag bit 0x80 is
    /// ignored). Returns `None` for rates outside the 802.11b set.
    pub const fn from_units_500kbps(raw: u8) -> Option<Rate> {
        match raw & 0x7f {
            2 => Some(Rate::R1),
            4 => Some(Rate::R2),
            11 => Some(Rate::R5_5),
            22 => Some(Rate::R11),
            _ => None,
        }
    }

    /// The next rate down, or `None` at 1 Mbps.
    pub const fn step_down(self) -> Option<Rate> {
        match self {
            Rate::R1 => None,
            Rate::R2 => Some(Rate::R1),
            Rate::R5_5 => Some(Rate::R2),
            Rate::R11 => Some(Rate::R5_5),
        }
    }

    /// The next rate up, or `None` at 11 Mbps.
    pub const fn step_up(self) -> Option<Rate> {
        match self {
            Rate::R1 => Some(Rate::R2),
            Rate::R2 => Some(Rate::R5_5),
            Rate::R5_5 => Some(Rate::R11),
            Rate::R11 => None,
        }
    }

    /// Index 0..=3 into [`Rate::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Rate::R1 => 0,
            Rate::R2 => 1,
            Rate::R5_5 => 2,
            Rate::R11 => 3,
        }
    }

    /// Minimum SNR (dB) at which this rate is typically decodable, the
    /// threshold model used by the simulator's error model and by SNR-based
    /// rate adaptation. Values follow common 802.11b receiver-sensitivity
    /// deltas (DBPSK needs the least SNR, CCK-11 the most).
    pub const fn min_snr_db(self) -> f64 {
        match self {
            Rate::R1 => 4.0,
            Rate::R2 => 6.0,
            Rate::R5_5 => 8.0,
            Rate::R11 => 10.0,
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rate::R1 => write!(f, "1 Mbps"),
            Rate::R2 => write!(f, "2 Mbps"),
            Rate::R5_5 => write!(f, "5.5 Mbps"),
            Rate::R11 => write!(f, "11 Mbps"),
        }
    }
}

/// An IEEE 802.11b/g 2.4 GHz channel number (1–14).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Channel(u8);

impl Channel {
    /// The three mutually non-overlapping channels used at IETF 62.
    pub const ORTHOGONAL: [Channel; 3] = [Channel(1), Channel(6), Channel(11)];

    /// Creates a channel; `None` unless `1 <= n <= 14`.
    pub const fn new(n: u8) -> Option<Channel> {
        if n >= 1 && n <= 14 {
            Some(Channel(n))
        } else {
            None
        }
    }

    /// The channel number (1–14).
    pub const fn number(self) -> u8 {
        self.0
    }

    /// Center frequency in MHz. Channels 1–13 are spaced 5 MHz starting at
    /// 2412; channel 14 sits apart at 2484.
    pub const fn center_mhz(self) -> u16 {
        if self.0 == 14 {
            2484
        } else {
            2407 + 5 * self.0 as u16
        }
    }

    /// True when two channels are far enough apart (≥5 channel numbers, or
    /// either is 14) that their 22 MHz DSSS masks do not overlap.
    pub fn is_orthogonal_to(self, other: Channel) -> bool {
        if self.0 == 14 || other.0 == 14 {
            self.0 != other.0
        } else {
            self.0.abs_diff(other.0) >= 5
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// PLCP preamble length. 802.11b control frames and Table 2 of the paper
/// assume the long preamble (192 µs); short-preamble support is modelled for
/// completeness and ablations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Preamble {
    /// 144 µs preamble + 48 µs header, both at 1 Mbps: 192 µs total.
    #[default]
    Long,
    /// 72 µs preamble at 1 Mbps + 24 µs header at 2 Mbps: 96 µs total.
    Short,
}

impl Preamble {
    /// Total PLCP preamble + header duration in microseconds.
    pub const fn duration_us(self) -> u64 {
        match self {
            Preamble::Long => 192,
            Preamble::Short => 96,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_ordering_matches_speed() {
        assert!(Rate::R1 < Rate::R2);
        assert!(Rate::R2 < Rate::R5_5);
        assert!(Rate::R5_5 < Rate::R11);
    }

    #[test]
    fn rate_kbps_values() {
        assert_eq!(Rate::R1.kbps(), 1000);
        assert_eq!(Rate::R2.kbps(), 2000);
        assert_eq!(Rate::R5_5.kbps(), 5500);
        assert_eq!(Rate::R11.kbps(), 11000);
    }

    #[test]
    fn rate_500kbps_roundtrip() {
        for r in Rate::ALL {
            assert_eq!(Rate::from_units_500kbps(r.units_500kbps()), Some(r));
            // Basic-rate flag must be ignored.
            assert_eq!(Rate::from_units_500kbps(r.units_500kbps() | 0x80), Some(r));
        }
        assert_eq!(Rate::from_units_500kbps(3), None);
        assert_eq!(Rate::from_units_500kbps(0), None);
    }

    #[test]
    fn rate_stepping_is_a_chain() {
        assert_eq!(Rate::R1.step_down(), None);
        assert_eq!(Rate::R11.step_up(), None);
        let mut r = Rate::R1;
        let mut seen = vec![r];
        while let Some(next) = r.step_up() {
            seen.push(next);
            r = next;
        }
        assert_eq!(seen, Rate::ALL.to_vec());
        let mut r = Rate::R11;
        while let Some(next) = r.step_down() {
            assert!(next < r);
            r = next;
        }
        assert_eq!(r, Rate::R1);
    }

    #[test]
    fn rate_index_matches_all() {
        for (i, r) in Rate::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn min_snr_monotone_in_rate() {
        for pair in Rate::ALL.windows(2) {
            assert!(pair[0].min_snr_db() < pair[1].min_snr_db());
        }
    }

    #[test]
    fn channel_bounds() {
        assert!(Channel::new(0).is_none());
        assert!(Channel::new(15).is_none());
        assert_eq!(Channel::new(1).unwrap().number(), 1);
        assert_eq!(Channel::new(14).unwrap().number(), 14);
    }

    #[test]
    fn channel_frequencies() {
        assert_eq!(Channel::new(1).unwrap().center_mhz(), 2412);
        assert_eq!(Channel::new(6).unwrap().center_mhz(), 2437);
        assert_eq!(Channel::new(11).unwrap().center_mhz(), 2462);
        assert_eq!(Channel::new(13).unwrap().center_mhz(), 2472);
        assert_eq!(Channel::new(14).unwrap().center_mhz(), 2484);
    }

    #[test]
    fn orthogonal_channel_set() {
        let [c1, c6, c11] = Channel::ORTHOGONAL;
        assert!(c1.is_orthogonal_to(c6));
        assert!(c6.is_orthogonal_to(c11));
        assert!(c1.is_orthogonal_to(c11));
        assert!(!c1.is_orthogonal_to(Channel::new(3).unwrap()));
        assert!(!c6.is_orthogonal_to(c6));
    }

    #[test]
    fn preamble_durations() {
        assert_eq!(Preamble::Long.duration_us(), 192);
        assert_eq!(Preamble::Short.duration_us(), 96);
        assert_eq!(Preamble::default(), Preamble::Long);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Rate::R5_5.to_string(), "5.5 Mbps");
        assert_eq!(Channel::new(6).unwrap().to_string(), "ch6");
    }
}
