//! MAC-layer addressing: 48-bit IEEE 802 MAC addresses.

use core::fmt;
use core::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
///
/// Stored in canonical transmission (big-endian byte) order, i.e.
/// `MacAddr([0x00, 0x11, 0x22, 0x33, 0x44, 0x55])` displays as
/// `00:11:22:33:44:55`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as a placeholder before assignment.
    pub const ZERO: MacAddr = MacAddr([0x00; 6]);

    /// Builds an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Returns the six octets in transmission order.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// True for the broadcast address.
    pub const fn is_broadcast(&self) -> bool {
        matches!(self.0, [0xff, 0xff, 0xff, 0xff, 0xff, 0xff])
    }

    /// True when the group (multicast) bit — the least-significant bit of the
    /// first octet — is set. Broadcast is a special case of multicast.
    pub const fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for unicast (non-group) addresses.
    pub const fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }

    /// True when the locally-administered bit is set.
    pub const fn is_locally_administered(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Deterministically derives a locally-administered unicast address from a
    /// small integer id. Useful for simulations that need many distinct
    /// stations: ids map 1:1 onto addresses and never collide with broadcast.
    pub fn from_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        // 0x02 prefix: locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Inverse of [`MacAddr::from_id`]; `None` if this address was not
    /// produced by it.
    pub fn to_id(&self) -> Option<u32> {
        if self.0[0] == 0x02 && self.0[1] == 0x00 {
            Some(u32::from_be_bytes([
                self.0[2], self.0[3], self.0[4], self.0[5],
            ]))
        } else {
            None
        }
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

/// Error returned by [`MacAddr::from_str`] for malformed address text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed MAC address (expected aa:bb:cc:dd:ee:ff)")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in octets.iter_mut() {
            let part = parts.next().ok_or(ParseMacError)?;
            if part.len() != 2 {
                return Err(ParseMacError);
            }
            *octet = u8::from_str_radix(part, 16).map_err(|_| ParseMacError)?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError);
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        let a = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]);
        assert_eq!(a.to_string(), "de:ad:be:ef:00:42");
        assert_eq!("de:ad:be:ef:00:42".parse::<MacAddr>().unwrap(), a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:42:17".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:zz:42".parse::<MacAddr>().is_err());
        assert!("dead:be:ef:00:42".parse::<MacAddr>().is_err());
        assert!("d:ad:be:ef:00:42".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_and_multicast_bits() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
        let mcast = MacAddr([0x01, 0x00, 0x5e, 0x00, 0x00, 0x01]);
        assert!(mcast.is_multicast());
        assert!(!mcast.is_broadcast());
        let ucast = MacAddr([0x00, 0x11, 0x22, 0x33, 0x44, 0x55]);
        assert!(ucast.is_unicast());
        assert!(!ucast.is_multicast());
    }

    #[test]
    fn id_roundtrip() {
        for id in [0u32, 1, 42, 65_535, u32::MAX] {
            let a = MacAddr::from_id(id);
            assert!(a.is_unicast(), "{a} must be unicast");
            assert!(a.is_locally_administered());
            assert_eq!(a.to_id(), Some(id));
        }
    }

    #[test]
    fn to_id_rejects_foreign_addresses() {
        assert_eq!(MacAddr::BROADCAST.to_id(), None);
        assert_eq!(MacAddr([0x00, 0x11, 0x22, 0x33, 0x44, 0x55]).to_id(), None);
    }

    #[test]
    fn distinct_ids_distinct_addresses() {
        let a: Vec<MacAddr> = (0..1000).map(MacAddr::from_id).collect();
        let mut b = a.clone();
        b.sort();
        b.dedup();
        assert_eq!(a.len(), b.len());
    }
}
