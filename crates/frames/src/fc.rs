//! The 16-bit Frame Control field: frame class/subtype and the flag byte.

use core::fmt;

/// The three 802.11 frame classes (the two-bit Type field).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FrameClass {
    /// Beacons, probes, (de)association, (de)authentication.
    Management,
    /// RTS, CTS, ACK, PS-Poll, CF-End.
    Control,
    /// Data and Null-function frames.
    Data,
}

impl FrameClass {
    /// The two-bit wire encoding.
    pub const fn bits(self) -> u8 {
        match self {
            FrameClass::Management => 0b00,
            FrameClass::Control => 0b01,
            FrameClass::Data => 0b10,
        }
    }

    /// Decodes the two-bit Type field; `None` for the reserved value 0b11.
    pub const fn from_bits(bits: u8) -> Option<FrameClass> {
        match bits & 0b11 {
            0b00 => Some(FrameClass::Management),
            0b01 => Some(FrameClass::Control),
            0b10 => Some(FrameClass::Data),
            _ => None,
        }
    }
}

/// Frame kind: the (type, subtype) pairs this library models explicitly.
///
/// The 802.11b subtypes that matter to the congestion study are first-class
/// variants; anything else decodes to [`FrameKind::Other`] so that foreign
/// traces never fail to parse merely for containing, say, a PS-Poll.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FrameKind {
    /// Control / Request-to-Send.
    Rts,
    /// Control / Clear-to-Send.
    Cts,
    /// Control / Acknowledgment.
    Ack,
    /// Management / Beacon.
    Beacon,
    /// Management / Probe Request.
    ProbeRequest,
    /// Management / Probe Response.
    ProbeResponse,
    /// Management / Association Request.
    AssocRequest,
    /// Management / Association Response.
    AssocResponse,
    /// Management / Disassociation.
    Disassoc,
    /// Management / Authentication.
    Auth,
    /// Management / Deauthentication.
    Deauth,
    /// Data / Data (the only data subtype carrying a payload in 802.11b).
    Data,
    /// Data / Null function (no payload; used for power-save signalling).
    NullData,
    /// Any other valid (class, subtype) combination.
    Other {
        /// The frame class.
        class: FrameClass,
        /// The four-bit subtype.
        subtype: u8,
    },
}

impl FrameKind {
    /// The frame's class.
    pub const fn class(self) -> FrameClass {
        match self {
            FrameKind::Rts | FrameKind::Cts | FrameKind::Ack => FrameClass::Control,
            FrameKind::Beacon
            | FrameKind::ProbeRequest
            | FrameKind::ProbeResponse
            | FrameKind::AssocRequest
            | FrameKind::AssocResponse
            | FrameKind::Disassoc
            | FrameKind::Auth
            | FrameKind::Deauth => FrameClass::Management,
            FrameKind::Data | FrameKind::NullData => FrameClass::Data,
            FrameKind::Other { class, .. } => class,
        }
    }

    /// The four-bit subtype wire encoding.
    pub const fn subtype_bits(self) -> u8 {
        match self {
            FrameKind::AssocRequest => 0b0000,
            FrameKind::AssocResponse => 0b0001,
            FrameKind::ProbeRequest => 0b0100,
            FrameKind::ProbeResponse => 0b0101,
            FrameKind::Beacon => 0b1000,
            FrameKind::Disassoc => 0b1010,
            FrameKind::Auth => 0b1011,
            FrameKind::Deauth => 0b1100,
            FrameKind::Rts => 0b1011,
            FrameKind::Cts => 0b1100,
            FrameKind::Ack => 0b1101,
            FrameKind::Data => 0b0000,
            FrameKind::NullData => 0b0100,
            FrameKind::Other { subtype, .. } => subtype & 0b1111,
        }
    }

    /// Decodes a (class, subtype) pair.
    pub const fn from_bits(class: FrameClass, subtype: u8) -> FrameKind {
        let subtype = subtype & 0b1111;
        match (class, subtype) {
            (FrameClass::Control, 0b1011) => FrameKind::Rts,
            (FrameClass::Control, 0b1100) => FrameKind::Cts,
            (FrameClass::Control, 0b1101) => FrameKind::Ack,
            (FrameClass::Management, 0b0000) => FrameKind::AssocRequest,
            (FrameClass::Management, 0b0001) => FrameKind::AssocResponse,
            (FrameClass::Management, 0b0100) => FrameKind::ProbeRequest,
            (FrameClass::Management, 0b0101) => FrameKind::ProbeResponse,
            (FrameClass::Management, 0b1000) => FrameKind::Beacon,
            (FrameClass::Management, 0b1010) => FrameKind::Disassoc,
            (FrameClass::Management, 0b1011) => FrameKind::Auth,
            (FrameClass::Management, 0b1100) => FrameKind::Deauth,
            (FrameClass::Data, 0b0000) => FrameKind::Data,
            (FrameClass::Data, 0b0100) => FrameKind::NullData,
            _ => FrameKind::Other { class, subtype },
        }
    }

    /// True for the control frames whose reception the DCF protects with
    /// atomic SIFS spacing (CTS and ACK).
    pub const fn is_sifs_response(self) -> bool {
        matches!(self, FrameKind::Cts | FrameKind::Ack)
    }

    /// True for frames that carry a data payload relevant to goodput.
    pub const fn carries_data(self) -> bool {
        matches!(self, FrameKind::Data)
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FrameKind::Rts => "RTS",
            FrameKind::Cts => "CTS",
            FrameKind::Ack => "ACK",
            FrameKind::Beacon => "Beacon",
            FrameKind::ProbeRequest => "ProbeReq",
            FrameKind::ProbeResponse => "ProbeResp",
            FrameKind::AssocRequest => "AssocReq",
            FrameKind::AssocResponse => "AssocResp",
            FrameKind::Disassoc => "Disassoc",
            FrameKind::Auth => "Auth",
            FrameKind::Deauth => "Deauth",
            FrameKind::Data => "Data",
            FrameKind::NullData => "Null",
            FrameKind::Other { class, subtype } => {
                return write!(f, "Other({class:?}/{subtype:#06b})")
            }
        };
        f.write_str(s)
    }
}

/// The flag byte of the Frame Control field (bits 8–15).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct FcFlags {
    /// Frame is bound for the distribution system (station → AP).
    pub to_ds: bool,
    /// Frame comes from the distribution system (AP → station).
    pub from_ds: bool,
    /// More fragments of this MSDU follow.
    pub more_frag: bool,
    /// This frame is a retransmission.
    pub retry: bool,
    /// Sender is in power-save mode.
    pub pwr_mgmt: bool,
    /// AP has more frames buffered for a dozing station.
    pub more_data: bool,
    /// Frame body is encrypted (WEP in the 802.11b era).
    pub protected: bool,
    /// Strictly-ordered service class.
    pub order: bool,
}

impl FcFlags {
    /// Encodes to the high byte of the Frame Control field.
    pub const fn bits(self) -> u8 {
        (self.to_ds as u8)
            | (self.from_ds as u8) << 1
            | (self.more_frag as u8) << 2
            | (self.retry as u8) << 3
            | (self.pwr_mgmt as u8) << 4
            | (self.more_data as u8) << 5
            | (self.protected as u8) << 6
            | (self.order as u8) << 7
    }

    /// Decodes from the high byte of the Frame Control field.
    pub const fn from_bits(bits: u8) -> FcFlags {
        FcFlags {
            to_ds: bits & 0x01 != 0,
            from_ds: bits & 0x02 != 0,
            more_frag: bits & 0x04 != 0,
            retry: bits & 0x08 != 0,
            pwr_mgmt: bits & 0x10 != 0,
            more_data: bits & 0x20 != 0,
            protected: bits & 0x40 != 0,
            order: bits & 0x80 != 0,
        }
    }

    /// Flags with only `retry` set — the common retransmission marking.
    pub const fn retry_only() -> FcFlags {
        FcFlags {
            retry: true,
            to_ds: false,
            from_ds: false,
            more_frag: false,
            pwr_mgmt: false,
            more_data: false,
            protected: false,
            order: false,
        }
    }
}

/// The full 16-bit Frame Control field.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FrameControl {
    /// Protocol version; always 0 for every deployed 802.11 revision.
    pub version: u8,
    /// Frame kind (type + subtype).
    pub kind: FrameKind,
    /// Flag byte.
    pub flags: FcFlags,
}

/// Error produced when a Frame Control field cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FcError {
    /// Protocol version bits were non-zero.
    BadVersion(u8),
    /// The reserved type value 0b11 (extension frames post-date 802.11b).
    ReservedType,
}

impl fmt::Display for FcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FcError::BadVersion(v) => write!(f, "unsupported 802.11 protocol version {v}"),
            FcError::ReservedType => write!(f, "reserved frame type 0b11"),
        }
    }
}

impl std::error::Error for FcError {}

impl FrameControl {
    /// Builds a Frame Control with version 0 and no flags.
    pub const fn new(kind: FrameKind) -> FrameControl {
        FrameControl {
            version: 0,
            kind,
            flags: FcFlags::from_bits(0),
        }
    }

    /// Encodes to the two little-endian wire bytes.
    pub const fn to_le_bytes(self) -> [u8; 2] {
        let b0 =
            (self.version & 0b11) | self.kind.class().bits() << 2 | self.kind.subtype_bits() << 4;
        [b0, self.flags.bits()]
    }

    /// Decodes from the two little-endian wire bytes.
    pub const fn from_le_bytes(bytes: [u8; 2]) -> Result<FrameControl, FcError> {
        let version = bytes[0] & 0b11;
        if version != 0 {
            return Err(FcError::BadVersion(version));
        }
        let class = match FrameClass::from_bits(bytes[0] >> 2) {
            Some(c) => c,
            None => return Err(FcError::ReservedType),
        };
        Ok(FrameControl {
            version,
            kind: FrameKind::from_bits(class, bytes[0] >> 4),
            flags: FcFlags::from_bits(bytes[1]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXPLICIT_KINDS: [FrameKind; 13] = [
        FrameKind::Rts,
        FrameKind::Cts,
        FrameKind::Ack,
        FrameKind::Beacon,
        FrameKind::ProbeRequest,
        FrameKind::ProbeResponse,
        FrameKind::AssocRequest,
        FrameKind::AssocResponse,
        FrameKind::Disassoc,
        FrameKind::Auth,
        FrameKind::Deauth,
        FrameKind::Data,
        FrameKind::NullData,
    ];

    #[test]
    fn kind_bits_roundtrip() {
        for kind in EXPLICIT_KINDS {
            let decoded = FrameKind::from_bits(kind.class(), kind.subtype_bits());
            assert_eq!(decoded, kind);
        }
    }

    #[test]
    fn unknown_subtypes_become_other() {
        let k = FrameKind::from_bits(FrameClass::Control, 0b1010); // PS-Poll
        assert_eq!(
            k,
            FrameKind::Other {
                class: FrameClass::Control,
                subtype: 0b1010
            }
        );
        assert_eq!(k.class(), FrameClass::Control);
        assert_eq!(k.subtype_bits(), 0b1010);
    }

    #[test]
    fn rts_is_known_wire_value() {
        // RTS: type control (01), subtype 1011 -> byte0 = 1011_01_00 = 0xB4.
        let fc = FrameControl::new(FrameKind::Rts);
        assert_eq!(fc.to_le_bytes(), [0xB4, 0x00]);
        // CTS = 0xC4, ACK = 0xD4, Beacon = 0x80, Data = 0x08.
        assert_eq!(FrameControl::new(FrameKind::Cts).to_le_bytes()[0], 0xC4);
        assert_eq!(FrameControl::new(FrameKind::Ack).to_le_bytes()[0], 0xD4);
        assert_eq!(FrameControl::new(FrameKind::Beacon).to_le_bytes()[0], 0x80);
        assert_eq!(FrameControl::new(FrameKind::Data).to_le_bytes()[0], 0x08);
    }

    #[test]
    fn fc_bytes_roundtrip_all_kinds_and_flags() {
        for kind in EXPLICIT_KINDS {
            for flag_bits in [0x00u8, 0x08, 0xff, 0x55, 0xaa] {
                let fc = FrameControl {
                    version: 0,
                    kind,
                    flags: FcFlags::from_bits(flag_bits),
                };
                let back = FrameControl::from_le_bytes(fc.to_le_bytes()).unwrap();
                assert_eq!(back, fc);
            }
        }
    }

    #[test]
    fn bad_version_rejected() {
        assert_eq!(
            FrameControl::from_le_bytes([0x01, 0x00]),
            Err(FcError::BadVersion(1))
        );
        assert_eq!(
            FrameControl::from_le_bytes([0x03, 0x00]),
            Err(FcError::BadVersion(3))
        );
    }

    #[test]
    fn reserved_type_rejected() {
        // Type bits 0b11 at positions 2..4 -> 0x0C.
        assert_eq!(
            FrameControl::from_le_bytes([0x0C, 0x00]),
            Err(FcError::ReservedType)
        );
    }

    #[test]
    fn flags_bits_roundtrip_exhaustive() {
        for bits in 0..=255u8 {
            assert_eq!(FcFlags::from_bits(bits).bits(), bits);
        }
    }

    #[test]
    fn retry_only_flag() {
        let f = FcFlags::retry_only();
        assert!(f.retry);
        assert_eq!(f.bits(), 0x08);
    }

    #[test]
    fn sifs_response_classification() {
        assert!(FrameKind::Cts.is_sifs_response());
        assert!(FrameKind::Ack.is_sifs_response());
        assert!(!FrameKind::Rts.is_sifs_response());
        assert!(!FrameKind::Data.is_sifs_response());
    }
}
