//! IEEE CRC-32 Frame Check Sequence, as appended to every 802.11 MAC frame.
//!
//! Polynomial 0x04C11DB7, reflected in/out, initial value `0xFFFF_FFFF`,
//! final XOR `0xFFFF_FFFF` — the same CRC used by Ethernet. Implemented with
//! a compile-time 256-entry table.

/// The 256-entry lookup table for the reflected polynomial 0xEDB88320.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 FCS over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xff) as usize];
    }
    !crc
}

/// Appends the FCS (little-endian, as transmitted on air) to a frame body.
pub fn append_fcs(frame: &mut Vec<u8>) {
    let fcs = crc32(frame);
    frame.extend_from_slice(&fcs.to_le_bytes());
}

/// Checks a frame whose last four bytes are its FCS. Returns `false` for
/// frames shorter than the FCS itself.
pub fn verify_fcs(frame_with_fcs: &[u8]) -> bool {
    if frame_with_fcs.len() < 4 {
        return false;
    }
    let (body, fcs_bytes) = frame_with_fcs.split_at(frame_with_fcs.len() - 4);
    let expect = u32::from_le_bytes([fcs_bytes[0], fcs_bytes[1], fcs_bytes[2], fcs_bytes[3]]);
    crc32(body) == expect
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xffu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn append_then_verify() {
        let mut f = b"some 802.11 frame bytes".to_vec();
        append_fcs(&mut f);
        assert!(verify_fcs(&f));
    }

    #[test]
    fn verify_detects_any_single_bit_flip() {
        let mut f = vec![0x08, 0x01, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef];
        append_fcs(&mut f);
        for byte in 0..f.len() {
            for bit in 0..8 {
                let mut corrupted = f.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    !verify_fcs(&corrupted),
                    "flip at byte {byte} bit {bit} undetected"
                );
            }
        }
    }

    #[test]
    fn verify_rejects_short_input() {
        assert!(!verify_fcs(&[]));
        assert!(!verify_fcs(&[1, 2, 3]));
    }

    #[test]
    fn fcs_of_empty_body_roundtrips() {
        let mut f = Vec::new();
        append_fcs(&mut f);
        assert_eq!(f.len(), 4);
        assert!(verify_fcs(&f));
    }
}
