//! On-air byte layout: serialization and parsing of 802.11 frames.
//!
//! [`encode`] produces the exact transmitted octets including the FCS.
//! [`parse`] inverts it for complete frames, and [`parse_header`] recovers the
//! MAC header from snaplen-truncated captures (the study's sniffers captured
//! only the first 250 bytes of every frame).

use crate::fc::{FcError, FrameClass, FrameControl, FrameKind};
use crate::fcs;
use crate::frame::{Ack, Beacon, Cts, Data, Frame, Mgmt, Rts, SeqCtl};
use crate::mac::MacAddr;
use crate::phy::{Channel, Rate};
use core::fmt;

/// Information element ids used in beacon bodies.
mod ie {
    pub const SSID: u8 = 0;
    pub const SUPPORTED_RATES: u8 = 1;
    pub const DS_PARAMS: u8 = 3;
}

/// Errors produced while parsing frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Fewer bytes than the smallest frame of the indicated kind.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Frame Control field was undecodable.
    FrameControl(FcError),
    /// The FCS did not match the frame contents.
    BadFcs,
    /// A beacon information element was malformed.
    BadInformationElement,
    /// Beacon advertised a channel outside 1–14.
    BadChannel(u8),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { needed, got } => {
                write!(f, "frame truncated: needed {needed} bytes, got {got}")
            }
            ParseError::FrameControl(e) => write!(f, "bad frame control: {e}"),
            ParseError::BadFcs => write!(f, "frame check sequence mismatch"),
            ParseError::BadInformationElement => write!(f, "malformed information element"),
            ParseError::BadChannel(c) => write!(f, "invalid channel number {c}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<FcError> for ParseError {
    fn from(e: FcError) -> Self {
        ParseError::FrameControl(e)
    }
}

/// Serializes a frame to its on-air octets, FCS included.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame.size_bytes());
    let fc = frame.frame_control();
    out.extend_from_slice(&fc.to_le_bytes());
    out.extend_from_slice(&frame.duration().to_le_bytes());
    match frame {
        Frame::Rts(f) => {
            out.extend_from_slice(&f.receiver.octets());
            out.extend_from_slice(&f.transmitter.octets());
        }
        Frame::Cts(f) => out.extend_from_slice(&f.receiver.octets()),
        Frame::Ack(f) => out.extend_from_slice(&f.receiver.octets()),
        Frame::Data(f) => {
            out.extend_from_slice(&f.addr1.octets());
            out.extend_from_slice(&f.addr2.octets());
            out.extend_from_slice(&f.addr3.octets());
            out.extend_from_slice(&f.seq.to_raw().to_le_bytes());
            if !f.null {
                out.extend_from_slice(&f.payload);
            }
        }
        Frame::Beacon(f) => {
            out.extend_from_slice(&f.dest.octets());
            out.extend_from_slice(&f.source.octets());
            out.extend_from_slice(&f.bssid.octets());
            out.extend_from_slice(&f.seq.to_raw().to_le_bytes());
            out.extend_from_slice(&f.timestamp.to_le_bytes());
            out.extend_from_slice(&f.interval_tu.to_le_bytes());
            out.extend_from_slice(&f.capability.to_le_bytes());
            // SSID IE.
            out.push(ie::SSID);
            out.push(f.ssid.len() as u8);
            out.extend_from_slice(f.ssid.as_bytes());
            // Supported Rates IE: the four 802.11b rates, 1 & 2 basic.
            out.push(ie::SUPPORTED_RATES);
            out.push(4);
            out.push(Rate::R1.units_500kbps() | 0x80);
            out.push(Rate::R2.units_500kbps() | 0x80);
            out.push(Rate::R5_5.units_500kbps());
            out.push(Rate::R11.units_500kbps());
            // DS Parameter Set IE.
            out.push(ie::DS_PARAMS);
            out.push(1);
            out.push(f.channel.number());
        }
        Frame::Mgmt(f) => {
            out.extend_from_slice(&f.addr1.octets());
            out.extend_from_slice(&f.addr2.octets());
            out.extend_from_slice(&f.addr3.octets());
            out.extend_from_slice(&f.seq.to_raw().to_le_bytes());
            out.extend_from_slice(&f.body);
        }
    }
    fcs::append_fcs(&mut out);
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        if self.buf.len() - self.pos < n {
            return Err(ParseError::Truncated {
                needed: self.pos + n,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ParseError> {
        Ok(self.take(1)?[0])
    }

    fn u16_le(&mut self) -> Result<u16, ParseError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64_le(&mut self) -> Result<u64, ParseError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("len checked")))
    }

    fn mac(&mut self) -> Result<MacAddr, ParseError> {
        let b = self.take(6)?;
        Ok(MacAddr(b.try_into().expect("len checked")))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

/// Parses a complete on-air frame (FCS verified and consumed).
pub fn parse(bytes: &[u8]) -> Result<Frame, ParseError> {
    if bytes.len() < 4 {
        return Err(ParseError::Truncated {
            needed: 4,
            got: bytes.len(),
        });
    }
    if !fcs::verify_fcs(bytes) {
        return Err(ParseError::BadFcs);
    }
    parse_body(&bytes[..bytes.len() - 4])
}

/// Parses the frame contents without an FCS (already stripped or never
/// captured). Used internally and by tests.
pub fn parse_body(bytes: &[u8]) -> Result<Frame, ParseError> {
    let mut c = Cursor::new(bytes);
    let fc_bytes = c.take(2)?;
    let fc = FrameControl::from_le_bytes([fc_bytes[0], fc_bytes[1]])?;
    let duration = c.u16_le()?;
    match fc.kind {
        FrameKind::Rts => Ok(Frame::Rts(Rts {
            duration,
            receiver: c.mac()?,
            transmitter: c.mac()?,
        })),
        FrameKind::Cts => Ok(Frame::Cts(Cts {
            duration,
            receiver: c.mac()?,
        })),
        FrameKind::Ack => Ok(Frame::Ack(Ack {
            duration,
            receiver: c.mac()?,
        })),
        FrameKind::Data | FrameKind::NullData => {
            let addr1 = c.mac()?;
            let addr2 = c.mac()?;
            let addr3 = c.mac()?;
            let seq = SeqCtl::from_raw(c.u16_le()?);
            let null = fc.kind == FrameKind::NullData;
            let payload = if null { Vec::new() } else { c.rest().to_vec() };
            Ok(Frame::Data(Data {
                flags: fc.flags,
                duration,
                addr1,
                addr2,
                addr3,
                seq,
                payload,
                null,
            }))
        }
        FrameKind::Beacon => {
            let dest = c.mac()?;
            let source = c.mac()?;
            let bssid = c.mac()?;
            let seq = SeqCtl::from_raw(c.u16_le()?);
            let timestamp = c.u64_le()?;
            let interval_tu = c.u16_le()?;
            let capability = c.u16_le()?;
            let mut ssid = String::new();
            let mut channel = None;
            while c.pos < c.buf.len() {
                let id = c.u8()?;
                let len = c.u8()? as usize;
                let body = c.take(len).map_err(|_| ParseError::BadInformationElement)?;
                match id {
                    ie::SSID => {
                        ssid = String::from_utf8_lossy(body).into_owned();
                    }
                    ie::DS_PARAMS => {
                        if len != 1 {
                            return Err(ParseError::BadInformationElement);
                        }
                        channel =
                            Some(Channel::new(body[0]).ok_or(ParseError::BadChannel(body[0]))?);
                    }
                    _ => {}
                }
            }
            let channel = channel.ok_or(ParseError::BadInformationElement)?;
            Ok(Frame::Beacon(Beacon {
                duration,
                dest,
                source,
                bssid,
                seq,
                timestamp,
                interval_tu,
                capability,
                ssid,
                channel,
            }))
        }
        kind if kind.class() == FrameClass::Management => {
            let addr1 = c.mac()?;
            let addr2 = c.mac()?;
            let addr3 = c.mac()?;
            let seq = SeqCtl::from_raw(c.u16_le()?);
            Ok(Frame::Mgmt(Mgmt {
                kind,
                flags: fc.flags,
                duration,
                addr1,
                addr2,
                addr3,
                seq,
                body: c.rest().to_vec(),
            }))
        }
        kind => {
            // Unmodelled control/data subtypes: surface as opaque management-
            // style frames so traces containing them remain analyzable.
            Ok(Frame::Mgmt(Mgmt {
                kind,
                flags: fc.flags,
                duration,
                addr1: c.mac()?,
                addr2: c.mac().unwrap_or(MacAddr::ZERO),
                addr3: c.mac().unwrap_or(MacAddr::ZERO),
                seq: SeqCtl::default(),
                body: c.rest().to_vec(),
            }))
        }
    }
}

/// The MAC header fields recoverable from a truncated capture.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HeaderInfo {
    /// Frame kind.
    pub kind: FrameKind,
    /// Frame Control.
    pub fc: FrameControl,
    /// NAV duration.
    pub duration: u16,
    /// Receiver (addr1).
    pub receiver: MacAddr,
    /// Transmitter (addr2), absent for CTS/ACK.
    pub transmitter: Option<MacAddr>,
    /// Addr3 (BSSID for mgmt; DS-dependent for data), when present.
    pub addr3: Option<MacAddr>,
    /// Sequence control, when present.
    pub seq: Option<SeqCtl>,
}

/// Parses only the MAC header, tolerating a body truncated by the capture
/// snap length. The FCS is not checked (it is usually not captured).
pub fn parse_header(bytes: &[u8]) -> Result<HeaderInfo, ParseError> {
    let mut c = Cursor::new(bytes);
    let fc_bytes = c.take(2)?;
    let fc = FrameControl::from_le_bytes([fc_bytes[0], fc_bytes[1]])?;
    let duration = c.u16_le()?;
    let receiver = c.mac()?;
    match fc.kind {
        FrameKind::Cts | FrameKind::Ack => Ok(HeaderInfo {
            kind: fc.kind,
            fc,
            duration,
            receiver,
            transmitter: None,
            addr3: None,
            seq: None,
        }),
        FrameKind::Rts => Ok(HeaderInfo {
            kind: fc.kind,
            fc,
            duration,
            receiver,
            transmitter: Some(c.mac()?),
            addr3: None,
            seq: None,
        }),
        _ => {
            let transmitter = c.mac()?;
            let addr3 = c.mac()?;
            let seq = SeqCtl::from_raw(c.u16_le()?);
            Ok(HeaderInfo {
                kind: fc.kind,
                fc,
                duration,
                receiver,
                transmitter: Some(transmitter),
                addr3: Some(addr3),
                seq: Some(seq),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fc::FcFlags;

    fn sta(i: u32) -> MacAddr {
        MacAddr::from_id(i)
    }

    fn sample_data(payload: usize) -> Frame {
        Frame::Data(Data {
            flags: FcFlags {
                to_ds: true,
                retry: true,
                ..FcFlags::default()
            },
            duration: 314,
            addr1: sta(1),
            addr2: sta(2),
            addr3: sta(3),
            seq: SeqCtl::new(777, 0),
            payload: (0..payload).map(|i| i as u8).collect(),
            null: false,
        })
    }

    fn sample_beacon() -> Frame {
        Frame::Beacon(Beacon {
            duration: 0,
            dest: MacAddr::BROADCAST,
            source: sta(100),
            bssid: sta(100),
            seq: SeqCtl::new(9, 0),
            timestamp: 0x0102_0304_0506_0708,
            interval_tu: 100,
            capability: 0x0401,
            ssid: "ietf62".into(),
            channel: Channel::new(11).unwrap(),
        })
    }

    #[test]
    fn encode_lengths_match_size_bytes() {
        let frames = [
            Frame::Rts(Rts {
                duration: 1,
                receiver: sta(1),
                transmitter: sta(2),
            }),
            Frame::Cts(Cts {
                duration: 2,
                receiver: sta(1),
            }),
            Frame::Ack(Ack {
                duration: 0,
                receiver: sta(1),
            }),
            sample_data(0),
            sample_data(1472),
            sample_beacon(),
        ];
        for f in frames {
            assert_eq!(encode(&f).len(), f.size_bytes(), "{:?}", f.kind());
        }
    }

    #[test]
    fn roundtrip_control_frames() {
        for f in [
            Frame::Rts(Rts {
                duration: 12_464,
                receiver: sta(4),
                transmitter: sta(5),
            }),
            Frame::Cts(Cts {
                duration: 10_000,
                receiver: sta(5),
            }),
            Frame::Ack(Ack {
                duration: 0,
                receiver: sta(5),
            }),
        ] {
            assert_eq!(parse(&encode(&f)).unwrap(), f);
        }
    }

    #[test]
    fn roundtrip_data_frame() {
        let f = sample_data(700);
        assert_eq!(parse(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn roundtrip_null_data() {
        let f = Frame::Data(Data {
            flags: FcFlags {
                pwr_mgmt: true,
                to_ds: true,
                ..FcFlags::default()
            },
            duration: 0,
            addr1: sta(1),
            addr2: sta(2),
            addr3: sta(1),
            seq: SeqCtl::new(55, 0),
            payload: vec![],
            null: true,
        });
        assert_eq!(parse(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn roundtrip_beacon() {
        let f = sample_beacon();
        assert_eq!(parse(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn roundtrip_generic_mgmt() {
        let f = Frame::Mgmt(Mgmt {
            kind: FrameKind::ProbeRequest,
            flags: FcFlags::default(),
            duration: 0,
            addr1: MacAddr::BROADCAST,
            addr2: sta(8),
            addr3: MacAddr::BROADCAST,
            seq: SeqCtl::new(2, 0),
            body: vec![0, 6, b'i', b'e', b't', b'f', b'6', b'2'],
        });
        assert_eq!(parse(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn corrupted_fcs_rejected() {
        let mut bytes = encode(&sample_data(64));
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(parse(&bytes), Err(ParseError::BadFcs));
    }

    #[test]
    fn corrupted_body_rejected() {
        let mut bytes = encode(&sample_beacon());
        bytes[10] ^= 0x80;
        assert_eq!(parse(&bytes), Err(ParseError::BadFcs));
    }

    #[test]
    fn short_input_rejected() {
        assert!(matches!(parse(&[]), Err(ParseError::Truncated { .. })));
        let bytes = encode(&sample_data(64));
        assert!(matches!(
            parse_body(&bytes[..10]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn parse_header_from_truncated_data_frame() {
        let f = sample_data(1472);
        let bytes = encode(&f);
        // Emulate the study's 250-byte snap length.
        let h = parse_header(&bytes[..250]).unwrap();
        assert_eq!(h.kind, FrameKind::Data);
        assert_eq!(h.receiver, sta(1));
        assert_eq!(h.transmitter, Some(sta(2)));
        assert_eq!(h.addr3, Some(sta(3)));
        assert_eq!(h.seq, Some(SeqCtl::new(777, 0)));
        assert!(h.fc.flags.retry);
        assert_eq!(h.duration, 314);
    }

    #[test]
    fn parse_header_control_frames() {
        let bytes = encode(&Frame::Ack(Ack {
            duration: 0,
            receiver: sta(3),
        }));
        let h = parse_header(&bytes).unwrap();
        assert_eq!(h.kind, FrameKind::Ack);
        assert_eq!(h.transmitter, None);
        assert_eq!(h.seq, None);
        let bytes = encode(&Frame::Rts(Rts {
            duration: 42,
            receiver: sta(3),
            transmitter: sta(4),
        }));
        let h = parse_header(&bytes).unwrap();
        assert_eq!(h.kind, FrameKind::Rts);
        assert_eq!(h.transmitter, Some(sta(4)));
    }

    #[test]
    fn beacon_missing_ds_ie_rejected() {
        // Hand-build a beacon body without the DS Parameter Set IE.
        let b = sample_beacon();
        let mut bytes = encode(&b);
        bytes.truncate(bytes.len() - 4); // drop FCS
        bytes.truncate(bytes.len() - 3); // drop DS IE (3 bytes)
        assert_eq!(parse_body(&bytes), Err(ParseError::BadInformationElement));
    }

    #[test]
    fn beacon_bad_channel_rejected() {
        let b = sample_beacon();
        let mut bytes = encode(&b);
        bytes.truncate(bytes.len() - 4);
        let last = bytes.len() - 1;
        bytes[last] = 99; // channel 99
        assert_eq!(parse_body(&bytes), Err(ParseError::BadChannel(99)));
    }

    #[test]
    fn ps_poll_parses_as_other() {
        // PS-Poll: control subtype 0b1010, fc byte0 = 1010_01_00 = 0xA4,
        // then AID(2) + BSSID(6) + TA(6).
        let mut bytes = vec![0xA4, 0x00, 0x01, 0xC0];
        bytes.extend_from_slice(&sta(1).octets());
        bytes.extend_from_slice(&sta(2).octets());
        crate::fcs::append_fcs(&mut bytes);
        let f = parse(&bytes).unwrap();
        assert!(matches!(
            f.kind(),
            FrameKind::Other {
                class: FrameClass::Control,
                subtype: 0b1010
            }
        ));
    }
}
