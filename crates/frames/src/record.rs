//! [`FrameRecord`] — the compact per-frame summary the congestion analysis
//! consumes.
//!
//! A record is what a sniffer log line boils down to: when the frame was
//! heard, what kind it was, at what rate and on which channel, who sent and
//! received it, how big it was, and whether it was marked as a retry. Both
//! the simulator and the pcap ingestion path produce `FrameRecord`s, so the
//! analysis crate is agnostic to where a trace came from.

use crate::fc::FrameKind;
use crate::frame::{Frame, DATA_OVERHEAD_BYTES};
use crate::mac::MacAddr;
use crate::phy::{Channel, Rate};
use crate::radiotap::CaptureMeta;
use crate::timing::Micros;
use crate::wire::HeaderInfo;

/// A compact summary of one captured frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameRecord {
    /// Capture timestamp in microseconds (end of frame on air).
    pub timestamp_us: Micros,
    /// Frame kind.
    pub kind: FrameKind,
    /// PHY rate the frame was sent at.
    pub rate: Rate,
    /// Channel it was heard on.
    pub channel: Channel,
    /// Receiver address (addr1).
    pub dst: MacAddr,
    /// Transmitter address (addr2); `None` for CTS and ACK frames.
    pub src: Option<MacAddr>,
    /// BSSID when determinable.
    pub bssid: Option<MacAddr>,
    /// Retry bit from the Frame Control field.
    pub retry: bool,
    /// Sequence number, for frames that carry one.
    pub seq: Option<u16>,
    /// Total MAC frame size on air, FCS included.
    pub mac_bytes: u32,
    /// Data payload size (zero for non-data frames) — the `size` argument of
    /// the paper's `D_DATA(size)(rate)` term.
    pub payload_bytes: u32,
    /// Received signal strength in dBm.
    pub signal_dbm: i8,
    /// NAV duration field, microseconds.
    pub duration_us: u16,
}

impl FrameRecord {
    /// Builds a record from a fully-parsed frame plus capture metadata.
    pub fn from_frame(frame: &Frame, meta: &CaptureMeta) -> FrameRecord {
        FrameRecord {
            timestamp_us: meta.tsft_us,
            kind: frame.kind(),
            rate: meta.rate,
            channel: meta.channel,
            dst: frame.receiver(),
            src: frame.transmitter(),
            bssid: frame.bssid(),
            retry: frame.retry(),
            seq: frame.seq().map(|s| s.seq),
            mac_bytes: frame.size_bytes() as u32,
            payload_bytes: frame.payload_len() as u32,
            signal_dbm: meta.signal_dbm,
            duration_us: frame.duration(),
        }
    }

    /// Builds a record from a snaplen-truncated capture: the parsed header,
    /// the *original* (pre-truncation) frame length reported by the capture
    /// file, and the radiotap metadata.
    ///
    /// The payload size of a data frame is recovered as
    /// `orig_len - header - FCS`, exactly how an analysis of a 250-byte
    /// snaplen trace must do it.
    pub fn from_header(header: &HeaderInfo, orig_len: u32, meta: &CaptureMeta) -> FrameRecord {
        let payload_bytes = if header.kind == FrameKind::Data {
            orig_len.saturating_sub(DATA_OVERHEAD_BYTES as u32)
        } else {
            0
        };
        FrameRecord {
            timestamp_us: meta.tsft_us,
            kind: header.kind,
            rate: meta.rate,
            channel: meta.channel,
            dst: header.receiver,
            src: header.transmitter,
            bssid: header.addr3,
            retry: header.fc.flags.retry,
            seq: header.seq.map(|s| s.seq),
            mac_bytes: orig_len,
            payload_bytes,
            signal_dbm: meta.signal_dbm,
            duration_us: header.duration,
        }
    }

    /// True for frames sent to a group address (no ACK expected).
    pub fn is_broadcast(&self) -> bool {
        self.dst.is_multicast()
    }

    /// The second (integer division of the timestamp) this frame falls in —
    /// the aggregation bucket used throughout the analysis.
    pub fn second(&self) -> u64 {
        self.timestamp_us / crate::timing::SECOND
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fc::FcFlags;
    use crate::frame::{Ack, Data, SeqCtl};
    use crate::radiotap::FLAG_FCS_AT_END;
    use crate::wire;

    fn meta(t: Micros, rate: Rate) -> CaptureMeta {
        CaptureMeta {
            tsft_us: t,
            flags: FLAG_FCS_AT_END,
            rate,
            channel: Channel::new(1).unwrap(),
            signal_dbm: -60,
            noise_dbm: -95,
            antenna: 0,
        }
    }

    fn data_frame(payload: usize, retry: bool) -> Frame {
        Frame::Data(Data {
            flags: FcFlags {
                to_ds: true,
                retry,
                ..FcFlags::default()
            },
            duration: 314,
            addr1: MacAddr::from_id(1),
            addr2: MacAddr::from_id(2),
            addr3: MacAddr::from_id(1),
            seq: SeqCtl::new(99, 0),
            payload: vec![0xAB; payload],
            null: false,
        })
    }

    #[test]
    fn record_from_full_frame() {
        let f = data_frame(1000, true);
        let r = FrameRecord::from_frame(&f, &meta(2_500_000, Rate::R11));
        assert_eq!(r.kind, FrameKind::Data);
        assert_eq!(r.mac_bytes, 1028);
        assert_eq!(r.payload_bytes, 1000);
        assert!(r.retry);
        assert_eq!(r.seq, Some(99));
        assert_eq!(r.second(), 2);
        assert_eq!(r.src, Some(MacAddr::from_id(2)));
        assert_eq!(r.bssid, Some(MacAddr::from_id(1))); // to_ds: bssid = addr1
    }

    #[test]
    fn record_from_truncated_header_recovers_payload_size() {
        let f = data_frame(1472, false);
        let bytes = wire::encode(&f);
        let orig_len = bytes.len() as u32;
        let header = wire::parse_header(&bytes[..250]).unwrap();
        let r = FrameRecord::from_header(&header, orig_len, &meta(0, Rate::R5_5));
        assert_eq!(r.mac_bytes, 1500);
        assert_eq!(r.payload_bytes, 1472);
        assert_eq!(r.rate, Rate::R5_5);
    }

    #[test]
    fn ack_record_has_no_src_or_payload() {
        let f = Frame::Ack(Ack {
            duration: 0,
            receiver: MacAddr::from_id(2),
        });
        let r = FrameRecord::from_frame(&f, &meta(10, Rate::R1));
        assert_eq!(r.src, None);
        assert_eq!(r.payload_bytes, 0);
        assert_eq!(r.mac_bytes, 14);
        assert_eq!(r.seq, None);
    }

    #[test]
    fn broadcast_detection() {
        let mut f = data_frame(10, false);
        if let Frame::Data(d) = &mut f {
            d.addr1 = MacAddr::BROADCAST;
        }
        let r = FrameRecord::from_frame(&f, &meta(0, Rate::R1));
        assert!(r.is_broadcast());
    }

    #[test]
    fn second_bucketing_boundaries() {
        let f = data_frame(0, false);
        assert_eq!(
            FrameRecord::from_frame(&f, &meta(999_999, Rate::R1)).second(),
            0
        );
        assert_eq!(
            FrameRecord::from_frame(&f, &meta(1_000_000, Rate::R1)).second(),
            1
        );
    }

    #[test]
    fn from_header_on_control_frame_clamps_payload() {
        let ack = wire::encode(&Frame::Ack(Ack {
            duration: 0,
            receiver: MacAddr::from_id(7),
        }));
        let h = wire::parse_header(&ack).unwrap();
        let r = FrameRecord::from_header(&h, ack.len() as u32, &meta(0, Rate::R1));
        assert_eq!(r.payload_bytes, 0);
    }
}
