//! Radiotap capture headers — the per-frame metadata an RFMon-mode sniffer
//! records (timestamp, rate, channel, signal strength).
//!
//! This is a from-scratch implementation of the de-facto radiotap standard,
//! restricted to the fields a 2005-era 802.11b capture carries. Encoding
//! emits a fixed field set; parsing accepts any subset of the defined bits
//! 0–14 (with correct per-field alignment), so captures from other tools
//! remain readable.

use crate::phy::{Channel, Rate};
use core::fmt;

/// Radiotap `Flags` bit: the frame includes an FCS at the end.
pub const FLAG_FCS_AT_END: u8 = 0x10;
/// Radiotap channel flag: 2.4 GHz spectrum.
pub const CHAN_2GHZ: u16 = 0x0080;
/// Radiotap channel flag: CCK modulation.
pub const CHAN_CCK: u16 = 0x0020;

/// The capture metadata attached to every sniffed frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CaptureMeta {
    /// TSFT: microseconds timestamp of capture (end of frame reception).
    pub tsft_us: u64,
    /// Radiotap flags (e.g. [`FLAG_FCS_AT_END`]).
    pub flags: u8,
    /// The data rate the frame was received at.
    pub rate: Rate,
    /// The channel the sniffer was tuned to.
    pub channel: Channel,
    /// Received signal strength in dBm.
    pub signal_dbm: i8,
    /// Noise floor in dBm.
    pub noise_dbm: i8,
    /// Antenna index.
    pub antenna: u8,
}

impl CaptureMeta {
    /// Signal-to-noise ratio in dB.
    pub fn snr_db(&self) -> i16 {
        self.signal_dbm as i16 - self.noise_dbm as i16
    }
}

/// Errors produced while parsing a radiotap header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RadiotapError {
    /// Input shorter than the radiotap header or its declared length.
    Truncated,
    /// Version byte was not zero.
    BadVersion(u8),
    /// The present bitmap requests a field this parser does not know.
    UnknownField(u32),
    /// A required field (rate or channel) was absent.
    MissingField(&'static str),
    /// The rate field was not an 802.11b rate.
    BadRate(u8),
    /// The channel frequency did not map to a 2.4 GHz channel.
    BadChannel(u16),
}

impl fmt::Display for RadiotapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadiotapError::Truncated => write!(f, "radiotap header truncated"),
            RadiotapError::BadVersion(v) => write!(f, "radiotap version {v} unsupported"),
            RadiotapError::UnknownField(bit) => write!(f, "unknown radiotap field bit {bit}"),
            RadiotapError::MissingField(name) => write!(f, "radiotap field {name} missing"),
            RadiotapError::BadRate(r) => write!(f, "rate {r} (500 kbps units) not 802.11b"),
            RadiotapError::BadChannel(mhz) => {
                write!(f, "frequency {mhz} MHz not a 2.4 GHz channel")
            }
        }
    }
}

impl std::error::Error for RadiotapError {}

const BIT_TSFT: u32 = 0;
const BIT_FLAGS: u32 = 1;
const BIT_RATE: u32 = 2;
const BIT_CHANNEL: u32 = 3;
const BIT_DBM_SIGNAL: u32 = 5;
const BIT_DBM_NOISE: u32 = 6;
const BIT_ANTENNA: u32 = 11;
const BIT_EXT: u32 = 31;

/// (size, alignment) of each radiotap field bit 0–14.
const FIELD_LAYOUT: [(usize, usize); 15] = [
    (8, 8), // 0 TSFT
    (1, 1), // 1 Flags
    (1, 1), // 2 Rate
    (4, 2), // 3 Channel (u16 freq + u16 flags)
    (2, 1), // 4 FHSS
    (1, 1), // 5 dBm antenna signal
    (1, 1), // 6 dBm antenna noise
    (2, 2), // 7 lock quality
    (2, 2), // 8 TX attenuation
    (2, 2), // 9 dB TX attenuation
    (1, 1), // 10 dBm TX power
    (1, 1), // 11 antenna
    (1, 1), // 12 dB antenna signal
    (1, 1), // 13 dB antenna noise
    (2, 2), // 14 RX flags
];

/// Serializes a capture record: radiotap header followed by the frame bytes.
pub fn encode_packet(meta: &CaptureMeta, frame: &[u8]) -> Vec<u8> {
    // Fixed layout: header(8) tsft(8) flags(1) rate(1) chan(4 at align 2)
    // signal(1) noise(1) antenna(1) = 25 bytes.
    const LEN: u16 = 25;
    let present: u32 = 1 << BIT_TSFT
        | 1 << BIT_FLAGS
        | 1 << BIT_RATE
        | 1 << BIT_CHANNEL
        | 1 << BIT_DBM_SIGNAL
        | 1 << BIT_DBM_NOISE
        | 1 << BIT_ANTENNA;
    let mut out = Vec::with_capacity(LEN as usize + frame.len());
    out.push(0); // version
    out.push(0); // pad
    out.extend_from_slice(&LEN.to_le_bytes());
    out.extend_from_slice(&present.to_le_bytes());
    out.extend_from_slice(&meta.tsft_us.to_le_bytes());
    out.push(meta.flags);
    out.push(meta.rate.units_500kbps());
    out.extend_from_slice(&(meta.channel.center_mhz()).to_le_bytes());
    out.extend_from_slice(&(CHAN_2GHZ | CHAN_CCK).to_le_bytes());
    out.push(meta.signal_dbm as u8);
    out.push(meta.noise_dbm as u8);
    out.push(meta.antenna);
    debug_assert_eq!(out.len(), LEN as usize);
    out.extend_from_slice(frame);
    out
}

fn channel_from_mhz(mhz: u16) -> Option<Channel> {
    if mhz == 2484 {
        return Channel::new(14);
    }
    if (2412..=2472).contains(&mhz) && (mhz - 2407).is_multiple_of(5) {
        return Channel::new(((mhz - 2407) / 5) as u8);
    }
    None
}

/// Parses a capture record into metadata plus the frame bytes that follow the
/// radiotap header.
pub fn parse_packet(bytes: &[u8]) -> Result<(CaptureMeta, &[u8]), RadiotapError> {
    if bytes.len() < 8 {
        return Err(RadiotapError::Truncated);
    }
    if bytes[0] != 0 {
        return Err(RadiotapError::BadVersion(bytes[0]));
    }
    let header_len = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
    if header_len < 8 || bytes.len() < header_len {
        return Err(RadiotapError::Truncated);
    }
    let present = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if present & (1 << BIT_EXT) != 0 {
        return Err(RadiotapError::UnknownField(BIT_EXT));
    }

    let mut pos = 8usize;
    let mut tsft = 0u64;
    let mut flags = 0u8;
    let mut rate = None;
    let mut channel = None;
    let mut signal = 0i8;
    let mut noise = i8::MIN; // default noise floor if absent
    let mut antenna = 0u8;

    for bit in 0..32u32 {
        if present & (1 << bit) == 0 {
            continue;
        }
        let (size, align) = *FIELD_LAYOUT
            .get(bit as usize)
            .ok_or(RadiotapError::UnknownField(bit))?;
        pos = pos.div_ceil(align) * align;
        if pos + size > header_len {
            return Err(RadiotapError::Truncated);
        }
        let field = &bytes[pos..pos + size];
        match bit {
            BIT_TSFT => tsft = u64::from_le_bytes(field.try_into().expect("size checked")),
            BIT_FLAGS => flags = field[0],
            BIT_RATE => {
                rate = Some(
                    Rate::from_units_500kbps(field[0]).ok_or(RadiotapError::BadRate(field[0]))?,
                )
            }
            BIT_CHANNEL => {
                let mhz = u16::from_le_bytes([field[0], field[1]]);
                channel = Some(channel_from_mhz(mhz).ok_or(RadiotapError::BadChannel(mhz))?);
            }
            BIT_DBM_SIGNAL => signal = field[0] as i8,
            BIT_DBM_NOISE => noise = field[0] as i8,
            BIT_ANTENNA => antenna = field[0],
            _ => {} // known size, ignored content
        }
        pos += size;
    }

    let meta = CaptureMeta {
        tsft_us: tsft,
        flags,
        rate: rate.ok_or(RadiotapError::MissingField("rate"))?,
        channel: channel.ok_or(RadiotapError::MissingField("channel"))?,
        signal_dbm: signal,
        noise_dbm: noise,
        antenna,
    };
    Ok((meta, &bytes[header_len..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> CaptureMeta {
        CaptureMeta {
            tsft_us: 1_234_567_890,
            flags: FLAG_FCS_AT_END,
            rate: Rate::R11,
            channel: Channel::new(6).unwrap(),
            signal_dbm: -58,
            noise_dbm: -95,
            antenna: 1,
        }
    }

    #[test]
    fn roundtrip() {
        let frame = vec![0xB4, 0x00, 0x12, 0x34];
        let pkt = encode_packet(&meta(), &frame);
        let (m, f) = parse_packet(&pkt).unwrap();
        assert_eq!(m, meta());
        assert_eq!(f, &frame[..]);
    }

    #[test]
    fn snr_computation() {
        assert_eq!(meta().snr_db(), 37);
    }

    #[test]
    fn roundtrip_all_rates_and_channels() {
        for rate in Rate::ALL {
            for ch in Channel::ORTHOGONAL {
                let m = CaptureMeta {
                    rate,
                    channel: ch,
                    ..meta()
                };
                let pkt = encode_packet(&m, b"x");
                assert_eq!(parse_packet(&pkt).unwrap().0, m);
            }
        }
    }

    #[test]
    fn rejects_bad_version() {
        let mut pkt = encode_packet(&meta(), b"");
        pkt[0] = 1;
        assert_eq!(parse_packet(&pkt), Err(RadiotapError::BadVersion(1)));
    }

    #[test]
    fn rejects_truncation() {
        let pkt = encode_packet(&meta(), b"");
        assert_eq!(parse_packet(&pkt[..7]), Err(RadiotapError::Truncated));
        assert_eq!(parse_packet(&pkt[..20]), Err(RadiotapError::Truncated));
    }

    #[test]
    fn rejects_non_11b_rate() {
        let mut pkt = encode_packet(&meta(), b"");
        pkt[17] = 12; // 6 Mbps: an OFDM rate
        assert_eq!(parse_packet(&pkt), Err(RadiotapError::BadRate(12)));
    }

    #[test]
    fn rejects_5ghz_channel() {
        let mut pkt = encode_packet(&meta(), b"");
        pkt[18..20].copy_from_slice(&5180u16.to_le_bytes());
        assert_eq!(parse_packet(&pkt), Err(RadiotapError::BadChannel(5180)));
    }

    #[test]
    fn parses_minimal_foreign_header() {
        // A header with only rate + channel present (no TSFT), as another
        // capture tool might write: present = bits 2,3.
        let present: u32 = 1 << 2 | 1 << 3;
        let mut pkt = vec![0u8, 0];
        // header: 8 + rate(1 at 8) + pad to 10 + channel(4) = 14.
        pkt.extend_from_slice(&14u16.to_le_bytes());
        pkt.extend_from_slice(&present.to_le_bytes());
        pkt.push(Rate::R5_5.units_500kbps());
        pkt.push(0); // alignment pad for channel
        pkt.extend_from_slice(&2412u16.to_le_bytes());
        pkt.extend_from_slice(&(CHAN_2GHZ | CHAN_CCK).to_le_bytes());
        pkt.extend_from_slice(b"frame");
        let (m, f) = parse_packet(&pkt).unwrap();
        assert_eq!(m.rate, Rate::R5_5);
        assert_eq!(m.channel, Channel::new(1).unwrap());
        assert_eq!(m.tsft_us, 0);
        assert_eq!(f, b"frame");
    }

    #[test]
    fn missing_rate_is_an_error() {
        // Only TSFT present.
        let present: u32 = 1;
        let mut pkt = vec![0u8, 0];
        pkt.extend_from_slice(&16u16.to_le_bytes());
        pkt.extend_from_slice(&present.to_le_bytes());
        pkt.extend_from_slice(&42u64.to_le_bytes());
        assert_eq!(parse_packet(&pkt), Err(RadiotapError::MissingField("rate")));
    }

    #[test]
    fn extended_bitmap_is_rejected() {
        let mut pkt = encode_packet(&meta(), b"");
        pkt[7] |= 0x80; // set bit 31
        assert_eq!(parse_packet(&pkt), Err(RadiotapError::UnknownField(31)));
    }

    #[test]
    fn channel_mapping() {
        assert_eq!(channel_from_mhz(2412), Channel::new(1));
        assert_eq!(channel_from_mhz(2437), Channel::new(6));
        assert_eq!(channel_from_mhz(2462), Channel::new(11));
        assert_eq!(channel_from_mhz(2484), Channel::new(14));
        assert_eq!(channel_from_mhz(2413), None);
        assert_eq!(channel_from_mhz(5180), None);
    }
}
