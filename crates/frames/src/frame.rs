//! Structured 802.11 frame model.
//!
//! [`Frame`] is the fully-typed in-memory representation; it serializes to and
//! parses from the exact on-air byte layout via [`crate::wire`]. The compact
//! [`crate::record::FrameRecord`] type — what the analysis pipeline consumes —
//! is derived from frames plus capture metadata.

use crate::fc::{FcFlags, FrameControl, FrameKind};
use crate::mac::MacAddr;
use crate::phy::Channel;

/// Sequence Control: a 12-bit sequence number and 4-bit fragment number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct SeqCtl {
    /// Sequence number, modulo 4096.
    pub seq: u16,
    /// Fragment number, 0–15.
    pub frag: u8,
}

impl SeqCtl {
    /// Builds a sequence control, wrapping inputs into range.
    pub const fn new(seq: u16, frag: u8) -> SeqCtl {
        SeqCtl {
            seq: seq % 4096,
            frag: frag % 16,
        }
    }

    /// Encodes to the 16-bit wire value (fragment in the low nibble).
    pub const fn to_raw(self) -> u16 {
        (self.seq << 4) | self.frag as u16
    }

    /// Decodes from the 16-bit wire value.
    pub const fn from_raw(raw: u16) -> SeqCtl {
        SeqCtl {
            seq: raw >> 4,
            frag: (raw & 0x0f) as u8,
        }
    }

    /// The sequence number following this one (same fragment).
    pub const fn next(self) -> SeqCtl {
        SeqCtl {
            seq: (self.seq + 1) % 4096,
            frag: self.frag,
        }
    }
}

/// An RTS (Request-to-Send) control frame: 20 bytes on air.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rts {
    /// NAV duration in microseconds the sender requests.
    pub duration: u16,
    /// Receiver address (RA).
    pub receiver: MacAddr,
    /// Transmitter address (TA).
    pub transmitter: MacAddr,
}

/// A CTS (Clear-to-Send) control frame: 14 bytes on air.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cts {
    /// Remaining NAV duration in microseconds.
    pub duration: u16,
    /// Receiver address — the RTS sender.
    pub receiver: MacAddr,
}

/// An ACK control frame: 14 bytes on air.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ack {
    /// NAV duration (non-zero only for fragment bursts).
    pub duration: u16,
    /// Receiver address — the sender of the acknowledged frame.
    pub receiver: MacAddr,
}

/// A data frame (header 24 bytes + payload + FCS).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Data {
    /// Frame Control flag byte (carries `to_ds`/`from_ds`/`retry`).
    pub flags: FcFlags,
    /// NAV duration in microseconds.
    pub duration: u16,
    /// Address 1: receiver of this transmission.
    pub addr1: MacAddr,
    /// Address 2: transmitter of this transmission.
    pub addr2: MacAddr,
    /// Address 3: BSSID, or original source/destination depending on DS bits.
    pub addr3: MacAddr,
    /// Sequence control.
    pub seq: SeqCtl,
    /// MSDU payload bytes (LLC/SNAP + upper layers).
    pub payload: Vec<u8>,
    /// True for Null-function frames (no payload on the wire).
    pub null: bool,
}

impl Data {
    /// Transmitter (addr2) — the station whose radio emitted this frame.
    pub fn transmitter(&self) -> MacAddr {
        self.addr2
    }

    /// Receiver (addr1) of this hop.
    pub fn receiver(&self) -> MacAddr {
        self.addr1
    }

    /// The BSSID, inferred from the DS bits.
    pub fn bssid(&self) -> MacAddr {
        match (self.flags.to_ds, self.flags.from_ds) {
            (false, false) => self.addr3, // IBSS
            (true, false) => self.addr1,  // to AP
            (false, true) => self.addr2,  // from AP
            (true, true) => self.addr3,   // WDS (approximation; addr4 elided)
        }
    }
}

/// Information elements carried in a beacon body (the subset the study needs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Beacon {
    /// NAV duration (0 for beacons).
    pub duration: u16,
    /// Destination (broadcast for beacons).
    pub dest: MacAddr,
    /// Source: the AP's MAC.
    pub source: MacAddr,
    /// BSSID (equal to source for infrastructure beacons).
    pub bssid: MacAddr,
    /// Sequence control.
    pub seq: SeqCtl,
    /// TSF timestamp in microseconds.
    pub timestamp: u64,
    /// Beacon interval in time units (TU = 1024 µs); 100 TU ≈ the paper's
    /// "100 millisecond intervals".
    pub interval_tu: u16,
    /// Capability information bits.
    pub capability: u16,
    /// Network name.
    pub ssid: String,
    /// Advertised channel (DS Parameter Set IE).
    pub channel: Channel,
}

/// A management frame other than a beacon, carried with an opaque body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mgmt {
    /// The specific management subtype.
    pub kind: FrameKind,
    /// Frame Control flag byte.
    pub flags: FcFlags,
    /// NAV duration in microseconds.
    pub duration: u16,
    /// Address 1 (destination).
    pub addr1: MacAddr,
    /// Address 2 (source).
    pub addr2: MacAddr,
    /// Address 3 (BSSID).
    pub addr3: MacAddr,
    /// Sequence control.
    pub seq: SeqCtl,
    /// Raw frame body.
    pub body: Vec<u8>,
}

/// A fully-typed 802.11 frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Frame {
    /// Request-to-Send.
    Rts(Rts),
    /// Clear-to-Send.
    Cts(Cts),
    /// Acknowledgment.
    Ack(Ack),
    /// Data or Null-function frame.
    Data(Data),
    /// Beacon.
    Beacon(Beacon),
    /// Other management frame.
    Mgmt(Mgmt),
}

/// MAC header + FCS overhead of a data frame (24 + 4 bytes).
pub const DATA_OVERHEAD_BYTES: usize = 28;
/// On-air size of an RTS frame.
pub const RTS_BYTES: usize = 20;
/// On-air size of a CTS or ACK frame.
pub const CTS_BYTES: usize = 14;
/// On-air size of an ACK frame.
pub const ACK_BYTES: usize = 14;
/// Management header + FCS overhead (same 24 + 4 layout as data).
pub const MGMT_OVERHEAD_BYTES: usize = 28;
/// Fixed beacon body ahead of the IEs: timestamp (8) + interval (2) +
/// capability (2).
pub const BEACON_FIXED_BODY_BYTES: usize = 12;

impl Frame {
    /// The frame's kind.
    pub fn kind(&self) -> FrameKind {
        match self {
            Frame::Rts(_) => FrameKind::Rts,
            Frame::Cts(_) => FrameKind::Cts,
            Frame::Ack(_) => FrameKind::Ack,
            Frame::Data(d) => {
                if d.null {
                    FrameKind::NullData
                } else {
                    FrameKind::Data
                }
            }
            Frame::Beacon(_) => FrameKind::Beacon,
            Frame::Mgmt(m) => m.kind,
        }
    }

    /// The frame control field this frame serializes with.
    pub fn frame_control(&self) -> FrameControl {
        let mut fc = FrameControl::new(self.kind());
        match self {
            Frame::Data(d) => fc.flags = d.flags,
            Frame::Mgmt(m) => fc.flags = m.flags,
            _ => {}
        }
        fc
    }

    /// The NAV duration field.
    pub fn duration(&self) -> u16 {
        match self {
            Frame::Rts(f) => f.duration,
            Frame::Cts(f) => f.duration,
            Frame::Ack(f) => f.duration,
            Frame::Data(f) => f.duration,
            Frame::Beacon(f) => f.duration,
            Frame::Mgmt(f) => f.duration,
        }
    }

    /// Address 1 — the receiver of this transmission.
    pub fn receiver(&self) -> MacAddr {
        match self {
            Frame::Rts(f) => f.receiver,
            Frame::Cts(f) => f.receiver,
            Frame::Ack(f) => f.receiver,
            Frame::Data(f) => f.addr1,
            Frame::Beacon(f) => f.dest,
            Frame::Mgmt(f) => f.addr1,
        }
    }

    /// Address 2 — the transmitter, when the frame carries one (CTS and ACK
    /// do not).
    pub fn transmitter(&self) -> Option<MacAddr> {
        match self {
            Frame::Rts(f) => Some(f.transmitter),
            Frame::Cts(_) | Frame::Ack(_) => None,
            Frame::Data(f) => Some(f.addr2),
            Frame::Beacon(f) => Some(f.source),
            Frame::Mgmt(f) => Some(f.addr2),
        }
    }

    /// The BSSID, when determinable from the frame alone.
    pub fn bssid(&self) -> Option<MacAddr> {
        match self {
            Frame::Rts(_) | Frame::Cts(_) | Frame::Ack(_) => None,
            Frame::Data(f) => Some(f.bssid()),
            Frame::Beacon(f) => Some(f.bssid),
            Frame::Mgmt(f) => Some(f.addr3),
        }
    }

    /// The retry flag (always false for control frames).
    pub fn retry(&self) -> bool {
        match self {
            Frame::Data(f) => f.flags.retry,
            Frame::Mgmt(f) => f.flags.retry,
            _ => false,
        }
    }

    /// Sequence control, for frame types that carry one.
    pub fn seq(&self) -> Option<SeqCtl> {
        match self {
            Frame::Rts(_) | Frame::Cts(_) | Frame::Ack(_) => None,
            Frame::Data(f) => Some(f.seq),
            Frame::Beacon(f) => Some(f.seq),
            Frame::Mgmt(f) => Some(f.seq),
        }
    }

    /// Data payload length in bytes; zero for everything but data frames.
    pub fn payload_len(&self) -> usize {
        match self {
            Frame::Data(d) if !d.null => d.payload.len(),
            _ => 0,
        }
    }

    /// Total on-air MAC frame size in bytes, including the FCS. This is the
    /// size a sniffer reports as the original frame length.
    pub fn size_bytes(&self) -> usize {
        match self {
            Frame::Rts(_) => RTS_BYTES,
            Frame::Cts(_) => CTS_BYTES,
            Frame::Ack(_) => ACK_BYTES,
            Frame::Data(d) => DATA_OVERHEAD_BYTES + if d.null { 0 } else { d.payload.len() },
            Frame::Beacon(b) => {
                // IEs: SSID (2 + len) + Supported Rates (2 + 4) + DS Param (2 + 1).
                MGMT_OVERHEAD_BYTES + BEACON_FIXED_BODY_BYTES + 2 + b.ssid.len() + 6 + 3
            }
            Frame::Mgmt(m) => MGMT_OVERHEAD_BYTES + m.body.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phy::Channel;

    fn sta(i: u32) -> MacAddr {
        MacAddr::from_id(i)
    }

    #[test]
    fn seqctl_roundtrip() {
        for (seq, frag) in [(0u16, 0u8), (1, 0), (4095, 15), (2048, 7)] {
            let s = SeqCtl::new(seq, frag);
            assert_eq!(SeqCtl::from_raw(s.to_raw()), s);
        }
    }

    #[test]
    fn seqctl_wraps() {
        assert_eq!(SeqCtl::new(4096, 16), SeqCtl::new(0, 0));
        assert_eq!(SeqCtl::new(4095, 0).next().seq, 0);
        assert_eq!(SeqCtl::new(10, 3).next(), SeqCtl::new(11, 3));
    }

    #[test]
    fn control_frame_sizes_match_standard() {
        let rts = Frame::Rts(Rts {
            duration: 1000,
            receiver: sta(1),
            transmitter: sta(2),
        });
        let cts = Frame::Cts(Cts {
            duration: 500,
            receiver: sta(2),
        });
        let ack = Frame::Ack(Ack {
            duration: 0,
            receiver: sta(2),
        });
        assert_eq!(rts.size_bytes(), 20);
        assert_eq!(cts.size_bytes(), 14);
        assert_eq!(ack.size_bytes(), 14);
    }

    #[test]
    fn data_frame_size_is_overhead_plus_payload() {
        let d = Frame::Data(Data {
            flags: FcFlags::default(),
            duration: 0,
            addr1: sta(1),
            addr2: sta(2),
            addr3: sta(3),
            seq: SeqCtl::default(),
            payload: vec![0u8; 1472],
            null: false,
        });
        assert_eq!(d.size_bytes(), 1500);
        assert_eq!(d.payload_len(), 1472);
    }

    #[test]
    fn null_data_has_no_payload_on_air() {
        let d = Frame::Data(Data {
            flags: FcFlags::default(),
            duration: 0,
            addr1: sta(1),
            addr2: sta(2),
            addr3: sta(3),
            seq: SeqCtl::default(),
            payload: vec![1, 2, 3], // ignored for null frames
            null: true,
        });
        assert_eq!(d.size_bytes(), DATA_OVERHEAD_BYTES);
        assert_eq!(d.payload_len(), 0);
        assert_eq!(d.kind(), FrameKind::NullData);
    }

    #[test]
    fn bssid_follows_ds_bits() {
        let mut d = Data {
            flags: FcFlags::default(),
            duration: 0,
            addr1: sta(1),
            addr2: sta(2),
            addr3: sta(3),
            seq: SeqCtl::default(),
            payload: vec![],
            null: false,
        };
        d.flags.to_ds = true;
        assert_eq!(d.bssid(), sta(1));
        d.flags.to_ds = false;
        d.flags.from_ds = true;
        assert_eq!(d.bssid(), sta(2));
        d.flags.from_ds = false;
        assert_eq!(d.bssid(), sta(3));
    }

    #[test]
    fn transmitter_absent_for_cts_ack() {
        let cts = Frame::Cts(Cts {
            duration: 0,
            receiver: sta(9),
        });
        assert_eq!(cts.transmitter(), None);
        assert_eq!(cts.receiver(), sta(9));
        assert_eq!(cts.seq(), None);
    }

    #[test]
    fn beacon_accessors() {
        let b = Frame::Beacon(Beacon {
            duration: 0,
            dest: MacAddr::BROADCAST,
            source: sta(7),
            bssid: sta(7),
            seq: SeqCtl::new(12, 0),
            timestamp: 123_456,
            interval_tu: 100,
            capability: 0x0401,
            ssid: "ietf62".into(),
            channel: Channel::new(6).unwrap(),
        });
        assert_eq!(b.kind(), FrameKind::Beacon);
        assert_eq!(b.transmitter(), Some(sta(7)));
        assert_eq!(b.bssid(), Some(sta(7)));
        assert_eq!(b.receiver(), MacAddr::BROADCAST);
        // 28 overhead + 12 fixed + (2+6 ssid) + 6 rates + 3 ds = 57.
        assert_eq!(b.size_bytes(), 57);
    }

    #[test]
    fn retry_flag_propagates() {
        let mut d = Data {
            flags: FcFlags::retry_only(),
            duration: 0,
            addr1: sta(1),
            addr2: sta(2),
            addr3: sta(3),
            seq: SeqCtl::default(),
            payload: vec![],
            null: false,
        };
        assert!(Frame::Data(d.clone()).retry());
        d.flags.retry = false;
        assert!(!Frame::Data(d).retry());
    }
}
