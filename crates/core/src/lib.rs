//! # congestion
//!
//! The analysis library of the reproduction of *Understanding Congestion in
//! IEEE 802.11b Wireless Networks* (Jardosh et al., IMC 2005) — the paper's
//! primary contribution, as a reusable crate.
//!
//! Given a time-ordered stream of captured frames
//! ([`wifi_frames::FrameRecord`]), this crate computes:
//!
//! * **channel busy time & utilization** ([`busy_time`]) — Equations 2–8
//!   with the Table 2 delay components;
//! * **per-second link-layer statistics** ([`persec`]) — throughput,
//!   goodput, per-rate air time and byte counts, the 16 size×rate frame
//!   categories, first-attempt acknowledgment counts, acceptance delays;
//! * **utilization-conditioned aggregation** ([`bins`]) — the "average over
//!   all seconds that are x % utilized" grouping every figure of Section 6
//!   uses;
//! * **congestion classification** ([`congestion`]) — uncongested /
//!   moderate / high with the knee recovered from the throughput curve;
//! * **capture-loss estimation** ([`unrecorded`]) — the DATA→ACK, RTS→CTS
//!   and RTS→CTS→DATA atomicity estimator of Section 4.4;
//! * **per-AP and per-user accounting** ([`ap_stats`], [`users`]) —
//!   Figures 4(a)–4(c);
//! * **the beacon-reliability baseline metric** ([`beacon_metric`]) — the
//!   authors' earlier congestion signal, for comparison.
//!
//! ```
//! use congestion::{analyze, UtilizationBins, CongestionClassifier};
//! # let records: Vec<wifi_frames::FrameRecord> = Vec::new();
//! let per_second = analyze(&records);
//! let bins = UtilizationBins::build(&per_second);
//! let classifier = CongestionClassifier::from_measurements(&bins);
//! for s in &per_second {
//!     let _level = classifier.classify(s.utilization_pct());
//! }
//! ```

#![warn(missing_docs)]

pub mod ap_stats;
pub mod beacon_metric;
pub mod bins;
pub mod busy_time;
pub mod categories;
pub mod congestion;
pub mod merge;
pub mod persec;
pub mod stats;
pub mod theory;
pub mod unrecorded;
pub mod users;

pub use bins::{BinAgg, UtilizationBins};
pub use busy_time::{cbt_us, BusyTimeAccumulator};
pub use categories::{Category, SizeClass};
pub use congestion::{find_knee, CongestionClassifier, CongestionLevel};
pub use merge::{coverage_gain, merge_traces, CoverageGain, MergePoll, MergeStream, OnlineMerge};
pub use persec::{analyze, DelayAgg, SecondAccumulator, SecondStats};
pub use stats::{jain_index, mean_ci95, MeanCi, Reservoir};
pub use theory::{bianchi, tmt_bps, Bianchi};
pub use unrecorded::{estimate as estimate_unrecorded, UnrecordedEstimate};
