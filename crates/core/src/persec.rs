//! Single-pass, per-second trace analysis.
//!
//! [`analyze`] walks a captured trace once and produces one [`SecondStats`]
//! per second, carrying every aggregate the paper's figures need:
//! utilization (Fig 5), throughput/goodput (Fig 6), RTS/CTS counts (Fig 7),
//! per-rate busy time and bytes (Figs 8–9), per-category transmission counts
//! (Figs 10–13), first-attempt acknowledgments (Fig 14) and acceptance
//! delays (Fig 15).
//!
//! ## ACK matching
//!
//! A data frame is *successfully acknowledged* when the next captured frame
//! is an ACK addressed to the data frame's transmitter and arrives within
//! one SIFS + ACK air time (plus a small guard) — the DATA→ACK atomicity of
//! the DCF (Section 4.4 and 6.4 of the paper).
//!
//! ## Acceptance delay
//!
//! The delay of an acknowledged frame is measured from the *first* observed
//! transmission attempt of its `(transmitter, sequence)` pair to the ACK
//! (Section 6.5: "independent of the number of attempts").

use crate::busy_time::cbt_us;
use crate::categories::Category;
use std::collections::HashMap;
use wifi_frames::fc::FrameKind;
use wifi_frames::mac::MacAddr;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::{delay, Micros, SECOND};

/// Maximum gap between a data frame's capture and its ACK's capture for the
/// pair to count as atomic: SIFS + ACK air time + guard.
pub const ACK_MATCH_WINDOW_US: Micros = delay::SIFS + delay::ACK + 150;

/// How long a pending first-transmission record is remembered before being
/// evicted (bounds memory; far beyond any plausible acceptance delay).
const FIRST_TX_TTL_US: Micros = 2 * SECOND;

/// A delay aggregate: sum and count, for averaging.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DelayAgg {
    /// Sum of delays, microseconds.
    pub total_us: u64,
    /// Number of samples.
    pub count: u64,
}

impl DelayAgg {
    /// Adds one sample.
    pub fn add(&mut self, us: u64) {
        self.total_us += us;
        self.count += 1;
    }

    /// Mean in seconds, `None` when empty.
    pub fn mean_seconds(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.total_us as f64 / self.count as f64 / 1e6)
        }
    }

    /// Merges another aggregate.
    pub fn merge(&mut self, other: &DelayAgg) {
        self.total_us += other.total_us;
        self.count += other.count;
    }
}

/// Everything the figures need, for one second of trace.
#[derive(Clone, Debug, PartialEq)]
pub struct SecondStats {
    /// The second (trace timestamp / 10⁶).
    pub second: u64,
    /// `CBT_TOTAL(t)` in microseconds (Equation 7).
    pub busy_us: u64,
    /// Frames captured this second.
    pub frames: u64,
    /// RTS frames.
    pub rts: u64,
    /// CTS frames.
    pub cts: u64,
    /// ACK frames.
    pub ack: u64,
    /// Beacons.
    pub beacon: u64,
    /// Data frames (including retries).
    pub data: u64,
    /// Data frames with the retry bit set (retransmissions).
    pub retries: u64,
    /// Management frames other than beacons.
    pub mgmt: u64,
    /// Bits of all frames (the paper's throughput numerator).
    pub throughput_bits: u64,
    /// Bits of control/management frames plus acknowledged data frames (the
    /// paper's goodput numerator).
    pub goodput_bits: u64,
    /// Air time of data frames by rate index (Fig 8), µs.
    pub busy_by_rate_us: [u64; 4],
    /// Bytes of data frames by rate index (Fig 9).
    pub bytes_by_rate: [u64; 4],
    /// Data frames by `[size class][rate]` (Figs 10–13).
    pub tx_by_cat: [[u64; 4]; 4],
    /// Data frames acknowledged at their first attempt, by rate (Fig 14).
    pub first_ack_by_rate: [u64; 4],
    /// All acknowledged data frames.
    pub acked_data: u64,
    /// Acceptance delay aggregates by `[size class][rate]` (Fig 15).
    pub acc_delay: [[DelayAgg; 4]; 4],
}

impl SecondStats {
    fn new(second: u64) -> SecondStats {
        SecondStats {
            second,
            busy_us: 0,
            frames: 0,
            rts: 0,
            cts: 0,
            ack: 0,
            beacon: 0,
            data: 0,
            retries: 0,
            mgmt: 0,
            throughput_bits: 0,
            goodput_bits: 0,
            busy_by_rate_us: [0; 4],
            bytes_by_rate: [0; 4],
            tx_by_cat: [[0; 4]; 4],
            first_ack_by_rate: [0; 4],
            acked_data: 0,
            acc_delay: [[DelayAgg::default(); 4]; 4],
        }
    }

    /// Utilization percentage `U(t)` (Equation 8).
    pub fn utilization_pct(&self) -> f64 {
        self.busy_us as f64 / SECOND as f64 * 100.0
    }

    /// Throughput in Mbps over this second.
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bits as f64 / 1e6
    }

    /// Goodput in Mbps over this second.
    pub fn goodput_mbps(&self) -> f64 {
        self.goodput_bits as f64 / 1e6
    }
}

/// Incremental per-second analysis: feed [`FrameRecord`]s as they are
/// captured, read the same statistics [`analyze`] produces.
///
/// ACK matching needs one frame of lookahead (DATA→ACK adjacency), so the
/// accumulator holds exactly one pending record and folds it when its
/// successor arrives; [`SecondAccumulator::finish`] folds the last record
/// with no successor. State is O(lookback window + seconds emitted) — a
/// streaming run never buffers the trace.
#[derive(Debug, Default)]
pub struct SecondAccumulator {
    out: Vec<SecondStats>,
    /// `(transmitter, seq)` → first transmission-attempt timestamp.
    first_tx: HashMap<(MacAddr, u16), Micros>,
    last_evict: Micros,
    /// The record awaiting its successor (for ACK adjacency).
    pending: Option<FrameRecord>,
}

impl SecondAccumulator {
    /// An empty accumulator.
    pub fn new() -> SecondAccumulator {
        SecondAccumulator::default()
    }

    /// Feeds the next captured record. Records must arrive in trace
    /// (timestamp) order, exactly as a sniffer captures them.
    pub fn push(&mut self, r: FrameRecord) {
        if let Some(prev) = self.pending.take() {
            self.fold(&prev, Some(&r));
        }
        self.pending = Some(r);
    }

    /// The seconds fully folded so far (the pending record's contribution
    /// is not yet visible).
    pub fn seconds(&self) -> &[SecondStats] {
        &self.out
    }

    /// Folds the last pending record and returns the completed statistics.
    pub fn finish(mut self) -> Vec<SecondStats> {
        if let Some(prev) = self.pending.take() {
            self.fold(&prev, None);
        }
        self.out
    }

    /// Index of `sec`'s stats entry, filling gaps so quiet seconds exist
    /// with zero stats.
    fn get_second(&mut self, sec: u64) -> usize {
        if let Some(last) = self.out.last() {
            if last.second == sec {
                return self.out.len() - 1;
            }
            let mut next = last.second + 1;
            while next <= sec {
                self.out.push(SecondStats::new(next));
                next += 1;
            }
            self.out.len() - 1
        } else {
            self.out.push(SecondStats::new(sec));
            0
        }
    }

    /// Accounts one record, with its successor (when one exists) for ACK
    /// adjacency — the loop body of the original batch `analyze`.
    fn fold(&mut self, r: &FrameRecord, next: Option<&FrameRecord>) {
        let idx = self.get_second(r.second());
        let s = &mut self.out[idx];
        s.frames += 1;
        s.busy_us += cbt_us(r);
        s.throughput_bits += 8 * r.mac_bytes as u64;
        match r.kind {
            FrameKind::Rts => {
                s.rts += 1;
                s.goodput_bits += 8 * r.mac_bytes as u64;
            }
            FrameKind::Cts => {
                s.cts += 1;
                s.goodput_bits += 8 * r.mac_bytes as u64;
            }
            FrameKind::Ack => {
                s.ack += 1;
                s.goodput_bits += 8 * r.mac_bytes as u64;
            }
            FrameKind::Beacon => {
                s.beacon += 1;
                s.goodput_bits += 8 * r.mac_bytes as u64;
            }
            FrameKind::Data | FrameKind::NullData => {
                s.data += 1;
                s.retries += r.retry as u64;
                let cat = Category::of(r);
                let (si, ri) = cat.indices();
                s.tx_by_cat[si][ri] += 1;
                s.busy_by_rate_us[ri] += cbt_us(r);
                s.bytes_by_rate[ri] += r.mac_bytes as u64;

                // Track the first attempt for acceptance delay.
                let key = r.src.map(|src| (src, r.seq.unwrap_or(0)));
                if let Some(key) = key {
                    self.first_tx.entry(key).or_insert(r.timestamp_us);
                }

                // DATA→ACK atomicity: is the next frame our ACK?
                let acked = next.is_some_and(|n| {
                    n.kind == FrameKind::Ack
                        && Some(n.dst) == r.src
                        && n.timestamp_us >= r.timestamp_us
                        && n.timestamp_us - r.timestamp_us <= ACK_MATCH_WINDOW_US
                });
                if acked {
                    let s = &mut self.out[idx];
                    s.acked_data += 1;
                    s.goodput_bits += 8 * r.mac_bytes as u64;
                    if !r.retry {
                        s.first_ack_by_rate[ri] += 1;
                    }
                    // Acceptance delay from the first attempt.
                    let ack_ts = next.unwrap().timestamp_us;
                    if let Some(key) = key {
                        let first = self.first_tx.remove(&key).unwrap_or(r.timestamp_us);
                        self.out[idx].acc_delay[si][ri].add(ack_ts.saturating_sub(first));
                    }
                }
            }
            _ => {
                s.mgmt += 1;
                s.goodput_bits += 8 * r.mac_bytes as u64;
            }
        }

        // Periodic eviction keeps the first-tx map bounded on long traces.
        if r.timestamp_us.saturating_sub(self.last_evict) > FIRST_TX_TTL_US {
            let cutoff = r.timestamp_us - FIRST_TX_TTL_US;
            self.first_tx.retain(|_, t| *t >= cutoff);
            self.last_evict = r.timestamp_us;
        }
    }
}

/// Walks a time-ordered trace and produces per-second statistics.
///
/// Seconds with no captured frames are still emitted (all-zero), so a quiet
/// channel reads as 0 % utilization rather than a gap. Thin wrapper over
/// [`SecondAccumulator`]; streaming callers use the accumulator directly.
pub fn analyze(records: &[FrameRecord]) -> Vec<SecondStats> {
    let mut acc = SecondAccumulator::new();
    for r in records {
        acc.push(*r);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::phy::{Channel, Rate};

    fn base(kind: FrameKind, ts: Micros) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts,
            kind,
            rate: Rate::R11,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(1),
            src: Some(MacAddr::from_id(2)),
            bssid: None,
            retry: false,
            seq: Some(0),
            mac_bytes: 14,
            payload_bytes: 0,
            signal_dbm: -55,
            duration_us: 0,
        }
    }

    fn data(ts: Micros, src: u32, seq: u16, payload: u32, rate: Rate, retry: bool) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts,
            kind: FrameKind::Data,
            rate,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(MacAddr::from_id(src)),
            bssid: Some(MacAddr::from_id(99)),
            retry,
            seq: Some(seq),
            mac_bytes: payload + 28,
            payload_bytes: payload,
            signal_dbm: -55,
            duration_us: 314,
        }
    }

    fn ack(ts: Micros, to: u32) -> FrameRecord {
        FrameRecord {
            dst: MacAddr::from_id(to),
            src: None,
            ..base(FrameKind::Ack, ts)
        }
    }

    #[test]
    fn counts_by_kind() {
        let recs = vec![
            base(FrameKind::Rts, 0),
            base(FrameKind::Cts, 100),
            data(200, 2, 0, 100, Rate::R11, false),
            ack(600, 2),
            base(FrameKind::Beacon, 700),
            base(FrameKind::ProbeRequest, 800),
        ];
        let stats = analyze(&recs);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.frames, 6);
        assert_eq!(
            (s.rts, s.cts, s.ack, s.beacon, s.data, s.mgmt),
            (1, 1, 1, 1, 1, 1)
        );
    }

    #[test]
    fn ack_matching_requires_adjacency_and_address() {
        // Data from sta 2, but ACK addressed to sta 3: no match.
        let recs = vec![data(0, 2, 0, 100, Rate::R11, false), ack(400, 3)];
        assert_eq!(analyze(&recs)[0].acked_data, 0);
        // Correct address: match.
        let recs = vec![data(0, 2, 0, 100, Rate::R11, false), ack(400, 2)];
        assert_eq!(analyze(&recs)[0].acked_data, 1);
        // Intervening frame breaks atomicity.
        let recs = vec![
            data(0, 2, 0, 100, Rate::R11, false),
            base(FrameKind::Beacon, 200),
            ack(400, 2),
        ];
        assert_eq!(analyze(&recs)[0].acked_data, 0);
        // ACK too late: no match.
        let recs = vec![data(0, 2, 0, 100, Rate::R11, false), ack(5_000, 2)];
        assert_eq!(analyze(&recs)[0].acked_data, 0);
    }

    #[test]
    fn first_attempt_ack_excludes_retries() {
        let recs = vec![
            data(0, 2, 7, 100, Rate::R11, true), // a retry that got acked
            ack(400, 2),
        ];
        let s = &analyze(&recs)[0];
        assert_eq!(s.acked_data, 1);
        assert_eq!(s.first_ack_by_rate.iter().sum::<u64>(), 0);
    }

    #[test]
    fn acceptance_delay_measured_from_first_attempt() {
        let recs = vec![
            data(0, 2, 7, 100, Rate::R11, false), // first attempt, not acked
            data(10_000, 2, 7, 100, Rate::R11, true), // retry
            ack(10_400, 2),
        ];
        let s = &analyze(&recs)[0];
        // Category of the acked frame: S (128 B) at 11 Mbps.
        let agg = s.acc_delay[0][3];
        assert_eq!(agg.count, 1);
        assert_eq!(agg.total_us, 10_400);
    }

    #[test]
    fn goodput_counts_control_plus_acked_data_only() {
        let recs = vec![
            data(0, 2, 0, 100, Rate::R11, false), // acked below
            ack(400, 2),
            data(1000, 2, 1, 200, Rate::R11, false), // never acked
        ];
        let s = &analyze(&recs)[0];
        let expected_goodput = 8 * (128 + 14) as u64; // acked data + the ack
        assert_eq!(s.goodput_bits, expected_goodput);
        let expected_throughput = 8 * (128 + 14 + 228) as u64;
        assert_eq!(s.throughput_bits, expected_throughput);
        assert!(s.goodput_bits < s.throughput_bits);
    }

    #[test]
    fn category_tables_fill_correctly() {
        let recs = vec![
            data(0, 2, 0, 100, Rate::R11, false),     // S-11
            data(1000, 2, 1, 100, Rate::R11, false),  // S-11
            data(2000, 2, 2, 1300, Rate::R1, false),  // XL-1
            data(3000, 2, 3, 500, Rate::R5_5, false), // M-5.5
        ];
        let s = &analyze(&recs)[0];
        assert_eq!(s.tx_by_cat[0][3], 2); // S-11
        assert_eq!(s.tx_by_cat[3][0], 1); // XL-1
        assert_eq!(s.tx_by_cat[1][2], 1); // M-5.5
        assert_eq!(s.bytes_by_rate[3], 2 * 128);
        assert_eq!(s.bytes_by_rate[0], 1328);
        assert!(
            s.busy_by_rate_us[0] > s.busy_by_rate_us[3],
            "1 Mbps frame dominates airtime"
        );
    }

    #[test]
    fn quiet_seconds_are_emitted_as_zero() {
        let recs = vec![
            data(0, 2, 0, 100, Rate::R11, false),
            data(3_500_000, 2, 1, 100, Rate::R11, false),
        ];
        let stats = analyze(&recs);
        assert_eq!(stats.len(), 4); // seconds 0..=3
        assert_eq!(stats[1].frames, 0);
        assert_eq!(stats[1].utilization_pct(), 0.0);
        assert_eq!(stats[2].frames, 0);
        assert_eq!(stats[3].frames, 1);
    }

    #[test]
    fn utilization_matches_busy_time_metric() {
        let recs: Vec<FrameRecord> = (0..40)
            .map(|i| data(i * 25_000, 2, i as u16, 1472, Rate::R1, false))
            .collect();
        let s = &analyze(&recs)[0];
        // 40 × (50 + 192 + 12048) = 491_600 µs.
        assert_eq!(s.busy_us, 491_600);
        assert!((s.utilization_pct() - 49.16).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_empty_stats() {
        assert!(analyze(&[]).is_empty());
    }

    #[test]
    fn delay_agg_mean() {
        let mut d = DelayAgg::default();
        assert_eq!(d.mean_seconds(), None);
        d.add(10_000);
        d.add(30_000);
        assert!((d.mean_seconds().unwrap() - 0.02).abs() < 1e-12);
        let mut e = DelayAgg::default();
        e.add(20_000);
        e.merge(&d);
        assert_eq!(e.count, 3);
        assert_eq!(e.total_us, 60_000);
    }
}
