//! Grouping per-second statistics by utilization percentage.
//!
//! Every figure in Section 6 of the paper plots a per-second quantity
//! *conditioned on* the channel-utilization percentage of that second:
//! "each point value y represents the average over all one-second intervals
//! that are x % utilized". [`UtilizationBins`] implements exactly that
//! grouping, with integer-percent bins 0..=100.

use crate::persec::{DelayAgg, SecondStats};

/// Per-second statistics grouped into integer utilization-percentage bins.
#[derive(Clone, Debug)]
pub struct UtilizationBins {
    /// `bins[u]` aggregates every second whose utilization rounds to `u` %.
    bins: Vec<BinAgg>,
}

/// The aggregate of all seconds in one utilization bin.
#[derive(Clone, Debug, Default)]
pub struct BinAgg {
    /// Number of seconds in the bin (the paper's Fig 5(c) histogram).
    pub seconds: u64,
    /// Sum of throughput bits.
    pub throughput_bits: u64,
    /// Sum of goodput bits.
    pub goodput_bits: u64,
    /// Sum of RTS counts.
    pub rts: u64,
    /// Sum of CTS counts.
    pub cts: u64,
    /// Sum of data-frame counts.
    pub data: u64,
    /// Sum of per-rate data air time, µs.
    pub busy_by_rate_us: [u64; 4],
    /// Sum of per-rate data bytes.
    pub bytes_by_rate: [u64; 4],
    /// Sum of per-category transmission counts.
    pub tx_by_cat: [[u64; 4]; 4],
    /// Sum of first-attempt acknowledgment counts per rate.
    pub first_ack_by_rate: [u64; 4],
    /// Acceptance-delay aggregates per category.
    pub acc_delay: [[DelayAgg; 4]; 4],
}

impl BinAgg {
    fn absorb(&mut self, s: &SecondStats) {
        self.seconds += 1;
        self.throughput_bits += s.throughput_bits;
        self.goodput_bits += s.goodput_bits;
        self.rts += s.rts;
        self.cts += s.cts;
        self.data += s.data;
        for i in 0..4 {
            self.busy_by_rate_us[i] += s.busy_by_rate_us[i];
            self.bytes_by_rate[i] += s.bytes_by_rate[i];
            self.first_ack_by_rate[i] += s.first_ack_by_rate[i];
            for j in 0..4 {
                self.tx_by_cat[i][j] += s.tx_by_cat[i][j];
                self.acc_delay[i][j].merge(&s.acc_delay[i][j]);
            }
        }
    }

    /// Mean throughput in Mbps over the bin's seconds.
    pub fn mean_throughput_mbps(&self) -> f64 {
        if self.seconds == 0 {
            0.0
        } else {
            self.throughput_bits as f64 / self.seconds as f64 / 1e6
        }
    }

    /// Mean goodput in Mbps.
    pub fn mean_goodput_mbps(&self) -> f64 {
        if self.seconds == 0 {
            0.0
        } else {
            self.goodput_bits as f64 / self.seconds as f64 / 1e6
        }
    }

    /// Mean RTS frames per second.
    pub fn mean_rts_per_sec(&self) -> f64 {
        per_sec(self.rts, self.seconds)
    }

    /// Mean CTS frames per second.
    pub fn mean_cts_per_sec(&self) -> f64 {
        per_sec(self.cts, self.seconds)
    }

    /// Mean busy seconds-per-second of data frames at each rate (Fig 8's
    /// y-axis: the fraction of one second occupied).
    pub fn mean_busy_share_by_rate(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (o, &b) in out.iter_mut().zip(&self.busy_by_rate_us) {
            *o = per_sec(b, self.seconds) / 1e6;
        }
        out
    }

    /// Mean bytes per second at each rate (Fig 9).
    pub fn mean_bytes_by_rate(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (o, &b) in out.iter_mut().zip(&self.bytes_by_rate) {
            *o = per_sec(b, self.seconds);
        }
        out
    }

    /// Mean transmissions per second of category `(size, rate)`
    /// (Figs 10–13).
    pub fn mean_tx_per_sec(&self, size_idx: usize, rate_idx: usize) -> f64 {
        per_sec(self.tx_by_cat[size_idx][rate_idx], self.seconds)
    }

    /// Mean first-attempt acknowledgments per second by rate (Fig 14).
    pub fn mean_first_ack_by_rate(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (o, &b) in out.iter_mut().zip(&self.first_ack_by_rate) {
            *o = per_sec(b, self.seconds);
        }
        out
    }

    /// Mean acceptance delay in seconds for a category (Fig 15), `None`
    /// when no acknowledged frame of the category fell in this bin.
    pub fn mean_acceptance_delay_s(&self, size_idx: usize, rate_idx: usize) -> Option<f64> {
        self.acc_delay[size_idx][rate_idx].mean_seconds()
    }
}

fn per_sec(total: u64, seconds: u64) -> f64 {
    if seconds == 0 {
        0.0
    } else {
        total as f64 / seconds as f64
    }
}

impl UtilizationBins {
    /// Groups per-second stats into 0..=100 % bins. Seconds whose computed
    /// utilization exceeds 100 % (possible: the metric charges estimated
    /// inter-frame overheads) clamp into the 100 bin.
    pub fn build(stats: &[SecondStats]) -> UtilizationBins {
        let mut bins = vec![BinAgg::default(); 101];
        for s in stats {
            let u = s.utilization_pct().round().clamp(0.0, 100.0) as usize;
            bins[u].absorb(s);
        }
        UtilizationBins { bins }
    }

    /// The aggregate for an integer utilization percentage.
    pub fn bin(&self, pct: usize) -> &BinAgg {
        &self.bins[pct.min(100)]
    }

    /// Iterator over `(pct, bin)` for non-empty bins.
    pub fn occupied(&self) -> impl Iterator<Item = (usize, &BinAgg)> {
        self.bins.iter().enumerate().filter(|(_, b)| b.seconds > 0)
    }

    /// The histogram of Fig 5(c): seconds per utilization percentage.
    pub fn histogram(&self) -> Vec<(usize, u64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(u, b)| (u, b.seconds))
            .collect()
    }

    /// The utilization percentage with the most seconds (the mode the paper
    /// quotes: ≈55 % day, ≈86 % plenary). `None` for an empty trace.
    pub fn mode(&self) -> Option<usize> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, b)| b.seconds > 0)
            .max_by_key(|(_, b)| b.seconds)
            .map(|(u, _)| u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persec::SecondStats;

    fn sec(second: u64, busy_us: u64, throughput_bits: u64) -> SecondStats {
        let mut s = dummy(second);
        s.busy_us = busy_us;
        s.throughput_bits = throughput_bits;
        s
    }

    fn dummy(second: u64) -> SecondStats {
        // Private-ish constructor workaround: build via analyze on empty
        // then mutate — SecondStats fields are public.
        SecondStats {
            second,
            busy_us: 0,
            frames: 0,
            rts: 0,
            cts: 0,
            ack: 0,
            beacon: 0,
            data: 0,
            retries: 0,
            mgmt: 0,
            throughput_bits: 0,
            goodput_bits: 0,
            busy_by_rate_us: [0; 4],
            bytes_by_rate: [0; 4],
            tx_by_cat: [[0; 4]; 4],
            first_ack_by_rate: [0; 4],
            acked_data: 0,
            acc_delay: [[DelayAgg::default(); 4]; 4],
        }
    }

    #[test]
    fn bins_group_by_rounded_percentage() {
        let stats = vec![
            sec(0, 500_000, 1_000_000), // 50 %
            sec(1, 504_000, 3_000_000), // 50 %
            sec(2, 860_000, 2_000_000), // 86 %
        ];
        let bins = UtilizationBins::build(&stats);
        assert_eq!(bins.bin(50).seconds, 2);
        assert_eq!(bins.bin(86).seconds, 1);
        assert_eq!(bins.bin(10).seconds, 0);
        assert!((bins.bin(50).mean_throughput_mbps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn over_100_percent_clamps() {
        let stats = vec![sec(0, 1_200_000, 0)];
        let bins = UtilizationBins::build(&stats);
        assert_eq!(bins.bin(100).seconds, 1);
    }

    #[test]
    fn histogram_and_mode() {
        let stats = vec![
            sec(0, 550_000, 0),
            sec(1, 551_000, 0),
            sec(2, 554_000, 0),
            sec(3, 860_000, 0),
        ];
        let bins = UtilizationBins::build(&stats);
        assert_eq!(bins.mode(), Some(55));
        let hist = bins.histogram();
        assert_eq!(hist[55].1, 3);
        assert_eq!(hist[86].1, 1);
        assert_eq!(hist.len(), 101);
    }

    #[test]
    fn empty_mode_is_none() {
        let bins = UtilizationBins::build(&[]);
        assert_eq!(bins.mode(), None);
        assert_eq!(bins.occupied().count(), 0);
    }

    #[test]
    fn per_category_means() {
        let mut s = dummy(0);
        s.busy_us = 400_000;
        s.tx_by_cat[0][3] = 120;
        s.first_ack_by_rate[3] = 80;
        s.busy_by_rate_us[0] = 430_000;
        s.bytes_by_rate[3] = 200_000;
        let mut s2 = s.clone();
        s2.second = 1;
        s2.tx_by_cat[0][3] = 60;
        let bins = UtilizationBins::build(&[s, s2]);
        let b = bins.bin(40);
        assert_eq!(b.seconds, 2);
        assert!((b.mean_tx_per_sec(0, 3) - 90.0).abs() < 1e-12);
        assert!((b.mean_first_ack_by_rate()[3] - 80.0).abs() < 1e-12);
        assert!((b.mean_busy_share_by_rate()[0] - 0.43).abs() < 1e-12);
        assert!((b.mean_bytes_by_rate()[3] - 200_000.0).abs() < 1e-12);
    }
}
