//! The unrecorded-frame estimator — Section 4.4 of the paper.
//!
//! Vicinity sniffers miss frames (bit errors, hardware drops, hidden
//! terminals). The DCF's frame-arrival atomicity lets a trace bound its own
//! losses:
//!
//! * **DATA→ACK**: an ACK implies an immediately-preceding DATA frame whose
//!   transmitter is the ACK's receiver. ACK without matching DATA ⇒ one
//!   unrecorded DATA frame.
//! * **RTS→CTS**: a CTS implies an immediately-preceding RTS whose
//!   transmitter is the CTS's receiver. CTS without matching RTS ⇒ one
//!   unrecorded RTS.
//! * **RTS→CTS→DATA**: an RTS followed by its protected DATA implies the
//!   CTS in between. RTS then DATA without CTS ⇒ one unrecorded CTS.
//!
//! The *unrecorded percentage* is Equation 1:
//! `unrec / (unrec + captured)`.

use crate::persec::ACK_MATCH_WINDOW_US;
use std::collections::HashMap;
use wifi_frames::fc::FrameKind;
use wifi_frames::mac::MacAddr;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::{delay, Micros};

/// Window inside which a CTS must follow its RTS (SIFS + CTS air + guard).
const CTS_MATCH_WINDOW_US: Micros = delay::SIFS + delay::CTS + 150;
/// Guard slack on the RTS→DATA window for the missing-CTS inference. The
/// full window is `SIFS + CTS + SIFS + data air time + guard` — capture
/// timestamps mark frame *ends*, so the protected data frame's own air time
/// (computable from its size and rate) is part of the gap.
const RTS_DATA_GUARD_US: Micros = 150;

/// Counts of inferred unrecorded frames, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnrecordedCounts {
    /// DATA frames inferred from orphan ACKs.
    pub data: u64,
    /// RTS frames inferred from orphan CTSs.
    pub rts: u64,
    /// CTS frames inferred from RTS→DATA pairs.
    pub cts: u64,
}

impl UnrecordedCounts {
    /// Total inferred unrecorded frames.
    pub fn total(&self) -> u64 {
        self.data + self.rts + self.cts
    }
}

/// Per-station capture accounting (for the per-AP Fig 4c view).
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeCapture {
    /// Frames captured with this station as transmitter or receiver.
    pub captured: u64,
    /// Unrecorded frames attributed to this station.
    pub unrecorded: u64,
}

impl NodeCapture {
    /// Equation 1 for this station, in percent.
    pub fn unrecorded_pct(&self) -> f64 {
        let denom = self.unrecorded + self.captured;
        if denom == 0 {
            0.0
        } else {
            self.unrecorded as f64 / denom as f64 * 100.0
        }
    }
}

/// The estimator's full output.
#[derive(Clone, Debug, Default)]
pub struct UnrecordedEstimate {
    /// Network-wide inferred losses.
    pub counts: UnrecordedCounts,
    /// Frames captured in total.
    pub captured: u64,
    /// Per-station accounting, keyed by MAC.
    pub per_node: HashMap<MacAddr, NodeCapture>,
}

impl UnrecordedEstimate {
    /// Network-wide Equation 1, in percent.
    pub fn unrecorded_pct(&self) -> f64 {
        let denom = self.counts.total() + self.captured;
        if denom == 0 {
            0.0
        } else {
            self.counts.total() as f64 / denom as f64 * 100.0
        }
    }
}

/// Runs the estimator over a time-ordered trace.
pub fn estimate(records: &[FrameRecord]) -> UnrecordedEstimate {
    let mut est = UnrecordedEstimate {
        captured: records.len() as u64,
        ..Default::default()
    };
    // Station attribution for captured frames: transmitter and receiver.
    for r in records {
        if let Some(src) = r.src {
            est.per_node.entry(src).or_default().captured += 1;
        }
        if r.dst.is_unicast() {
            est.per_node.entry(r.dst).or_default().captured += 1;
        }
    }

    let attribute_missing = |est: &mut UnrecordedEstimate, station: MacAddr| {
        est.per_node.entry(station).or_default().unrecorded += 1;
    };

    for (i, r) in records.iter().enumerate() {
        match r.kind {
            FrameKind::Ack => {
                // Expect the previous frame to be the acknowledged DATA (or
                // management) frame, transmitted by the ACK's receiver.
                let matched = i > 0 && {
                    let p = &records[i - 1];
                    matches!(
                        p.kind,
                        FrameKind::Data
                            | FrameKind::NullData
                            | FrameKind::AssocRequest
                            | FrameKind::AssocResponse
                            | FrameKind::ProbeResponse
                            | FrameKind::Auth
                            | FrameKind::Deauth
                            | FrameKind::Disassoc
                    ) && p.src == Some(r.dst)
                        && r.timestamp_us.saturating_sub(p.timestamp_us) <= ACK_MATCH_WINDOW_US
                };
                if !matched {
                    est.counts.data += 1;
                    attribute_missing(&mut est, r.dst);
                }
            }
            FrameKind::Cts => {
                // Expect the previous frame to be the RTS from the CTS's
                // receiver.
                let matched = i > 0 && {
                    let p = &records[i - 1];
                    p.kind == FrameKind::Rts
                        && p.src == Some(r.dst)
                        && r.timestamp_us.saturating_sub(p.timestamp_us) <= CTS_MATCH_WINDOW_US
                };
                if !matched {
                    est.counts.rts += 1;
                    attribute_missing(&mut est, r.dst);
                }
            }
            FrameKind::Rts => {
                // If the next captured frame is this RTS's protected DATA
                // (same transmitter, inside the CTS window), the CTS between
                // them went unrecorded.
                if let Some(n) = records.get(i + 1) {
                    let window = 2 * delay::SIFS
                        + delay::CTS
                        + wifi_frames::timing::frame_airtime_us(
                            n.mac_bytes as u64,
                            n.rate,
                            wifi_frames::phy::Preamble::Long,
                        )
                        + RTS_DATA_GUARD_US;
                    let data_follows = matches!(n.kind, FrameKind::Data | FrameKind::NullData)
                        && n.src == r.src
                        && n.timestamp_us.saturating_sub(r.timestamp_us) <= window;
                    if data_follows {
                        est.counts.cts += 1;
                        // The missing CTS was sent by the RTS's receiver.
                        attribute_missing(&mut est, r.dst);
                    }
                }
            }
            _ => {}
        }
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::phy::{Channel, Rate};

    fn rec(kind: FrameKind, ts: Micros, src: Option<u32>, dst: u32) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts,
            kind,
            rate: Rate::R11,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(dst),
            src: src.map(MacAddr::from_id),
            bssid: None,
            retry: false,
            seq: Some(0),
            mac_bytes: 100,
            payload_bytes: 72,
            signal_dbm: -60,
            duration_us: 0,
        }
    }

    #[test]
    fn complete_exchange_has_no_losses() {
        let recs = vec![
            rec(FrameKind::Rts, 0, Some(1), 2),
            rec(FrameKind::Cts, 362, None, 1),
            rec(FrameKind::Data, 700, Some(1), 2),
            rec(FrameKind::Ack, 1100, None, 1),
        ];
        let est = estimate(&recs);
        assert_eq!(est.counts, UnrecordedCounts::default());
        assert_eq!(est.unrecorded_pct(), 0.0);
    }

    #[test]
    fn orphan_ack_implies_missing_data() {
        let recs = vec![
            rec(FrameKind::Beacon, 0, Some(9), 0xffff),
            rec(FrameKind::Ack, 500, None, 1),
        ];
        let est = estimate(&recs);
        assert_eq!(est.counts.data, 1);
        assert_eq!(est.counts.total(), 1);
        // Attributed to the missing frame's transmitter (station 1).
        assert_eq!(est.per_node[&MacAddr::from_id(1)].unrecorded, 1);
        // 1 unrecorded over 1 + 2 captured.
        assert!((est.unrecorded_pct() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ack_to_wrong_station_is_orphan() {
        let recs = vec![
            rec(FrameKind::Data, 0, Some(3), 2),
            rec(FrameKind::Ack, 400, None, 1), // data came from 3, ack to 1
        ];
        assert_eq!(estimate(&recs).counts.data, 1);
    }

    #[test]
    fn late_ack_is_orphan() {
        let recs = vec![
            rec(FrameKind::Data, 0, Some(1), 2),
            rec(FrameKind::Ack, 10_000, None, 1),
        ];
        assert_eq!(estimate(&recs).counts.data, 1);
    }

    #[test]
    fn orphan_cts_implies_missing_rts() {
        let recs = vec![rec(FrameKind::Cts, 100, None, 7)];
        let est = estimate(&recs);
        assert_eq!(est.counts.rts, 1);
        assert_eq!(est.per_node[&MacAddr::from_id(7)].unrecorded, 1);
    }

    #[test]
    fn rts_then_data_implies_missing_cts() {
        let recs = vec![
            rec(FrameKind::Rts, 0, Some(1), 2),
            rec(FrameKind::Data, 340, Some(1), 2),
            rec(FrameKind::Ack, 800, None, 1),
        ];
        let est = estimate(&recs);
        assert_eq!(est.counts.cts, 1);
        assert_eq!(est.counts.data, 0, "the ACK matched its data");
        // Missing CTS attributed to the RTS's receiver.
        assert_eq!(est.per_node[&MacAddr::from_id(2)].unrecorded, 1);
    }

    #[test]
    fn rts_then_unrelated_data_is_not_missing_cts() {
        let recs = vec![
            rec(FrameKind::Rts, 0, Some(1), 2),
            rec(FrameKind::Data, 340, Some(5), 6), // different transmitter
        ];
        assert_eq!(estimate(&recs).counts.cts, 0);
    }

    #[test]
    fn mgmt_ack_matches() {
        let recs = vec![
            rec(FrameKind::AssocRequest, 0, Some(4), 9),
            rec(FrameKind::Ack, 300, None, 4),
        ];
        assert_eq!(estimate(&recs).counts.data, 0);
    }

    #[test]
    fn per_node_percentages() {
        // Station 1: captured twice (data + as ack receiver... ack dst=1),
        // one unrecorded.
        let recs = vec![
            rec(FrameKind::Data, 0, Some(1), 2),
            rec(FrameKind::Ack, 400, None, 1),
            rec(FrameKind::Ack, 50_000, None, 1), // orphan
        ];
        let est = estimate(&recs);
        let n1 = est.per_node[&MacAddr::from_id(1)];
        assert_eq!(n1.unrecorded, 1);
        assert_eq!(n1.captured, 3); // data src + 2 ack dst
        assert!((n1.unrecorded_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let est = estimate(&[]);
        assert_eq!(est.unrecorded_pct(), 0.0);
        assert_eq!(est.captured, 0);
    }
}
