//! Merging captures from multiple sniffers.
//!
//! During the day session the study ran three sniffers in one room; captures
//! of the *same channel* from different vantage points overlap heavily but
//! not perfectly (each sniffer misses different frames). Merging them yields
//! a trace with better coverage than any single sniffer — provided duplicate
//! captures of the same transmission are collapsed.
//!
//! A duplicate is a record from another sniffer with the same transmitter,
//! sequence number, retry flag, frame kind and size whose timestamp falls
//! within a small window (sniffer clocks are aligned here; the window covers
//! capture-timestamp jitter). Control frames carry no sequence number, so
//! they deduplicate on `(kind, dst, timestamp window)`.
//!
//! Duplicates cluster: with three (or more) sniffers, captures of one
//! transmission form a *chain* where consecutive members sit inside the
//! window but the endpoints may not (A@0, B@100, C@200 with a 120 µs
//! window). The window therefore anchors on a cluster's **latest member**,
//! suppressed or not — comparing only against emitted records would leak C
//! back in as a false new frame once B is suppressed.

use std::collections::VecDeque;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::Micros;

/// Maximum timestamp skew between two sniffers' captures of one
/// transmission.
pub const DEDUP_WINDOW_US: Micros = 120;

/// Merges per-sniffer traces of the same channel into one time-ordered,
/// de-duplicated trace. Input traces must each be time-ordered (as captures
/// are).
pub fn merge_traces(traces: &[&[FrameRecord]]) -> Vec<FrameRecord> {
    let mut all: Vec<FrameRecord> = traces.iter().flat_map(|t| t.iter().copied()).collect();
    all.sort_by_key(|r| r.timestamp_us);
    dedup_in_place(all)
}

fn same_transmission(a: &FrameRecord, b: &FrameRecord) -> bool {
    a.kind == b.kind
        && a.dst == b.dst
        && a.src == b.src
        && a.mac_bytes == b.mac_bytes
        && a.retry == b.retry
        && a.seq == b.seq
}

fn dedup_in_place(sorted: Vec<FrameRecord>) -> Vec<FrameRecord> {
    let mut out: Vec<FrameRecord> = Vec::with_capacity(sorted.len());
    // Sliding window of capture clusters still inside the dedup horizon:
    // `(index of the emitted representative, timestamp of the latest
    // member — including suppressed ones)`. Anchoring the window on the
    // latest member closes the transitive leak where a chain of captures
    // each within the window of its predecessor (but not of the emitted
    // head) would re-emit mid-chain.
    let mut clusters: VecDeque<(usize, Micros)> = VecDeque::new();
    for r in sorted {
        clusters.retain(|&(_, last)| r.timestamp_us.saturating_sub(last) <= DEDUP_WINDOW_US);
        let mut dup = false;
        for (idx, last) in clusters.iter_mut() {
            if same_transmission(&out[*idx], &r)
                && r.timestamp_us.saturating_sub(*last) <= DEDUP_WINDOW_US
            {
                *last = r.timestamp_us; // extend the cluster's anchor
                dup = true;
                break;
            }
        }
        if !dup {
            clusters.push_back((out.len(), r.timestamp_us));
            out.push(r);
        }
    }
    out
}

/// Coverage gained by merging: `(merged_len, max_single_len)`. A merged
/// trace can only add frames.
pub fn coverage_gain(traces: &[&[FrameRecord]]) -> (usize, usize) {
    let merged = merge_traces(traces).len();
    let best = traces.iter().map(|t| t.len()).max().unwrap_or(0);
    (merged, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::fc::FrameKind;
    use wifi_frames::mac::MacAddr;
    use wifi_frames::phy::{Channel, Rate};

    fn rec(ts: Micros, src: u32, seq: u16) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts,
            kind: FrameKind::Data,
            rate: Rate::R11,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(MacAddr::from_id(src)),
            bssid: Some(MacAddr::from_id(99)),
            retry: false,
            seq: Some(seq),
            mac_bytes: 128,
            payload_bytes: 100,
            signal_dbm: -60,
            duration_us: 314,
        }
    }

    #[test]
    fn identical_traces_collapse_to_one() {
        let t: Vec<FrameRecord> = (0..50).map(|i| rec(i * 1000, 1, i as u16)).collect();
        let merged = merge_traces(&[&t, &t, &t]);
        assert_eq!(merged.len(), t.len());
        assert_eq!(merged, t);
    }

    #[test]
    fn complementary_losses_are_recovered() {
        let full: Vec<FrameRecord> = (0..100).map(|i| rec(i * 1000, 1, i as u16)).collect();
        // Sniffer A misses odd frames, sniffer B misses even frames.
        let a: Vec<FrameRecord> = full.iter().copied().step_by(2).collect();
        let b: Vec<FrameRecord> = full.iter().copied().skip(1).step_by(2).collect();
        let merged = merge_traces(&[&a, &b]);
        assert_eq!(merged.len(), 100);
        assert_eq!(merged, full);
        let (m, best) = coverage_gain(&[&a, &b]);
        assert_eq!(m, 100);
        assert_eq!(best, 50);
    }

    #[test]
    fn timestamp_jitter_still_deduplicates() {
        let a = vec![rec(1000, 1, 7)];
        let mut shifted = rec(1000 + 80, 1, 7); // 80 µs skew
        shifted.signal_dbm = -70; // different vantage, different RSSI
        let b = vec![shifted];
        let merged = merge_traces(&[&a, &b]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].timestamp_us, 1000, "earliest capture wins");
    }

    #[test]
    fn three_skewed_sniffers_chain_collapses_to_one() {
        // Regression: A@0, B@100, C@200 with a 120 µs window. C is within
        // the window of (suppressed) B but not of (emitted) A; a window
        // anchored only on emitted records leaks C as a false new frame.
        let a = vec![rec(0, 1, 7)];
        let b = vec![rec(100, 1, 7)];
        let c = vec![rec(200, 1, 7)];
        let merged = merge_traces(&[&a, &b, &c]);
        assert_eq!(merged.len(), 1, "transitive chain must fully collapse");
        assert_eq!(merged[0].timestamp_us, 0, "earliest capture wins");
    }

    #[test]
    fn chain_does_not_swallow_distant_retransmission_lookalike() {
        // A chain may extend, but an identical frame arriving past the
        // window of the chain's *latest* member is a new transmission.
        let a = vec![rec(0, 1, 7)];
        let b = vec![rec(100, 1, 7)];
        let late = vec![rec(100 + DEDUP_WINDOW_US + 1, 1, 7)];
        assert_eq!(merge_traces(&[&a, &b, &late]).len(), 2);
    }

    #[test]
    fn beyond_window_is_not_a_duplicate() {
        let a = vec![rec(1000, 1, 7)];
        let b = vec![rec(1000 + DEDUP_WINDOW_US + 1, 1, 7)];
        assert_eq!(merge_traces(&[&a, &b]).len(), 2);
    }

    #[test]
    fn retransmission_with_same_seq_is_kept() {
        // Same (src, seq) but retry=true and later: a genuine retransmission.
        let first = rec(1000, 1, 7);
        let mut retry = rec(1090, 1, 7);
        retry.retry = true;
        let merged = merge_traces(&[&[first][..], &[retry][..]]);
        assert_eq!(merged.len(), 2, "retry flag distinguishes retransmissions");
    }

    #[test]
    fn distinct_stations_same_seq_are_kept() {
        let a = vec![rec(1000, 1, 7)];
        let b = vec![rec(1010, 2, 7)];
        assert_eq!(merge_traces(&[&a, &b]).len(), 2);
    }

    #[test]
    fn control_frames_dedup_without_seq() {
        let mk = |ts: Micros| -> FrameRecord {
            let mut r = rec(ts, 1, 0);
            r.kind = FrameKind::Ack;
            r.src = None;
            r.seq = None;
            r.mac_bytes = 14;
            r.payload_bytes = 0;
            r
        };
        let a = vec![mk(500)];
        let b = vec![mk(540)];
        assert_eq!(merge_traces(&[&a, &b]).len(), 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_traces(&[]).is_empty());
        let empty: &[FrameRecord] = &[];
        assert!(merge_traces(&[empty, empty]).is_empty());
    }
}
