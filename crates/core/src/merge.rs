//! Merging captures from multiple sniffers.
//!
//! During the day session the study ran three sniffers in one room; captures
//! of the *same channel* from different vantage points overlap heavily but
//! not perfectly (each sniffer misses different frames). Merging them yields
//! a trace with better coverage than any single sniffer — provided duplicate
//! captures of the same transmission are collapsed.
//!
//! A duplicate is a record from another sniffer with the same transmitter,
//! sequence number, retry flag, frame kind and size whose timestamp falls
//! within a small window (sniffer clocks are aligned here; the window covers
//! capture-timestamp jitter). Control frames carry no sequence number, so
//! they deduplicate on `(kind, dst, timestamp window)`.
//!
//! Duplicates cluster: with three (or more) sniffers, captures of one
//! transmission form a *chain* where consecutive members sit inside the
//! window but the endpoints may not (A@0, B@100, C@200 with a 120 µs
//! window). The window therefore anchors on a cluster's **latest member**,
//! suppressed or not — comparing only against emitted records would leak C
//! back in as a false new frame once B is suppressed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use wifi_frames::fc::FrameKind;
use wifi_frames::mac::MacAddr;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::Micros;

/// Maximum timestamp skew between two sniffers' captures of one
/// transmission.
pub const DEDUP_WINDOW_US: Micros = 120;

/// Merges per-sniffer traces of the same channel into one time-ordered,
/// de-duplicated trace. Input traces must each be time-ordered (as captures
/// are).
pub fn merge_traces(traces: &[&[FrameRecord]]) -> Vec<FrameRecord> {
    let mut all: Vec<FrameRecord> = traces.iter().flat_map(|t| t.iter().copied()).collect();
    all.sort_by_key(|r| r.timestamp_us);
    dedup_in_place(all)
}

fn same_transmission(a: &FrameRecord, b: &FrameRecord) -> bool {
    a.kind == b.kind
        && a.dst == b.dst
        && a.src == b.src
        && a.mac_bytes == b.mac_bytes
        && a.retry == b.retry
        && a.seq == b.seq
}

fn dedup_in_place(sorted: Vec<FrameRecord>) -> Vec<FrameRecord> {
    let mut out: Vec<FrameRecord> = Vec::with_capacity(sorted.len());
    // Sliding window of capture clusters still inside the dedup horizon:
    // `(index of the emitted representative, timestamp of the latest
    // member — including suppressed ones)`. Anchoring the window on the
    // latest member closes the transitive leak where a chain of captures
    // each within the window of its predecessor (but not of the emitted
    // head) would re-emit mid-chain.
    let mut clusters: VecDeque<(usize, Micros)> = VecDeque::new();
    for r in sorted {
        clusters.retain(|&(_, last)| r.timestamp_us.saturating_sub(last) <= DEDUP_WINDOW_US);
        let mut dup = false;
        for (idx, last) in clusters.iter_mut() {
            if same_transmission(&out[*idx], &r)
                && r.timestamp_us.saturating_sub(*last) <= DEDUP_WINDOW_US
            {
                *last = r.timestamp_us; // extend the cluster's anchor
                dup = true;
                break;
            }
        }
        if !dup {
            clusters.push_back((out.len(), r.timestamp_us));
            out.push(r);
        }
    }
    out
}

/// The fields of [`same_transmission`] as a hashable identity key. Two
/// records compare equal under `same_transmission` iff their keys are equal,
/// so a `HashMap` keyed on this replaces the linear cluster scan.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct TransmissionKey {
    kind: FrameKind,
    dst: MacAddr,
    src: Option<MacAddr>,
    mac_bytes: u32,
    retry: bool,
    seq: Option<u16>,
}

impl TransmissionKey {
    fn of(r: &FrameRecord) -> TransmissionKey {
        TransmissionKey {
            kind: r.kind,
            dst: r.dst,
            src: r.src,
            mac_bytes: r.mac_bytes,
            retry: r.retry,
            seq: r.seq,
        }
    }
}

/// Expired cluster entries are swept from the dedup map every this many
/// merged records, bounding its size to the identities seen over one sweep
/// interval plus the dedup window.
const CLUSTER_SWEEP_INTERVAL: usize = 4096;

/// Online k-way merge of per-sniffer record streams with streaming
/// deduplication — [`merge_traces`] without materializing anything.
///
/// Drives a binary min-heap keyed on `(timestamp, stream index)` holding one
/// pending head per stream, so memory is O(k + live dedup clusters)
/// regardless of trace length. Deduplication applies the same
/// [`DEDUP_WINDOW_US`] cluster logic as the batch path, but keyed by a hash
/// of the transmission identity instead of a linear scan: the batch scan can
/// never hold two live clusters with the same identity (a record matching a
/// live cluster always extends it rather than opening a second one), so "the
/// latest member of the live cluster for this identity" is exactly one map
/// lookup. The output is record-for-record identical to
/// `merge_traces(traces)` — the heap's `(timestamp, stream index)` ordering
/// reproduces a stable sort of the concatenated traces.
///
/// Input streams must each be time-ordered (as captures are), the same
/// contract [`merge_traces`] documents.
///
/// ```
/// use congestion::merge::MergeStream;
/// # let (a, b): (Vec<wifi_frames::FrameRecord>, Vec<wifi_frames::FrameRecord>) =
/// #     (Vec::new(), Vec::new());
/// let merged = MergeStream::new(vec![a.into_iter(), b.into_iter()]);
/// for record in merged {
///     // feed an accumulator without ever holding the full trace
///     let _ = record.timestamp_us;
/// }
/// ```
pub struct MergeStream<I> {
    streams: Vec<I>,
    /// The not-yet-merged head record of each stream; `None` once exhausted.
    heads: Vec<Option<FrameRecord>>,
    /// Min-heap over `(head timestamp, stream index)`; ties break toward the
    /// lower stream index, matching a stable sort of the concatenation.
    heap: BinaryHeap<Reverse<(Micros, usize)>>,
    /// Live dedup clusters: transmission identity → latest member timestamp.
    clusters: HashMap<TransmissionKey, Micros>,
    merged_since_sweep: usize,
    contributed: Vec<u64>,
}

impl<I: Iterator<Item = FrameRecord>> MergeStream<I> {
    /// Builds a merge over per-sniffer streams. Each stream must yield
    /// records in non-decreasing timestamp order.
    pub fn new(mut streams: Vec<I>) -> MergeStream<I> {
        let mut heads: Vec<Option<FrameRecord>> = Vec::with_capacity(streams.len());
        let mut heap = BinaryHeap::with_capacity(streams.len());
        for (idx, s) in streams.iter_mut().enumerate() {
            let head = s.next();
            if let Some(r) = &head {
                heap.push(Reverse((r.timestamp_us, idx)));
            }
            heads.push(head);
        }
        let contributed = vec![0; heads.len()];
        MergeStream {
            streams,
            heads,
            heap,
            clusters: HashMap::new(),
            merged_since_sweep: 0,
            contributed,
        }
    }

    /// How many merged records each input stream was the first to capture,
    /// indexed by input order. Complete once the stream is exhausted.
    pub fn contributed(&self) -> &[u64] {
        &self.contributed
    }

    #[cfg(test)]
    fn live_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Pops the globally-earliest pending record and refills that stream's
    /// head. `None` once every stream is exhausted.
    fn next_in_order(&mut self) -> Option<(FrameRecord, usize)> {
        let Reverse((_, idx)) = self.heap.pop()?;
        let record = self.heads[idx].take().expect("heap entry implies a head");
        if let Some(next) = self.streams[idx].next() {
            debug_assert!(
                next.timestamp_us >= record.timestamp_us,
                "input streams must be time-ordered"
            );
            self.heap.push(Reverse((next.timestamp_us, idx)));
            self.heads[idx] = Some(next);
        }
        Some((record, idx))
    }
}

impl<I: Iterator<Item = FrameRecord>> Iterator for MergeStream<I> {
    type Item = FrameRecord;

    fn next(&mut self) -> Option<FrameRecord> {
        loop {
            let (record, idx) = self.next_in_order()?;
            self.merged_since_sweep += 1;
            if self.merged_since_sweep >= CLUSTER_SWEEP_INTERVAL {
                self.merged_since_sweep = 0;
                // Merged timestamps are non-decreasing, so anything already
                // outside this record's window can never match again.
                self.clusters
                    .retain(|_, last| record.timestamp_us.saturating_sub(*last) <= DEDUP_WINDOW_US);
            }
            // Replaces the batch path's retain + scan: the previous entry
            // for this identity is the live cluster if still in-window
            // (record is a duplicate, the anchor extends), or an expired one
            // the batch path would have retained away (record opens a new
            // cluster). Either way the new anchor is this timestamp.
            let prev = self
                .clusters
                .insert(TransmissionKey::of(&record), record.timestamp_us);
            match prev {
                Some(last) if record.timestamp_us.saturating_sub(last) <= DEDUP_WINDOW_US => {}
                _ => {
                    self.contributed[idx] += 1;
                    return Some(record);
                }
            }
        }
    }
}

/// Coverage statistics from merging per-sniffer traces of one channel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoverageGain {
    /// Records in the merged, de-duplicated trace.
    pub merged: usize,
    /// Records in the largest single input trace.
    pub best_single: usize,
    /// Records each sniffer was the first to capture — its unique
    /// contribution to the merged trace — indexed by input order.
    /// Sums to `merged`.
    pub contributed: Vec<u64>,
}

/// Coverage gained by merging, computed through [`MergeStream`] in
/// O(window) memory. A merged trace can only add frames.
pub fn coverage_gain(traces: &[&[FrameRecord]]) -> CoverageGain {
    let mut stream = MergeStream::new(traces.iter().map(|t| t.iter().copied()).collect());
    let mut merged = 0usize;
    while stream.next().is_some() {
        merged += 1;
    }
    CoverageGain {
        merged,
        best_single: traces.iter().map(|t| t.len()).max().unwrap_or(0),
        contributed: stream.contributed().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::fc::FrameKind;
    use wifi_frames::mac::MacAddr;
    use wifi_frames::phy::{Channel, Rate};

    fn rec(ts: Micros, src: u32, seq: u16) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts,
            kind: FrameKind::Data,
            rate: Rate::R11,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(MacAddr::from_id(src)),
            bssid: Some(MacAddr::from_id(99)),
            retry: false,
            seq: Some(seq),
            mac_bytes: 128,
            payload_bytes: 100,
            signal_dbm: -60,
            duration_us: 314,
        }
    }

    #[test]
    fn identical_traces_collapse_to_one() {
        let t: Vec<FrameRecord> = (0..50).map(|i| rec(i * 1000, 1, i as u16)).collect();
        let merged = merge_traces(&[&t, &t, &t]);
        assert_eq!(merged.len(), t.len());
        assert_eq!(merged, t);
    }

    #[test]
    fn complementary_losses_are_recovered() {
        let full: Vec<FrameRecord> = (0..100).map(|i| rec(i * 1000, 1, i as u16)).collect();
        // Sniffer A misses odd frames, sniffer B misses even frames.
        let a: Vec<FrameRecord> = full.iter().copied().step_by(2).collect();
        let b: Vec<FrameRecord> = full.iter().copied().skip(1).step_by(2).collect();
        let merged = merge_traces(&[&a, &b]);
        assert_eq!(merged.len(), 100);
        assert_eq!(merged, full);
        let gain = coverage_gain(&[&a, &b]);
        assert_eq!(gain.merged, 100);
        assert_eq!(gain.best_single, 50);
        assert_eq!(gain.contributed, vec![50, 50]);
    }

    #[test]
    fn timestamp_jitter_still_deduplicates() {
        let a = vec![rec(1000, 1, 7)];
        let mut shifted = rec(1000 + 80, 1, 7); // 80 µs skew
        shifted.signal_dbm = -70; // different vantage, different RSSI
        let b = vec![shifted];
        let merged = merge_traces(&[&a, &b]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].timestamp_us, 1000, "earliest capture wins");
    }

    #[test]
    fn three_skewed_sniffers_chain_collapses_to_one() {
        // Regression: A@0, B@100, C@200 with a 120 µs window. C is within
        // the window of (suppressed) B but not of (emitted) A; a window
        // anchored only on emitted records leaks C as a false new frame.
        let a = vec![rec(0, 1, 7)];
        let b = vec![rec(100, 1, 7)];
        let c = vec![rec(200, 1, 7)];
        let merged = merge_traces(&[&a, &b, &c]);
        assert_eq!(merged.len(), 1, "transitive chain must fully collapse");
        assert_eq!(merged[0].timestamp_us, 0, "earliest capture wins");
    }

    #[test]
    fn chain_does_not_swallow_distant_retransmission_lookalike() {
        // A chain may extend, but an identical frame arriving past the
        // window of the chain's *latest* member is a new transmission.
        let a = vec![rec(0, 1, 7)];
        let b = vec![rec(100, 1, 7)];
        let late = vec![rec(100 + DEDUP_WINDOW_US + 1, 1, 7)];
        assert_eq!(merge_traces(&[&a, &b, &late]).len(), 2);
    }

    #[test]
    fn beyond_window_is_not_a_duplicate() {
        let a = vec![rec(1000, 1, 7)];
        let b = vec![rec(1000 + DEDUP_WINDOW_US + 1, 1, 7)];
        assert_eq!(merge_traces(&[&a, &b]).len(), 2);
    }

    #[test]
    fn retransmission_with_same_seq_is_kept() {
        // Same (src, seq) but retry=true and later: a genuine retransmission.
        let first = rec(1000, 1, 7);
        let mut retry = rec(1090, 1, 7);
        retry.retry = true;
        let merged = merge_traces(&[&[first][..], &[retry][..]]);
        assert_eq!(merged.len(), 2, "retry flag distinguishes retransmissions");
    }

    #[test]
    fn distinct_stations_same_seq_are_kept() {
        let a = vec![rec(1000, 1, 7)];
        let b = vec![rec(1010, 2, 7)];
        assert_eq!(merge_traces(&[&a, &b]).len(), 2);
    }

    #[test]
    fn control_frames_dedup_without_seq() {
        let mk = |ts: Micros| -> FrameRecord {
            let mut r = rec(ts, 1, 0);
            r.kind = FrameKind::Ack;
            r.src = None;
            r.seq = None;
            r.mac_bytes = 14;
            r.payload_bytes = 0;
            r
        };
        let a = vec![mk(500)];
        let b = vec![mk(540)];
        assert_eq!(merge_traces(&[&a, &b]).len(), 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_traces(&[]).is_empty());
        let empty: &[FrameRecord] = &[];
        assert!(merge_traces(&[empty, empty]).is_empty());
        assert!(stream_merge(&[empty, empty]).is_empty());
        assert_eq!(coverage_gain(&[]).merged, 0);
    }

    /// Runs the streaming merge over slice-backed iterators.
    fn stream_merge(traces: &[&[FrameRecord]]) -> Vec<FrameRecord> {
        MergeStream::new(traces.iter().map(|t| t.iter().copied()).collect()).collect()
    }

    #[test]
    fn stream_merge_matches_batch_on_every_dedup_contract_case() {
        let full: Vec<FrameRecord> = (0..100).map(|i| rec(i * 1000, 1, i as u16)).collect();
        let evens: Vec<FrameRecord> = full.iter().copied().step_by(2).collect();
        let odds: Vec<FrameRecord> = full.iter().copied().skip(1).step_by(2).collect();
        let mut jittered = rec(1000 + 80, 1, 7);
        jittered.signal_dbm = -70;
        let mut retry = rec(1090, 1, 7);
        retry.retry = true;
        let ack = |ts: Micros| -> FrameRecord {
            let mut r = rec(ts, 1, 0);
            r.kind = FrameKind::Ack;
            r.src = None;
            r.seq = None;
            r.mac_bytes = 14;
            r.payload_bytes = 0;
            r
        };
        let cases: Vec<Vec<Vec<FrameRecord>>> = vec![
            vec![full.clone(), full.clone(), full.clone()],
            vec![evens, odds],
            vec![vec![rec(1000, 1, 7)], vec![jittered]],
            vec![
                vec![rec(0, 1, 7)],
                vec![rec(100, 1, 7)],
                vec![rec(200, 1, 7)],
            ],
            vec![
                vec![rec(0, 1, 7)],
                vec![rec(100, 1, 7)],
                vec![rec(100 + DEDUP_WINDOW_US + 1, 1, 7)],
            ],
            vec![
                vec![rec(1000, 1, 7)],
                vec![rec(1000 + DEDUP_WINDOW_US + 1, 1, 7)],
            ],
            vec![vec![rec(1000, 1, 7)], vec![retry]],
            vec![vec![rec(1000, 1, 7)], vec![rec(1010, 2, 7)]],
            vec![vec![ack(500)], vec![ack(540)]],
        ];
        for (i, case) in cases.iter().enumerate() {
            let views: Vec<&[FrameRecord]> = case.iter().map(|t| &t[..]).collect();
            assert_eq!(
                stream_merge(&views),
                merge_traces(&views),
                "case {i}: streaming merge must be record-identical to batch"
            );
        }
    }

    #[test]
    fn stream_contributions_sum_to_merged_and_favor_earliest_capture() {
        // Identical traces: stream 0 wins every timestamp tie.
        let t: Vec<FrameRecord> = (0..50).map(|i| rec(i * 1000, 1, i as u16)).collect();
        let mut s = MergeStream::new(vec![
            t.iter().copied(),
            t.iter().copied(),
            t.iter().copied(),
        ]);
        assert_eq!(s.by_ref().count(), 50);
        assert_eq!(s.contributed(), &[50, 0, 0]);

        // Skewed duplicates: the sniffer whose clock stamps earliest wins.
        let a = vec![rec(1050, 1, 7)];
        let b = vec![rec(1000, 1, 7)];
        let mut s = MergeStream::new(vec![a.into_iter(), b.into_iter()]);
        let merged: Vec<FrameRecord> = s.by_ref().collect();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].timestamp_us, 1000);
        assert_eq!(s.contributed(), &[0, 1]);
    }

    #[test]
    fn stream_equal_timestamps_preserve_stream_order() {
        // Distinct frames at the same microsecond: stable-sort order is
        // concatenation order (stream 0 before stream 1).
        let a = vec![rec(1000, 1, 1)];
        let b = vec![rec(1000, 2, 2)];
        let views: Vec<&[FrameRecord]> = vec![&a, &b];
        let merged = stream_merge(&views);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].src, Some(MacAddr::from_id(1)));
        assert_eq!(merged, merge_traces(&views));
    }

    #[test]
    fn stream_dedup_map_is_swept() {
        // Far more distinct transmissions than one sweep interval, spread
        // far apart in time: the cluster map must not grow with trace
        // length.
        let n = 3 * super::CLUSTER_SWEEP_INTERVAL;
        let t: Vec<FrameRecord> = (0..n)
            .map(|i| rec(i as Micros * 1000, 1 + (i as u32 % 7), (i % 4096) as u16))
            .collect();
        let mut s = MergeStream::new(vec![t.iter().copied()]);
        assert_eq!(s.by_ref().count(), n);
        assert!(
            s.live_clusters() <= super::CLUSTER_SWEEP_INTERVAL + 1,
            "dedup map leaked: {} live clusters",
            s.live_clusters()
        );
    }

    #[test]
    fn coverage_gain_is_o_window_equivalent_to_batch() {
        let full: Vec<FrameRecord> = (0..300).map(|i| rec(i * 500, 1, i as u16)).collect();
        let a: Vec<FrameRecord> = full
            .iter()
            .copied()
            .filter(|r| r.seq.unwrap() % 3 != 0)
            .collect();
        let b: Vec<FrameRecord> = full
            .iter()
            .copied()
            .filter(|r| r.seq.unwrap() % 3 != 1)
            .collect();
        let c: Vec<FrameRecord> = full
            .iter()
            .copied()
            .filter(|r| r.seq.unwrap() % 3 != 2)
            .collect();
        let views: Vec<&[FrameRecord]> = vec![&a, &b, &c];
        let gain = coverage_gain(&views);
        assert_eq!(gain.merged, merge_traces(&views).len());
        assert_eq!(gain.best_single, 200);
        assert_eq!(gain.contributed.iter().sum::<u64>() as usize, gain.merged);
    }
}
