//! Merging captures from multiple sniffers.
//!
//! During the day session the study ran three sniffers in one room; captures
//! of the *same channel* from different vantage points overlap heavily but
//! not perfectly (each sniffer misses different frames). Merging them yields
//! a trace with better coverage than any single sniffer — provided duplicate
//! captures of the same transmission are collapsed.
//!
//! A duplicate is a record from another sniffer with the same transmitter,
//! sequence number, retry flag, frame kind and size whose timestamp falls
//! within a small window (sniffer clocks are aligned here; the window covers
//! capture-timestamp jitter). Control frames carry no sequence number, so
//! they deduplicate on `(kind, dst, timestamp window)`.
//!
//! Duplicates cluster: with three (or more) sniffers, captures of one
//! transmission form a *chain* where consecutive members sit inside the
//! window but the endpoints may not (A@0, B@100, C@200 with a 120 µs
//! window). The window therefore anchors on a cluster's **latest member**,
//! suppressed or not — comparing only against emitted records would leak C
//! back in as a false new frame once B is suppressed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use wifi_frames::fc::FrameKind;
use wifi_frames::mac::MacAddr;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::Micros;

/// Maximum timestamp skew between two sniffers' captures of one
/// transmission.
pub const DEDUP_WINDOW_US: Micros = 120;

/// Merges per-sniffer traces of the same channel into one time-ordered,
/// de-duplicated trace. Input traces must each be time-ordered (as captures
/// are).
pub fn merge_traces(traces: &[&[FrameRecord]]) -> Vec<FrameRecord> {
    let mut all: Vec<FrameRecord> = traces.iter().flat_map(|t| t.iter().copied()).collect();
    all.sort_by_key(|r| r.timestamp_us);
    dedup_in_place(all)
}

fn same_transmission(a: &FrameRecord, b: &FrameRecord) -> bool {
    a.kind == b.kind
        && a.dst == b.dst
        && a.src == b.src
        && a.mac_bytes == b.mac_bytes
        && a.retry == b.retry
        && a.seq == b.seq
}

fn dedup_in_place(sorted: Vec<FrameRecord>) -> Vec<FrameRecord> {
    let mut out: Vec<FrameRecord> = Vec::with_capacity(sorted.len());
    // Sliding window of capture clusters still inside the dedup horizon:
    // `(index of the emitted representative, timestamp of the latest
    // member — including suppressed ones)`. Anchoring the window on the
    // latest member closes the transitive leak where a chain of captures
    // each within the window of its predecessor (but not of the emitted
    // head) would re-emit mid-chain.
    let mut clusters: VecDeque<(usize, Micros)> = VecDeque::new();
    for r in sorted {
        clusters.retain(|&(_, last)| r.timestamp_us.saturating_sub(last) <= DEDUP_WINDOW_US);
        let mut dup = false;
        for (idx, last) in clusters.iter_mut() {
            if same_transmission(&out[*idx], &r)
                && r.timestamp_us.saturating_sub(*last) <= DEDUP_WINDOW_US
            {
                *last = r.timestamp_us; // extend the cluster's anchor
                dup = true;
                break;
            }
        }
        if !dup {
            clusters.push_back((out.len(), r.timestamp_us));
            out.push(r);
        }
    }
    out
}

/// The fields of [`same_transmission`] as a hashable identity key. Two
/// records compare equal under `same_transmission` iff their keys are equal,
/// so a `HashMap` keyed on this replaces the linear cluster scan.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct TransmissionKey {
    kind: FrameKind,
    dst: MacAddr,
    src: Option<MacAddr>,
    mac_bytes: u32,
    retry: bool,
    seq: Option<u16>,
}

impl TransmissionKey {
    fn of(r: &FrameRecord) -> TransmissionKey {
        TransmissionKey {
            kind: r.kind,
            dst: r.dst,
            src: r.src,
            mac_bytes: r.mac_bytes,
            retry: r.retry,
            seq: r.seq,
        }
    }
}

/// Expired cluster entries are swept from the dedup map every this many
/// merged records, bounding its size to the identities seen over one sweep
/// interval plus the dedup window.
const CLUSTER_SWEEP_INTERVAL: usize = 4096;

/// What an [`OnlineMerge::poll`] produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MergePoll {
    /// The next merged, de-duplicated record in timestamp order.
    Record(FrameRecord),
    /// No record can be emitted until stream `idx` either gets a record
    /// ([`OnlineMerge::offer`]), is closed ([`OnlineMerge::end`]), or is
    /// deferred ([`OnlineMerge::defer`]).
    Need(usize),
    /// No stream can currently produce: every stream has ended or is
    /// deferred, and everything buffered has been emitted. Final only once
    /// every stream has actually ended — with deferred streams still open
    /// the caller may offer more and poll again.
    Done,
}

/// The push-based core of the k-way merge: callers feed records per stream
/// with [`OnlineMerge::offer`] and pull merged output with
/// [`OnlineMerge::poll`], so the same dedup logic drives both the pull-based
/// [`MergeStream`] (batch files) and a live service where stream input
/// arrives asynchronously from decoder threads.
///
/// Two behaviors beyond the batch merge, both needed once inputs are live:
///
/// * **Regressive-clock clamping.** Each stream's timestamps are clamped to
///   be non-decreasing (`max` against the stream's high-water mark). Without
///   this, a sniffer whose clock steps backwards past the dedup window moves
///   a cluster's anchor backwards (`saturating_sub` treats the regression as
///   an in-window duplicate), which resurrects a later true duplicate as a
///   false new frame. For well-formed (time-ordered) inputs the clamp is a
///   no-op, so batch equivalence with [`merge_traces`] is preserved.
/// * **Skew-horizon advance.** `poll(Some(horizon))` lets the merge emit
///   past a stream that has nothing buffered once the candidate record's
///   timestamp exceeds that stream's high-water mark by more than `horizon`
///   µs — a stalled or dead sniffer delays output by at most the horizon
///   instead of wedging the merge. Records a skipped stream delivers late
///   (below the emitted watermark) are dropped and counted per stream, so
///   output timestamps stay non-decreasing — the contract the per-second
///   accumulator depends on. `poll(None)` never skips and never drops.
pub struct OnlineMerge {
    /// The not-yet-merged head record of each stream; `None` while waiting.
    heads: Vec<Option<FrameRecord>>,
    /// Streams whose input is complete (no further `offer` accepted).
    ended: Vec<bool>,
    /// Streams temporarily excluded from blocking the merge (wall-clock
    /// stall handling, decided by the caller); rejoin on their next offer.
    deferred: Vec<bool>,
    /// Open, non-deferred streams currently without a head. Cached so the
    /// per-record poll fast path is one counter check, not a k-wide scan.
    needy: usize,
    /// Per-stream clamp floor: the highest (clamped) timestamp offered.
    stream_high: Vec<Micros>,
    /// Min-heap over `(head timestamp, stream index)`; ties break toward the
    /// lower stream index, matching a stable sort of the concatenation.
    heap: BinaryHeap<Reverse<(Micros, usize)>>,
    /// Live dedup clusters: transmission identity → latest member timestamp.
    clusters: HashMap<TransmissionKey, Micros>,
    merged_since_sweep: usize,
    /// Highest timestamp emitted (or suppressed as a duplicate) so far.
    watermark: Micros,
    received: Vec<u64>,
    clamped: Vec<u64>,
    late_dropped: Vec<u64>,
    contributed: Vec<u64>,
}

impl OnlineMerge {
    /// A merge over `k` streams, all initially empty and open.
    pub fn new(k: usize) -> OnlineMerge {
        OnlineMerge {
            heads: vec![None; k],
            ended: vec![false; k],
            deferred: vec![false; k],
            needy: k,
            stream_high: vec![0; k],
            heap: BinaryHeap::with_capacity(k),
            clusters: HashMap::new(),
            merged_since_sweep: 0,
            watermark: 0,
            received: vec![0; k],
            clamped: vec![0; k],
            late_dropped: vec![0; k],
            contributed: vec![0; k],
        }
    }

    /// True when stream `idx` is open and has no buffered head — the only
    /// state in which [`OnlineMerge::offer`] is accepted.
    pub fn needs(&self, idx: usize) -> bool {
        !self.ended[idx] && self.heads[idx].is_none()
    }

    /// Feeds stream `idx`'s next record. The caller must only offer when
    /// [`OnlineMerge::needs`] is true. Regressive timestamps are clamped to
    /// the stream's high-water mark (and counted).
    pub fn offer(&mut self, idx: usize, mut record: FrameRecord) {
        assert!(self.needs(idx), "offer to a stream that is not waiting");
        if self.deferred[idx] {
            // The stream produced again: it rejoins the merge (and was not
            // counted needy while deferred).
            self.deferred[idx] = false;
        } else {
            self.needy -= 1;
        }
        self.received[idx] += 1;
        if record.timestamp_us < self.stream_high[idx] {
            record.timestamp_us = self.stream_high[idx];
            self.clamped[idx] += 1;
        } else {
            self.stream_high[idx] = record.timestamp_us;
        }
        self.heap.push(Reverse((record.timestamp_us, idx)));
        self.heads[idx] = Some(record);
    }

    /// Marks stream `idx` complete. Idempotent; a still-buffered head is
    /// merged normally.
    pub fn end(&mut self, idx: usize) {
        if !self.ended[idx] {
            if self.heads[idx].is_none() && !self.deferred[idx] {
                self.needy -= 1;
            }
            self.ended[idx] = true;
            self.deferred[idx] = false;
        }
    }

    /// Temporarily excludes an open, empty stream from blocking the merge —
    /// the caller's wall-clock stall policy for live sources (the trace-time
    /// skew horizon cannot advance past a stream whose last record sits at
    /// the merge frontier, because the candidate timestamp is pinned there
    /// too). The stream rejoins automatically on its next
    /// [`OnlineMerge::offer`]; records below the watermark by then are
    /// dropped and counted as late. Returns whether the stream was deferred
    /// (no-op unless it currently blocks the merge).
    pub fn defer(&mut self, idx: usize) -> bool {
        if self.needs(idx) && !self.deferred[idx] {
            self.deferred[idx] = true;
            self.needy -= 1;
            true
        } else {
            false
        }
    }

    /// True while stream `idx` is deferred (stalled out of the merge).
    pub fn is_deferred(&self, idx: usize) -> bool {
        self.deferred[idx]
    }

    /// Pulls the next merged record. With `horizon: None` this blocks (via
    /// [`MergePoll::Need`]) on every open stream; with `Some(h)` an open,
    /// empty stream is skipped once the candidate record is more than `h` µs
    /// past that stream's high-water mark.
    pub fn poll(&mut self, horizon: Option<Micros>) -> MergePoll {
        loop {
            if self.needy > 0 {
                let candidate = self.heap.peek().map(|&Reverse((ts, _))| ts);
                for idx in 0..self.heads.len() {
                    if !self.needs(idx) || self.deferred[idx] {
                        continue;
                    }
                    let can_skip = match (horizon, candidate) {
                        (Some(h), Some(ts)) => ts > self.stream_high[idx].saturating_add(h),
                        _ => false,
                    };
                    if !can_skip {
                        return MergePoll::Need(idx);
                    }
                }
            }
            let Some(Reverse((_, idx))) = self.heap.pop() else {
                return MergePoll::Done;
            };
            let record = self.heads[idx].take().expect("heap entry implies a head");
            // A stream with a buffered head is never deferred (`defer`
            // no-ops then), so popping makes it plain needy if still open.
            if !self.ended[idx] {
                self.needy += 1;
            }
            // A stream skipped over by the horizon can deliver records below
            // the emitted watermark; dropping them keeps output timestamps
            // non-decreasing for the per-second accumulator.
            if record.timestamp_us < self.watermark {
                self.late_dropped[idx] += 1;
                continue;
            }
            self.watermark = record.timestamp_us;
            self.merged_since_sweep += 1;
            if self.merged_since_sweep >= CLUSTER_SWEEP_INTERVAL {
                self.merged_since_sweep = 0;
                // Merged timestamps are non-decreasing, so anything already
                // outside this record's window can never match again.
                self.clusters
                    .retain(|_, last| record.timestamp_us.saturating_sub(*last) <= DEDUP_WINDOW_US);
            }
            // Replaces the batch path's retain + scan: the previous entry
            // for this identity is the live cluster if still in-window
            // (record is a duplicate, the anchor extends), or an expired one
            // the batch path would have retained away (record opens a new
            // cluster). Either way the new anchor is this timestamp.
            let prev = self
                .clusters
                .insert(TransmissionKey::of(&record), record.timestamp_us);
            match prev {
                Some(last) if record.timestamp_us.saturating_sub(last) <= DEDUP_WINDOW_US => {}
                _ => {
                    self.contributed[idx] += 1;
                    return MergePoll::Record(record);
                }
            }
        }
    }

    /// Highest timestamp merged so far (emitted or suppressed).
    pub fn watermark(&self) -> Micros {
        self.watermark
    }

    /// How far each stream's newest input lags the merge watermark, in µs.
    /// Zero for a stream that is at (or ahead of) the merge frontier.
    pub fn lag_us(&self, idx: usize) -> Micros {
        self.watermark.saturating_sub(self.stream_high[idx])
    }

    /// Records accepted from each stream, indexed by input order.
    pub fn received(&self) -> &[u64] {
        &self.received
    }

    /// Regressive timestamps clamped per stream, indexed by input order.
    pub fn clamped(&self) -> &[u64] {
        &self.clamped
    }

    /// Records dropped per stream for arriving below the watermark after a
    /// horizon skip, indexed by input order.
    pub fn late_dropped(&self) -> &[u64] {
        &self.late_dropped
    }

    /// How many merged records each input stream was the first to capture,
    /// indexed by input order.
    pub fn contributed(&self) -> &[u64] {
        &self.contributed
    }

    #[cfg(test)]
    fn live_clusters(&self) -> usize {
        self.clusters.len()
    }
}

/// Online k-way merge of per-sniffer record streams with streaming
/// deduplication — [`merge_traces`] without materializing anything.
///
/// A pull-based driver over [`OnlineMerge`]: each [`MergePoll::Need`] is
/// answered by advancing that input iterator, so memory stays O(k + live
/// dedup clusters) regardless of trace length. Deduplication applies the
/// same [`DEDUP_WINDOW_US`] cluster logic as the batch path, but keyed by a
/// hash of the transmission identity instead of a linear scan: the batch
/// scan can never hold two live clusters with the same identity (a record
/// matching a live cluster always extends it rather than opening a second
/// one), so "the latest member of the live cluster for this identity" is
/// exactly one map lookup. For time-ordered inputs (as captures are) the
/// output is record-for-record identical to `merge_traces(traces)` — the
/// heap's `(timestamp, stream index)` ordering reproduces a stable sort of
/// the concatenated traces. Inputs with in-stream clock regressions are
/// normalized by the per-stream clamp rather than rejected.
///
/// ```
/// use congestion::merge::MergeStream;
/// # let (a, b): (Vec<wifi_frames::FrameRecord>, Vec<wifi_frames::FrameRecord>) =
/// #     (Vec::new(), Vec::new());
/// let merged = MergeStream::new(vec![a.into_iter(), b.into_iter()]);
/// for record in merged {
///     // feed an accumulator without ever holding the full trace
///     let _ = record.timestamp_us;
/// }
/// ```
pub struct MergeStream<I> {
    streams: Vec<I>,
    core: OnlineMerge,
}

impl<I: Iterator<Item = FrameRecord>> MergeStream<I> {
    /// Builds a merge over per-sniffer streams. Each stream should yield
    /// records in non-decreasing timestamp order; records whose timestamp
    /// steps backwards within a stream are clamped to that stream's
    /// high-water mark (see [`OnlineMerge`]).
    pub fn new(streams: Vec<I>) -> MergeStream<I> {
        let core = OnlineMerge::new(streams.len());
        MergeStream { streams, core }
    }

    /// How many merged records each input stream was the first to capture,
    /// indexed by input order. Complete once the stream is exhausted.
    pub fn contributed(&self) -> &[u64] {
        self.core.contributed()
    }

    #[cfg(test)]
    fn live_clusters(&self) -> usize {
        self.core.live_clusters()
    }
}

impl<I: Iterator<Item = FrameRecord>> Iterator for MergeStream<I> {
    type Item = FrameRecord;

    fn next(&mut self) -> Option<FrameRecord> {
        loop {
            match self.core.poll(None) {
                MergePoll::Record(record) => return Some(record),
                MergePoll::Need(idx) => match self.streams[idx].next() {
                    Some(record) => self.core.offer(idx, record),
                    None => self.core.end(idx),
                },
                MergePoll::Done => return None,
            }
        }
    }
}

/// Coverage statistics from merging per-sniffer traces of one channel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoverageGain {
    /// Records in the merged, de-duplicated trace.
    pub merged: usize,
    /// Records in the largest single input trace.
    pub best_single: usize,
    /// Records each sniffer was the first to capture — its unique
    /// contribution to the merged trace — indexed by input order.
    /// Sums to `merged`.
    pub contributed: Vec<u64>,
}

/// Coverage gained by merging, computed through [`MergeStream`] in
/// O(window) memory. A merged trace can only add frames.
pub fn coverage_gain(traces: &[&[FrameRecord]]) -> CoverageGain {
    let mut stream = MergeStream::new(traces.iter().map(|t| t.iter().copied()).collect());
    let mut merged = 0usize;
    while stream.next().is_some() {
        merged += 1;
    }
    CoverageGain {
        merged,
        best_single: traces.iter().map(|t| t.len()).max().unwrap_or(0),
        contributed: stream.contributed().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::fc::FrameKind;
    use wifi_frames::mac::MacAddr;
    use wifi_frames::phy::{Channel, Rate};

    fn rec(ts: Micros, src: u32, seq: u16) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts,
            kind: FrameKind::Data,
            rate: Rate::R11,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(MacAddr::from_id(src)),
            bssid: Some(MacAddr::from_id(99)),
            retry: false,
            seq: Some(seq),
            mac_bytes: 128,
            payload_bytes: 100,
            signal_dbm: -60,
            duration_us: 314,
        }
    }

    #[test]
    fn identical_traces_collapse_to_one() {
        let t: Vec<FrameRecord> = (0..50).map(|i| rec(i * 1000, 1, i as u16)).collect();
        let merged = merge_traces(&[&t, &t, &t]);
        assert_eq!(merged.len(), t.len());
        assert_eq!(merged, t);
    }

    #[test]
    fn complementary_losses_are_recovered() {
        let full: Vec<FrameRecord> = (0..100).map(|i| rec(i * 1000, 1, i as u16)).collect();
        // Sniffer A misses odd frames, sniffer B misses even frames.
        let a: Vec<FrameRecord> = full.iter().copied().step_by(2).collect();
        let b: Vec<FrameRecord> = full.iter().copied().skip(1).step_by(2).collect();
        let merged = merge_traces(&[&a, &b]);
        assert_eq!(merged.len(), 100);
        assert_eq!(merged, full);
        let gain = coverage_gain(&[&a, &b]);
        assert_eq!(gain.merged, 100);
        assert_eq!(gain.best_single, 50);
        assert_eq!(gain.contributed, vec![50, 50]);
    }

    #[test]
    fn timestamp_jitter_still_deduplicates() {
        let a = vec![rec(1000, 1, 7)];
        let mut shifted = rec(1000 + 80, 1, 7); // 80 µs skew
        shifted.signal_dbm = -70; // different vantage, different RSSI
        let b = vec![shifted];
        let merged = merge_traces(&[&a, &b]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].timestamp_us, 1000, "earliest capture wins");
    }

    #[test]
    fn three_skewed_sniffers_chain_collapses_to_one() {
        // Regression: A@0, B@100, C@200 with a 120 µs window. C is within
        // the window of (suppressed) B but not of (emitted) A; a window
        // anchored only on emitted records leaks C as a false new frame.
        let a = vec![rec(0, 1, 7)];
        let b = vec![rec(100, 1, 7)];
        let c = vec![rec(200, 1, 7)];
        let merged = merge_traces(&[&a, &b, &c]);
        assert_eq!(merged.len(), 1, "transitive chain must fully collapse");
        assert_eq!(merged[0].timestamp_us, 0, "earliest capture wins");
    }

    #[test]
    fn chain_does_not_swallow_distant_retransmission_lookalike() {
        // A chain may extend, but an identical frame arriving past the
        // window of the chain's *latest* member is a new transmission.
        let a = vec![rec(0, 1, 7)];
        let b = vec![rec(100, 1, 7)];
        let late = vec![rec(100 + DEDUP_WINDOW_US + 1, 1, 7)];
        assert_eq!(merge_traces(&[&a, &b, &late]).len(), 2);
    }

    #[test]
    fn beyond_window_is_not_a_duplicate() {
        let a = vec![rec(1000, 1, 7)];
        let b = vec![rec(1000 + DEDUP_WINDOW_US + 1, 1, 7)];
        assert_eq!(merge_traces(&[&a, &b]).len(), 2);
    }

    #[test]
    fn retransmission_with_same_seq_is_kept() {
        // Same (src, seq) but retry=true and later: a genuine retransmission.
        let first = rec(1000, 1, 7);
        let mut retry = rec(1090, 1, 7);
        retry.retry = true;
        let merged = merge_traces(&[&[first][..], &[retry][..]]);
        assert_eq!(merged.len(), 2, "retry flag distinguishes retransmissions");
    }

    #[test]
    fn distinct_stations_same_seq_are_kept() {
        let a = vec![rec(1000, 1, 7)];
        let b = vec![rec(1010, 2, 7)];
        assert_eq!(merge_traces(&[&a, &b]).len(), 2);
    }

    #[test]
    fn control_frames_dedup_without_seq() {
        let mk = |ts: Micros| -> FrameRecord {
            let mut r = rec(ts, 1, 0);
            r.kind = FrameKind::Ack;
            r.src = None;
            r.seq = None;
            r.mac_bytes = 14;
            r.payload_bytes = 0;
            r
        };
        let a = vec![mk(500)];
        let b = vec![mk(540)];
        assert_eq!(merge_traces(&[&a, &b]).len(), 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_traces(&[]).is_empty());
        let empty: &[FrameRecord] = &[];
        assert!(merge_traces(&[empty, empty]).is_empty());
        assert!(stream_merge(&[empty, empty]).is_empty());
        assert_eq!(coverage_gain(&[]).merged, 0);
    }

    /// Runs the streaming merge over slice-backed iterators.
    fn stream_merge(traces: &[&[FrameRecord]]) -> Vec<FrameRecord> {
        MergeStream::new(traces.iter().map(|t| t.iter().copied()).collect()).collect()
    }

    #[test]
    fn stream_merge_matches_batch_on_every_dedup_contract_case() {
        let full: Vec<FrameRecord> = (0..100).map(|i| rec(i * 1000, 1, i as u16)).collect();
        let evens: Vec<FrameRecord> = full.iter().copied().step_by(2).collect();
        let odds: Vec<FrameRecord> = full.iter().copied().skip(1).step_by(2).collect();
        let mut jittered = rec(1000 + 80, 1, 7);
        jittered.signal_dbm = -70;
        let mut retry = rec(1090, 1, 7);
        retry.retry = true;
        let ack = |ts: Micros| -> FrameRecord {
            let mut r = rec(ts, 1, 0);
            r.kind = FrameKind::Ack;
            r.src = None;
            r.seq = None;
            r.mac_bytes = 14;
            r.payload_bytes = 0;
            r
        };
        let cases: Vec<Vec<Vec<FrameRecord>>> = vec![
            vec![full.clone(), full.clone(), full.clone()],
            vec![evens, odds],
            vec![vec![rec(1000, 1, 7)], vec![jittered]],
            vec![
                vec![rec(0, 1, 7)],
                vec![rec(100, 1, 7)],
                vec![rec(200, 1, 7)],
            ],
            vec![
                vec![rec(0, 1, 7)],
                vec![rec(100, 1, 7)],
                vec![rec(100 + DEDUP_WINDOW_US + 1, 1, 7)],
            ],
            vec![
                vec![rec(1000, 1, 7)],
                vec![rec(1000 + DEDUP_WINDOW_US + 1, 1, 7)],
            ],
            vec![vec![rec(1000, 1, 7)], vec![retry]],
            vec![vec![rec(1000, 1, 7)], vec![rec(1010, 2, 7)]],
            vec![vec![ack(500)], vec![ack(540)]],
        ];
        for (i, case) in cases.iter().enumerate() {
            let views: Vec<&[FrameRecord]> = case.iter().map(|t| &t[..]).collect();
            assert_eq!(
                stream_merge(&views),
                merge_traces(&views),
                "case {i}: streaming merge must be record-identical to batch"
            );
        }
    }

    #[test]
    fn stream_contributions_sum_to_merged_and_favor_earliest_capture() {
        // Identical traces: stream 0 wins every timestamp tie.
        let t: Vec<FrameRecord> = (0..50).map(|i| rec(i * 1000, 1, i as u16)).collect();
        let mut s = MergeStream::new(vec![
            t.iter().copied(),
            t.iter().copied(),
            t.iter().copied(),
        ]);
        assert_eq!(s.by_ref().count(), 50);
        assert_eq!(s.contributed(), &[50, 0, 0]);

        // Skewed duplicates: the sniffer whose clock stamps earliest wins.
        let a = vec![rec(1050, 1, 7)];
        let b = vec![rec(1000, 1, 7)];
        let mut s = MergeStream::new(vec![a.into_iter(), b.into_iter()]);
        let merged: Vec<FrameRecord> = s.by_ref().collect();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].timestamp_us, 1000);
        assert_eq!(s.contributed(), &[0, 1]);
    }

    #[test]
    fn stream_equal_timestamps_preserve_stream_order() {
        // Distinct frames at the same microsecond: stable-sort order is
        // concatenation order (stream 0 before stream 1).
        let a = vec![rec(1000, 1, 1)];
        let b = vec![rec(1000, 2, 2)];
        let views: Vec<&[FrameRecord]> = vec![&a, &b];
        let merged = stream_merge(&views);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].src, Some(MacAddr::from_id(1)));
        assert_eq!(merged, merge_traces(&views));
    }

    #[test]
    fn stream_dedup_map_is_swept() {
        // Far more distinct transmissions than one sweep interval, spread
        // far apart in time: the cluster map must not grow with trace
        // length.
        let n = 3 * super::CLUSTER_SWEEP_INTERVAL;
        let t: Vec<FrameRecord> = (0..n)
            .map(|i| rec(i as Micros * 1000, 1 + (i as u32 % 7), (i % 4096) as u16))
            .collect();
        let mut s = MergeStream::new(vec![t.iter().copied()]);
        assert_eq!(s.by_ref().count(), n);
        assert!(
            s.live_clusters() <= super::CLUSTER_SWEEP_INTERVAL + 1,
            "dedup map leaked: {} live clusters",
            s.live_clusters()
        );
    }

    #[test]
    fn regressive_clock_cannot_resurrect_a_suppressed_duplicate() {
        // One sniffer's clock steps backwards mid-stream: 1050 → 100. The
        // unclamped dedup would move the cluster anchor back to 100, letting
        // the true duplicate at 1080 re-emit as a false new frame.
        let a = vec![rec(1000, 1, 7)];
        let b = vec![rec(1050, 1, 7), rec(100, 1, 7), rec(1080, 1, 7)];
        let merged = stream_merge(&[&a, &b]);
        assert_eq!(
            merged.len(),
            1,
            "regression must not resurrect duplicates: got {merged:?}"
        );
        assert_eq!(merged[0].timestamp_us, 1000, "earliest capture wins");
    }

    #[test]
    fn regressive_timestamps_are_clamped_to_nondecreasing_output() {
        // Distinct frames with a clock step backwards: output order and
        // timestamps must stay non-decreasing (the accumulator contract).
        let b = vec![rec(5000, 1, 1), rec(200, 1, 2), rec(5100, 1, 3)];
        let merged = stream_merge(&[&b]);
        assert_eq!(merged.len(), 3);
        assert!(merged
            .windows(2)
            .all(|w| w[0].timestamp_us <= w[1].timestamp_us));
        assert_eq!(
            merged[1].timestamp_us, 5000,
            "regressive ts clamps to the stream high"
        );
    }

    #[test]
    fn online_merge_blocks_without_horizon_and_skips_with_one() {
        let mut m = OnlineMerge::new(2);
        assert!(matches!(m.poll(None), MergePoll::Need(0)));
        m.offer(0, rec(10_000, 1, 1));
        // Stream 1 has nothing: no horizon → merge must wait on it.
        assert!(matches!(m.poll(None), MergePoll::Need(1)));
        // Candidate (10 000) is within the horizon of stream 1's high (0):
        // still waiting.
        assert!(matches!(m.poll(Some(50_000)), MergePoll::Need(1)));
        // Past the horizon: the merge advances without stream 1.
        assert_eq!(m.poll(Some(5_000)), MergePoll::Record(rec(10_000, 1, 1)));
        assert_eq!(m.lag_us(1), 10_000);
        // The skipped stream now delivers a record below the watermark: it
        // is dropped (counted), not emitted out of order.
        m.offer(1, rec(2_000, 2, 2));
        m.end(0);
        m.end(1);
        assert_eq!(m.poll(Some(5_000)), MergePoll::Done);
        assert_eq!(m.late_dropped(), &[0, 1]);
        assert_eq!(m.received(), &[1, 1]);
        assert_eq!(m.contributed(), &[1, 0]);
    }

    #[test]
    fn online_merge_end_with_buffered_head_still_merges_it() {
        let mut m = OnlineMerge::new(1);
        m.offer(0, rec(1000, 1, 1));
        m.end(0);
        assert_eq!(m.poll(None), MergePoll::Record(rec(1000, 1, 1)));
        assert_eq!(m.poll(None), MergePoll::Done);
        assert_eq!(m.watermark(), 1000);
    }

    #[test]
    fn deferred_stream_stops_blocking_and_rejoins_on_offer() {
        let mut m = OnlineMerge::new(2);
        m.offer(0, rec(1000, 1, 1));
        // Stream 1 has nothing and blocks the merge…
        assert_eq!(m.poll(None), MergePoll::Need(1));
        // …until the caller's stall policy defers it.
        assert!(m.defer(1));
        assert!(m.is_deferred(1));
        assert_eq!(m.poll(None), MergePoll::Record(rec(1000, 1, 1)));
        assert_eq!(m.poll(None), MergePoll::Need(0));
        m.offer(0, rec(2000, 1, 2));
        assert_eq!(m.poll(None), MergePoll::Record(rec(2000, 1, 2)));

        // The stalled stream resumes: it rejoins on its next offer. Its
        // record from before the watermark is dropped and counted late; the
        // one after merges normally.
        m.offer(1, rec(500, 2, 1));
        assert!(!m.is_deferred(1));
        m.end(0);
        assert_eq!(m.poll(None), MergePoll::Need(1));
        m.offer(1, rec(3000, 2, 2));
        assert_eq!(m.poll(None), MergePoll::Record(rec(3000, 2, 2)));
        m.end(1);
        assert_eq!(m.poll(None), MergePoll::Done);
        assert_eq!(m.late_dropped(), &[0, 1]);
        assert_eq!(m.contributed(), &[2, 1]);
    }

    #[test]
    fn defer_noops_on_streams_that_do_not_block() {
        let mut m = OnlineMerge::new(2);
        m.offer(0, rec(1000, 1, 1));
        assert!(!m.defer(0), "a stream with a buffered head never defers");
        m.end(1);
        assert!(!m.defer(1), "an ended stream never defers");
        // All open streams deferred + nothing buffered reports Done, but a
        // deferred stream may still rejoin afterwards.
        assert_eq!(m.poll(None), MergePoll::Record(rec(1000, 1, 1)));
        assert!(m.defer(0));
        assert_eq!(m.poll(None), MergePoll::Done);
        m.offer(0, rec(2000, 1, 2));
        assert_eq!(m.poll(None), MergePoll::Record(rec(2000, 1, 2)));
        m.end(0);
        assert_eq!(m.poll(None), MergePoll::Done);
    }

    #[test]
    fn coverage_gain_is_o_window_equivalent_to_batch() {
        let full: Vec<FrameRecord> = (0..300).map(|i| rec(i * 500, 1, i as u16)).collect();
        let a: Vec<FrameRecord> = full
            .iter()
            .copied()
            .filter(|r| r.seq.unwrap() % 3 != 0)
            .collect();
        let b: Vec<FrameRecord> = full
            .iter()
            .copied()
            .filter(|r| r.seq.unwrap() % 3 != 1)
            .collect();
        let c: Vec<FrameRecord> = full
            .iter()
            .copied()
            .filter(|r| r.seq.unwrap() % 3 != 2)
            .collect();
        let views: Vec<&[FrameRecord]> = vec![&a, &b, &c];
        let gain = coverage_gain(&views);
        assert_eq!(gain.merged, merge_traces(&views).len());
        assert_eq!(gain.best_single, 200);
        assert_eq!(gain.contributed.iter().sum::<u64>() as usize, gain.merged);
    }
}
