//! Per-AP traffic accounting — Figures 4(a) and 4(c) of the paper.
//!
//! APs are identified from the trace itself (the BSSID of beacon frames),
//! exactly as an offline analysis of an anonymous capture must do. Each AP
//! is then credited with every data and control frame it sent or received.

use crate::unrecorded::UnrecordedEstimate;
use std::collections::{HashMap, HashSet};
use wifi_frames::mac::MacAddr;
use wifi_frames::record::FrameRecord;

/// Identifies access points: any station whose MAC appears as the BSSID of
/// a captured beacon.
pub fn infer_aps(records: &[FrameRecord]) -> HashSet<MacAddr> {
    records
        .iter()
        .filter(|r| r.kind == wifi_frames::fc::FrameKind::Beacon)
        .filter_map(|r| r.bssid)
        .collect()
}

/// One AP's activity summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApActivity {
    /// The AP's MAC.
    pub mac: MacAddr,
    /// Frames sent or received by the AP (data + control + management).
    pub frames: u64,
}

/// Frames sent and received per AP, ranked most-active first (Fig 4a).
pub fn rank_aps(records: &[FrameRecord], aps: &HashSet<MacAddr>) -> Vec<ApActivity> {
    let mut counts: HashMap<MacAddr, u64> = aps.iter().map(|&m| (m, 0)).collect();
    for r in records {
        if let Some(src) = r.src {
            if let Some(c) = counts.get_mut(&src) {
                *c += 1;
            }
        }
        if let Some(c) = counts.get_mut(&r.dst) {
            *c += 1;
        }
    }
    let mut out: Vec<ApActivity> = counts
        .into_iter()
        .map(|(mac, frames)| ApActivity { mac, frames })
        .collect();
    // Most active first; MAC as a deterministic tiebreak.
    out.sort_by(|a, b| b.frames.cmp(&a.frames).then(a.mac.cmp(&b.mac)));
    out
}

/// The share of all AP-attributed frames carried by the `k` most active APs
/// (the paper: top 15 carried 90.33 % during the day, 95.37 % during the
/// plenary).
pub fn top_k_share(ranked: &[ApActivity], k: usize) -> f64 {
    let total: u64 = ranked.iter().map(|a| a.frames).sum();
    if total == 0 {
        return 0.0;
    }
    let top: u64 = ranked.iter().take(k).map(|a| a.frames).sum();
    top as f64 / total as f64 * 100.0
}

/// Fig 4(c): unrecorded percentage for each ranked AP, in rank order.
pub fn unrecorded_by_rank(
    ranked: &[ApActivity],
    estimate: &UnrecordedEstimate,
) -> Vec<(MacAddr, f64)> {
    ranked
        .iter()
        .map(|a| {
            let pct = estimate
                .per_node
                .get(&a.mac)
                .map(|n| n.unrecorded_pct())
                .unwrap_or(0.0);
            (a.mac, pct)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::fc::FrameKind;
    use wifi_frames::phy::{Channel, Rate};
    use wifi_frames::timing::Micros;

    fn rec(
        kind: FrameKind,
        ts: Micros,
        src: Option<u32>,
        dst: u32,
        bssid: Option<u32>,
    ) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts,
            kind,
            rate: Rate::R1,
            channel: Channel::new(1).unwrap(),
            dst: if dst == 0xffff {
                MacAddr::BROADCAST
            } else {
                MacAddr::from_id(dst)
            },
            src: src.map(MacAddr::from_id),
            bssid: bssid.map(MacAddr::from_id),
            retry: false,
            seq: Some(0),
            mac_bytes: 100,
            payload_bytes: 72,
            signal_dbm: -60,
            duration_us: 0,
        }
    }

    fn beacon(ap: u32, ts: Micros) -> FrameRecord {
        rec(FrameKind::Beacon, ts, Some(ap), 0xffff, Some(ap))
    }

    #[test]
    fn aps_inferred_from_beacons() {
        let recs = vec![
            beacon(10, 0),
            beacon(11, 100),
            beacon(10, 200),
            rec(FrameKind::Data, 300, Some(1), 10, Some(10)),
        ];
        let aps = infer_aps(&recs);
        assert_eq!(aps.len(), 2);
        assert!(aps.contains(&MacAddr::from_id(10)));
        assert!(aps.contains(&MacAddr::from_id(11)));
        assert!(!aps.contains(&MacAddr::from_id(1)));
    }

    #[test]
    fn ranking_counts_sent_and_received() {
        let recs = vec![
            beacon(10, 0),                                    // ap10 sends
            beacon(11, 100),                                  // ap11 sends
            rec(FrameKind::Data, 200, Some(1), 10, Some(10)), // to ap10
            rec(FrameKind::Data, 300, Some(10), 1, Some(10)), // from ap10
            rec(FrameKind::Ack, 400, None, 10, None),         // ack to ap10
        ];
        let aps = infer_aps(&recs);
        let ranked = rank_aps(&recs, &aps);
        assert_eq!(ranked[0].mac, MacAddr::from_id(10));
        assert_eq!(ranked[0].frames, 4); // beacon + rx data + tx data + ack
        assert_eq!(ranked[1].frames, 1); // just its beacon
    }

    #[test]
    fn top_k_share_math() {
        let ranked = vec![
            ApActivity {
                mac: MacAddr::from_id(1),
                frames: 90,
            },
            ApActivity {
                mac: MacAddr::from_id(2),
                frames: 10,
            },
        ];
        assert!((top_k_share(&ranked, 1) - 90.0).abs() < 1e-9);
        assert!((top_k_share(&ranked, 2) - 100.0).abs() < 1e-9);
        assert_eq!(top_k_share(&[], 5), 0.0);
    }

    #[test]
    fn ranking_is_deterministic_on_ties() {
        let recs = vec![beacon(20, 0), beacon(21, 100)];
        let aps = infer_aps(&recs);
        let a = rank_aps(&recs, &aps);
        let b = rank_aps(&recs, &aps);
        assert_eq!(a, b);
        assert_eq!(a[0].mac, MacAddr::from_id(20), "tie broken by MAC");
    }
}
