//! Small statistics utilities used by the analyses and ablations: Jain's
//! fairness index and a deterministic reservoir sampler for delay
//! percentiles.

/// Jain's fairness index over per-station allocations:
/// `(Σx)² / (n · Σx²)`. 1.0 = perfectly fair; `1/n` = one station takes
/// everything. Returns `None` for an empty slice or all-zero allocations.
pub fn jain_index(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return None;
    }
    Some(sum * sum / (xs.len() as f64 * sumsq))
}

/// A deterministic reservoir sampler: keeps up to `capacity` values with
/// uniform inclusion probability, using a seeded internal hash instead of a
/// shared RNG so analyses stay reproducible and order-independent given the
/// same input sequence.
#[derive(Clone, Debug)]
pub struct Reservoir {
    values: Vec<f64>,
    capacity: usize,
    seen: u64,
    state: u64,
}

impl Reservoir {
    /// A reservoir holding at most `capacity` samples.
    pub fn new(capacity: usize, seed: u64) -> Reservoir {
        assert!(capacity > 0, "capacity must be positive");
        Reservoir {
            values: Vec::with_capacity(capacity.min(4096)),
            capacity,
            seen: 0,
            state: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*; deterministic and cheap.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Offers one sample.
    pub fn push(&mut self, v: f64) {
        self.seen += 1;
        if self.values.len() < self.capacity {
            self.values.push(v);
            return;
        }
        let j = self.next_u64() % self.seen;
        if (j as usize) < self.capacity {
            self.values[j as usize] = v;
        }
    }

    /// Total samples offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the retained sample; `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx])
    }

    /// Convenience: `(p50, p95, p99)`.
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_perfect_fairness() {
        let v = vec![5.0; 10];
        assert!((jain_index(&v).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_total_unfairness() {
        let mut v = vec![0.0; 10];
        v[0] = 42.0;
        assert!((jain_index(&v).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn jain_midpoint() {
        // Half the stations get everything equally: index = 1/2.
        let v = [1.0, 1.0, 0.0, 0.0];
        assert!((jain_index(&v).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate() {
        assert_eq!(jain_index(&[]), None);
        assert_eq!(jain_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn reservoir_under_capacity_keeps_everything() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50 {
            r.push(i as f64);
        }
        assert_eq!(r.seen(), 50);
        assert_eq!(r.quantile(0.0), Some(0.0));
        assert_eq!(r.quantile(1.0), Some(49.0));
    }

    #[test]
    fn reservoir_quantiles_track_distribution() {
        let mut r = Reservoir::new(1000, 7);
        for i in 0..100_000 {
            r.push((i % 1000) as f64);
        }
        let (p50, p95, p99) = r.percentiles().unwrap();
        assert!((p50 - 500.0).abs() < 60.0, "p50 {p50}");
        assert!((p95 - 950.0).abs() < 40.0, "p95 {p95}");
        assert!((p99 - 990.0).abs() < 25.0, "p99 {p99}");
    }

    #[test]
    fn reservoir_is_deterministic() {
        let run = || {
            let mut r = Reservoir::new(10, 3);
            for i in 0..1000 {
                r.push(i as f64);
            }
            r.percentiles()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_reservoir() {
        let r = Reservoir::new(10, 1);
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.percentiles(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        Reservoir::new(0, 1);
    }
}
