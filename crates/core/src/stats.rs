//! Small statistics utilities used by the analyses and ablations: Jain's
//! fairness index, a deterministic reservoir sampler for delay percentiles,
//! and the mean ± 95 % confidence-interval aggregation the sweep engine
//! applies across seeds.

use std::fmt;

/// Jain's fairness index over per-station allocations:
/// `(Σx)² / (n · Σx²)`. 1.0 = perfectly fair; `1/n` = one station takes
/// everything. Returns `None` for an empty slice or all-zero allocations.
pub fn jain_index(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return None;
    }
    Some(sum * sum / (xs.len() as f64 * sumsq))
}

/// A deterministic reservoir sampler: keeps up to `capacity` values with
/// uniform inclusion probability, using a seeded internal hash instead of a
/// shared RNG so analyses stay reproducible and order-independent given the
/// same input sequence.
#[derive(Clone, Debug)]
pub struct Reservoir {
    values: Vec<f64>,
    capacity: usize,
    seen: u64,
    state: u64,
}

impl Reservoir {
    /// A reservoir holding at most `capacity` samples.
    pub fn new(capacity: usize, seed: u64) -> Reservoir {
        assert!(capacity > 0, "capacity must be positive");
        Reservoir {
            values: Vec::with_capacity(capacity.min(4096)),
            capacity,
            seen: 0,
            state: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*; deterministic and cheap.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Offers one sample.
    pub fn push(&mut self, v: f64) {
        self.seen += 1;
        if self.values.len() < self.capacity {
            self.values.push(v);
            return;
        }
        let j = self.next_u64() % self.seen;
        if (j as usize) < self.capacity {
            self.values[j as usize] = v;
        }
    }

    /// Total samples offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the retained sample; `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx])
    }

    /// Convenience: `(p50, p95, p99)`.
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }
}

/// Two-sided 95 % Student-t critical values for 1–30 degrees of freedom;
/// beyond 30 the normal approximation (1.960) is within half a percent.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// A mean with its 95 % confidence half-width — how the sweep engine
/// aggregates a metric across seeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval (Student-t, so small seed
    /// counts get honestly wide intervals). Zero when `n == 1`.
    pub half_width: f64,
    /// Sample count.
    pub n: usize,
}

impl MeanCi {
    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }
}

impl fmt::Display for MeanCi {
    /// Formats as `mean ± half_width`, honouring `{:.N}` precision
    /// (default 2).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(2);
        write!(
            f,
            "{:.prec$} ± {:.prec$}",
            self.mean,
            self.half_width,
            prec = prec
        )
    }
}

/// Mean and 95 % confidence half-width of a sample, using the Student-t
/// distribution on `n − 1` degrees of freedom. Returns `None` for an empty
/// sample; a single observation yields a zero-width interval (there is no
/// variance estimate to widen it with).
pub fn mean_ci95(xs: &[f64]) -> Option<MeanCi> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Some(MeanCi {
            mean,
            half_width: 0.0,
            n,
        });
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    let t = T_95.get(n - 2).copied().unwrap_or(1.960);
    Some(MeanCi {
        mean,
        half_width: t * (var / n as f64).sqrt(),
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_perfect_fairness() {
        let v = vec![5.0; 10];
        assert!((jain_index(&v).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_total_unfairness() {
        let mut v = vec![0.0; 10];
        v[0] = 42.0;
        assert!((jain_index(&v).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn jain_midpoint() {
        // Half the stations get everything equally: index = 1/2.
        let v = [1.0, 1.0, 0.0, 0.0];
        assert!((jain_index(&v).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate() {
        assert_eq!(jain_index(&[]), None);
        assert_eq!(jain_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn reservoir_under_capacity_keeps_everything() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50 {
            r.push(i as f64);
        }
        assert_eq!(r.seen(), 50);
        assert_eq!(r.quantile(0.0), Some(0.0));
        assert_eq!(r.quantile(1.0), Some(49.0));
    }

    #[test]
    fn reservoir_quantiles_track_distribution() {
        let mut r = Reservoir::new(1000, 7);
        for i in 0..100_000 {
            r.push((i % 1000) as f64);
        }
        let (p50, p95, p99) = r.percentiles().unwrap();
        assert!((p50 - 500.0).abs() < 60.0, "p50 {p50}");
        assert!((p95 - 950.0).abs() < 40.0, "p95 {p95}");
        assert!((p99 - 990.0).abs() < 25.0, "p99 {p99}");
    }

    #[test]
    fn reservoir_is_deterministic() {
        let run = || {
            let mut r = Reservoir::new(10, 3);
            for i in 0..1000 {
                r.push(i as f64);
            }
            r.percentiles()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_reservoir() {
        let r = Reservoir::new(10, 1);
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.percentiles(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        Reservoir::new(0, 1);
    }

    #[test]
    fn mean_ci_empty_and_single() {
        assert_eq!(mean_ci95(&[]), None);
        let one = mean_ci95(&[3.5]).unwrap();
        assert_eq!(one.mean, 3.5);
        assert_eq!(one.half_width, 0.0);
        assert_eq!(one.n, 1);
        assert_eq!((one.lo(), one.hi()), (3.5, 3.5));
    }

    #[test]
    fn mean_ci_known_small_sample() {
        // {1, 2, 3}: mean 2, s = 1, se = 1/√3, t(df=2) = 4.303.
        let ci = mean_ci95(&[1.0, 2.0, 3.0]).unwrap();
        assert!((ci.mean - 2.0).abs() < 1e-12);
        let expected = 4.303 / 3.0_f64.sqrt();
        assert!((ci.half_width - expected).abs() < 1e-9, "{}", ci.half_width);
        assert!(ci.lo() < 2.0 && ci.hi() > 2.0);
    }

    #[test]
    fn mean_ci_constant_sample_is_tight() {
        let ci = mean_ci95(&[7.0; 10]).unwrap();
        assert_eq!(ci.mean, 7.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn mean_ci_uses_normal_tail_for_large_n() {
        // 100 alternating ±1 around 10: s = 1.00..., se = 0.1, z ≈ 1.96.
        let xs: Vec<f64> = (0..100)
            .map(|i| 10.0 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let ci = mean_ci95(&xs).unwrap();
        assert!((ci.mean - 10.0).abs() < 1e-12);
        assert!((ci.half_width - 1.960 * 1.005_037_815_259_212 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn mean_ci_narrows_with_n() {
        let small = mean_ci95(&[1.0, 2.0, 3.0]).unwrap();
        let xs: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64).collect();
        let large = mean_ci95(&xs).unwrap();
        assert!(large.half_width < small.half_width);
    }

    #[test]
    fn mean_ci_display_formatting() {
        let ci = mean_ci95(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(format!("{ci:.1}"), "2.0 ± 2.5");
        assert!(format!("{ci}").starts_with("2.00 ± 2.48"));
    }
}
