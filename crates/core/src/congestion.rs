//! Congestion classification — Section 5.3 of the paper.
//!
//! The paper defines three congestion classes from the throughput/goodput
//! saturation behaviour: *uncongested* below 30 % utilization, *moderately
//! congested* between 30 % and the throughput knee, and *highly congested*
//! above the knee (84 % at the IETF). [`find_knee`] recovers the knee from
//! a measured throughput-vs-utilization curve the same way the paper did:
//! the utilization at which smoothed throughput peaks before collapsing.

use crate::bins::UtilizationBins;

/// The three congestion classes of Section 5.3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CongestionLevel {
    /// Below the low threshold (30 % at the IETF).
    Uncongested,
    /// Between the thresholds.
    Moderate,
    /// Above the knee (84 % at the IETF).
    High,
}

/// A congestion classifier: two utilization thresholds in percent.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CongestionClassifier {
    /// Uncongested below this utilization (percent).
    pub low_pct: f64,
    /// Highly congested above this utilization (percent).
    pub high_pct: f64,
}

impl CongestionClassifier {
    /// The paper's IETF thresholds: 30 % and 84 %.
    pub const fn ietf() -> CongestionClassifier {
        CongestionClassifier {
            low_pct: 30.0,
            high_pct: 84.0,
        }
    }

    /// Builds a classifier with the paper's 30 % floor and a knee estimated
    /// from the measured throughput curve. Falls back to the IETF 84 % when
    /// the curve is too sparse to carry a knee.
    pub fn from_measurements(bins: &UtilizationBins) -> CongestionClassifier {
        CongestionClassifier {
            low_pct: 30.0,
            high_pct: find_knee(bins).unwrap_or(84.0),
        }
    }

    /// Classifies one second's utilization percentage.
    pub fn classify(&self, utilization_pct: f64) -> CongestionLevel {
        if utilization_pct < self.low_pct {
            CongestionLevel::Uncongested
        } else if utilization_pct <= self.high_pct {
            CongestionLevel::Moderate
        } else {
            CongestionLevel::High
        }
    }
}

impl Default for CongestionClassifier {
    fn default() -> Self {
        CongestionClassifier::ietf()
    }
}

/// Estimates the congestion knee: the utilization percentage at which the
/// (smoothed) mean throughput peaks, provided the curve afterwards falls
/// noticeably — i.e. saturation followed by collapse, the signature of
/// Fig 6. Returns `None` when there is no post-peak decline (an uncongested
/// trace has no knee).
pub fn find_knee(bins: &UtilizationBins) -> Option<f64> {
    // Collect the occupied part of the curve above the uncongested floor.
    let curve: Vec<(usize, f64)> = bins
        .occupied()
        .filter(|(u, b)| *u >= 30 && b.seconds >= 2)
        .map(|(u, b)| (u, b.mean_throughput_mbps()))
        .collect();
    if curve.len() < 5 {
        return None;
    }
    // Moving-average smoothing over a 5-point window.
    let smoothed: Vec<(usize, f64)> = curve
        .iter()
        .enumerate()
        .map(|(i, &(u, _))| {
            let lo = i.saturating_sub(2);
            let hi = (i + 3).min(curve.len());
            let window = &curve[lo..hi];
            let mean = window.iter().map(|(_, t)| t).sum::<f64>() / window.len() as f64;
            (u, mean)
        })
        .collect();
    let (peak_idx, &(peak_u, peak_t)) = smoothed
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))?;
    // Require a real collapse after the peak: the tail must dip below 85 %
    // of the peak throughput.
    let collapses = smoothed[peak_idx..].iter().any(|&(_, t)| t < 0.85 * peak_t);
    if collapses {
        Some(peak_u as f64)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persec::{DelayAgg, SecondStats};

    fn sec_with(second: u64, util_pct: f64, mbps: f64) -> SecondStats {
        SecondStats {
            second,
            busy_us: (util_pct * 10_000.0) as u64,
            frames: 1,
            rts: 0,
            cts: 0,
            ack: 0,
            beacon: 0,
            data: 1,
            retries: 0,
            mgmt: 0,
            throughput_bits: (mbps * 1e6) as u64,
            goodput_bits: 0,
            busy_by_rate_us: [0; 4],
            bytes_by_rate: [0; 4],
            tx_by_cat: [[0; 4]; 4],
            first_ack_by_rate: [0; 4],
            acked_data: 0,
            acc_delay: [[DelayAgg::default(); 4]; 4],
        }
    }

    #[test]
    fn ietf_thresholds() {
        let c = CongestionClassifier::ietf();
        assert_eq!(c.classify(0.0), CongestionLevel::Uncongested);
        assert_eq!(c.classify(29.9), CongestionLevel::Uncongested);
        assert_eq!(c.classify(30.0), CongestionLevel::Moderate);
        assert_eq!(c.classify(84.0), CongestionLevel::Moderate);
        assert_eq!(c.classify(84.1), CongestionLevel::High);
        assert_eq!(c.classify(100.0), CongestionLevel::High);
    }

    /// A synthetic Fig-6-shaped curve: throughput grows to a peak at 84 %
    /// then collapses.
    fn saturating_curve() -> Vec<SecondStats> {
        let mut stats = Vec::new();
        let mut second = 0;
        for u in 30..=98usize {
            let mbps = if u <= 84 {
                1.0 + (u - 30) as f64 * (3.9 / 54.0) // rises to 4.9
            } else {
                4.9 - (u - 84) as f64 * (2.1 / 14.0) // falls to 2.8
            };
            for _ in 0..3 {
                stats.push(sec_with(second, u as f64, mbps));
                second += 1;
            }
        }
        stats
    }

    #[test]
    fn knee_found_on_saturating_curve() {
        let bins = UtilizationBins::build(&saturating_curve());
        let knee = find_knee(&bins).expect("knee must exist");
        assert!(
            (78.0..=90.0).contains(&knee),
            "knee {knee} should sit near 84"
        );
    }

    #[test]
    fn no_knee_on_monotone_curve() {
        let mut stats = Vec::new();
        let mut second = 0;
        for u in 30..=80usize {
            for _ in 0..3 {
                stats.push(sec_with(second, u as f64, u as f64 / 20.0));
                second += 1;
            }
        }
        let bins = UtilizationBins::build(&stats);
        assert_eq!(find_knee(&bins), None);
    }

    #[test]
    fn sparse_curve_has_no_knee() {
        let stats = vec![sec_with(0, 50.0, 3.0), sec_with(1, 60.0, 3.5)];
        let bins = UtilizationBins::build(&stats);
        assert_eq!(find_knee(&bins), None);
    }

    #[test]
    fn classifier_from_measurements_uses_knee() {
        let bins = UtilizationBins::build(&saturating_curve());
        let c = CongestionClassifier::from_measurements(&bins);
        assert_eq!(c.low_pct, 30.0);
        assert!((78.0..=90.0).contains(&c.high_pct));
        // And falls back on sparse data.
        let sparse = UtilizationBins::build(&[]);
        let c = CongestionClassifier::from_measurements(&sparse);
        assert_eq!(c.high_pct, 84.0);
    }
}
