//! The channel busy-time (CBT) metric — Section 5.1 of the paper.
//!
//! Every captured frame is charged the air time of its bytes plus the
//! inter-frame spacing that precedes it (Equations 2–6; constants from
//! Table 2). Summing the charges inside a one-second interval gives
//! `CBT_TOTAL(t)` (Equation 7), and dividing by the second gives the
//! channel-utilization percentage `U(t)` (Equation 8).
//!
//! The metric deliberately charges zero backoff time: in a heavily utilized
//! network at least one station's backoff timer has already expired at any
//! instant (the saturation argument of Section 5.1).

use wifi_frames::fc::{FrameClass, FrameKind};
use wifi_frames::frame::MGMT_OVERHEAD_BYTES;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::{cbt, Micros, SECOND};

/// The busy-time charge of one captured frame, per Equations 2–6.
///
/// * data frames: `D_DIFS + D_DATA(size)(rate)` — `size` is the data payload
///   in bytes, exactly as the paper's formula takes it;
/// * RTS: `D_RTS`;
/// * CTS: `D_SIFS + D_CTS`;
/// * ACK: `D_SIFS + D_ACK`;
/// * beacons: `D_DIFS + D_BEACON`;
/// * other management frames are charged like data frames (they contend for
///   the channel the same way and carry a body); their body size is the
///   recorded frame size minus the management header + FCS
///   ([`MGMT_OVERHEAD_BYTES`]).
pub fn cbt_us(record: &FrameRecord) -> Micros {
    match record.kind {
        FrameKind::Rts => cbt::rts(),
        FrameKind::Cts => cbt::cts(),
        FrameKind::Ack => cbt::ack(),
        FrameKind::Beacon => cbt::beacon(),
        FrameKind::Data | FrameKind::NullData => {
            cbt::data(record.payload_bytes as u64, record.rate)
        }
        kind if kind.class() == FrameClass::Management => {
            let body = record.mac_bytes.saturating_sub(MGMT_OVERHEAD_BYTES as u32);
            cbt::data(body as u64, record.rate)
        }
        _ => cbt::data(record.payload_bytes as u64, record.rate),
    }
}

/// Accumulates `CBT_TOTAL(t)` per one-second interval (Equation 7).
#[derive(Debug, Default, Clone)]
pub struct BusyTimeAccumulator {
    /// `(second, busy microseconds)` pairs in ascending second order.
    seconds: Vec<(u64, Micros)>,
}

impl BusyTimeAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one frame's charge to its second. Frames must arrive in
    /// non-decreasing timestamp order (as captures do).
    pub fn add(&mut self, record: &FrameRecord) {
        let sec = record.second();
        let charge = cbt_us(record);
        match self.seconds.last_mut() {
            Some((s, total)) if *s == sec => *total += charge,
            Some((s, _)) if *s > sec => {
                // Tolerate slight reordering by scanning back (rare).
                if let Some(entry) = self.seconds.iter_mut().rev().find(|(s2, _)| *s2 == sec) {
                    entry.1 += charge;
                }
            }
            _ => self.seconds.push((sec, charge)),
        }
    }

    /// `CBT_TOTAL(t)` for a given second, zero if nothing was captured.
    pub fn busy_us(&self, second: u64) -> Micros {
        self.seconds
            .iter()
            .find(|(s, _)| *s == second)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Utilization percentage `U(t)` (Equation 8) for a second.
    pub fn utilization_pct(&self, second: u64) -> f64 {
        self.busy_us(second) as f64 / SECOND as f64 * 100.0
    }

    /// All `(second, busy µs)` pairs in order.
    pub fn seconds(&self) -> &[(u64, Micros)] {
        &self.seconds
    }
}

/// Utilization series at an arbitrary aggregation interval.
///
/// The paper fixes the interval at one second and calls it "an appropriate
/// granularity"; this function makes the choice explicit so its sensitivity
/// can be measured (ablation A8). Returns `(interval_start_us, percent)`
/// for every interval in the observed span.
pub fn utilization_series(records: &[FrameRecord], interval_us: Micros) -> Vec<(Micros, f64)> {
    assert!(interval_us > 0, "interval must be positive");
    let Some(first) = records.first() else {
        return Vec::new();
    };
    let last = records.last().expect("nonempty");
    let start = first.timestamp_us / interval_us * interval_us;
    let n = ((last.timestamp_us - start) / interval_us + 1) as usize;
    let mut busy = vec![0u64; n];
    for r in records {
        let idx = ((r.timestamp_us - start) / interval_us) as usize;
        busy[idx] += cbt_us(r);
    }
    busy.into_iter()
        .enumerate()
        .map(|(i, b)| {
            (
                start + i as Micros * interval_us,
                b as f64 / interval_us as f64 * 100.0,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::mac::MacAddr;
    use wifi_frames::phy::{Channel, Rate};

    fn rec(kind: FrameKind, ts: Micros, payload: u32, rate: Rate) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts,
            kind,
            rate,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(1),
            src: Some(MacAddr::from_id(2)),
            bssid: None,
            retry: false,
            seq: Some(0),
            mac_bytes: payload + 28,
            payload_bytes: payload,
            signal_dbm: -60,
            duration_us: 0,
        }
    }

    #[test]
    fn charges_match_paper_equations() {
        assert_eq!(cbt_us(&rec(FrameKind::Rts, 0, 0, Rate::R1)), 352);
        assert_eq!(cbt_us(&rec(FrameKind::Cts, 0, 0, Rate::R1)), 314);
        assert_eq!(cbt_us(&rec(FrameKind::Ack, 0, 0, Rate::R1)), 314);
        assert_eq!(cbt_us(&rec(FrameKind::Beacon, 0, 0, Rate::R1)), 354);
        // Data: DIFS + PLCP + 8*(34+1472)/11 = 50 + 192 + 1096 = 1338.
        assert_eq!(cbt_us(&rec(FrameKind::Data, 0, 1472, Rate::R11)), 1338);
        // Same frame at 1 Mbps: 50 + 192 + 12048 = 12290.
        assert_eq!(cbt_us(&rec(FrameKind::Data, 0, 1472, Rate::R1)), 12_290);
    }

    #[test]
    fn mgmt_frames_charged_like_data() {
        let mut r = rec(FrameKind::AssocRequest, 0, 0, Rate::R1);
        r.mac_bytes = 62; // 34-byte body
        r.payload_bytes = 0;
        // DIFS + PLCP + 8*(34+34)/1 = 50 + 192 + 544.
        assert_eq!(cbt_us(&r), 786);
    }

    #[test]
    fn accumulator_buckets_by_second() {
        let mut acc = BusyTimeAccumulator::new();
        acc.add(&rec(FrameKind::Ack, 500_000, 0, Rate::R1));
        acc.add(&rec(FrameKind::Ack, 999_999, 0, Rate::R1));
        acc.add(&rec(FrameKind::Ack, 1_000_000, 0, Rate::R1));
        assert_eq!(acc.busy_us(0), 628);
        assert_eq!(acc.busy_us(1), 314);
        assert_eq!(acc.busy_us(2), 0);
    }

    #[test]
    fn utilization_is_percent_of_second() {
        let mut acc = BusyTimeAccumulator::new();
        // 80 data frames at 1 Mbps, 1472-byte payload: 80 × 12_290 µs =
        // 983_200 µs busy in one second -> 98.32 %.
        for i in 0..80 {
            acc.add(&rec(FrameKind::Data, i * 10_000, 1472, Rate::R1));
        }
        assert!((acc.utilization_pct(0) - 98.32).abs() < 1e-9);
        assert_eq!(acc.utilization_pct(5), 0.0);
    }

    #[test]
    fn utilization_series_interval_scaling() {
        // One ACK (314 µs) per 100 ms for one second.
        let recs: Vec<FrameRecord> = (0..10)
            .map(|i| rec(FrameKind::Ack, i * 100_000, 0, Rate::R1))
            .collect();
        // 1 s interval: one bucket at 0.314 % × 10 = 3.14 %.
        let s1 = utilization_series(&recs, 1_000_000);
        assert_eq!(s1.len(), 1);
        assert!((s1[0].1 - 0.314).abs() < 1e-9);
        // 100 ms intervals: ten buckets at 0.314 % each (charge ÷ window).
        let s100 = utilization_series(&recs, 100_000);
        assert_eq!(s100.len(), 10);
        for &(_, u) in &s100 {
            assert!((u - 0.314).abs() < 1e-9, "{u}");
        }
        // Averages agree across intervals (mass conservation).
        let m1: f64 = s1.iter().map(|&(_, u)| u).sum::<f64>() / s1.len() as f64;
        let m100: f64 = s100.iter().map(|&(_, u)| u).sum::<f64>() / s100.len() as f64;
        assert!((m1 - m100).abs() < 1e-9);
    }

    #[test]
    fn utilization_series_empty() {
        assert!(utilization_series(&[], 1_000_000).is_empty());
    }

    #[test]
    fn out_of_order_within_tolerance() {
        let mut acc = BusyTimeAccumulator::new();
        acc.add(&rec(FrameKind::Ack, 1_500_000, 0, Rate::R1));
        acc.add(&rec(FrameKind::Ack, 999_000, 0, Rate::R1)); // late arrival
        assert_eq!(acc.busy_us(1), 314);
        // The late frame's second was never created, so its charge lands
        // nowhere rather than corrupting a later bucket.
        assert_eq!(acc.busy_us(0), 0);
    }
}
