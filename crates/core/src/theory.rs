//! Analytical 802.11b throughput models the paper leans on.
//!
//! * [`tmt_bps`] — the *Theoretical Maximum Throughput* of Jun, Peddabachagari
//!   and Sichitiu (reference \[11\]), which the paper invokes to call its
//!   4.9 Mbps@84 % observation "closest to the achievable theoretical
//!   maximum": one station, zero contention and loss, each delivery paying
//!   only the fixed overheads (DIFS + PLCP + data + SIFS + ACK).
//! * [`bianchi`] — Bianchi's saturation model (the fixed point the DCF
//!   converges to when `n` stations are permanently backlogged), used here
//!   to validate the simulator's collision probabilities and saturation
//!   throughput against theory (ablation A9).

use wifi_frames::phy::{Preamble, Rate};
use wifi_frames::timing::{delay, frame_airtime_us, Dcf, Micros};

/// Theoretical maximum throughput (bits per second of MSDU payload) for
/// back-to-back delivery of `payload` -byte frames at `rate`, long preamble,
/// no contention, no loss, no RTS/CTS:
///
/// `cycle = DIFS + T_data + SIFS + T_ack`, `TMT = 8 · payload / cycle`.
pub fn tmt_bps(payload: u32, rate: Rate) -> f64 {
    let t_data = frame_airtime_us((payload + 28) as u64, rate, Preamble::Long);
    let cycle = delay::DIFS + t_data + delay::SIFS + delay::ACK;
    payload as f64 * 8.0 / (cycle as f64 / 1e6)
}

/// TMT including the mean backoff of an idle channel (CWmin/2 slots), the
/// variant usually quoted for a single saturated sender.
pub fn tmt_with_backoff_bps(payload: u32, rate: Rate, dcf: &Dcf) -> f64 {
    let t_data = frame_airtime_us((payload + 28) as u64, rate, Preamble::Long);
    let mean_bo = (dcf.cw_min as u64 * dcf.slot_us) / 2;
    let cycle = delay::DIFS + mean_bo + t_data + delay::SIFS + delay::ACK;
    payload as f64 * 8.0 / (cycle as f64 / 1e6)
}

/// The result of solving Bianchi's saturation fixed point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bianchi {
    /// Per-slot transmission probability of one station.
    pub tau: f64,
    /// Conditional collision probability seen by a transmitting station.
    pub p: f64,
    /// Saturation throughput in bits of payload per second.
    pub throughput_bps: f64,
}

/// Solves Bianchi's model for `n` saturated stations sending fixed
/// `payload`-byte frames at `rate` (basic access, no RTS/CTS), with `m`
/// backoff stages derived from the DCF's CWmin/CWmax.
///
/// Fixed point: `tau = 2(1-2p) / ((1-2p)(W+1) + pW(1-(2p)^m))` with
/// `p = 1 - (1-tau)^(n-1)`, solved by bisection on `p`.
pub fn bianchi(n: usize, payload: u32, rate: Rate, dcf: &Dcf) -> Bianchi {
    assert!(n >= 1);
    let w = (dcf.cw_min + 1) as f64;
    // Number of doubling stages.
    let m = ((dcf.cw_max + 1) as f64 / w).log2().round().max(0.0);

    let tau_of_p = |p: f64| -> f64 {
        if n == 1 {
            return 2.0 / (w + 1.0);
        }
        let num = 2.0 * (1.0 - 2.0 * p);
        let den = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powf(m));
        num / den
    };
    let p_of_tau = |tau: f64| -> f64 { 1.0 - (1.0 - tau).powi(n as i32 - 1) };

    // Bisection on p in [0, 1): f(p) = p_of_tau(tau_of_p(p)) - p is
    // increasing-then-stable; the fixed point is unique.
    let mut lo = 0.0f64;
    let mut hi = 0.999_999f64;
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        let f = p_of_tau(tau_of_p(mid)) - mid;
        if f > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let p = (lo + hi) / 2.0;
    let tau = tau_of_p(p);

    // Slot-time accounting.
    let p_tr = 1.0 - (1.0 - tau).powi(n as i32); // some transmission
    let p_s = if p_tr > 0.0 {
        (n as f64) * tau * (1.0 - tau).powi(n as i32 - 1) / p_tr
    } else {
        0.0
    };
    let t_data = frame_airtime_us((payload + 28) as u64, rate, Preamble::Long) as f64;
    let sigma = dcf.slot_us as f64;
    let t_success = delay::DIFS as f64 + t_data + delay::SIFS as f64 + delay::ACK as f64;
    // A collision occupies the channel for the (equal-length) frame plus an
    // ACK-timeout worth of dead air, then a DIFS.
    let t_collision = delay::DIFS as f64 + t_data + delay::SIFS as f64 + delay::ACK as f64;
    let e_slot = (1.0 - p_tr) * sigma + p_tr * p_s * t_success + p_tr * (1.0 - p_s) * t_collision;
    let throughput_bps = if e_slot > 0.0 {
        p_tr * p_s * (payload as f64 * 8.0) / (e_slot / 1e6)
    } else {
        0.0
    };
    Bianchi {
        tau,
        p,
        throughput_bps,
    }
}

/// Convenience: microseconds a success cycle occupies (for reporting).
pub fn success_cycle_us(payload: u32, rate: Rate) -> Micros {
    delay::DIFS
        + frame_airtime_us((payload + 28) as u64, rate, Preamble::Long)
        + delay::SIFS
        + delay::ACK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmt_known_values() {
        // 1472-byte payload at 11 Mbps: T_data = 192 + ceil(12000/11) = 1283;
        // cycle = 50 + 1283 + 10 + 304 = 1647 µs; TMT = 11776/1647 µs ≈ 7.15 Mbps.
        let tmt = tmt_bps(1472, Rate::R11);
        assert!((tmt / 1e6 - 7.15).abs() < 0.02, "{tmt}");
        // At 1 Mbps: T_data = 192 + 12000 = 12192; cycle = 12556 µs ≈ 0.938 Mbps.
        let tmt1 = tmt_bps(1472, Rate::R1);
        assert!((tmt1 / 1e6 - 0.938).abs() < 0.01, "{tmt1}");
    }

    #[test]
    fn tmt_monotonicity() {
        // Larger frames amortize overhead; faster rates always win.
        assert!(tmt_bps(1472, Rate::R11) > tmt_bps(100, Rate::R11));
        assert!(tmt_bps(1000, Rate::R11) > tmt_bps(1000, Rate::R5_5));
        assert!(tmt_bps(1000, Rate::R5_5) > tmt_bps(1000, Rate::R2));
        assert!(tmt_bps(1000, Rate::R2) > tmt_bps(1000, Rate::R1));
    }

    #[test]
    fn tmt_with_backoff_is_lower() {
        let dcf = Dcf::standard();
        assert!(tmt_with_backoff_bps(1472, Rate::R11, &dcf) < tmt_bps(1472, Rate::R11));
    }

    #[test]
    fn bianchi_single_station_has_no_collisions() {
        let b = bianchi(1, 1000, Rate::R11, &Dcf::standard());
        assert!(b.p < 1e-9, "p = {}", b.p);
        assert!(b.throughput_bps > 4e6, "{}", b.throughput_bps);
    }

    #[test]
    fn bianchi_collision_probability_grows_with_n() {
        let dcf = Dcf::standard();
        let mut last_p = 0.0;
        for n in [2, 5, 10, 20, 50, 100] {
            let b = bianchi(n, 1000, Rate::R11, &dcf);
            assert!(b.p > last_p, "p must grow with n: {} at n={n}", b.p);
            assert!(b.tau > 0.0 && b.tau < 1.0);
            last_p = b.p;
        }
        // The classic regime: tens of percent for tens of stations.
        let b50 = bianchi(50, 1000, Rate::R11, &dcf);
        assert!(
            (0.3..0.8).contains(&b50.p),
            "n=50 collision probability {}",
            b50.p
        );
    }

    #[test]
    fn bianchi_throughput_declines_gently_with_n() {
        let dcf = Dcf::standard();
        let t2 = bianchi(2, 1472, Rate::R11, &dcf).throughput_bps;
        let t50 = bianchi(50, 1472, Rate::R11, &dcf).throughput_bps;
        assert!(t2 > t50, "{t2} vs {t50}");
        // But it does not collapse to zero: DCF stabilizes.
        assert!(t50 > 0.4 * t2, "{t50} vs {t2}");
    }

    #[test]
    fn bianchi_fixed_point_consistency() {
        let dcf = Dcf::standard();
        for n in [2usize, 10, 40] {
            let b = bianchi(n, 800, Rate::R11, &dcf);
            let p_back = 1.0 - (1.0 - b.tau).powi(n as i32 - 1);
            assert!((p_back - b.p).abs() < 1e-6, "n={n}: {} vs {}", p_back, b.p);
        }
    }

    #[test]
    fn paper_context_tmt_bounds_the_observed_peak() {
        // The paper's 4.9 Mbps at 84 % utilization sits below the 1500-byte
        // 11 Mbps TMT (≈7.1 Mbps) and near a mixed-rate practical ceiling —
        // the sanity relation the paper appeals to.
        assert!(tmt_bps(1472, Rate::R11) > 4.9e6);
        assert!(tmt_with_backoff_bps(1472, Rate::R11, &Dcf::standard()) > 4.9e6);
    }
}
