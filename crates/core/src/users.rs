//! User-population estimation — Figure 4(b) of the paper.
//!
//! The paper plots the number of users associated with the network over
//! time, averaged in 30-second windows. From a passive trace, a user is
//! "present" in a window when its MAC transmits any non-AP frame there.

use std::collections::HashSet;
use wifi_frames::mac::MacAddr;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::SECOND;

/// Default window of Fig 4(b): 30 seconds.
pub const DEFAULT_WINDOW_S: u64 = 30;

/// Distinct non-AP transmitters per window.
///
/// Returns `(window_start_second, user_count)` pairs in time order; empty
/// windows inside the observed span are included with zero users.
pub fn users_per_window(
    records: &[FrameRecord],
    aps: &HashSet<MacAddr>,
    window_s: u64,
) -> Vec<(u64, usize)> {
    assert!(window_s > 0, "window must be positive");
    let Some(first) = records.first() else {
        return Vec::new();
    };
    let last = records.last().expect("nonempty");
    let start = first.timestamp_us / SECOND / window_s * window_s;
    let end = last.timestamp_us / SECOND;
    let n_windows = ((end - start) / window_s + 1) as usize;
    let mut sets: Vec<HashSet<MacAddr>> = vec![HashSet::new(); n_windows];
    for r in records {
        let Some(src) = r.src else { continue };
        if aps.contains(&src) {
            continue;
        }
        let w = ((r.timestamp_us / SECOND - start) / window_s) as usize;
        sets[w].insert(src);
    }
    sets.into_iter()
        .enumerate()
        .map(|(i, set)| (start + i as u64 * window_s, set.len()))
        .collect()
}

/// The maximum simultaneous user count over all windows (the paper quotes
/// 523 for the day session and 325 for the plenary).
pub fn peak_users(windows: &[(u64, usize)]) -> usize {
    windows.iter().map(|&(_, n)| n).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::fc::FrameKind;
    use wifi_frames::phy::{Channel, Rate};

    fn data(ts_s: u64, src: u32) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts_s * SECOND,
            kind: FrameKind::Data,
            rate: Rate::R11,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(1000),
            src: Some(MacAddr::from_id(src)),
            bssid: Some(MacAddr::from_id(1000)),
            retry: false,
            seq: Some(0),
            mac_bytes: 100,
            payload_bytes: 72,
            signal_dbm: -60,
            duration_us: 0,
        }
    }

    #[test]
    fn counts_distinct_users_per_window() {
        let aps = HashSet::from([MacAddr::from_id(1000)]);
        let recs = vec![
            data(0, 1),
            data(5, 2),
            data(10, 1), // repeat in same window
            data(31, 3), // second window
            data(95, 4), // fourth window (window 2 empty)
        ];
        let w = users_per_window(&recs, &aps, 30);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], (0, 2));
        assert_eq!(w[1], (30, 1));
        assert_eq!(w[2], (60, 0));
        assert_eq!(w[3], (90, 1));
        assert_eq!(peak_users(&w), 2);
    }

    #[test]
    fn ap_transmissions_do_not_count_as_users() {
        let aps = HashSet::from([MacAddr::from_id(1000)]);
        let mut r = data(0, 1000);
        r.kind = FrameKind::Beacon;
        let w = users_per_window(&[r], &aps, 30);
        assert_eq!(w[0].1, 0);
    }

    #[test]
    fn window_start_is_aligned() {
        let aps = HashSet::new();
        let recs = vec![data(47, 1)];
        let w = users_per_window(&recs, &aps, 30);
        assert_eq!(w[0].0, 30, "window aligned to multiples of 30 s");
    }

    #[test]
    fn empty_trace() {
        let w = users_per_window(&[], &HashSet::new(), 30);
        assert!(w.is_empty());
        assert_eq!(peak_users(&w), 0);
    }
}
