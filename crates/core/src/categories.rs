//! The paper's 16 frame categories: four size classes × four data rates
//! (Section 6).
//!
//! Size classes are defined over the *frame* size: small 0–400 B, medium
//! 401–800 B, large 801–1200 B, extra-large > 1200 B. Category names follow
//! the paper's `size-rate` convention, e.g. `S-11` and `XL-1`.

use core::fmt;
use wifi_frames::phy::Rate;
use wifi_frames::record::FrameRecord;

/// The four frame-size classes of Section 6.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum SizeClass {
    /// 0–400 bytes: control frames, voice/audio data.
    Small,
    /// 401–800 bytes.
    Medium,
    /// 801–1200 bytes.
    Large,
    /// Over 1200 bytes: file transfer, HTTP, video.
    ExtraLarge,
}

impl SizeClass {
    /// All classes, smallest first.
    pub const ALL: [SizeClass; 4] = [
        SizeClass::Small,
        SizeClass::Medium,
        SizeClass::Large,
        SizeClass::ExtraLarge,
    ];

    /// Classifies a frame size in bytes.
    pub const fn of(bytes: u32) -> SizeClass {
        if bytes <= 400 {
            SizeClass::Small
        } else if bytes <= 800 {
            SizeClass::Medium
        } else if bytes <= 1200 {
            SizeClass::Large
        } else {
            SizeClass::ExtraLarge
        }
    }

    /// Index 0..=3 into [`SizeClass::ALL`].
    pub const fn index(self) -> usize {
        match self {
            SizeClass::Small => 0,
            SizeClass::Medium => 1,
            SizeClass::Large => 2,
            SizeClass::ExtraLarge => 3,
        }
    }

    /// The paper's abbreviation.
    pub const fn abbrev(self) -> &'static str {
        match self {
            SizeClass::Small => "S",
            SizeClass::Medium => "M",
            SizeClass::Large => "L",
            SizeClass::ExtraLarge => "XL",
        }
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// One of the paper's 16 size × rate categories.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Category {
    /// The size class.
    pub size: SizeClass,
    /// The data rate.
    pub rate: Rate,
}

impl Category {
    /// The category of a data frame record (uses the full MAC frame size,
    /// matching the paper's "frame sizes").
    pub fn of(record: &FrameRecord) -> Category {
        Category {
            size: SizeClass::of(record.mac_bytes),
            rate: record.rate,
        }
    }

    /// All 16 categories, size-major then rate order.
    pub fn all() -> impl Iterator<Item = Category> {
        SizeClass::ALL.into_iter().flat_map(|size| {
            Rate::ALL
                .into_iter()
                .map(move |rate| Category { size, rate })
        })
    }

    /// `(size index, rate index)` for 4×4 count tables.
    pub fn indices(self) -> (usize, usize) {
        (self.size.index(), self.rate.index())
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rate = match self.rate {
            Rate::R1 => "1",
            Rate::R2 => "2",
            Rate::R5_5 => "5.5",
            Rate::R11 => "11",
        };
        write!(f, "{}-{}", self.size.abbrev(), rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::fc::FrameKind;
    use wifi_frames::mac::MacAddr;
    use wifi_frames::phy::Channel;

    #[test]
    fn boundaries_match_paper() {
        assert_eq!(SizeClass::of(0), SizeClass::Small);
        assert_eq!(SizeClass::of(400), SizeClass::Small);
        assert_eq!(SizeClass::of(401), SizeClass::Medium);
        assert_eq!(SizeClass::of(800), SizeClass::Medium);
        assert_eq!(SizeClass::of(801), SizeClass::Large);
        assert_eq!(SizeClass::of(1200), SizeClass::Large);
        assert_eq!(SizeClass::of(1201), SizeClass::ExtraLarge);
        assert_eq!(SizeClass::of(u32::MAX), SizeClass::ExtraLarge);
    }

    #[test]
    fn sixteen_distinct_categories() {
        let all: Vec<Category> = Category::all().collect();
        assert_eq!(all.len(), 16);
        let mut names: Vec<String> = all.iter().map(|c| c.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn naming_follows_paper() {
        let c = Category {
            size: SizeClass::Small,
            rate: Rate::R11,
        };
        assert_eq!(c.to_string(), "S-11");
        let c = Category {
            size: SizeClass::ExtraLarge,
            rate: Rate::R1,
        };
        assert_eq!(c.to_string(), "XL-1");
        let c = Category {
            size: SizeClass::Medium,
            rate: Rate::R5_5,
        };
        assert_eq!(c.to_string(), "M-5.5");
    }

    #[test]
    fn category_of_record_uses_mac_bytes() {
        let r = FrameRecord {
            timestamp_us: 0,
            kind: FrameKind::Data,
            rate: Rate::R11,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(1),
            src: Some(MacAddr::from_id(2)),
            bssid: None,
            retry: false,
            seq: Some(0),
            mac_bytes: 1500,
            payload_bytes: 1472,
            signal_dbm: -50,
            duration_us: 0,
        };
        let c = Category::of(&r);
        assert_eq!(c.size, SizeClass::ExtraLarge);
        assert_eq!(c.rate, Rate::R11);
    }

    #[test]
    fn indices_cover_4x4() {
        let mut seen = [[false; 4]; 4];
        for c in Category::all() {
            let (s, r) = c.indices();
            seen[s][r] = true;
        }
        assert!(seen.iter().flatten().all(|&b| b));
    }
}
