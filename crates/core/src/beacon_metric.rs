//! The beacon-reliability congestion metric from the authors' prior work
//! (reference \[10\] of the paper) — implemented as a comparison baseline for
//! the busy-time metric (ablation A5 in DESIGN.md).
//!
//! Idea: APs beacon at a fixed cadence (every 102.4 ms ⇒ ~9.77 per second),
//! so the fraction of expected beacons that actually arrive at a sniffer is
//! a passive congestion signal: collisions and deferral suppress or delay
//! beacons as the channel saturates.

use std::collections::{HashMap, HashSet};
use wifi_frames::fc::FrameKind;
use wifi_frames::mac::MacAddr;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::SECOND;

/// Expected beacons per AP per second at the standard 100 TU interval.
pub const EXPECTED_BEACONS_PER_SEC: f64 = 1e6 / 102_400.0;

/// Per-second beacon reliability: received beacons over expected beacons,
/// clamped to 1.0. `aps` is the set of AP MACs expected to beacon.
///
/// Returns `(second, reliability)` for every second in the observed span.
pub fn reliability_per_second(records: &[FrameRecord], aps: &HashSet<MacAddr>) -> Vec<(u64, f64)> {
    if records.is_empty() || aps.is_empty() {
        return Vec::new();
    }
    let first = records.first().expect("nonempty").timestamp_us / SECOND;
    let last = records.last().expect("nonempty").timestamp_us / SECOND;
    let mut per_sec: HashMap<u64, u64> = HashMap::new();
    for r in records {
        if r.kind == FrameKind::Beacon {
            if let Some(bssid) = r.bssid {
                if aps.contains(&bssid) {
                    *per_sec.entry(r.timestamp_us / SECOND).or_default() += 1;
                }
            }
        }
    }
    let expected = EXPECTED_BEACONS_PER_SEC * aps.len() as f64;
    (first..=last)
        .map(|s| {
            let got = *per_sec.get(&s).unwrap_or(&0) as f64;
            (s, (got / expected).min(1.0))
        })
        .collect()
}

/// Pearson correlation between two equal-length series; `None` when either
/// side is degenerate (fewer than two points or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::phy::{Channel, Rate};

    fn beacon(ts_us: u64, ap: u32) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts_us,
            kind: FrameKind::Beacon,
            rate: Rate::R1,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::BROADCAST,
            src: Some(MacAddr::from_id(ap)),
            bssid: Some(MacAddr::from_id(ap)),
            retry: false,
            seq: Some(0),
            mac_bytes: 57,
            payload_bytes: 0,
            signal_dbm: -50,
            duration_us: 0,
        }
    }

    #[test]
    fn full_cadence_is_reliability_one() {
        let aps = HashSet::from([MacAddr::from_id(1)]);
        // 10 beacons in one second ≥ expected 9.77.
        let recs: Vec<FrameRecord> = (0..10).map(|i| beacon(i * 100_000, 1)).collect();
        let rel = reliability_per_second(&recs, &aps);
        assert_eq!(rel.len(), 1);
        assert!((rel[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_beacons_lower_reliability() {
        let aps = HashSet::from([MacAddr::from_id(1)]);
        // Only 5 of ~9.77 expected.
        let recs: Vec<FrameRecord> = (0..5).map(|i| beacon(i * 100_000, 1)).collect();
        let rel = reliability_per_second(&recs, &aps);
        assert!((rel[0].1 - 5.0 / EXPECTED_BEACONS_PER_SEC).abs() < 1e-9);
    }

    #[test]
    fn foreign_beacons_ignored() {
        let aps = HashSet::from([MacAddr::from_id(1)]);
        let recs: Vec<FrameRecord> = (0..10).map(|i| beacon(i * 100_000, 2)).collect();
        let rel = reliability_per_second(&recs, &aps);
        assert_eq!(rel[0].1, 0.0);
    }

    #[test]
    fn span_covers_quiet_seconds() {
        let aps = HashSet::from([MacAddr::from_id(1)]);
        let recs = vec![beacon(0, 1), beacon(3_000_000, 1)];
        let rel = reliability_per_second(&recs, &aps);
        assert_eq!(rel.len(), 4);
        assert_eq!(rel[1].1, 0.0);
    }

    #[test]
    fn pearson_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&[1.0], &[2.0]), None);
    }
}
