//! Property-based tests for the congestion-analysis crate: conservation
//! laws of the single-pass analyzer, the busy-time metric, binning, and the
//! unrecorded-frame estimator against synthetic traces with known losses.

use congestion::{
    analyze, cbt_us, estimate_unrecorded, merge_traces, MergeStream, SecondAccumulator, SizeClass,
    UtilizationBins,
};
use proptest::prelude::*;
use wifi_frames::fc::FrameKind;
use wifi_frames::mac::MacAddr;
use wifi_frames::phy::{Channel, Rate};
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::Micros;

fn rec(
    kind: FrameKind,
    ts: Micros,
    src: Option<u32>,
    dst: u32,
    payload: u32,
    rate: Rate,
) -> FrameRecord {
    FrameRecord {
        timestamp_us: ts,
        kind,
        rate,
        channel: Channel::new(1).unwrap(),
        dst: MacAddr::from_id(dst),
        src: src.map(MacAddr::from_id),
        bssid: None,
        retry: false,
        seq: Some((ts % 4096) as u16),
        mac_bytes: payload + 28,
        payload_bytes: payload,
        signal_dbm: -60,
        duration_us: 0,
    }
}

fn arb_rate() -> impl Strategy<Value = Rate> {
    prop_oneof![
        Just(Rate::R1),
        Just(Rate::R2),
        Just(Rate::R5_5),
        Just(Rate::R11)
    ]
}

/// One atomic exchange in a synthetic trace.
#[derive(Debug, Clone)]
enum Exchange {
    /// DATA then ACK (`acked`), or lone DATA.
    Data {
        src: u32,
        payload: u32,
        rate: Rate,
        acked: bool,
    },
    /// Full RTS/CTS/DATA/ACK.
    Protected { src: u32, payload: u32, rate: Rate },
    /// Beacon.
    Beacon { ap: u32 },
}

fn arb_exchange() -> impl Strategy<Value = Exchange> {
    prop_oneof![
        (1u32..20, 0u32..2276, arb_rate(), any::<bool>()).prop_map(
            |(src, payload, rate, acked)| Exchange::Data {
                src,
                payload,
                rate,
                acked
            }
        ),
        (1u32..20, 0u32..2276, arb_rate()).prop_map(|(src, payload, rate)| Exchange::Protected {
            src,
            payload,
            rate
        }),
        (100u32..105).prop_map(|ap| Exchange::Beacon { ap }),
    ]
}

/// Materializes exchanges into a time-ordered trace with DCF-plausible gaps.
fn build_trace(exchanges: &[Exchange]) -> Vec<FrameRecord> {
    let mut t: Micros = 0;
    let mut out = Vec::new();
    for e in exchanges {
        t += 300; // inter-exchange gap
        match *e {
            Exchange::Data {
                src,
                payload,
                rate,
                acked,
            } => {
                out.push(rec(FrameKind::Data, t, Some(src), 99, payload, rate));
                if acked {
                    t += 314;
                    out.push(rec(FrameKind::Ack, t, None, src, 0, Rate::R1));
                    let last = out.last_mut().unwrap();
                    last.mac_bytes = 14;
                    last.payload_bytes = 0;
                }
            }
            Exchange::Protected { src, payload, rate } => {
                out.push(rec(FrameKind::Rts, t, Some(src), 99, 0, Rate::R1));
                out.last_mut().unwrap().mac_bytes = 20;
                t += 314;
                out.push(rec(FrameKind::Cts, t, None, src, 0, Rate::R1));
                out.last_mut().unwrap().mac_bytes = 14;
                // Data frame ends SIFS + its own air time after the CTS.
                t += 10
                    + wifi_frames::timing::frame_airtime_us(
                        (payload + 28) as u64,
                        rate,
                        wifi_frames::phy::Preamble::Long,
                    );
                out.push(rec(FrameKind::Data, t, Some(src), 99, payload, rate));
                t += 314;
                out.push(rec(FrameKind::Ack, t, None, src, 0, Rate::R1));
                out.last_mut().unwrap().mac_bytes = 14;
            }
            Exchange::Beacon { ap } => {
                out.push(rec(FrameKind::Beacon, t, Some(ap), 0xffffff, 0, Rate::R1));
                let b = out.last_mut().unwrap();
                b.dst = MacAddr::BROADCAST;
                b.bssid = Some(MacAddr::from_id(ap));
                b.mac_bytes = 57;
            }
        }
        t += 200;
    }
    out
}

proptest! {
    #[test]
    fn analyzer_conserves_frame_counts(exchanges in proptest::collection::vec(arb_exchange(), 0..120)) {
        let trace = build_trace(&exchanges);
        let stats = analyze(&trace);
        let total_frames: u64 = stats.iter().map(|s| s.frames).sum();
        prop_assert_eq!(total_frames, trace.len() as u64);
        let by_kind: u64 = stats
            .iter()
            .map(|s| s.rts + s.cts + s.ack + s.beacon + s.data + s.mgmt)
            .sum();
        prop_assert_eq!(by_kind, total_frames, "every frame lands in exactly one kind");
    }

    #[test]
    fn busy_time_equals_sum_of_charges(exchanges in proptest::collection::vec(arb_exchange(), 0..120)) {
        let trace = build_trace(&exchanges);
        let stats = analyze(&trace);
        let from_stats: u64 = stats.iter().map(|s| s.busy_us).sum();
        let direct: u64 = trace.iter().map(cbt_us).sum();
        prop_assert_eq!(from_stats, direct);
    }

    #[test]
    fn category_table_partitions_data_frames(exchanges in proptest::collection::vec(arb_exchange(), 0..120)) {
        let trace = build_trace(&exchanges);
        for s in analyze(&trace) {
            let cat_total: u64 = s.tx_by_cat.iter().flatten().sum();
            prop_assert_eq!(cat_total, s.data);
            let rate_bytes: u64 = s.bytes_by_rate.iter().sum();
            let data_bytes: u64 = trace
                .iter()
                .filter(|r| r.second() == s.second && matches!(r.kind, FrameKind::Data | FrameKind::NullData))
                .map(|r| r.mac_bytes as u64)
                .sum();
            prop_assert_eq!(rate_bytes, data_bytes);
        }
    }

    #[test]
    fn goodput_never_exceeds_throughput(exchanges in proptest::collection::vec(arb_exchange(), 0..120)) {
        let trace = build_trace(&exchanges);
        for s in analyze(&trace) {
            prop_assert!(s.goodput_bits <= s.throughput_bits);
            prop_assert!(s.acked_data <= s.data);
            let first_acks: u64 = s.first_ack_by_rate.iter().sum();
            prop_assert!(first_acks <= s.acked_data);
        }
    }

    #[test]
    fn acked_count_matches_constructed_acks(exchanges in proptest::collection::vec(arb_exchange(), 0..120)) {
        let trace = build_trace(&exchanges);
        let stats = analyze(&trace);
        let expected: u64 = exchanges
            .iter()
            .filter(|e| matches!(e, Exchange::Data { acked: true, .. } | Exchange::Protected { .. }))
            .count() as u64;
        let got: u64 = stats.iter().map(|s| s.acked_data).sum();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn bins_conserve_seconds(exchanges in proptest::collection::vec(arb_exchange(), 0..120)) {
        let trace = build_trace(&exchanges);
        let stats = analyze(&trace);
        let bins = UtilizationBins::build(&stats);
        let binned: u64 = bins.histogram().iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(binned, stats.len() as u64);
    }

    #[test]
    fn complete_traces_report_zero_unrecorded(exchanges in proptest::collection::vec(arb_exchange(), 0..120)) {
        let trace = build_trace(&exchanges);
        let est = estimate_unrecorded(&trace);
        prop_assert_eq!(est.counts.total(), 0, "atomic traces have no inferred losses");
    }

    #[test]
    fn dropping_data_frames_is_detected_exactly(
        exchanges in proptest::collection::vec(arb_exchange(), 1..80),
        drop_mask in proptest::collection::vec(any::<bool>(), 80),
    ) {
        let trace = build_trace(&exchanges);
        // Drop some acknowledged data frames (keep their ACKs): each drop
        // must be inferred as exactly one unrecorded DATA frame.
        let mut dropped = 0usize;
        let mut lossy = Vec::new();
        let mut mask = drop_mask.iter().cycle();
        for (i, r) in trace.iter().enumerate() {
            let is_acked_data = matches!(r.kind, FrameKind::Data)
                && trace.get(i + 1).is_some_and(|n| n.kind == FrameKind::Ack && Some(n.dst) == r.src);
            if is_acked_data && *mask.next().unwrap() {
                dropped += 1;
                continue;
            }
            lossy.push(*r);
        }
        let est = estimate_unrecorded(&lossy);
        prop_assert_eq!(est.counts.data as usize, dropped);
        prop_assert_eq!(est.counts.rts, 0);
    }

    #[test]
    fn dropping_cts_frames_is_detected(
        count in 1usize..30,
    ) {
        // Protected exchanges with every CTS removed.
        let exchanges: Vec<Exchange> = (0..count)
            .map(|i| Exchange::Protected { src: 1 + (i as u32 % 5), payload: 500, rate: Rate::R11 })
            .collect();
        let trace = build_trace(&exchanges);
        let lossy: Vec<FrameRecord> = trace
            .iter()
            .filter(|r| r.kind != FrameKind::Cts)
            .copied()
            .collect();
        let est = estimate_unrecorded(&lossy);
        prop_assert_eq!(est.counts.cts as usize, count);
    }

    #[test]
    fn size_class_total_order(bytes_a in 0u32..3000, bytes_b in 0u32..3000) {
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(SizeClass::of(lo) <= SizeClass::of(hi));
    }

    #[test]
    fn streaming_accumulator_matches_batch(exchanges in proptest::collection::vec(arb_exchange(), 0..120)) {
        let trace = build_trace(&exchanges);
        let batch = analyze(&trace);
        let mut acc = SecondAccumulator::new();
        for r in &trace {
            acc.push(*r);
        }
        // SecondStats carries floats, so equality is checked on the full
        // Debug rendering — the same representation the golden digests use.
        prop_assert_eq!(format!("{:?}", acc.finish()), format!("{batch:?}"));
    }

    #[test]
    fn streaming_matches_batch_across_quiet_seconds(
        exchanges in proptest::collection::vec(arb_exchange(), 1..60),
        gaps in proptest::collection::vec(0u64..4_000_000, 60),
    ) {
        // Stretch the trace with multi-second quiet gaps: the accumulator
        // must produce the same (sparse) seconds as the batch pass, and the
        // first-transmission table must evict identically across the idle
        // stretches.
        let mut trace = build_trace(&exchanges);
        let mut shift = 0u64;
        let mut g = gaps.iter().cycle();
        for r in trace.iter_mut() {
            shift += g.next().unwrap();
            r.timestamp_us += shift;
        }
        let batch = analyze(&trace);
        let mut acc = SecondAccumulator::new();
        for r in &trace {
            acc.push(*r);
        }
        prop_assert_eq!(format!("{:?}", acc.finish()), format!("{batch:?}"));
    }

    #[test]
    fn streaming_handles_cross_second_ack_adjacency(offset in 0u64..400) {
        // DATA frames just before each second boundary, ACKs landing either
        // side of it depending on `offset`: the accumulator's one-record
        // lookahead must see the ACK even when it falls in the next second.
        let mut trace = Vec::new();
        for i in 0..6u64 {
            let data_ts = (i + 1) * 1_000_000 - 200 + offset;
            trace.push(rec(FrameKind::Data, data_ts, Some(1 + (i as u32 % 3)), 99, 700, Rate::R11));
            let ack_ts = data_ts + 314;
            trace.push(rec(FrameKind::Ack, ack_ts, None, 1 + (i as u32 % 3), 0, Rate::R1));
            let last = trace.last_mut().unwrap();
            last.mac_bytes = 14;
            last.payload_bytes = 0;
        }
        let batch = analyze(&trace);
        let acked: u64 = batch.iter().map(|s| s.acked_data).sum();
        prop_assert_eq!(acked, 6, "every DATA is acknowledged, boundary or not");
        let mut acc = SecondAccumulator::new();
        for r in &trace {
            acc.push(*r);
        }
        prop_assert_eq!(format!("{:?}", acc.finish()), format!("{batch:?}"));
    }
}

/// Thins a time-ordered base trace into one sniffer's skewed, lossy view.
/// Constant skew preserves per-stream time order — the documented input
/// contract shared by `merge_traces` and `MergeStream`.
fn sniffer_view(base: &[FrameRecord], keep: &[bool], skew_us: u64) -> Vec<FrameRecord> {
    base.iter()
        .zip(keep.iter().cycle())
        .filter(|(_, k)| **k)
        .map(|(r, _)| {
            let mut r = *r;
            r.timestamp_us += skew_us;
            r
        })
        .collect()
}

proptest! {
    #[test]
    fn streaming_merge_matches_batch_on_random_views(
        exchanges in proptest::collection::vec(arb_exchange(), 0..100),
        masks in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..40), 1..6),
        skews in proptest::collection::vec(0u64..2_000, 6),
    ) {
        let base = build_trace(&exchanges);
        let views: Vec<Vec<FrameRecord>> = masks
            .iter()
            .zip(&skews)
            .map(|(mask, &skew)| sniffer_view(&base, mask, skew))
            .collect();
        let slices: Vec<&[FrameRecord]> = views.iter().map(|v| v.as_slice()).collect();
        let batch = merge_traces(&slices);
        let streamed: Vec<FrameRecord> =
            MergeStream::new(views.iter().map(|v| v.iter().copied()).collect()).collect();
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn streaming_merge_contributions_are_conserved(
        exchanges in proptest::collection::vec(arb_exchange(), 1..100),
        masks in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..40), 2..6),
        skews in proptest::collection::vec(0u64..2_000, 6),
    ) {
        let base = build_trace(&exchanges);
        let views: Vec<Vec<FrameRecord>> = masks
            .iter()
            .zip(&skews)
            .map(|(mask, &skew)| sniffer_view(&base, mask, skew))
            .collect();
        let mut stream = MergeStream::new(views.iter().map(|v| v.iter().copied()).collect());
        let merged = stream.by_ref().count();
        let contributed = stream.contributed().to_vec();
        prop_assert_eq!(contributed.iter().sum::<u64>(), merged as u64);
        prop_assert_eq!(contributed.len(), views.len());
        // The merge can never yield fewer records than its best single view
        // or more than the union of all views.
        let best = views.iter().map(Vec::len).max().unwrap_or(0);
        let total: usize = views.iter().map(Vec::len).sum();
        prop_assert!(merged >= best, "merged {} < best single {}", merged, best);
        prop_assert!(merged <= total, "merged {} > union {}", merged, total);
    }

    #[test]
    fn streaming_merge_is_identity_on_one_clean_stream(
        exchanges in proptest::collection::vec(arb_exchange(), 0..100),
    ) {
        // One sniffer with no losses: nothing repeats within the dedup
        // window except genuine retransmissions, and the batch path is the
        // ground truth for those decisions too.
        let base = build_trace(&exchanges);
        let batch = merge_traces(&[&base[..]]);
        let streamed: Vec<FrameRecord> =
            MergeStream::new(vec![base.iter().copied()]).collect();
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn skewed_clock_regression_is_clamped_not_resurrected(
        exchanges in proptest::collection::vec(arb_exchange(), 1..80),
        masks in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..40), 2..5),
        skews in proptest::collection::vec(0u64..2_000, 5),
        // Per-stream clock faults: at `at` (an index into the view), jump the
        // clock backwards by `back_us` for every subsequent record.
        faults in proptest::collection::vec((any::<prop::sample::Index>(), 0u64..5_000_000), 5),
    ) {
        let base = build_trace(&exchanges);
        let views: Vec<Vec<FrameRecord>> = masks
            .iter()
            .zip(&skews)
            .zip(&faults)
            .map(|((mask, &skew), (at, back_us))| {
                let mut v = sniffer_view(&base, mask, skew);
                if !v.is_empty() {
                    let at = at.index(v.len());
                    for r in &mut v[at..] {
                        r.timestamp_us = r.timestamp_us.saturating_sub(*back_us);
                    }
                }
                v
            })
            .collect();
        let streamed: Vec<FrameRecord> =
            MergeStream::new(views.iter().map(|v| v.iter().copied()).collect()).collect();
        // Output must stay non-decreasing despite in-stream regressions …
        prop_assert!(
            streamed.windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us),
            "merged output went back in time"
        );
        // … and must equal the batch merge of the clamp-normalized views:
        // clamping each stream to its running maximum is exactly the
        // normalization `OnlineMerge::offer` applies, and the normalized
        // views are time-ordered, where batch equivalence is the contract.
        let clamped: Vec<Vec<FrameRecord>> = views
            .iter()
            .map(|v| {
                let mut high = 0u64;
                v.iter()
                    .map(|r| {
                        let mut r = *r;
                        high = high.max(r.timestamp_us);
                        r.timestamp_us = high;
                        r
                    })
                    .collect()
            })
            .collect();
        let slices: Vec<&[FrameRecord]> = clamped.iter().map(|v| v.as_slice()).collect();
        prop_assert_eq!(streamed, merge_traces(&slices));
    }
}
