//! IETF-62 session scenarios: the day session, the plenary session, and a
//! load-ramp scenario that sweeps utilization across every bin the paper's
//! figures condition on.
//!
//! Geometry follows Figures 2–3 of the paper: a ~64 m × 36 m floor, three
//! sniffers inside the busiest room during the day (one per orthogonal
//! channel), and the same three sniffers co-located in the single merged
//! ballroom during the plenary. User counts, per-user activity, and the
//! 152-virtual-AP infrastructure are scaled down by default (and scalable
//! up) — DESIGN.md documents why the shape of every result survives the
//! scaling.

use crate::attendance::Attendance;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wifi_frames::mac::MacAddr;
use wifi_frames::phy::Rate;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::{Micros, SECOND};
use wifi_sim::events::QueueStats;
use wifi_sim::geometry::Pos;
use wifi_sim::radio::{Fading, RadioConfig};
use wifi_sim::rate::RateAdaptation;
use wifi_sim::shard::ShardSpec;
use wifi_sim::sniffer::{SnifferConfig, SnifferStats};
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::{FlowConfig, SizeDist, TrafficProfile};
use wifi_sim::{ClientConfig, SimConfig, Simulator};

/// Scale and seed of a session scenario.
#[derive(Clone, Copy, Debug)]
pub struct SessionScale {
    /// RNG seed (drives placement, schedules, traffic and the PHY draws).
    pub seed: u64,
    /// Number of users over the whole session.
    pub users: usize,
    /// Session length in seconds.
    pub duration_s: u64,
    /// Multiplier on per-user traffic intensity (1.0 = day-session level).
    pub activity: f64,
    /// Fraction of users whose cards use RTS/CTS (the paper saw minimal,
    /// optional usage).
    pub rts_fraction: f64,
}

impl SessionScale {
    /// Default day-session scale: enough users and time for stable
    /// statistics at interactive runtimes.
    pub fn day_default(seed: u64) -> SessionScale {
        SessionScale {
            seed,
            users: 240,
            duration_s: 600,
            activity: 0.75,
            rts_fraction: 0.02,
        }
    }

    /// Default plenary scale: fewer users than the day peak (as the paper
    /// observed) but much denser traffic in one room.
    pub fn plenary_default(seed: u64) -> SessionScale {
        SessionScale {
            seed,
            users: 200,
            duration_s: 300,
            activity: 3.0,
            rts_fraction: 0.02,
        }
    }
}

/// A ready-to-run scenario.
pub struct Scenario {
    /// Scenario name ("day", "plenary", "ramp", …).
    pub name: String,
    /// How long to run.
    pub duration_us: Micros,
    /// The configured simulator.
    pub sim: Simulator,
}

/// Per-station outcome summary (ground truth, for fairness ablations).
#[derive(Clone, Copy, Debug)]
pub struct StationSummary {
    /// Station MAC.
    pub mac: MacAddr,
    /// True for APs.
    pub is_ap: bool,
    /// Whether the station's policy uses RTS/CTS for data.
    pub uses_rts: bool,
    /// MSDUs delivered.
    pub delivered: u64,
    /// Transmission attempts (incl. retries).
    pub attempts: u64,
    /// MSDUs abandoned at the retry limit.
    pub retry_drops: u64,
    /// MSDUs dropped at the full queue.
    pub queue_drops: u64,
    /// Total enqueue→delivery delay, µs.
    pub delay_total_us: u64,
}

/// Everything a figure harness needs from one scenario run.
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// One captured trace per sniffer (the paper's per-channel data sets).
    pub traces: Vec<Vec<FrameRecord>>,
    /// Capture-performance counters per sniffer.
    pub sniffer_stats: Vec<SnifferStats>,
    /// Everything that actually went on air.
    pub ground_truth: Vec<FrameRecord>,
    /// `(transmissions, collisions)` per channel.
    pub medium_stats: Vec<(u64, u64)>,
    /// Per-station outcomes.
    pub stations: Vec<StationSummary>,
    /// Discrete events the simulator processed — the cost denominator run
    /// reports use for events-per-second throughput.
    pub events_processed: u64,
    /// Frames that actually went on air (ground-truth transmission count,
    /// independent of `record_ground_truth`).
    pub frames_on_air: u64,
    /// Event-queue churn counters (pushed/popped/stale-dropped/cascaded).
    pub queue: QueueStats,
}

impl Scenario {
    /// Runs the scenario to completion.
    pub fn run(mut self) -> ScenarioResult {
        self.sim.run_until(self.duration_us);
        collect_result(self.name, &mut self.sim)
    }
}

/// Drains a finished simulator into a [`ScenarioResult`] — shared by
/// [`Scenario::run`] and the mobility driver
/// ([`crate::mobility::MobileScenario::run`]).
pub(crate) fn collect_result(name: String, sim: &mut Simulator) -> ScenarioResult {
    let sniffer_stats = sim.sniffers().iter().map(|s| s.stats).collect();
    let traces = sim
        .sniffers_mut()
        .iter_mut()
        .map(|s| std::mem::take(&mut s.trace))
        .collect();
    let stations = sim
        .stations()
        .iter()
        .map(|s| StationSummary {
            mac: s.mac,
            is_ap: s.is_ap(),
            uses_rts: s.rts_policy != RtsPolicy::Never,
            delivered: s.stats.delivered,
            attempts: s.stats.tx_attempts,
            retry_drops: s.stats.retry_drops,
            queue_drops: s.stats.queue_drops,
            delay_total_us: s.stats.delivery_delay_total_us,
        })
        .collect();
    ScenarioResult {
        name,
        traces,
        sniffer_stats,
        ground_truth: std::mem::take(&mut sim.ground_truth.records),
        medium_stats: sim.medium_stats(),
        stations,
        events_processed: sim.events_processed(),
        frames_on_air: sim.ground_truth.transmissions,
        queue: sim.queue_stats(),
    }
}

/// Venue width (m), after Fig 2's ~210 ft.
pub const VENUE_W: f64 = 64.0;
/// Venue depth (m).
pub const VENUE_H: f64 = 36.0;

/// The calibrated radio environment of a crowded conference hall:
/// body-heavy path loss (exponent 3.5), modest card power, carrier sense
/// covering the hall (the venue had no significant hidden-terminal
/// pathology), and strong slow shadow fading (σ = 10 dB held ~4 s) from the
/// moving crowd — the mechanism that spreads links across all four rates
/// and lets ARF produce the paper's rate mix.
pub fn ietf_radio(seed: u64) -> RadioConfig {
    RadioConfig {
        tx_power_dbm: 13.0,
        pathloss_exp: 3.5,
        cs_threshold_dbm: -92.0,
        fading: Fading {
            sigma_db: 10.0,
            coherence_us: 4_000_000,
            seed,
        },
        ..RadioConfig::default()
    }
}

/// Per-user mean frame rate (each direction), before the activity factor:
/// most attendees idle with occasional bursts, a few heavy users.
pub(crate) fn draw_user_fps(rng: &mut SmallRng) -> f64 {
    let roll: f64 = rng.gen();
    if roll < 0.70 {
        rng.gen_range(0.05..1.0)
    } else if roll < 0.95 {
        rng.gen_range(1.0..5.0)
    } else {
        rng.gen_range(5.0..20.0)
    }
}

/// Builds a client's two flows: conference traffic is download-dominated
/// and bursty (page loads, mail fetches); a small uploader minority pushes
/// data the other way.
pub(crate) fn draw_traffic(rng: &mut SmallRng, fps: f64) -> TrafficProfile {
    let uploader = rng.gen_bool(0.04);
    let (up, down) = if uploader {
        (fps * 3.0, fps * 0.5)
    } else {
        (fps * 0.25, fps * 4.0)
    };
    TrafficProfile {
        uplink: FlowConfig::bursty(up, SizeDist::ietf_mix(), 20.0),
        downlink: FlowConfig::bursty(down, SizeDist::ietf_mix(), 25.0),
    }
}

/// Laptops of the era aggressively toggled power save between fetches:
/// a sizeable minority of clients emit Null-frame chatter.
pub(crate) fn draw_power_save(rng: &mut SmallRng) -> Option<u64> {
    if rng.gen_bool(0.4) {
        Some(rng.gen_range(10_000_000..40_000_000))
    } else {
        None
    }
}

/// The AP grid: nine positions across the floor, channels assigned
/// round-robin over 1/6/11 so that every channel covers the venue.
pub fn ap_grid() -> Vec<(Pos, usize)> {
    let mut aps = Vec::new();
    let mut i = 0usize;
    for gx in 0..3 {
        for gy in 0..3 {
            let pos = Pos::new(
                VENUE_W * (0.17 + 0.33 * gx as f64),
                VENUE_H * (0.17 + 0.33 * gy as f64),
            );
            aps.push((pos, i % 3));
            i += 1;
        }
    }
    aps
}

/// The channel of the geographically nearest AP — the association rule a
/// controller-less network would use (the sessions use round-robin
/// balancing instead, mirroring the Airespace controller).
pub fn nearest_channel(aps: &[(Pos, usize)], pos: Pos) -> usize {
    aps.iter()
        .min_by(|a, b| a.0.distance_to(pos).total_cmp(&b.0.distance_to(pos)))
        .map(|&(_, ch)| ch)
        .expect("APs exist")
}

fn build_session_spec(
    name: &str,
    scale: SessionScale,
    attendance: Attendance,
    user_pos: impl Fn(&mut SmallRng) -> Pos,
    sniffer_pos: [Pos; 3],
) -> ShardScenario {
    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0x005e_5510);
    let mut spec = ShardSpec::new(SimConfig {
        radio: ietf_radio(scale.seed),
        ..SimConfig::ietf_three_channels(scale.seed)
    });
    let aps = ap_grid();
    for &(pos, ch) in &aps {
        spec.add_ap(pos, ch, 6); // ssid "ietf62"
    }
    for i in 0..scale.users {
        let pos = user_pos(&mut rng);
        // The Airespace controller balanced clients across the three
        // orthogonal channels; round-robin reproduces its gross effect.
        let channel_idx = i % 3;
        let (join, leave) = attendance.draw(&mut rng);
        let fps = draw_user_fps(&mut rng) * scale.activity;
        let rts = rng.gen_bool(scale.rts_fraction);
        let traffic = draw_traffic(&mut rng, fps);
        let power_save = draw_power_save(&mut rng);
        spec.add_client(ClientConfig {
            pos,
            channel_idx,
            rts_policy: if rts {
                RtsPolicy::Threshold(400)
            } else {
                RtsPolicy::Never
            },
            adaptation: RateAdaptation::Arf(Rate::R11),
            traffic,
            join_at_us: join,
            leave_at_us: leave,
            power_save_interval_us: power_save,
            frag_threshold: None,
        });
    }
    for (idx, pos) in sniffer_pos.into_iter().enumerate() {
        spec.add_sniffer(SnifferConfig {
            pos,
            channel_idx: idx,
            // 2005-era PCMCIA capture hardware saturates under load (Yeo et
            // al.), one of the paper's three loss causes.
            capacity_fps: 1_500.0,
            burst: 200.0,
            ..SnifferConfig::default()
        });
    }
    ShardScenario {
        name: name.to_string(),
        duration_us: scale.duration_s * SECOND,
        spec,
    }
}

fn build_session(
    name: &str,
    scale: SessionScale,
    attendance: Attendance,
    user_pos: impl Fn(&mut SmallRng) -> Pos,
    sniffer_pos: [Pos; 3],
) -> Scenario {
    // The spec replays the identical adder sequence, so this is
    // byte-identical to having called the `Simulator` adders directly.
    let s = build_session_spec(name, scale, attendance, user_pos, sniffer_pos);
    Scenario {
        name: s.name,
        duration_us: s.duration_us,
        sim: s.spec.build_unsharded(),
    }
}

/// The day session: users spread over every room of the floor, the three
/// sniffers placed at three spots inside the busiest room (Fig 2).
pub fn ietf_day(scale: SessionScale) -> Scenario {
    let attendance = Attendance::day(scale.duration_s);
    build_session(
        "day",
        scale,
        attendance,
        |rng| Pos::new(rng.gen_range(0.0..VENUE_W), rng.gen_range(0.0..VENUE_H)),
        [
            Pos::new(7.0, 27.0),
            Pos::new(13.0, 31.0),
            Pos::new(10.0, 25.0),
        ],
    )
}

/// The plenary session: every user packed into the single merged ballroom,
/// sniffers co-located at one point inside it (Fig 3).
pub fn ietf_plenary(scale: SessionScale) -> Scenario {
    let s = ietf_plenary_sharded(scale);
    Scenario {
        name: s.name,
        duration_us: s.duration_us,
        sim: s.spec.build_unsharded(),
    }
}

/// [`ietf_plenary`] recorded as a [`ShardScenario`], for
/// `congestion_bench::streaming::run_sharded`: one dense coupled cell (a
/// single RF-isolation component), so parallelism comes from time-window
/// lockstep sharding rather than component sharding.
pub fn ietf_plenary_sharded(scale: SessionScale) -> ShardScenario {
    let attendance = Attendance::plenary(scale.duration_s);
    let center = Pos::new(VENUE_W * 0.5, VENUE_H * 0.7);
    build_session_spec(
        "plenary",
        scale,
        attendance,
        move |rng| {
            // Clustered seating: gaussian-ish around the hall center.
            let r: f64 = rng.gen_range(0.0..1.0);
            let radius = 16.0 * r.sqrt();
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            Pos::new(
                (center.x + radius * theta.cos()).clamp(0.0, VENUE_W),
                (center.y + radius * theta.sin()).clamp(0.0, VENUE_H),
            )
        },
        [center, center, center],
    )
}

/// A single-channel load ramp: users join steadily through the run so the
/// channel sweeps from idle to far beyond saturation — populating every
/// utilization bin for Figures 6–15.
pub fn load_ramp(seed: u64, users: usize, duration_s: u64, per_user_fps: f64) -> Scenario {
    load_ramp_with(
        seed,
        users,
        duration_s,
        per_user_fps,
        RateAdaptation::Arf(Rate::R11),
        0.02,
    )
}

/// [`load_ramp`] with explicit rate adaptation and RTS fraction (for the
/// ablation benches).
pub fn load_ramp_with(
    seed: u64,
    users: usize,
    duration_s: u64,
    per_user_fps: f64,
    adaptation: RateAdaptation,
    rts_fraction: f64,
) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x004a_3b77);
    let mut sim = Simulator::new(SimConfig {
        seed,
        radio: ietf_radio(seed),
        ..SimConfig::default()
    });
    // Joins stream in through the whole ramp, each an incremental O(N)
    // topology extension; the hint sizes the cache once so no join pays a
    // re-stride.
    sim.reserve_stations(3 + users, 1);
    // Three APs sharing the channel, as co-channel cells in a dense
    // deployment do.
    sim.add_ap(Pos::new(16.0, 18.0), 0, 6);
    sim.add_ap(Pos::new(32.0, 18.0), 0, 6);
    sim.add_ap(Pos::new(48.0, 18.0), 0, 6);
    for i in 0..users {
        let frac = i as f64 / users.max(1) as f64;
        let join_us = (frac * 0.8 * duration_s as f64) as u64 * SECOND;
        let pos = Pos::new(rng.gen_range(0.0..VENUE_W), rng.gen_range(0.0..VENUE_H));
        let rts = rng.gen_bool(rts_fraction);
        let traffic = draw_traffic(&mut rng, per_user_fps);
        let power_save = draw_power_save(&mut rng);
        sim.add_client(ClientConfig {
            pos,
            channel_idx: 0,
            rts_policy: if rts {
                RtsPolicy::Threshold(400)
            } else {
                RtsPolicy::Never
            },
            adaptation,
            traffic,
            join_at_us: join_us,
            leave_at_us: None,
            power_save_interval_us: power_save,
            frag_threshold: None,
        });
    }
    sim.add_sniffer(SnifferConfig {
        pos: Pos::new(30.0, 17.0),
        channel_idx: 0,
        ..SnifferConfig::default()
    });
    Scenario {
        name: "ramp".to_string(),
        duration_us: duration_s * SECOND,
        sim,
    }
}

/// Scale of the venue-campus scenario: several conference halls far enough
/// apart that their radios never interact — the workload whose RF-isolation
/// components the sharded runner parallelizes over.
#[derive(Clone, Copy, Debug)]
pub struct CampusScale {
    /// RNG seed.
    pub seed: u64,
    /// Number of halls. Each hall gets one AP per orthogonal channel.
    pub halls: usize,
    /// Total users across the campus (spread evenly over halls).
    pub users: usize,
    /// Session length in seconds.
    pub duration_s: u64,
    /// Multiplier on per-user traffic intensity.
    pub activity: f64,
}

impl CampusScale {
    /// The venue-5k pinned scale: ≈5,000 users and ~40 APs over channels
    /// 1/6/11 in 13 isolated halls — the whole conference campus rather
    /// than the one instrumented floor.
    pub fn venue_5k(seed: u64) -> CampusScale {
        CampusScale {
            seed,
            halls: 13,
            users: 5_000,
            duration_s: 10,
            activity: 0.5,
        }
    }
}

/// A scenario recorded as a [`ShardSpec`]: buildable unsharded (identical
/// to the plain adders) or partitioned into RF-isolation shards.
pub struct ShardScenario {
    /// Scenario name.
    pub name: String,
    /// How long to run.
    pub duration_us: Micros,
    /// The recorded build.
    pub spec: ShardSpec,
}

/// Hall spacing, metres. Far beyond the pair-coupling floor of
/// [`ietf_radio`] (≈235 m), so halls are RF-isolated by construction.
pub const HALL_SPACING: f64 = 1_000.0;

/// A multi-hall conference campus: `halls` copies of the venue floor in a
/// row, each with one AP per orthogonal channel and an even share of the
/// users; three sniffers instrument the first hall (one per channel), as
/// the paper instruments its busiest room. Every (hall, channel) pair is
/// one RF-isolation component.
pub fn venue_campus(scale: CampusScale) -> ShardScenario {
    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0xca_3b05);
    let mut spec = ShardSpec::new(SimConfig {
        radio: ietf_radio(scale.seed),
        ..SimConfig::ietf_three_channels(scale.seed)
    });
    let halls = scale.halls.max(1);
    let hall_x = |h: usize| h as f64 * HALL_SPACING;
    // APs first (keys below every client), hall-major.
    for h in 0..halls {
        for ch in 0..3usize {
            spec.add_ap(
                Pos::new(
                    hall_x(h) + VENUE_W * (0.25 + 0.25 * ch as f64),
                    VENUE_H * 0.5,
                ),
                ch,
                6,
            );
        }
    }
    for i in 0..scale.users {
        let hall = i % halls;
        let pos = Pos::new(
            hall_x(hall) + rng.gen_range(0.0..VENUE_W),
            rng.gen_range(0.0..VENUE_H),
        );
        let channel_idx = (i / halls) % 3;
        let fps = draw_user_fps(&mut rng) * scale.activity;
        let rts = rng.gen_bool(0.02);
        let traffic = draw_traffic(&mut rng, fps);
        let power_save = draw_power_save(&mut rng);
        // Users trickle in over the first fifth of the session.
        let join_at_us = rng.gen_range(0..(scale.duration_s * SECOND / 5).max(1));
        spec.add_client(ClientConfig {
            pos,
            channel_idx,
            rts_policy: if rts {
                RtsPolicy::Threshold(400)
            } else {
                RtsPolicy::Never
            },
            adaptation: RateAdaptation::Arf(Rate::R11),
            traffic,
            join_at_us,
            leave_at_us: None,
            power_save_interval_us: power_save,
            frag_threshold: None,
        });
    }
    for ch in 0..3usize {
        spec.add_sniffer(SnifferConfig {
            pos: Pos::new(VENUE_W * 0.5, VENUE_H * 0.6),
            channel_idx: ch,
            capacity_fps: 1_500.0,
            burst: 200.0,
            ..SnifferConfig::default()
        });
    }
    ShardScenario {
        name: format!("campus-{}x{}", halls, scale.users),
        duration_us: scale.duration_s * SECOND,
        spec,
    }
}

/// Table 1 of the paper: the two data sets.
pub struct DataSetInfo {
    /// Data-set name.
    pub name: &'static str,
    /// Collection date.
    pub date: &'static str,
    /// Channel number.
    pub channel: u8,
    /// Collection time span.
    pub time: &'static str,
}

/// The rows of Table 1.
pub fn table1() -> Vec<DataSetInfo> {
    vec![
        DataSetInfo {
            name: "Day",
            date: "March 9 2005",
            channel: 1,
            time: "11:53–17:30 hrs",
        },
        DataSetInfo {
            name: "Day",
            date: "March 9 2005",
            channel: 6,
            time: "11:54–17:30 hrs",
        },
        DataSetInfo {
            name: "Day",
            date: "March 9 2005",
            channel: 11,
            time: "11:56–17:30 hrs",
        },
        DataSetInfo {
            name: "Plenary",
            date: "March 10 2005",
            channel: 1,
            time: "19:30–22:30 hrs",
        },
        DataSetInfo {
            name: "Plenary",
            date: "March 10 2005",
            channel: 6,
            time: "19:31–22:30 hrs",
        },
        DataSetInfo {
            name: "Plenary",
            date: "March 10 2005",
            channel: 11,
            time: "19:32–22:30 hrs",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ap_grid_covers_three_channels() {
        let aps = ap_grid();
        assert_eq!(aps.len(), 9);
        for ch in 0..3 {
            assert_eq!(aps.iter().filter(|&&(_, c)| c == ch).count(), 3);
        }
    }

    #[test]
    fn nearest_channel_is_deterministic() {
        let aps = ap_grid();
        let p = Pos::new(10.0, 10.0);
        assert_eq!(nearest_channel(&aps, p), nearest_channel(&aps, p));
    }

    #[test]
    fn table1_has_six_rows() {
        let t = table1();
        assert_eq!(t.len(), 6);
        assert_eq!(t.iter().filter(|r| r.name == "Day").count(), 3);
        let channels: Vec<u8> = t.iter().map(|r| r.channel).collect();
        assert_eq!(&channels[..3], &[1, 6, 11]);
    }

    #[test]
    fn day_scenario_builds_and_runs_briefly() {
        let mut scale = SessionScale::day_default(42);
        scale.users = 30;
        scale.duration_s = 10;
        let result = ietf_day(scale).run();
        assert_eq!(result.traces.len(), 3);
        let total: usize = result.traces.iter().map(|t| t.len()).sum();
        assert!(total > 100, "day traces captured {total} frames");
        assert_eq!(result.stations.len(), 9 + 30);
    }

    #[test]
    fn plenary_users_are_clustered() {
        let mut scale = SessionScale::plenary_default(43);
        scale.users = 50;
        scale.duration_s = 5;
        let sc = ietf_plenary(scale);
        let center = Pos::new(VENUE_W * 0.5, VENUE_H * 0.7);
        let mean_dist: f64 = sc
            .sim
            .stations()
            .iter()
            .filter(|s| !s.is_ap())
            .map(|s| s.pos.distance_to(center))
            .sum::<f64>()
            / 50.0;
        assert!(mean_dist < 14.0, "mean distance {mean_dist}");
    }

    #[test]
    fn ramp_scenario_saturates_by_the_end() {
        let result = load_ramp(44, 60, 60, 4.0).run();
        let trace = &result.traces[0];
        assert!(!trace.is_empty());
        // Frame rate in the last 10 s must exceed the first 10 s.
        let end = result.ground_truth.last().unwrap().timestamp_us;
        let early = trace
            .iter()
            .filter(|r| r.timestamp_us < 10 * SECOND)
            .count();
        let late = trace
            .iter()
            .filter(|r| r.timestamp_us > end - 10 * SECOND)
            .count();
        assert!(late > early * 2, "late {late} vs early {early}");
    }

    #[test]
    fn deterministic_scenarios() {
        let mut scale = SessionScale::day_default(7);
        scale.users = 20;
        scale.duration_s = 5;
        let a = ietf_day(scale).run();
        let b = ietf_day(scale).run();
        assert_eq!(a.traces[0], b.traces[0]);
        assert_eq!(a.ground_truth.len(), b.ground_truth.len());
    }
}
