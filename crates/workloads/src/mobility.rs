//! Random-waypoint mobility: the churn workload family.
//!
//! The paper's congestion dynamics are driven by *churn* — attendees
//! arriving through the registration ramp, draining between rooms between
//! sessions, and roaming across the Airespace controller's APs as they
//! move. This module adds the movement half of that story on top of the
//! incrementally maintained sensing topology
//! ([`wifi_sim::topology::SensingTopology`]):
//!
//! * [`WaypointMobility`] walks a subset of clients between uniformly drawn
//!   waypoints on the venue floor, advanced once per *coherence tick* — the
//!   shadow-fading coherence interval, the natural timescale below which
//!   the channel model already treats positions as effectively static.
//! * Each move is one O(N) [`Simulator::move_station`] (dirty topology
//!   row + column, per-station fade-cache column invalidation — not a
//!   global flush), followed by a strongest-AP reassociation check with
//!   hysteresis ([`Simulator::reassociate_strongest`]), mirroring how
//!   aggressive-roaming-era cards hopped APs as RSSI shifted.
//! * [`MobileScenario`] is the driver: simulate a tick, move the walkers,
//!   repeat — and [`mobile_venue`] instantiates the pinned churn workload
//!   (`BENCH_sim_churn.json`).
//!
//! Determinism: one seeded [`SmallRng`] drives every walker, advanced in
//! ascending node order each tick, and all moves of a tick are applied
//! before any reassociation scan — see `docs/DETERMINISM.md` §mobility for
//! the ordering contract.

use crate::scenario::{
    ap_grid, collect_result, draw_power_save, draw_traffic, draw_user_fps, ietf_radio,
    ScenarioResult, VENUE_H, VENUE_W,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wifi_frames::phy::Rate;
use wifi_frames::timing::{Micros, SECOND};
use wifi_sim::geometry::Pos;
use wifi_sim::rate::RateAdaptation;
use wifi_sim::sniffer::SnifferConfig;
use wifi_sim::station::RtsPolicy;
use wifi_sim::{ClientConfig, SimConfig, Simulator};

/// Tunables of the waypoint walk.
#[derive(Clone, Copy, Debug)]
pub struct WaypointConfig {
    /// Walkable floor, `(width, height)` metres; waypoints are uniform
    /// over it.
    pub bounds: (f64, f64),
    /// Walking speed draw, m/s (pedestrian: ~0.5–1.5).
    pub speed_mps: (f64, f64),
    /// Dwell at each waypoint, in whole ticks.
    pub pause_ticks: (u32, u32),
    /// Reassociation hysteresis, dB: roam only when some other AP beats
    /// the current one's path RSSI by at least this much.
    pub hysteresis_db: f64,
}

impl Default for WaypointConfig {
    fn default() -> WaypointConfig {
        WaypointConfig {
            bounds: (VENUE_W, VENUE_H),
            speed_mps: (0.5, 1.5),
            pause_ticks: (0, 3),
            hysteresis_db: 6.0,
        }
    }
}

/// One walking client.
#[derive(Clone, Copy, Debug)]
struct Walker {
    node: usize,
    pos: Pos,
    target: Pos,
    speed_mps: f64,
    pause_left: u32,
}

/// Random-waypoint walks for a set of clients, advanced on coherence
/// ticks. All randomness comes from one seeded RNG consumed in ascending
/// node order, so a walk schedule is a pure function of `(seed, ticks)`.
pub struct WaypointMobility {
    rng: SmallRng,
    cfg: WaypointConfig,
    walkers: Vec<Walker>,
    /// Total positions applied via [`Simulator::move_station`].
    pub moves: u64,
    /// Total roams triggered via [`Simulator::reassociate_strongest`].
    pub roams: u64,
}

impl WaypointMobility {
    /// A new mobility driver. `seed` is independent of the simulator's
    /// PHY/traffic seeds.
    pub fn new(seed: u64, cfg: WaypointConfig) -> WaypointMobility {
        WaypointMobility {
            rng: SmallRng::seed_from_u64(seed ^ 0x000b_17e5),
            cfg,
            walkers: Vec::new(),
            moves: 0,
            roams: 0,
        }
    }

    /// Registers station `node` (its current position `pos`) as a walker
    /// and draws its first waypoint. Call in ascending node order to keep
    /// the draw sequence canonical.
    pub fn add_walker(&mut self, node: usize, pos: Pos) {
        let target = self.draw_waypoint();
        let speed_mps = self
            .rng
            .gen_range(self.cfg.speed_mps.0..=self.cfg.speed_mps.1);
        self.walkers.push(Walker {
            node,
            pos,
            target,
            speed_mps,
            pause_left: 0,
        });
    }

    /// Number of registered walkers.
    pub fn walker_count(&self) -> usize {
        self.walkers.len()
    }

    fn draw_waypoint(&mut self) -> Pos {
        Pos::new(
            self.rng.gen_range(0.0..self.cfg.bounds.0),
            self.rng.gen_range(0.0..self.cfg.bounds.1),
        )
    }

    /// Advances every walker by one tick of `tick_us` microseconds and
    /// applies the resulting moves to `sim`. Two strictly ordered passes —
    /// all moves first (ascending node order), then all reassociation
    /// checks (same order) — so every roam decision sees the tick's
    /// complete post-move topology, not a half-applied one.
    pub fn advance(&mut self, sim: &mut Simulator, tick_us: Micros) {
        let tick_s = tick_us as f64 / SECOND as f64;
        let mut moved: Vec<(usize, Pos)> = Vec::with_capacity(self.walkers.len());
        for w in &mut self.walkers {
            if w.pause_left > 0 {
                w.pause_left -= 1;
                continue;
            }
            let (dx, dy) = (w.target.x - w.pos.x, w.target.y - w.pos.y);
            let dist = (dx * dx + dy * dy).sqrt();
            let step = w.speed_mps * tick_s;
            if dist <= step {
                // Arrived: dwell, then pick the next waypoint.
                w.pos = w.target;
                w.pause_left = self
                    .rng
                    .gen_range(self.cfg.pause_ticks.0..=self.cfg.pause_ticks.1);
                w.target = Pos::new(
                    self.rng.gen_range(0.0..self.cfg.bounds.0),
                    self.rng.gen_range(0.0..self.cfg.bounds.1),
                );
                w.speed_mps = self
                    .rng
                    .gen_range(self.cfg.speed_mps.0..=self.cfg.speed_mps.1);
            } else {
                w.pos = Pos::new(w.pos.x + dx / dist * step, w.pos.y + dy / dist * step);
            }
            moved.push((w.node, w.pos));
        }
        for &(node, pos) in &moved {
            sim.move_station(node, pos);
            self.moves += 1;
        }
        for &(node, _) in &moved {
            if sim.reassociate_strongest(node, self.cfg.hysteresis_db) {
                self.roams += 1;
            }
        }
    }
}

/// A scenario whose clients move: simulate to the next coherence tick,
/// advance the walkers, repeat.
pub struct MobileScenario {
    /// Scenario name ("churn", …).
    pub name: String,
    /// How long to run.
    pub duration_us: Micros,
    /// Mobility tick — the shadow-fading coherence interval.
    pub tick_us: Micros,
    /// The configured simulator.
    pub sim: Simulator,
    /// The walk driver.
    pub mobility: WaypointMobility,
}

impl MobileScenario {
    /// Runs to completion, interleaving simulation and movement. The final
    /// boundary applies no moves (there is nothing left to observe them).
    pub fn run(mut self) -> ScenarioResult {
        let mut now: Micros = 0;
        while now < self.duration_us {
            now = (now + self.tick_us).min(self.duration_us);
            self.sim.run_until(now);
            if now < self.duration_us {
                self.mobility.advance(&mut self.sim, self.tick_us);
            }
        }
        collect_result(self.name, &mut self.sim)
    }
}

/// Scale of the mobile-venue churn scenario.
#[derive(Clone, Copy, Debug)]
pub struct ChurnScale {
    /// RNG seed (placement, traffic, walks).
    pub seed: u64,
    /// Total users on the floor.
    pub users: usize,
    /// Session length in seconds.
    pub duration_s: u64,
    /// Multiplier on per-user traffic intensity.
    pub activity: f64,
    /// Fraction of users that walk (the rest sit).
    pub walker_fraction: f64,
}

impl ChurnScale {
    /// The pinned churn scale (`BENCH_sim_churn.json`): a venue floor's
    /// worth of users, a third of them wandering between rooms for the
    /// whole session.
    pub fn venue_default(seed: u64) -> ChurnScale {
        ChurnScale {
            seed,
            users: 160,
            duration_s: 60,
            activity: 1.0,
            walker_fraction: 0.35,
        }
    }
}

/// The mobile venue: the nine-AP grid over channels 1/6/11, users joining
/// through a ramp, a walker subset wandering the floor and roaming between
/// APs, three sniffers (one per channel) watching the busiest room.
pub fn mobile_venue(scale: ChurnScale) -> MobileScenario {
    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0x00c4_0a1e);
    let mut sim = Simulator::new(SimConfig {
        radio: ietf_radio(scale.seed),
        ..SimConfig::ietf_three_channels(scale.seed)
    });
    let aps = ap_grid();
    sim.reserve_stations(aps.len() + scale.users, 3);
    for &(pos, ch) in &aps {
        sim.add_ap(pos, ch, 6); // ssid "ietf62"
    }
    let mut mobility = WaypointMobility::new(scale.seed, WaypointConfig::default());
    let duration_us = scale.duration_s * SECOND;
    for i in 0..scale.users {
        let pos = Pos::new(rng.gen_range(0.0..VENUE_W), rng.gen_range(0.0..VENUE_H));
        let frac = i as f64 / scale.users.max(1) as f64;
        let join_us = (frac * 0.5 * duration_us as f64) as u64;
        let fps = draw_user_fps(&mut rng) * scale.activity;
        let traffic = draw_traffic(&mut rng, fps);
        let power_save = draw_power_save(&mut rng);
        let walks = rng.gen_bool(scale.walker_fraction);
        let node = sim.add_client(ClientConfig {
            pos,
            channel_idx: i % 3,
            rts_policy: RtsPolicy::Never,
            adaptation: RateAdaptation::Arf(Rate::R11),
            traffic,
            join_at_us: join_us,
            leave_at_us: None,
            power_save_interval_us: power_save,
            frag_threshold: None,
        });
        if walks {
            mobility.add_walker(node, pos);
        }
    }
    for (idx, pos) in [
        Pos::new(7.0, 27.0),
        Pos::new(13.0, 31.0),
        Pos::new(10.0, 25.0),
    ]
    .into_iter()
    .enumerate()
    {
        sim.add_sniffer(SnifferConfig {
            pos,
            channel_idx: idx,
            capacity_fps: 1_500.0,
            burst: 200.0,
            ..SnifferConfig::default()
        });
    }
    MobileScenario {
        name: "churn".to_string(),
        duration_us,
        // The mobility tick is the fading coherence interval of
        // `ietf_radio` (4 s): below it the channel model already holds the
        // environment fixed, so finer movement would be invisible.
        tick_us: 4 * SECOND,
        sim,
        mobility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_run_is_deterministic_in_its_seed() {
        let run = |seed: u64| {
            let result = mobile_venue(ChurnScale {
                seed,
                users: 12,
                duration_s: 20,
                activity: 0.5,
                walker_fraction: 1.0,
            })
            .run();
            (result.events_processed, result.frames_on_air)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same churn run");
    }

    #[test]
    fn mobile_venue_roams_and_moves() {
        let mut sc = mobile_venue(ChurnScale {
            seed: 3,
            users: 24,
            duration_s: 40,
            activity: 0.5,
            walker_fraction: 1.0,
        });
        let ticks = sc.duration_us / sc.tick_us;
        // Drive manually so the mobility counters stay inspectable.
        let mut now = 0;
        while now < sc.duration_us {
            now = (now + sc.tick_us).min(sc.duration_us);
            sc.sim.run_until(now);
            if now < sc.duration_us {
                sc.mobility.advance(&mut sc.sim, sc.tick_us);
            }
        }
        assert!(sc.mobility.moves > 0, "walkers moved");
        assert!(
            sc.mobility.moves <= sc.mobility.walker_count() as u64 * ticks,
            "at most one move per walker per tick"
        );
        for w in &sc.mobility.walkers {
            assert!(w.pos.x >= 0.0 && w.pos.x <= VENUE_W);
            assert!(w.pos.y >= 0.0 && w.pos.y <= VENUE_H);
        }
    }
}
