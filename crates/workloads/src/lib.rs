//! # ietf-workloads
//!
//! Scenario builders reproducing the workload of the 62nd IETF meeting for
//! the congestion study: the **day session** (users spread across rooms,
//! three sniffers inside the busiest room), the **plenary session** (everyone
//! packed into one merged ballroom, sniffers co-located), and a **load ramp**
//! that sweeps a single channel from idle to deep saturation so every
//! utilization bin of the paper's figures is populated.
//!
//! All scenarios are deterministic in their seed and scale-parameterized:
//! the defaults run in seconds on a laptop; turning `users`/`duration_s` up
//! approaches the original deployment's scale.

#![warn(missing_docs)]

pub mod attendance;
pub mod mobility;
pub mod scenario;

pub use attendance::Attendance;
pub use mobility::{mobile_venue, ChurnScale, MobileScenario, WaypointConfig, WaypointMobility};
pub use scenario::{
    ietf_day, ietf_plenary, ietf_plenary_sharded, ietf_radio, load_ramp, load_ramp_with, table1,
    venue_campus, CampusScale, DataSetInfo, Scenario, ScenarioResult, SessionScale, ShardScenario,
    StationSummary,
};
