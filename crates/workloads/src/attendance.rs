//! Attendance schedules: when users join and leave the venue.
//!
//! Figure 4(b) of the paper shows the associated-user count over a session:
//! a ramp at the start, a plateau with slow churn, and departures near the
//! end (day peak 523 users; plenary peak 325). [`Attendance`] generates
//! per-user `(join, leave)` times reproducing that envelope.

use rand::rngs::SmallRng;
use rand::Rng;
use wifi_frames::timing::{Micros, SECOND};

/// An attendance envelope for one session.
#[derive(Clone, Copy, Debug)]
pub struct Attendance {
    /// Session length in seconds.
    pub duration_s: u64,
    /// Fraction of the session spent ramping in at the start (0..1).
    pub rampin_frac: f64,
    /// Fraction of the session over which users trickle out at the end.
    pub rampout_frac: f64,
    /// Probability a user leaves early (mid-session churn) instead of
    /// staying to the end.
    pub churn_prob: f64,
}

impl Attendance {
    /// The day-session envelope: staggered morning arrivals, mild churn.
    pub fn day(duration_s: u64) -> Attendance {
        Attendance {
            duration_s,
            rampin_frac: 0.15,
            rampout_frac: 0.10,
            churn_prob: 0.15,
        }
    }

    /// The plenary envelope: a fast pile-in, very little churn.
    pub fn plenary(duration_s: u64) -> Attendance {
        Attendance {
            duration_s,
            rampin_frac: 0.08,
            rampout_frac: 0.15,
            churn_prob: 0.05,
        }
    }

    /// Draws one user's `(join, leave)` times in microseconds.
    /// `leave` is `None` for users who stay past the simulation end.
    pub fn draw(&self, rng: &mut SmallRng) -> (Micros, Option<Micros>) {
        let dur = self.duration_s as f64;
        let join_s = rng.gen_range(0.0..dur * self.rampin_frac.max(1e-6));
        let leave_s = if rng.gen_bool(self.churn_prob) {
            // Early leaver: uniformly somewhere after joining.
            Some(rng.gen_range((join_s + 30.0).min(dur - 1.0)..dur))
        } else if rng.gen_bool(0.7) {
            // Leaves during the final ramp-out.
            Some(rng.gen_range(dur * (1.0 - self.rampout_frac)..dur))
        } else {
            None // stays to the very end
        };
        (
            (join_s * SECOND as f64) as Micros,
            leave_s.map(|s| (s * SECOND as f64) as Micros),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn joins_fall_in_rampin_window() {
        let a = Attendance::day(3600);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..500 {
            let (join, _) = a.draw(&mut rng);
            assert!(join <= (3600.0 * 0.15 * 1e6) as u64);
        }
    }

    #[test]
    fn leaves_follow_joins() {
        let a = Attendance::plenary(3600);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..500 {
            let (join, leave) = a.draw(&mut rng);
            if let Some(leave) = leave {
                assert!(leave > join, "leave {leave} after join {join}");
                assert!(leave <= 3600 * 1_000_000);
            }
        }
    }

    #[test]
    fn most_plenary_users_stay_long() {
        let a = Attendance::plenary(1000);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 1000;
        let stayers = (0..n)
            .filter(|_| {
                let (_, leave) = a.draw(&mut rng);
                leave.is_none_or(|l| l > 800 * 1_000_000)
            })
            .count();
        assert!(stayers > n * 8 / 10, "stayers {stayers}/{n}");
    }
}
