//! # congestion-bench
//!
//! The figure-regeneration harness: one binary per table/figure of the
//! paper, plus ablation studies, all built on a shared dataset pipeline.
//!
//! Run any target with
//! `cargo run -p congestion-bench --release --bin <target>`:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 — the two data sets |
//! | `table2` | Table 2 — delay components |
//! | `fig4` | Fig 4(a) per-AP frames, 4(b) users, 4(c) unrecorded % |
//! | `fig5` | Fig 5(a,b) utilization time series, 5(c) histogram |
//! | `fig6` | Fig 6 — throughput & goodput vs utilization |
//! | `fig7` | Fig 7 — RTS/CTS frames per second vs utilization |
//! | `fig8_9` | Figs 8–9 — per-rate busy time and bytes vs utilization |
//! | `fig10_13` | Figs 10–13 — frame counts by size × rate vs utilization |
//! | `fig14` | Fig 14 — first-attempt acknowledgments vs utilization |
//! | `fig15` | Fig 15 — acceptance delay vs utilization |
//! | `ablation_rate` | A1 — rate-adaptation algorithms under congestion |
//! | `ablation_rtscts` | A2 — RTS/CTS adoption and fairness |
//! | `ablation_knee` | A3 — knee stability across workloads/seeds |
//! | `ablation_unrecorded` | A4 — estimator accuracy vs ground truth |
//! | `ablation_beacon` | A5 — beacon-reliability metric vs busy-time |
//! | `chaos_smoke` | fuzz smoke — seeded corrupted captures through the lossy ingesters (`--budget N`) |
//!
//! Set `CONG_QUICK=1` to shrink runs for smoke-testing. Every target also
//! accepts `--threads N` (sweep parallelism) and `--seeds N` (seeds per
//! configuration) — see [`sweep::SweepArgs`] — and writes a run report to
//! `results/<target>.run.json`.

#![warn(missing_docs)]

pub mod streaming;
pub mod sweep;

use congestion::persec::SecondStats;
use congestion::{analyze, UtilizationBins};
use ietf_workloads::{ietf_day, ietf_plenary, load_ramp, ScenarioResult, SessionScale};
pub use sweep::{run_cells, Cell, SweepArgs};
use wifi_sim::runner::RunReport;

/// True when the `CONG_QUICK` environment variable asks for smoke-scale
/// runs.
pub fn quick() -> bool {
    std::env::var("CONG_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Scales a count down in quick mode.
pub fn scaled(full: u64, quick_value: u64) -> u64 {
    if quick() {
        quick_value
    } else {
        full
    }
}

/// The day-session scale at the requested seed, shrunk in quick mode.
pub fn day_scale(seed: u64) -> SessionScale {
    let mut day = SessionScale::day_default(seed);
    if quick() {
        day.users = 40;
        day.duration_s = 20;
    }
    day
}

/// The plenary-session scale at the requested seed, shrunk in quick mode.
pub fn plenary_scale(seed: u64) -> SessionScale {
    let mut plenary = SessionScale::plenary_default(seed);
    if quick() {
        plenary.users = 40;
        plenary.duration_s = 20;
    }
    plenary
}

/// Base seed of the day session (plenary uses the next base).
pub const DAY_SEED: u64 = 21;
/// Base seed of the plenary session.
pub const PLENARY_SEED: u64 = 22;
/// Base seed of the load-ramp sweep behind Figures 6–15.
pub const RAMP_SEED: u64 = 11;

/// The pooled per-second dataset behind Figures 6–15: load-ramp sweeps (to
/// populate every utilization bin) plus the day and plenary sessions —
/// mirroring the paper's pooling of both sessions. The ramp runs
/// `args.seeds` seeds (one in quick mode); all cells execute on the sweep
/// engine's thread pool, and pooling happens in fixed cell order so the
/// dataset is identical for every `--threads` value.
pub fn figure_dataset(name: &str, args: &SweepArgs) -> (Vec<SecondStats>, RunReport) {
    let ramp_users = scaled(320, 60) as usize;
    let ramp_dur = scaled(700, 60);
    let ramp_seeds = if quick() {
        vec![RAMP_SEED]
    } else {
        args.seed_list(RAMP_SEED)
    };
    let mut cells: Vec<Cell> = ramp_seeds
        .into_iter()
        .map(|seed| {
            Cell::new(format!("ramp seed={seed}"), seed, move || {
                load_ramp(seed, ramp_users, ramp_dur, 1.7)
            })
        })
        .collect();
    cells.push(Cell::new(format!("day seed={DAY_SEED}"), DAY_SEED, || {
        ietf_day(day_scale(DAY_SEED))
    }));
    cells.push(Cell::new(
        format!("plenary seed={PLENARY_SEED}"),
        PLENARY_SEED,
        || ietf_plenary(plenary_scale(PLENARY_SEED)),
    ));
    let (results, report) = run_cells(name, args, cells);
    let mut seconds = Vec::new();
    for result in &results {
        for trace in &result.traces {
            seconds.extend(analyze(trace));
        }
    }
    (seconds, report)
}

/// Runs the two sessions across `args.seeds` seeds each and returns
/// `(day runs, plenary runs, report)` — the Figure 4 / 5 inputs. The first
/// element of each vector is the canonical seed
/// ([`DAY_SEED`] / [`PLENARY_SEED`]); further seeds feed the cross-seed
/// mean ± CI summaries.
pub fn session_results(
    name: &str,
    args: &SweepArgs,
) -> (Vec<ScenarioResult>, Vec<ScenarioResult>, RunReport) {
    let mut cells = Vec::new();
    for seed in args.seed_list(DAY_SEED) {
        cells.push(Cell::new(format!("day seed={seed}"), seed, move || {
            ietf_day(day_scale(seed))
        }));
    }
    for seed in args.seed_list(PLENARY_SEED) {
        cells.push(Cell::new(format!("plenary seed={seed}"), seed, move || {
            ietf_plenary(plenary_scale(seed))
        }));
    }
    let (mut results, report) = run_cells(name, args, cells);
    let plenary = results.split_off(args.seeds);
    (results, plenary, report)
}

/// Builds utilization bins over a pooled dataset.
pub fn bins_of(seconds: &[SecondStats]) -> UtilizationBins {
    UtilizationBins::build(seconds)
}

/// Prints a table header followed by rows, aligning on tabs for easy
/// copy-paste into plotting tools.
pub fn print_series(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
}

/// The utilization bins the paper's figures plot (30–99 %), restricted to
/// bins with enough seconds to average meaningfully.
pub fn occupied_bins(bins: &UtilizationBins) -> Vec<usize> {
    bins.occupied()
        .filter(|&(u, b)| (30..=99).contains(&u) && b.seconds >= 2)
        .map(|(u, _)| u)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_env_parsing() {
        // Not set in the test environment unless the harness set it.
        let _ = quick();
        assert_eq!(scaled(100, 5), if quick() { 5 } else { 100 });
    }

    #[test]
    fn print_series_smoke() {
        print_series("test", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
