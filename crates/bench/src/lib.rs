//! # congestion-bench
//!
//! The figure-regeneration harness: one binary per table/figure of the
//! paper, plus ablation studies, all built on a shared dataset pipeline.
//!
//! Run any target with
//! `cargo run -p congestion-bench --release --bin <target>`:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 — the two data sets |
//! | `table2` | Table 2 — delay components |
//! | `fig4` | Fig 4(a) per-AP frames, 4(b) users, 4(c) unrecorded % |
//! | `fig5` | Fig 5(a,b) utilization time series, 5(c) histogram |
//! | `fig6` | Fig 6 — throughput & goodput vs utilization |
//! | `fig7` | Fig 7 — RTS/CTS frames per second vs utilization |
//! | `fig8_9` | Figs 8–9 — per-rate busy time and bytes vs utilization |
//! | `fig10_13` | Figs 10–13 — frame counts by size × rate vs utilization |
//! | `fig14` | Fig 14 — first-attempt acknowledgments vs utilization |
//! | `fig15` | Fig 15 — acceptance delay vs utilization |
//! | `ablation_rate` | A1 — rate-adaptation algorithms under congestion |
//! | `ablation_rtscts` | A2 — RTS/CTS adoption and fairness |
//! | `ablation_knee` | A3 — knee stability across workloads/seeds |
//! | `ablation_unrecorded` | A4 — estimator accuracy vs ground truth |
//! | `ablation_beacon` | A5 — beacon-reliability metric vs busy-time |
//!
//! Set `CONG_QUICK=1` to shrink runs for smoke-testing.

#![warn(missing_docs)]

use congestion::persec::SecondStats;
use congestion::{analyze, UtilizationBins};
use ietf_workloads::{ietf_day, ietf_plenary, load_ramp, ScenarioResult, SessionScale};

/// True when the `CONG_QUICK` environment variable asks for smoke-scale
/// runs.
pub fn quick() -> bool {
    std::env::var("CONG_QUICK").map_or(false, |v| v != "0" && !v.is_empty())
}

/// Scales a count down in quick mode.
pub fn scaled(full: u64, quick_value: u64) -> u64 {
    if quick() {
        quick_value
    } else {
        full
    }
}

/// The pooled per-second dataset behind Figures 6–15: load-ramp sweeps (to
/// populate every utilization bin) plus the day and plenary sessions —
/// mirroring the paper's pooling of both sessions.
pub fn figure_dataset() -> Vec<SecondStats> {
    let mut seconds = Vec::new();
    let ramp_users = scaled(320, 60) as usize;
    let ramp_dur = scaled(700, 60);
    for seed in [11u64, 12, 13] {
        let result = load_ramp(seed, ramp_users, ramp_dur, 1.7).run();
        seconds.extend(analyze(&result.traces[0]));
        if quick() {
            break;
        }
    }
    let mut day = SessionScale::day_default(21);
    let mut plenary = SessionScale::plenary_default(22);
    if quick() {
        day.users = 40;
        day.duration_s = 20;
        plenary.users = 40;
        plenary.duration_s = 20;
    }
    for result in [ietf_day(day).run(), ietf_plenary(plenary).run()] {
        for trace in &result.traces {
            seconds.extend(analyze(trace));
        }
    }
    seconds
}

/// Runs the two sessions and returns their results (Figure 4 / 5 inputs).
pub fn session_results() -> (ScenarioResult, ScenarioResult) {
    let mut day = SessionScale::day_default(21);
    let mut plenary = SessionScale::plenary_default(22);
    if quick() {
        day.users = 40;
        day.duration_s = 20;
        plenary.users = 40;
        plenary.duration_s = 20;
    }
    (ietf_day(day).run(), ietf_plenary(plenary).run())
}

/// Builds utilization bins over a pooled dataset.
pub fn bins_of(seconds: &[SecondStats]) -> UtilizationBins {
    UtilizationBins::build(seconds)
}

/// Prints a table header followed by rows, aligning on tabs for easy
/// copy-paste into plotting tools.
pub fn print_series(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
}

/// The utilization bins the paper's figures plot (30–99 %), restricted to
/// bins with enough seconds to average meaningfully.
pub fn occupied_bins(bins: &UtilizationBins) -> Vec<usize> {
    bins.occupied()
        .filter(|&(u, b)| (30..=99).contains(&u) && b.seconds >= 2)
        .map(|(u, _)| u)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_env_parsing() {
        // Not set in the test environment unless the harness set it.
        let _ = quick();
        assert_eq!(scaled(100, 5), if quick() { 5 } else { 100 });
    }

    #[test]
    fn print_series_smoke() {
        print_series("test", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
