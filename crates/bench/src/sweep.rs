//! The shared sweep engine behind every figure and ablation binary.
//!
//! A figure is a sweep of independent `(scenario, seed, load-point)` cells.
//! This module owns the three things the per-binary code used to hand-roll:
//!
//! 1. **CLI** — [`SweepArgs`] gives every bench binary the same
//!    `--threads N` / `--seeds N` surface;
//! 2. **execution** — [`run_cells`] fans [`Cell`]s across a thread pool via
//!    [`wifi_sim::runner::run_parallel`], with per-cell wall-clock timing.
//!    Each cell builds its own seeded simulator, so results are
//!    bit-identical whatever `--threads` says;
//! 3. **observability** — a [`RunReport`] written as JSON under `results/`
//!    next to the printed tables, plus a one-line summary on stderr.
//!
//! Cross-seed aggregation uses [`congestion::mean_ci95`]
//! (mean ± 95 % Student-t confidence interval).

use ietf_workloads::{Scenario, ScenarioResult};
use wifi_sim::runner::{run_parallel, timed, CellReport, RunReport};

/// The sweep options every bench binary accepts.
#[derive(Clone, Copy, Debug)]
pub struct SweepArgs {
    /// Worker threads for the cell pool (default: available parallelism).
    pub threads: usize,
    /// Seeds per swept configuration (default: per-binary).
    pub seeds: usize,
}

impl SweepArgs {
    /// Parses `--threads N` / `--seeds N` (also `--threads=N` forms) from
    /// the process arguments. `--help` prints usage and exits; an unknown
    /// argument is a usage error (exit code 2) so typos never silently run
    /// the default sweep.
    pub fn parse(default_seeds: usize) -> SweepArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Self::from_args(&argv, default_seeds) {
            Ok(args) => args,
            Err(Usage::Help) => {
                println!(
                    "usage: [--threads N] [--seeds N]\n\
                     \n\
                     --threads N  worker threads for the scenario sweep\n\
                     \x20            (default: all cores; results are identical\n\
                     \x20            for every N)\n\
                     --seeds N    seeds per swept configuration (default {default_seeds});\n\
                     \x20            more seeds tighten the ±95% CI columns\n\
                     \n\
                     Set CONG_QUICK=1 to shrink scenario scale for smoke runs.\n\
                     A run report (per-cell wall-clock, events processed,\n\
                     events/s) is written to results/<name>.run.json."
                );
                std::process::exit(0);
            }
            Err(Usage::Error(msg)) => {
                eprintln!("error: {msg} (try --help)");
                std::process::exit(2);
            }
        }
    }

    /// [`SweepArgs::parse`] without the process exit, for tests.
    pub fn from_args(argv: &[String], default_seeds: usize) -> Result<SweepArgs, Usage> {
        let mut args = SweepArgs {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            seeds: default_seeds,
        };
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f, Some(v.to_string())),
                None => (arg.as_str(), None),
            };
            let mut value = |name: &str| -> Result<usize, Usage> {
                let raw = match inline.clone() {
                    Some(v) => v,
                    None => it
                        .next()
                        .cloned()
                        .ok_or_else(|| Usage::Error(format!("{name} needs a value")))?,
                };
                let v: usize = raw.parse().map_err(|_| {
                    Usage::Error(format!("{name} needs a positive integer, got {raw:?}"))
                })?;
                if v == 0 {
                    return Err(Usage::Error(format!("{name} must be at least 1")));
                }
                Ok(v)
            };
            match flag {
                "--threads" => args.threads = value("--threads")?,
                "--seeds" => args.seeds = value("--seeds")?,
                "--help" | "-h" => return Err(Usage::Help),
                other => return Err(Usage::Error(format!("unknown argument {other:?}"))),
            }
        }
        Ok(args)
    }

    /// The seed list for one swept configuration: `base, base+1, …` —
    /// consecutive so a report's cells are self-describing, distinct per
    /// configuration through the base.
    pub fn seed_list(&self, base: u64) -> Vec<u64> {
        (0..self.seeds as u64).map(|i| base + i).collect()
    }
}

/// Outcome of [`SweepArgs::from_args`] when it cannot return options.
#[derive(Debug)]
pub enum Usage {
    /// `--help` was requested.
    Help,
    /// A malformed or unknown argument.
    Error(String),
}

/// One independent sweep cell: a label for the run report, the seed it is
/// built from, and the scenario constructor (run on a worker thread).
pub struct Cell {
    /// Cell identity in the run report, e.g. `"ramp seed=11 fps=1.7"`.
    pub label: String,
    /// The cell's RNG seed (also recorded in the report).
    pub seed: u64,
    build: Box<dyn Fn() -> Scenario + Send + Sync>,
}

impl Cell {
    /// A cell that builds its scenario with `build` when scheduled.
    pub fn new(
        label: impl Into<String>,
        seed: u64,
        build: impl Fn() -> Scenario + Send + Sync + 'static,
    ) -> Cell {
        Cell {
            label: label.into(),
            seed,
            build: Box::new(build),
        }
    }

    /// Builds a fresh scenario instance for this cell.
    pub fn build_scenario(&self) -> Scenario {
        (self.build)()
    }
}

/// Runs the cells on `args.threads` workers and returns their results in
/// cell order plus the [`RunReport`].
///
/// The report is written to `results/<name>.run.json` (failure to write is
/// reported on stderr, never fatal) and its one-line summary is printed to
/// stderr so stdout stays a clean table stream.
pub fn run_cells(
    name: &str,
    args: &SweepArgs,
    cells: Vec<Cell>,
) -> (Vec<ScenarioResult>, RunReport) {
    let (outcomes, total_wall_ms) =
        timed(|| run_parallel(&cells, args.threads, |cell| timed(|| (cell.build)().run())));
    let mut results = Vec::with_capacity(outcomes.len());
    let mut reports = Vec::with_capacity(outcomes.len());
    for (cell, (result, wall_ms)) in cells.iter().zip(outcomes) {
        reports.push(CellReport {
            label: cell.label.clone(),
            seed: cell.seed,
            wall_ms,
            events: result.events_processed,
            frames_on_air: result.frames_on_air,
            queue: result.queue,
            frames_captured: result.sniffer_stats.iter().map(|s| s.captured).sum(),
            frames_missed: result
                .sniffer_stats
                .iter()
                .map(|s| s.total_on_air() - s.captured)
                .sum(),
        });
        results.push(result);
    }
    let report = RunReport {
        name: name.to_string(),
        threads: args.threads,
        total_wall_ms,
        cells: reports,
    };
    let path = std::path::Path::new("results").join(format!("{name}.run.json"));
    match report.write_json(&path) {
        Ok(()) => eprintln!("{}\nrun report: {}", report.summary(), path.display()),
        Err(e) => eprintln!("{}\nrun report not written ({e})", report.summary()),
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<SweepArgs, Usage> {
        let argv: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        SweepArgs::from_args(&argv, 3)
    }

    #[test]
    fn defaults_and_flags() {
        let d = parse(&[]).unwrap();
        assert_eq!(d.seeds, 3);
        assert!(d.threads >= 1);
        let a = parse(&["--threads", "4", "--seeds", "2"]).unwrap();
        assert_eq!((a.threads, a.seeds), (4, 2));
        let b = parse(&["--threads=8", "--seeds=5"]).unwrap();
        assert_eq!((b.threads, b.seeds), (8, 5));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(parse(&["--threads"]), Err(Usage::Error(_))));
        assert!(matches!(
            parse(&["--threads", "zero"]),
            Err(Usage::Error(_))
        ));
        assert!(matches!(parse(&["--seeds", "0"]), Err(Usage::Error(_))));
        assert!(matches!(parse(&["--frobnicate"]), Err(Usage::Error(_))));
        assert!(matches!(parse(&["--help"]), Err(Usage::Help)));
    }

    #[test]
    fn seed_lists_are_consecutive_from_base() {
        let args = parse(&["--seeds", "4"]).unwrap();
        assert_eq!(args.seed_list(101), vec![101, 102, 103, 104]);
        assert_eq!(parse(&["--seeds", "1"]).unwrap().seed_list(41), vec![41]);
    }
}
