//! Chunked scenario execution with streaming per-second analysis.
//!
//! [`Scenario::run`] buffers every captured frame until the end and analyzes
//! post hoc — O(frames) peak memory, which at congestion-knee scale is the
//! dominant allocation. [`run_streaming`] instead advances the simulator one
//! time chunk at a time (repeated `run_until` calls are pure continuations
//! of the same event queue, so results are identical), drains each sniffer's
//! trace into its [`SecondAccumulator`] after every chunk, and returns the
//! finished per-second statistics: peak memory is O(chunk + seconds), however
//! long the run.
//!
//! [`run_streaming_pipelined`] additionally overlaps the two: the event loop
//! stays on the calling thread and hands each chunk's captured frames
//! through a bounded SPSC channel to an analysis thread folding them into
//! the accumulators. Frame order through the channel is exactly the drain
//! order of the serial path, so the results are byte-identical — the only
//! difference is that analysis of chunk *n* runs while chunk *n + 1*
//! simulates.

use congestion::persec::{SecondAccumulator, SecondStats};
use ietf_workloads::Scenario;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::Micros;
use wifi_sim::events::QueueStats;
use wifi_sim::sniffer::SnifferStats;
use wifi_sim::spsc;

/// Chunks buffered in the sim→analysis channel before the producer blocks.
const PIPELINE_DEPTH: usize = 4;

/// What a streaming run yields: the analysis, plus the counters the run
/// reports and perf baselines need. Raw traces are intentionally absent —
/// not buffering them is the point.
pub struct StreamedRun {
    /// Scenario name.
    pub name: String,
    /// Per-sniffer per-second statistics (same order as the sniffers).
    pub per_sniffer_seconds: Vec<Vec<SecondStats>>,
    /// Capture-performance counters per sniffer.
    pub sniffer_stats: Vec<SnifferStats>,
    /// `(transmissions, collisions)` per channel.
    pub medium_stats: Vec<(u64, u64)>,
    /// Discrete events processed.
    pub events_processed: u64,
    /// Ground-truth transmission count (independent of trace recording).
    pub frames_on_air: u64,
    /// Event-queue churn counters (pushed/popped/stale-dropped/cascaded).
    pub queue: QueueStats,
}

/// Runs `scenario` to completion in `chunk_us` steps, folding captured
/// frames into per-sniffer accumulators as they appear.
pub fn run_streaming(mut scenario: Scenario, chunk_us: Micros) -> StreamedRun {
    let chunk_us = chunk_us.max(1);
    let mut accs: Vec<SecondAccumulator> = scenario
        .sim
        .sniffers()
        .iter()
        .map(|_| SecondAccumulator::new())
        .collect();
    let mut now: Micros = 0;
    while now < scenario.duration_us {
        now = (now + chunk_us).min(scenario.duration_us);
        scenario.sim.run_until(now);
        for (sniffer, acc) in scenario.sim.sniffers_mut().iter_mut().zip(&mut accs) {
            for record in sniffer.trace.drain(..) {
                acc.push(record);
            }
        }
    }
    StreamedRun {
        name: scenario.name,
        per_sniffer_seconds: accs.into_iter().map(SecondAccumulator::finish).collect(),
        sniffer_stats: scenario.sim.sniffers().iter().map(|s| s.stats).collect(),
        medium_stats: scenario.sim.medium_stats(),
        events_processed: scenario.sim.events_processed(),
        frames_on_air: scenario.sim.ground_truth.transmissions,
        queue: scenario.sim.queue_stats(),
    }
}

/// [`run_streaming`] with simulation and analysis overlapped on two threads.
///
/// The simulator (which is not `Send` and never migrates) runs chunks on the
/// calling thread; after each chunk the captured frames are drained into a
/// per-sniffer batch and sent through a bounded [`spsc`] channel to a scoped
/// analysis thread that folds them into the [`SecondAccumulator`]s. Every
/// frame reaches its accumulator in the same order as the serial path, so
/// the returned [`StreamedRun`] is byte-identical to `run_streaming`'s; the
/// channel bound keeps at most `PIPELINE_DEPTH` (4) chunks of frames alive.
pub fn run_streaming_pipelined(mut scenario: Scenario, chunk_us: Micros) -> StreamedRun {
    let chunk_us = chunk_us.max(1);
    let n_sniffers = scenario.sim.sniffers().len();
    let (tx, rx) = spsc::channel::<Vec<Vec<FrameRecord>>>(PIPELINE_DEPTH);
    let per_sniffer_seconds = std::thread::scope(|scope| {
        let consumer = scope.spawn(move || {
            let mut accs: Vec<SecondAccumulator> =
                (0..n_sniffers).map(|_| SecondAccumulator::new()).collect();
            while let Some(chunk) = rx.recv() {
                for (records, acc) in chunk.into_iter().zip(&mut accs) {
                    for record in records {
                        acc.push(record);
                    }
                }
            }
            accs.into_iter()
                .map(SecondAccumulator::finish)
                .collect::<Vec<_>>()
        });
        let mut now: Micros = 0;
        while now < scenario.duration_us {
            now = (now + chunk_us).min(scenario.duration_us);
            scenario.sim.run_until(now);
            let chunk: Vec<Vec<FrameRecord>> = scenario
                .sim
                .sniffers_mut()
                .iter_mut()
                .map(|s| s.trace.drain(..).collect())
                .collect();
            if tx.send(chunk).is_err() {
                break; // consumer died; its join below propagates the panic
            }
        }
        drop(tx);
        consumer.join().expect("analysis thread panicked")
    });
    StreamedRun {
        name: scenario.name,
        per_sniffer_seconds,
        sniffer_stats: scenario.sim.sniffers().iter().map(|s| s.stats).collect(),
        medium_stats: scenario.sim.medium_stats(),
        events_processed: scenario.sim.events_processed(),
        frames_on_air: scenario.sim.ground_truth.transmissions,
        queue: scenario.sim.queue_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congestion::analyze;
    use ietf_workloads::load_ramp;

    /// The streaming path must reproduce the batch path exactly: same
    /// events, same captures, same per-second statistics.
    #[test]
    fn streaming_matches_batch_run() {
        let batch = load_ramp(7, 8, 6, 1.5).run();
        let streamed = run_streaming(load_ramp(7, 8, 6, 1.5), 750_000);
        assert_eq!(streamed.events_processed, batch.events_processed);
        assert_eq!(streamed.frames_on_air, batch.frames_on_air);
        assert_eq!(streamed.medium_stats, batch.medium_stats);
        assert_eq!(streamed.sniffer_stats.len(), batch.sniffer_stats.len());
        for (s, b) in streamed.sniffer_stats.iter().zip(&batch.sniffer_stats) {
            assert_eq!(s.captured, b.captured);
            assert_eq!(s.total_on_air(), b.total_on_air());
        }
        for (seconds, trace) in streamed.per_sniffer_seconds.iter().zip(&batch.traces) {
            let expect = analyze(trace);
            assert_eq!(seconds.len(), expect.len());
            for (got, want) in seconds.iter().zip(&expect) {
                assert_eq!(format!("{got:?}"), format!("{want:?}"));
            }
        }
    }

    /// The pipelined path must be byte-identical to the serial streaming
    /// path: same analysis, same counters, whatever the chunk size.
    #[test]
    fn pipelined_matches_serial_streaming() {
        for chunk_us in [750_000u64, 5_000_000] {
            let serial = run_streaming(load_ramp(7, 8, 6, 1.5), chunk_us);
            let piped = run_streaming_pipelined(load_ramp(7, 8, 6, 1.5), chunk_us);
            assert_eq!(piped.events_processed, serial.events_processed);
            assert_eq!(piped.frames_on_air, serial.frames_on_air);
            assert_eq!(piped.medium_stats, serial.medium_stats);
            assert_eq!(piped.queue, serial.queue);
            assert_eq!(
                format!("{:?}", piped.sniffer_stats),
                format!("{:?}", serial.sniffer_stats)
            );
            for (p, s) in piped
                .per_sniffer_seconds
                .iter()
                .zip(&serial.per_sniffer_seconds)
            {
                assert_eq!(format!("{p:?}"), format!("{s:?}"));
            }
        }
    }

    /// Chunk size must not matter — continuations are exact.
    #[test]
    fn chunk_size_is_invisible() {
        let coarse = run_streaming(load_ramp(9, 6, 5, 1.5), 5_000_000);
        let fine = run_streaming(load_ramp(9, 6, 5, 1.5), 100_000);
        assert_eq!(coarse.events_processed, fine.events_processed);
        assert_eq!(coarse.frames_on_air, fine.frames_on_air);
        for (c, f) in coarse
            .per_sniffer_seconds
            .iter()
            .zip(&fine.per_sniffer_seconds)
        {
            assert_eq!(format!("{c:?}"), format!("{f:?}"));
        }
    }
}
