//! Chunked scenario execution with streaming per-second analysis.
//!
//! [`Scenario::run`] buffers every captured frame until the end and analyzes
//! post hoc — O(frames) peak memory, which at congestion-knee scale is the
//! dominant allocation. [`run_streaming`] instead advances the simulator one
//! time chunk at a time (repeated `run_until` calls are pure continuations
//! of the same event queue, so results are identical), drains each sniffer's
//! trace into its [`SecondAccumulator`] after every chunk, and returns the
//! finished per-second statistics: peak memory is O(chunk + seconds), however
//! long the run.
//!
//! [`run_streaming_pipelined`] additionally overlaps the two: the event loop
//! stays on the calling thread and hands each chunk's captured frames
//! through a bounded SPSC channel to an analysis thread folding them into
//! the accumulators. Frame order through the channel is exactly the drain
//! order of the serial path, so the results are byte-identical — the only
//! difference is that analysis of chunk *n* runs while chunk *n + 1*
//! simulates.
//!
//! [`run_sharded`] adds intra-scenario parallelism on top: RF-isolation
//! component sharding when the scenario splits into independent media, and
//! **time-window lockstep sharding** ([`wifi_sim::shard`]) when it does not
//! — one dense coupled cell is cut along BSS lines into full-roster shards
//! that advance window-by-window, exchanging cross-shard transmissions as
//! ghosts at each boundary. Both merge to results byte-identical to the
//! unsharded run.

use congestion::persec::{SecondAccumulator, SecondStats};
use ietf_workloads::{MobileScenario, Scenario, ShardScenario};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::Micros;
use wifi_sim::events::QueueStats;
use wifi_sim::runner::run_parallel;
use wifi_sim::shard::{LockstepPlan, Shard, ShardSpec, DEFAULT_LOCKSTEP_WINDOW_US};
use wifi_sim::sniffer::SnifferStats;
use wifi_sim::spsc;
use wifi_sim::{RemoteNotice, Simulator};

/// Chunks buffered in the sim→analysis channel before the producer blocks.
const PIPELINE_DEPTH: usize = 4;

/// What a streaming run yields: the analysis, plus the counters the run
/// reports and perf baselines need. Raw traces are intentionally absent —
/// not buffering them is the point.
pub struct StreamedRun {
    /// Scenario name.
    pub name: String,
    /// Per-sniffer per-second statistics (same order as the sniffers).
    pub per_sniffer_seconds: Vec<Vec<SecondStats>>,
    /// Capture-performance counters per sniffer.
    pub sniffer_stats: Vec<SnifferStats>,
    /// `(transmissions, collisions)` per channel.
    pub medium_stats: Vec<(u64, u64)>,
    /// Discrete events processed.
    pub events_processed: u64,
    /// Ground-truth transmission count (independent of trace recording).
    pub frames_on_air: u64,
    /// Event-queue churn counters (pushed/popped/stale-dropped/cascaded).
    pub queue: QueueStats,
}

/// Runs `scenario` to completion in `chunk_us` steps, folding captured
/// frames into per-sniffer accumulators as they appear.
///
/// ```
/// use congestion_bench::streaming::run_streaming;
/// use ietf_workloads::load_ramp;
///
/// let run = run_streaming(load_ramp(7, 4, 2, 1.0), 1_000_000);
/// assert!(run.events_processed > 0);
/// for seconds in &run.per_sniffer_seconds {
///     assert_eq!(seconds.len(), 2); // one row per simulated second
/// }
/// ```
pub fn run_streaming(mut scenario: Scenario, chunk_us: Micros) -> StreamedRun {
    let chunk_us = chunk_us.max(1);
    let mut accs: Vec<SecondAccumulator> = scenario
        .sim
        .sniffers()
        .iter()
        .map(|_| SecondAccumulator::new())
        .collect();
    let mut now: Micros = 0;
    while now < scenario.duration_us {
        now = (now + chunk_us).min(scenario.duration_us);
        scenario.sim.run_until(now);
        for (sniffer, acc) in scenario.sim.sniffers_mut().iter_mut().zip(&mut accs) {
            for record in sniffer.trace.drain(..) {
                acc.push(record);
            }
        }
    }
    StreamedRun {
        name: scenario.name,
        per_sniffer_seconds: accs.into_iter().map(SecondAccumulator::finish).collect(),
        sniffer_stats: scenario.sim.sniffers().iter().map(|s| s.stats).collect(),
        medium_stats: scenario.sim.medium_stats(),
        events_processed: scenario.sim.events_processed(),
        frames_on_air: scenario.sim.ground_truth.transmissions,
        queue: scenario.sim.queue_stats(),
    }
}

/// Mobility counters of a finished [`run_streaming_mobile`] run, reported
/// alongside the [`StreamedRun`] for the churn trajectory entries.
#[derive(Clone, Copy, Debug)]
pub struct MobilityStats {
    /// Walkers registered with the waypoint model.
    pub walkers: usize,
    /// Positions applied via `Simulator::move_station`.
    pub moves: u64,
    /// Roams triggered via `Simulator::reassociate_strongest`.
    pub roams: u64,
}

/// [`run_streaming`] for a [`MobileScenario`]: chunked execution with the
/// waypoint walkers advanced at every mobility-tick boundary. Chunks are
/// clipped to tick boundaries so a move can never land mid-chunk — the
/// stream is a pure continuation of the same event queue between moves,
/// exactly like the static runner.
pub fn run_streaming_mobile(
    mut scenario: MobileScenario,
    chunk_us: Micros,
) -> (StreamedRun, MobilityStats) {
    let chunk_us = chunk_us.max(1);
    let tick_us = scenario.tick_us.max(1);
    let mut accs: Vec<SecondAccumulator> = scenario
        .sim
        .sniffers()
        .iter()
        .map(|_| SecondAccumulator::new())
        .collect();
    let mut now: Micros = 0;
    let mut next_tick = tick_us;
    while now < scenario.duration_us {
        now = (now + chunk_us).min(scenario.duration_us).min(next_tick);
        scenario.sim.run_until(now);
        for (sniffer, acc) in scenario.sim.sniffers_mut().iter_mut().zip(&mut accs) {
            for record in sniffer.trace.drain(..) {
                acc.push(record);
            }
        }
        if now == next_tick {
            if now < scenario.duration_us {
                scenario.mobility.advance(&mut scenario.sim, tick_us);
            }
            next_tick += tick_us;
        }
    }
    let stats = MobilityStats {
        walkers: scenario.mobility.walker_count(),
        moves: scenario.mobility.moves,
        roams: scenario.mobility.roams,
    };
    let run = StreamedRun {
        name: scenario.name,
        per_sniffer_seconds: accs.into_iter().map(SecondAccumulator::finish).collect(),
        sniffer_stats: scenario.sim.sniffers().iter().map(|s| s.stats).collect(),
        medium_stats: scenario.sim.medium_stats(),
        events_processed: scenario.sim.events_processed(),
        frames_on_air: scenario.sim.ground_truth.transmissions,
        queue: scenario.sim.queue_stats(),
    };
    (run, stats)
}

/// [`run_streaming`] with simulation and analysis overlapped on two threads.
///
/// The simulator (which is not `Send` and never migrates) runs chunks on the
/// calling thread; after each chunk the captured frames are drained into a
/// per-sniffer batch and sent through a bounded [`spsc`] channel to a scoped
/// analysis thread that folds them into the [`SecondAccumulator`]s. Every
/// frame reaches its accumulator in the same order as the serial path, so
/// the returned [`StreamedRun`] is byte-identical to `run_streaming`'s; the
/// channel bound keeps at most `PIPELINE_DEPTH` (4) chunks of frames alive.
pub fn run_streaming_pipelined(mut scenario: Scenario, chunk_us: Micros) -> StreamedRun {
    let chunk_us = chunk_us.max(1);
    let n_sniffers = scenario.sim.sniffers().len();
    let (tx, rx) = spsc::channel::<Vec<Vec<FrameRecord>>>(PIPELINE_DEPTH);
    let per_sniffer_seconds = std::thread::scope(|scope| {
        let consumer = scope.spawn(move || {
            let mut accs: Vec<SecondAccumulator> =
                (0..n_sniffers).map(|_| SecondAccumulator::new()).collect();
            while let Some(chunk) = rx.recv() {
                for (records, acc) in chunk.into_iter().zip(&mut accs) {
                    for record in records {
                        acc.push(record);
                    }
                }
            }
            accs.into_iter()
                .map(SecondAccumulator::finish)
                .collect::<Vec<_>>()
        });
        let mut now: Micros = 0;
        while now < scenario.duration_us {
            now = (now + chunk_us).min(scenario.duration_us);
            scenario.sim.run_until(now);
            let chunk: Vec<Vec<FrameRecord>> = scenario
                .sim
                .sniffers_mut()
                .iter_mut()
                .map(|s| s.trace.drain(..).collect())
                .collect();
            if tx.send(chunk).is_err() {
                break; // consumer died; its join below propagates the panic
            }
        }
        drop(tx);
        consumer.join().expect("analysis thread panicked")
    });
    StreamedRun {
        name: scenario.name,
        per_sniffer_seconds,
        sniffer_stats: scenario.sim.sniffers().iter().map(|s| s.stats).collect(),
        medium_stats: scenario.sim.medium_stats(),
        events_processed: scenario.sim.events_processed(),
        frames_on_air: scenario.sim.ground_truth.transmissions,
        queue: scenario.sim.queue_stats(),
    }
}

/// What a sharded run yields: the merged [`StreamedRun`] plus how the
/// scenario was cut up.
pub struct ShardedRun {
    /// The merged result — field-for-field comparable with an unsharded
    /// [`run_streaming`] of the same scenario (`queue` excepted: timing-
    /// wheel churn like cascade counts depends on how events distribute
    /// over wheels — and, under lockstep, on ghost bookkeeping — so it is
    /// observability, not output).
    pub run: StreamedRun,
    /// Sub-simulators the scenario ran as (1 when sharding declined).
    pub shards: usize,
    /// RF-isolation components found (the parallelism ceiling of component
    /// sharding; lockstep sharding can exceed it).
    pub components: usize,
    /// Whether time-window lockstep sharding engaged (one coupled
    /// component, split along BSS lines).
    pub lockstep: bool,
}

/// Everything one shard's sub-simulator produced.
struct ShardOut {
    /// `(global sniffer index, per-second stats, counters)`.
    sniffers: Vec<(usize, Vec<SecondStats>, SnifferStats)>,
    medium_stats: Vec<(u64, u64)>,
    events_processed: u64,
    frames_on_air: u64,
    queue: QueueStats,
}

/// Runs one sub-simulator to `duration_us` in chunks, folding its sniffer
/// traces into per-second accumulators — the per-shard half of
/// [`run_streaming`].
fn run_shard_streaming(
    mut sim: Simulator,
    sniffer_indices: Vec<usize>,
    duration_us: Micros,
    chunk_us: Micros,
) -> ShardOut {
    let mut accs: Vec<SecondAccumulator> = sniffer_indices
        .iter()
        .map(|_| SecondAccumulator::new())
        .collect();
    let mut now: Micros = 0;
    while now < duration_us {
        now = (now + chunk_us).min(duration_us);
        sim.run_until(now);
        for (sniffer, acc) in sim.sniffers_mut().iter_mut().zip(&mut accs) {
            for record in sniffer.trace.drain(..) {
                acc.push(record);
            }
        }
    }
    let sniffers = sniffer_indices
        .into_iter()
        .zip(accs)
        .zip(sim.sniffers().iter())
        .map(|((gi, acc), s)| (gi, acc.finish(), s.stats))
        .collect();
    ShardOut {
        sniffers,
        medium_stats: sim.medium_stats(),
        events_processed: sim.events_processed(),
        frames_on_air: sim.ground_truth.transmissions,
        queue: sim.queue_stats(),
    }
}

/// Runs a recorded scenario with intra-scenario parallelism: the station
/// graph is partitioned into RF-isolation shards ([`wifi_sim::shard`]),
/// each shard's event loop runs on the [`run_parallel`] work queue across
/// `threads` workers, and the per-shard results merge into one
/// [`StreamedRun`].
///
/// Every sniffer lives in exactly one shard (the planner merges everything
/// a sniffer can hear into its component), so per-sniffer seconds and
/// counters need no cross-shard merging — they are placed by global sniffer
/// index. Channel-level medium stats and the scalar counters sum. The
/// merged output is identical to the unsharded run for any `max_shards` and
/// `threads` (`tests/shard_prop.rs` pins this): determinism comes from
/// per-entity RNG streams keyed by scenario-wide build indices, not from
/// the schedule.
///
/// When the scenario cannot be sharded (dynamic channel management, or a
/// client whose channel has no AP), it falls back to one unsharded shard.
///
/// When the component planner stops short of `max_shards` (dense coupled
/// cells — the paper's plenary is one per channel) and the lockstep planner
/// can cut *finer* along BSS lines, time-window lockstep sharding engages
/// instead, with the default window ([`DEFAULT_LOCKSTEP_WINDOW_US`]); see
/// [`run_sharded_windowed`].
///
/// ```
/// use congestion_bench::streaming::{run_sharded, run_streaming};
/// use ietf_workloads::{ietf_plenary, ietf_plenary_sharded, SessionScale};
///
/// let scale = SessionScale { seed: 3, users: 24, duration_s: 1, activity: 1.0, rts_fraction: 0.0 };
/// let sharded = run_sharded(ietf_plenary_sharded(scale), 1_000_000, 4, 6);
/// assert!(sharded.lockstep && sharded.shards > sharded.components);
///
/// // The merged result reproduces the serial run bit for bit.
/// let serial = run_streaming(ietf_plenary(scale), 1_000_000);
/// assert_eq!(sharded.run.events_processed, serial.events_processed);
/// assert_eq!(sharded.run.medium_stats, serial.medium_stats);
/// assert_eq!(
///     format!("{:?}", sharded.run.per_sniffer_seconds),
///     format!("{:?}", serial.per_sniffer_seconds),
/// );
/// ```
pub fn run_sharded(
    scenario: ShardScenario,
    chunk_us: Micros,
    threads: usize,
    max_shards: usize,
) -> ShardedRun {
    run_sharded_windowed(
        scenario,
        chunk_us,
        threads,
        max_shards,
        DEFAULT_LOCKSTEP_WINDOW_US,
    )
}

/// [`run_sharded`] with an explicit lockstep window width (µs).
///
/// The window only matters when lockstep sharding engages: component
/// sharding exchanges nothing, and the unsharded fallback has no windows at
/// all. Results are deterministic given `(seed, window_us)` — identical for
/// every `(threads, max_shards)` at a fixed window — but *different windows
/// may order same-microsecond cross-shard interactions differently*, so a
/// lockstep run is compared against serial runs at the same window
/// (`window_us` is part of the result's identity, like the seed). An unsafe
/// window (zero, or wider than the influence-latency bound) declines
/// lockstep and falls back.
pub fn run_sharded_windowed(
    scenario: ShardScenario,
    chunk_us: Micros,
    threads: usize,
    max_shards: usize,
    window_us: Micros,
) -> ShardedRun {
    let chunk_us = chunk_us.max(1);
    let ShardScenario {
        name,
        duration_us,
        spec,
    } = scenario;
    let Some(plan) = spec.partition(max_shards) else {
        let run = run_streaming(
            Scenario {
                name,
                duration_us,
                sim: spec.build_unsharded(),
            },
            chunk_us,
        );
        return ShardedRun {
            run,
            shards: 1,
            components: 1,
            lockstep: false,
        };
    };
    // The component count is the ceiling of component sharding; when the
    // caller's cap allows more parallelism than the ceiling (the dense-cell
    // regime — the plenary is three coupled cells however many cores are
    // available), lockstep engages if it can actually cut finer. Where
    // components already fill the cap (the venue campus: one BSS per
    // component), lockstep cannot do better and stays out of the way.
    if plan.shards.len() < max_shards {
        if let Some(lockstep) = spec.partition_lockstep(max_shards, window_us) {
            if lockstep.shards.len() > plan.shards.len() {
                let shards = lockstep.shards.len();
                let outs = run_lockstep(&spec, &lockstep, duration_us, threads);
                return merge_shard_outs(name, &spec, outs, shards, plan.components, true);
            }
        }
    }
    let outs: Vec<ShardOut> = run_parallel(&plan.shards, threads, |shard: &Shard| {
        // Sub-simulators are built inside the worker (a Simulator is not
        // Send; the spec is).
        let sim = spec.build_shard(shard);
        run_shard_streaming(
            sim,
            shard.sniffer_indices().collect(),
            duration_us,
            chunk_us,
        )
    });
    let shards = plan.shards.len();
    merge_shard_outs(name, &spec, outs, shards, plan.components, false)
}

/// Merges per-shard outputs into one [`ShardedRun`]. Placement and sums
/// only: every sniffer lives in exactly one shard, medium stats and the
/// scalar counters are disjoint per shard (under lockstep, ghosts are
/// excluded from every merged counter), so the merge is exact.
fn merge_shard_outs(
    name: String,
    spec: &ShardSpec,
    outs: Vec<ShardOut>,
    shards: usize,
    components: usize,
    lockstep: bool,
) -> ShardedRun {
    let channels = spec.config().channels.len();
    let mut per_sniffer_seconds: Vec<Vec<SecondStats>> =
        (0..spec.sniffer_count()).map(|_| Vec::new()).collect();
    let mut sniffer_stats: Vec<SnifferStats> = vec![SnifferStats::default(); spec.sniffer_count()];
    let mut medium_stats = vec![(0u64, 0u64); channels];
    let mut events_processed = 0u64;
    let mut frames_on_air = 0u64;
    let mut queue = QueueStats::default();
    for out in outs {
        for (gi, seconds, stats) in out.sniffers {
            per_sniffer_seconds[gi] = seconds;
            sniffer_stats[gi] = stats;
        }
        for (ch, (tx, coll)) in out.medium_stats.into_iter().enumerate() {
            medium_stats[ch].0 += tx;
            medium_stats[ch].1 += coll;
        }
        events_processed += out.events_processed;
        frames_on_air += out.frames_on_air;
        queue.pushed += out.queue.pushed;
        queue.popped += out.queue.popped;
        queue.stale_dropped += out.queue.stale_dropped;
        queue.cascaded += out.queue.cascaded;
    }
    ShardedRun {
        run: StreamedRun {
            name,
            per_sniffer_seconds,
            sniffer_stats,
            medium_stats,
            events_processed,
            frames_on_air,
            queue,
        },
        shards,
        components,
        lockstep,
    }
}

/// A sense-reversing spin barrier. The lockstep protocol crosses a barrier
/// twice per window (potentially millions of times per run); parking OS
/// threads at that frequency would dominate the runtime, and the wait is
/// bounded by one window of sibling simulation, so spinning is the right
/// trade.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    fn new(n: usize) -> SpinBarrier {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Blocks until all `n` participants arrive. `local_sense` is the
    /// caller's thread-local phase flag, initialized `false`. Spins briefly
    /// (the common case: siblings are one window behind), then yields —
    /// pure spinning livelocks when workers outnumber cores.
    fn wait(&self, local_sense: &mut bool) {
        *local_sense = !*local_sense;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(*local_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != *local_sense {
                spins += 1;
                if spins < 1_000 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// One worker's owned lockstep shard: the sub-simulator plus its streaming
/// analysis state.
struct LockstepState {
    shard_idx: usize,
    sim: Simulator,
    sniffer_indices: Vec<usize>,
    accs: Vec<SecondAccumulator>,
}

/// Drives a lockstep plan to `duration_us`: every shard advances through
/// the same bounded windows, with a two-barrier exchange round at each
/// boundary (see `docs/DETERMINISM.md` for the protocol and its proof).
///
/// Round structure, per window `[start, target]`:
/// 1. each worker runs its shards to `target` and drains sniffer traces
///    into the per-shard accumulators;
/// 2. each worker publishes its shards' outgoing [`RemoteNotice`]s, then
///    **barrier** — all outboxes are complete;
/// 3. each worker applies every *other* shard's notices to its own shards
///    as ghosts (in shard-index order) and publishes each shard's
///    next-event time, then **barrier** — all inboxes are drained;
/// 4. every worker independently computes the same next window start,
///    skipping whole windows up to the global minimum next-event time.
///
/// The schedule is a pure function of the plan and the window, so the
/// result is identical for any worker count.
fn run_lockstep(
    spec: &ShardSpec,
    plan: &LockstepPlan,
    duration_us: Micros,
    threads: usize,
) -> Vec<ShardOut> {
    let k = plan.shards.len();
    let w = plan.window_us;
    // Worker count is a pure throughput knob — shard↔worker assignment and
    // results are schedule-independent — so clamp to the cores actually
    // available: oversubscribed barrier workers just steal each other's
    // timeslices.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = threads.min(cores).clamp(1, k);
    let barrier = SpinBarrier::new(workers);
    // One outbox and one next-event slot per shard; written by the owner
    // before a barrier, read by everyone after it.
    let outboxes: Vec<Mutex<Vec<RemoteNotice>>> = (0..k).map(|_| Mutex::new(Vec::new())).collect();
    let next_times: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(u64::MAX)).collect();
    let mut outs: Vec<(usize, ShardOut)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let (barrier, outboxes, next_times) = (&barrier, &outboxes, &next_times);
            handles.push(scope.spawn(move || {
                // Static ownership: worker j drives shards j, j+W, ... —
                // the shard→worker map never affects results, only the
                // schedule.
                let mut states: Vec<LockstepState> = (worker..k)
                    .step_by(workers)
                    .map(|shard_idx| {
                        let shard = &plan.shards[shard_idx];
                        let sniffer_indices: Vec<usize> = shard.sniffer_indices().collect();
                        let accs = sniffer_indices
                            .iter()
                            .map(|_| SecondAccumulator::new())
                            .collect();
                        LockstepState {
                            shard_idx,
                            sim: spec.build_lockstep_shard(shard),
                            sniffer_indices,
                            accs,
                        }
                    })
                    .collect();
                let mut sense = false;
                let mut notices: Vec<RemoteNotice> = Vec::new();
                let mut start: Micros = 0;
                loop {
                    // Phase A: simulate the window and stream the analysis.
                    let target = (start + w - 1).min(duration_us);
                    for st in &mut states {
                        st.sim.run_until(target);
                        for (sniffer, acc) in st.sim.sniffers_mut().iter_mut().zip(&mut st.accs) {
                            for record in sniffer.trace.drain(..) {
                                acc.push(record);
                            }
                        }
                    }
                    if target == duration_us {
                        // Final window: remaining notices could only seed
                        // events past the end of the run.
                        break;
                    }
                    // Publish outboxes, then wait for every shard's.
                    for st in &mut states {
                        let mut slot = outboxes[st.shard_idx].lock().unwrap();
                        slot.clear();
                        st.sim.drain_remote_notices(&mut slot);
                    }
                    barrier.wait(&mut sense);
                    // Apply every sibling's notices as ghosts, in shard
                    // order, then publish the post-exchange next-event time.
                    for st in &mut states {
                        for (src, outbox) in outboxes.iter().enumerate().take(k) {
                            if src == st.shard_idx {
                                continue;
                            }
                            notices.clear();
                            notices.extend_from_slice(&outbox.lock().unwrap());
                            for notice in &notices {
                                st.sim.apply_remote_tx(notice);
                            }
                        }
                        let next = st.sim.next_event_time().unwrap_or(u64::MAX);
                        next_times[st.shard_idx].store(next, Ordering::Release);
                    }
                    barrier.wait(&mut sense);
                    // Everyone computes the same next window start: the
                    // natural successor, or — when every shard is idle
                    // longer — the window holding the global minimum
                    // next-event time (never past the final window).
                    let min_next = next_times
                        .iter()
                        .map(|t| t.load(Ordering::Acquire))
                        .min()
                        .unwrap_or(u64::MAX);
                    let mut next = start + w;
                    if min_next > target {
                        next = next.max(min_next.min(duration_us) / w * w);
                    }
                    start = next.min(duration_us / w * w);
                }
                states
                    .into_iter()
                    .map(|st| {
                        let LockstepState {
                            shard_idx,
                            sim,
                            sniffer_indices,
                            accs,
                        } = st;
                        let sniffers = sniffer_indices
                            .into_iter()
                            .zip(accs)
                            .zip(sim.sniffers().iter())
                            .map(|((gi, acc), s)| (gi, acc.finish(), s.stats))
                            .collect();
                        (
                            shard_idx,
                            ShardOut {
                                sniffers,
                                // Owner-filtered: shells own nothing here —
                                // ghost air time, collisions and events are
                                // all excluded on non-owner shards, so
                                // these sums merge to the unsharded totals.
                                medium_stats: sim.medium_stats(),
                                events_processed: sim.events_processed(),
                                frames_on_air: sim.ground_truth.transmissions,
                                queue: sim.queue_stats(),
                            },
                        )
                    })
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("lockstep worker panicked"))
            .collect()
    });
    outs.sort_by_key(|&(shard_idx, _)| shard_idx);
    outs.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congestion::analyze;
    use ietf_workloads::load_ramp;

    /// The streaming path must reproduce the batch path exactly: same
    /// events, same captures, same per-second statistics.
    #[test]
    fn streaming_matches_batch_run() {
        let batch = load_ramp(7, 8, 6, 1.5).run();
        let streamed = run_streaming(load_ramp(7, 8, 6, 1.5), 750_000);
        assert_eq!(streamed.events_processed, batch.events_processed);
        assert_eq!(streamed.frames_on_air, batch.frames_on_air);
        assert_eq!(streamed.medium_stats, batch.medium_stats);
        assert_eq!(streamed.sniffer_stats.len(), batch.sniffer_stats.len());
        for (s, b) in streamed.sniffer_stats.iter().zip(&batch.sniffer_stats) {
            assert_eq!(s.captured, b.captured);
            assert_eq!(s.total_on_air(), b.total_on_air());
        }
        for (seconds, trace) in streamed.per_sniffer_seconds.iter().zip(&batch.traces) {
            let expect = analyze(trace);
            assert_eq!(seconds.len(), expect.len());
            for (got, want) in seconds.iter().zip(&expect) {
                assert_eq!(format!("{got:?}"), format!("{want:?}"));
            }
        }
    }

    /// The pipelined path must be byte-identical to the serial streaming
    /// path: same analysis, same counters, whatever the chunk size.
    #[test]
    fn pipelined_matches_serial_streaming() {
        for chunk_us in [750_000u64, 5_000_000] {
            let serial = run_streaming(load_ramp(7, 8, 6, 1.5), chunk_us);
            let piped = run_streaming_pipelined(load_ramp(7, 8, 6, 1.5), chunk_us);
            assert_eq!(piped.events_processed, serial.events_processed);
            assert_eq!(piped.frames_on_air, serial.frames_on_air);
            assert_eq!(piped.medium_stats, serial.medium_stats);
            assert_eq!(piped.queue, serial.queue);
            assert_eq!(
                format!("{:?}", piped.sniffer_stats),
                format!("{:?}", serial.sniffer_stats)
            );
            for (p, s) in piped
                .per_sniffer_seconds
                .iter()
                .zip(&serial.per_sniffer_seconds)
            {
                assert_eq!(format!("{p:?}"), format!("{s:?}"));
            }
        }
    }

    /// A sharded campus run must merge to exactly the unsharded streaming
    /// result — for every shard cap and worker count (queue churn excepted;
    /// see [`ShardedRun::run`]).
    #[test]
    fn sharded_campus_matches_unsharded() {
        use ietf_workloads::{venue_campus, CampusScale};
        let scale = CampusScale {
            seed: 5,
            halls: 3,
            users: 24,
            duration_s: 6,
            activity: 1.0,
        };
        let reference = venue_campus(scale);
        let baseline = run_streaming(
            Scenario {
                name: reference.name.clone(),
                duration_us: reference.duration_us,
                sim: reference.spec.build_unsharded(),
            },
            1_000_000,
        );
        for (threads, max_shards) in [(1, 1), (1, 16), (4, 16), (4, 3)] {
            let sharded = run_sharded(venue_campus(scale), 1_000_000, threads, max_shards);
            assert!(
                sharded.shards <= max_shards,
                "shard cap violated (got {} shards, cap {max_shards})",
                sharded.shards
            );
            if max_shards > 1 {
                assert!(
                    sharded.shards > 1,
                    "campus should actually shard (got {} shards, cap {max_shards})",
                    sharded.shards
                );
            }
            // 3 halls × 3 channels of mutually isolated cells.
            assert_eq!(sharded.components, 9);
            let run = &sharded.run;
            assert_eq!(run.events_processed, baseline.events_processed);
            assert_eq!(run.frames_on_air, baseline.frames_on_air);
            assert_eq!(run.medium_stats, baseline.medium_stats);
            assert_eq!(
                format!("{:?}", run.sniffer_stats),
                format!("{:?}", baseline.sniffer_stats)
            );
            for (s, b) in run
                .per_sniffer_seconds
                .iter()
                .zip(&baseline.per_sniffer_seconds)
            {
                assert_eq!(format!("{s:?}"), format!("{b:?}"));
            }
        }
    }

    /// A lockstep plenary run — one dense coupled component split along
    /// BSS lines — must merge to exactly the unsharded streaming result
    /// for every `(threads, max_shards)` at the fixed default window.
    #[test]
    fn lockstep_plenary_matches_unsharded() {
        use ietf_workloads::{ietf_plenary_sharded, SessionScale};
        let scale = SessionScale {
            seed: 13,
            users: 40,
            duration_s: 4,
            activity: 1.5,
            rts_fraction: 0.02,
        };
        let reference = ietf_plenary_sharded(scale);
        let baseline = run_streaming(
            Scenario {
                name: reference.name.clone(),
                duration_us: reference.duration_us,
                sim: reference.spec.build_unsharded(),
            },
            1_000_000,
        );
        for (threads, max_shards) in [(1, 1), (1, 6), (4, 2), (4, 6)] {
            let sharded = run_sharded(ietf_plenary_sharded(scale), 1_000_000, threads, max_shards);
            assert_eq!(
                sharded.components, 3,
                "the plenary is one coupled cell per channel"
            );
            if max_shards > sharded.components {
                assert!(
                    sharded.lockstep,
                    "lockstep must engage past the component ceiling"
                );
                assert!(
                    sharded.shards > sharded.components,
                    "lockstep must cut finer than components (got {} shards)",
                    sharded.shards
                );
            } else {
                assert!(!sharded.lockstep, "components fill a cap of {max_shards}");
                assert_eq!(sharded.shards, max_shards);
            }
            let run = &sharded.run;
            assert_eq!(run.events_processed, baseline.events_processed);
            assert_eq!(run.frames_on_air, baseline.frames_on_air);
            assert_eq!(run.medium_stats, baseline.medium_stats);
            assert_eq!(
                format!("{:?}", run.sniffer_stats),
                format!("{:?}", baseline.sniffer_stats)
            );
            for (s, b) in run
                .per_sniffer_seconds
                .iter()
                .zip(&baseline.per_sniffer_seconds)
            {
                assert_eq!(format!("{s:?}"), format!("{b:?}"));
            }
        }
    }

    /// Chunk size must not matter — continuations are exact.
    #[test]
    fn chunk_size_is_invisible() {
        let coarse = run_streaming(load_ramp(9, 6, 5, 1.5), 5_000_000);
        let fine = run_streaming(load_ramp(9, 6, 5, 1.5), 100_000);
        assert_eq!(coarse.events_processed, fine.events_processed);
        assert_eq!(coarse.frames_on_air, fine.frames_on_air);
        for (c, f) in coarse
            .per_sniffer_seconds
            .iter()
            .zip(&fine.per_sniffer_seconds)
        {
            assert_eq!(format!("{c:?}"), format!("{f:?}"));
        }
    }
}
