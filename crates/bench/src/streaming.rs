//! Chunked scenario execution with streaming per-second analysis.
//!
//! [`Scenario::run`] buffers every captured frame until the end and analyzes
//! post hoc — O(frames) peak memory, which at congestion-knee scale is the
//! dominant allocation. [`run_streaming`] instead advances the simulator one
//! time chunk at a time (repeated `run_until` calls are pure continuations
//! of the same event queue, so results are identical), drains each sniffer's
//! trace into its [`SecondAccumulator`] after every chunk, and returns the
//! finished per-second statistics: peak memory is O(chunk + seconds), however
//! long the run.

use congestion::persec::{SecondAccumulator, SecondStats};
use ietf_workloads::Scenario;
use wifi_frames::timing::Micros;
use wifi_sim::sniffer::SnifferStats;

/// What a streaming run yields: the analysis, plus the counters the run
/// reports and perf baselines need. Raw traces are intentionally absent —
/// not buffering them is the point.
pub struct StreamedRun {
    /// Scenario name.
    pub name: String,
    /// Per-sniffer per-second statistics (same order as the sniffers).
    pub per_sniffer_seconds: Vec<Vec<SecondStats>>,
    /// Capture-performance counters per sniffer.
    pub sniffer_stats: Vec<SnifferStats>,
    /// `(transmissions, collisions)` per channel.
    pub medium_stats: Vec<(u64, u64)>,
    /// Discrete events processed.
    pub events_processed: u64,
    /// Ground-truth transmission count (independent of trace recording).
    pub frames_on_air: u64,
}

/// Runs `scenario` to completion in `chunk_us` steps, folding captured
/// frames into per-sniffer accumulators as they appear.
pub fn run_streaming(mut scenario: Scenario, chunk_us: Micros) -> StreamedRun {
    let chunk_us = chunk_us.max(1);
    let mut accs: Vec<SecondAccumulator> = scenario
        .sim
        .sniffers()
        .iter()
        .map(|_| SecondAccumulator::new())
        .collect();
    let mut now: Micros = 0;
    while now < scenario.duration_us {
        now = (now + chunk_us).min(scenario.duration_us);
        scenario.sim.run_until(now);
        for (sniffer, acc) in scenario.sim.sniffers_mut().iter_mut().zip(&mut accs) {
            for record in sniffer.trace.drain(..) {
                acc.push(record);
            }
        }
    }
    StreamedRun {
        name: scenario.name,
        per_sniffer_seconds: accs.into_iter().map(SecondAccumulator::finish).collect(),
        sniffer_stats: scenario.sim.sniffers().iter().map(|s| s.stats).collect(),
        medium_stats: scenario.sim.medium_stats(),
        events_processed: scenario.sim.events_processed(),
        frames_on_air: scenario.sim.ground_truth.transmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congestion::analyze;
    use ietf_workloads::load_ramp;

    /// The streaming path must reproduce the batch path exactly: same
    /// events, same captures, same per-second statistics.
    #[test]
    fn streaming_matches_batch_run() {
        let batch = load_ramp(7, 8, 6, 1.5).run();
        let streamed = run_streaming(load_ramp(7, 8, 6, 1.5), 750_000);
        assert_eq!(streamed.events_processed, batch.events_processed);
        assert_eq!(streamed.frames_on_air, batch.frames_on_air);
        assert_eq!(streamed.medium_stats, batch.medium_stats);
        assert_eq!(streamed.sniffer_stats.len(), batch.sniffer_stats.len());
        for (s, b) in streamed.sniffer_stats.iter().zip(&batch.sniffer_stats) {
            assert_eq!(s.captured, b.captured);
            assert_eq!(s.total_on_air(), b.total_on_air());
        }
        for (seconds, trace) in streamed.per_sniffer_seconds.iter().zip(&batch.traces) {
            let expect = analyze(trace);
            assert_eq!(seconds.len(), expect.len());
            for (got, want) in seconds.iter().zip(&expect) {
                assert_eq!(format!("{got:?}"), format!("{want:?}"));
            }
        }
    }

    /// Chunk size must not matter — continuations are exact.
    #[test]
    fn chunk_size_is_invisible() {
        let coarse = run_streaming(load_ramp(9, 6, 5, 1.5), 5_000_000);
        let fine = run_streaming(load_ramp(9, 6, 5, 1.5), 100_000);
        assert_eq!(coarse.events_processed, fine.events_processed);
        assert_eq!(coarse.frames_on_air, fine.frames_on_air);
        for (c, f) in coarse
            .per_sniffer_seconds
            .iter()
            .zip(&fine.per_sniffer_seconds)
        {
            assert_eq!(format!("{c:?}"), format!("{f:?}"));
        }
    }
}
