//! Fuzz smoke for trace ingestion: feed a budget of seeded, chaos-corrupted
//! capture files (classic pcap and pcapng) through the lossy readers and
//! prove three things fast enough for CI:
//!
//! 1. **no panics** — every corrupted input either errors in a structured
//!    way or resynchronizes (the process finishing *is* the proof);
//! 2. **honest accounting** — the merged [`IngestReport`] balances, and on
//!    clean inputs the lossy path is identical to the strict one;
//! 3. **estimator validity** — with known injected drop rates at three
//!    congestion levels, Equation 1 stays a lower bound on true loss.
//!
//! Usage: `chaos_smoke [--budget N]` (default 500 corrupted traces). The
//! merged ingestion report and per-level estimator checks are written to
//! `results/chaos_smoke.run.json`.

use congestion::unrecorded::estimate;
use congestion_bench::scaled;
use ietf80211_congestion::trace::read_capture_lossy_bytes;
use ietf_workloads::load_ramp;
use wifi_frames::record::FrameRecord;
use wifi_pcap::chaos::{corrupt_bytes, corrupt_records, ChaosConfig, ChaosRng, RecordChaosConfig};
use wifi_pcap::pcapng::PcapNgWriter;
use wifi_pcap::{IngestReport, LinkType, PcapWriter};

/// One base scenario: a congestion level plus its serialized capture in
/// both container formats.
struct BaseTrace {
    load: f64,
    records: Vec<FrameRecord>,
    classic: Vec<u8>,
    ng: Vec<u8>,
}

fn encode_packets(records: &[FrameRecord]) -> Vec<(u64, Vec<u8>)> {
    let dir = std::env::temp_dir().join("congestion-chaos-smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("encode.pcap");
    ietf80211_congestion::trace::write_capture_with_snaplen(&path, records, 0).expect("write");
    let (_, pkts) = wifi_pcap::read_file(&path).expect("re-read");
    pkts.into_iter().map(|p| (p.timestamp_us, p.data)).collect()
}

fn classic_bytes(packets: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 0).expect("classic header");
    for (ts, data) in packets {
        w.write_packet(*ts, data).expect("classic record");
    }
    w.flush().expect("flush");
    buf
}

fn ng_bytes(packets: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = PcapNgWriter::new(&mut buf, LinkType::Radiotap, 0).expect("ng header");
    for (ts, data) in packets {
        w.write_packet(*ts, data).expect("ng record");
    }
    w.flush().expect("flush");
    buf
}

/// Estimator-bound check at one congestion level: inject a known uniform
/// drop rate, assert Equation 1 detects loss without overshooting truth
/// plus the clean-trace baseline. Returns a JSON fragment for the report.
fn estimator_check(base: &BaseTrace, seed: u64) -> String {
    let before = estimate(&base.records);
    let mut packets = encode_packets(&base.records);
    let cfg = RecordChaosConfig {
        drop: 0.12,
        duplicate: 0.0,
        swap: 0.0,
        clock_skew_us: 0,
        jitter_us: 0,
        malform_head: 0.0,
    };
    let faults = corrupt_records(&mut packets, &cfg, &mut ChaosRng::new(seed));
    let dropped = faults.dropped.len();
    let ingest = read_capture_lossy_bytes(&classic_bytes(&packets)).expect("clean container");
    assert!(
        ingest.report.is_clean(),
        "drops alone keep the container clean"
    );
    let after = estimate(&ingest.records);
    let truth_pct = dropped as f64 / base.records.len().max(1) as f64 * 100.0;
    assert!(
        after.counts.total() > before.counts.total(),
        "load {}: estimator failed to notice {dropped} injected drops",
        base.load
    );
    assert!(
        after.unrecorded_pct() <= truth_pct + before.unrecorded_pct() + 1.0,
        "load {}: estimate {:.2}% overshoots injected {:.2}% + baseline {:.2}%",
        base.load,
        after.unrecorded_pct(),
        truth_pct,
        before.unrecorded_pct()
    );
    format!(
        "{{\"load\": {}, \"records\": {}, \"injected_drop_pct\": {:.3}, \
         \"baseline_est_pct\": {:.3}, \"est_pct\": {:.3}}}",
        base.load,
        base.records.len(),
        truth_pct,
        before.unrecorded_pct(),
        after.unrecorded_pct()
    )
}

const USAGE: &str = "usage: chaos_smoke [--budget N]";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut budget: u64 = 500;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => {
                budget = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => usage_error("--budget needs a number"),
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let start = std::time::Instant::now();
    let nodes = scaled(30, 15) as usize;
    let secs = scaled(10, 5);
    let bases: Vec<BaseTrace> = [0.8, 2.0, 4.0]
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            let result = load_ramp(7_000 + i as u64, nodes, secs, load).run();
            let records = result.traces[0].clone();
            let packets = encode_packets(&records);
            BaseTrace {
                load,
                records,
                classic: classic_bytes(&packets),
                ng: ng_bytes(&packets),
            }
        })
        .collect();

    // Sanity anchor: on the *clean* images the lossy path reports no damage.
    for base in &bases {
        for bytes in [&base.classic, &base.ng] {
            let clean = read_capture_lossy_bytes(bytes).expect("clean image");
            assert!(clean.report.is_clean(), "clean image: {:?}", clean.report);
            assert_eq!(clean.records.len(), base.records.len());
        }
    }

    let hostile = ChaosConfig {
        bit_flips_per_kb: 0.5,
        truncate: 0.2,
        garbage_insert: 0.6,
        length_blast: 0.6,
    };
    let mut merged = IngestReport::default();
    let mut hard_errors = 0u64;
    let mut resynced_files = 0u64;
    for seed in 0..budget {
        let base = &bases[(seed % bases.len() as u64) as usize];
        let mut bytes = if (seed / bases.len() as u64).is_multiple_of(2) {
            base.classic.clone()
        } else {
            base.ng.clone()
        };
        corrupt_bytes(&mut bytes, 0, &hostile, &mut ChaosRng::new(seed));
        match read_capture_lossy_bytes(&bytes) {
            Ok(ingest) => {
                if ingest.report.resyncs > 0 {
                    resynced_files += 1;
                }
                merged.merge(&ingest.report);
            }
            // A mangled classic global header (or non-radiotap link after
            // flips) is a structured hard error, never a panic.
            Err(_) => hard_errors += 1,
        }
    }

    let checks: Vec<String> = bases
        .iter()
        .enumerate()
        .map(|(i, base)| estimator_check(base, 9_000 + i as u64))
        .collect();

    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let json = format!(
        "{{\n  \"name\": \"chaos_smoke\",\n  \"budget\": {budget},\n  \
         \"hard_errors\": {hard_errors},\n  \"resynced_files\": {resynced_files},\n  \
         \"wall_ms\": {wall_ms:.1},\n  \"ingest\": {},\n  \"estimator_checks\": [\n    {}\n  ]\n}}\n",
        merged.to_json(),
        checks.join(",\n    ")
    );
    std::fs::create_dir_all("results").ok();
    let path = std::path::Path::new("results").join("chaos_smoke.run.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    println!(
        "chaos_smoke: {budget} corrupted traces, {hard_errors} hard errors, \
         {resynced_files} files resynced, {} records recovered, 0 panics in {wall_ms:.0} ms",
        merged.records_recovered
    );
    println!("ingest report: {}", merged.to_json());
    assert!(
        merged.records_total() > 0,
        "the corpus must still yield records"
    );
}
