//! Table 2: delay components in microseconds, as implemented by
//! `wifi_frames::timing` — printed from the code so the table can never
//! drift from the implementation.

use congestion_bench::print_series;
use wifi_frames::phy::Rate;
use wifi_frames::timing::{data_airtime_us, delay};

fn main() {
    let rows = vec![
        vec!["DIFS".into(), delay::DIFS.to_string()],
        vec!["SIFS".into(), delay::SIFS.to_string()],
        vec!["RTS".into(), delay::RTS.to_string()],
        vec!["CTS".into(), delay::CTS.to_string()],
        vec!["ACK".into(), delay::ACK.to_string()],
        vec!["BEACON".into(), delay::BEACON.to_string()],
        vec!["BO".into(), delay::BO.to_string()],
        vec!["PLCP".into(), delay::PLCP.to_string()],
        vec!["DATA(size)(rate)".into(), "PLCP + 8*(34+size)/rate".into()],
    ];
    print_series(
        "Table 2: Delay components (microseconds)",
        &["Component", "Delay (µs)"],
        &rows,
    );

    // Spot checks of the DATA formula at the class boundaries.
    let mut rows = Vec::new();
    for size in [64u64, 400, 800, 1200, 1472] {
        let mut row = vec![size.to_string()];
        for rate in Rate::ALL {
            row.push(data_airtime_us(size, rate).to_string());
        }
        rows.push(row);
    }
    print_series(
        "D_DATA(size)(rate) examples (µs)",
        &["payload B", "1 Mbps", "2 Mbps", "5.5 Mbps", "11 Mbps"],
        &rows,
    );
}
