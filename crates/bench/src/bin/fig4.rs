//! Figure 4: (a) frames sent + received by the 15 most active APs,
//! (b) users associated over time (30 s means), (c) unrecorded-frame
//! percentage per AP — for the day and plenary sessions.

use congestion::ap_stats::{infer_aps, rank_aps, top_k_share, unrecorded_by_rank};
use congestion::estimate_unrecorded;
use congestion::users::{peak_users, users_per_window};
use congestion_bench::{print_series, session_results};
use ietf_workloads::ScenarioResult;

fn report(result: &ScenarioResult) {
    let name = &result.name;
    // The paper pools all channels of a session; each sniffer is a channel.
    let mut pooled = result.traces.concat();
    pooled.sort_by_key(|r| r.timestamp_us);

    let aps = infer_aps(&pooled);
    // Rank within each channel trace (atomicity inference must stay
    // per-channel), then merge per-AP counts from the pooled view.
    let ranked = rank_aps(&pooled, &aps);
    let top = 15.min(ranked.len());

    // Fig 4(a).
    let rows: Vec<Vec<String>> = ranked[..top]
        .iter()
        .enumerate()
        .map(|(i, a)| vec![(i + 1).to_string(), a.mac.to_string(), a.frames.to_string()])
        .collect();
    print_series(
        &format!("Fig 4(a) [{name}]: frames sent+received by the {top} most active APs"),
        &["rank", "AP", "frames"],
        &rows,
    );
    println!(
        "top-{top} share: {:.2}% (paper: 90.33% day / 95.37% plenary)",
        top_k_share(&ranked, top)
    );

    // Fig 4(b).
    let windows = users_per_window(&pooled, &aps, 30);
    let rows: Vec<Vec<String>> = windows
        .iter()
        .map(|&(t, n)| vec![t.to_string(), n.to_string()])
        .collect();
    print_series(
        &format!("Fig 4(b) [{name}]: users per 30 s window"),
        &["window start (s)", "users"],
        &rows,
    );
    println!(
        "peak users: {} (paper: 523 day / 325 plenary, at full scale)",
        peak_users(&windows)
    );

    // Fig 4(c): unrecorded percentage per ranked AP. The estimator runs per
    // channel (atomicity holds within a channel's capture), then per-AP
    // numbers are summed.
    let mut merged = congestion::UnrecordedEstimate::default();
    for trace in &result.traces {
        let est = estimate_unrecorded(trace);
        merged.captured += est.captured;
        merged.counts.data += est.counts.data;
        merged.counts.rts += est.counts.rts;
        merged.counts.cts += est.counts.cts;
        for (mac, node) in est.per_node {
            let e = merged.per_node.entry(mac).or_default();
            e.captured += node.captured;
            e.unrecorded += node.unrecorded;
        }
    }
    let rows: Vec<Vec<String>> = unrecorded_by_rank(&ranked[..top], &merged)
        .into_iter()
        .enumerate()
        .map(|(i, (mac, pct))| vec![(i + 1).to_string(), mac.to_string(), format!("{pct:.2}")])
        .collect();
    print_series(
        &format!(
            "Fig 4(c) [{name}]: unrecorded percentage per AP (paper: 3–15% day, 5–20% plenary)"
        ),
        &["rank", "AP", "unrecorded %"],
        &rows,
    );
    println!("network-wide unrecorded: {:.2}%", merged.unrecorded_pct());
}

fn main() {
    let (day, plenary) = session_results();
    report(&day);
    report(&plenary);
}
