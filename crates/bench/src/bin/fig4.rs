//! Figure 4: (a) frames sent + received by the 15 most active APs,
//! (b) users associated over time (30 s means), (c) unrecorded-frame
//! percentage per AP — for the day and plenary sessions.
//!
//! With `--seeds N > 1` the detailed tables still come from the canonical
//! seed, and a cross-seed summary (peak users, top-AP share, network-wide
//! unrecorded %, each as mean ± 95 % CI) is appended per session.

use congestion::ap_stats::{infer_aps, rank_aps, top_k_share, unrecorded_by_rank};
use congestion::estimate_unrecorded;
use congestion::mean_ci95;
use congestion::users::{peak_users, users_per_window};
use congestion_bench::{print_series, session_results, SweepArgs};
use ietf_workloads::ScenarioResult;

/// The cross-seed scalar summary of one session run.
struct SessionStats {
    peak_users: usize,
    top_share_pct: f64,
    unrecorded_pct: f64,
}

fn merged_unrecorded(result: &ScenarioResult) -> congestion::UnrecordedEstimate {
    // The estimator runs per channel (atomicity holds within a channel's
    // capture), then per-AP numbers are summed.
    let mut merged = congestion::UnrecordedEstimate::default();
    for trace in &result.traces {
        let est = estimate_unrecorded(trace);
        merged.captured += est.captured;
        merged.counts.data += est.counts.data;
        merged.counts.rts += est.counts.rts;
        merged.counts.cts += est.counts.cts;
        for (mac, node) in est.per_node {
            let e = merged.per_node.entry(mac).or_default();
            e.captured += node.captured;
            e.unrecorded += node.unrecorded;
        }
    }
    merged
}

fn session_stats(result: &ScenarioResult) -> SessionStats {
    let mut pooled = result.traces.concat();
    pooled.sort_by_key(|r| r.timestamp_us);
    let aps = infer_aps(&pooled);
    let ranked = rank_aps(&pooled, &aps);
    let top = 15.min(ranked.len());
    let windows = users_per_window(&pooled, &aps, 30);
    SessionStats {
        peak_users: peak_users(&windows),
        top_share_pct: top_k_share(&ranked, top),
        unrecorded_pct: merged_unrecorded(result).unrecorded_pct(),
    }
}

fn report(result: &ScenarioResult) {
    let name = &result.name;
    // The paper pools all channels of a session; each sniffer is a channel.
    let mut pooled = result.traces.concat();
    pooled.sort_by_key(|r| r.timestamp_us);

    let aps = infer_aps(&pooled);
    // Rank within each channel trace (atomicity inference must stay
    // per-channel), then merge per-AP counts from the pooled view.
    let ranked = rank_aps(&pooled, &aps);
    let top = 15.min(ranked.len());

    // Fig 4(a).
    let rows: Vec<Vec<String>> = ranked[..top]
        .iter()
        .enumerate()
        .map(|(i, a)| vec![(i + 1).to_string(), a.mac.to_string(), a.frames.to_string()])
        .collect();
    print_series(
        &format!("Fig 4(a) [{name}]: frames sent+received by the {top} most active APs"),
        &["rank", "AP", "frames"],
        &rows,
    );
    println!(
        "top-{top} share: {:.2}% (paper: 90.33% day / 95.37% plenary)",
        top_k_share(&ranked, top)
    );

    // Fig 4(b).
    let windows = users_per_window(&pooled, &aps, 30);
    let rows: Vec<Vec<String>> = windows
        .iter()
        .map(|&(t, n)| vec![t.to_string(), n.to_string()])
        .collect();
    print_series(
        &format!("Fig 4(b) [{name}]: users per 30 s window"),
        &["window start (s)", "users"],
        &rows,
    );
    println!(
        "peak users: {} (paper: 523 day / 325 plenary, at full scale)",
        peak_users(&windows)
    );

    // Fig 4(c): unrecorded percentage per ranked AP.
    let merged = merged_unrecorded(result);
    let rows: Vec<Vec<String>> = unrecorded_by_rank(&ranked[..top], &merged)
        .into_iter()
        .enumerate()
        .map(|(i, (mac, pct))| vec![(i + 1).to_string(), mac.to_string(), format!("{pct:.2}")])
        .collect();
    print_series(
        &format!(
            "Fig 4(c) [{name}]: unrecorded percentage per AP (paper: 3–15% day, 5–20% plenary)"
        ),
        &["rank", "AP", "unrecorded %"],
        &rows,
    );
    println!("network-wide unrecorded: {:.2}%", merged.unrecorded_pct());
}

fn cross_seed_summary(name: &str, runs: &[ScenarioResult]) {
    let stats: Vec<SessionStats> = runs.iter().map(session_stats).collect();
    let col = |f: fn(&SessionStats) -> f64| -> String {
        mean_ci95(&stats.iter().map(f).collect::<Vec<_>>())
            .map(|ci| format!("{ci:.2}"))
            .unwrap_or_else(|| "-".into())
    };
    print_series(
        &format!("Fig 4 [{name}]: cross-seed summary ({} seeds)", runs.len()),
        &["metric", "mean ± 95% CI"],
        &[
            vec!["peak users".into(), col(|s| s.peak_users as f64)],
            vec!["top-AP share %".into(), col(|s| s.top_share_pct)],
            vec!["unrecorded %".into(), col(|s| s.unrecorded_pct)],
        ],
    );
}

fn main() {
    let args = SweepArgs::parse(1);
    let (day_runs, plenary_runs, _report) = session_results("fig4", &args);
    report(&day_runs[0]);
    report(&plenary_runs[0]);
    if args.seeds > 1 {
        cross_seed_summary("day", &day_runs);
        cross_seed_summary("plenary", &plenary_runs);
    }
}
