//! Figure 7: average RTS and CTS frames transmitted per second versus
//! channel utilization (Section 6.1). The paper observes RTS rising from
//! ~5/s to ~8/s across 80–84% utilization, then collapsing under high
//! congestion, with CTS failing to keep pace.

use congestion_bench::{bins_of, figure_dataset, occupied_bins, print_series, SweepArgs};

fn main() {
    let args = SweepArgs::parse(3);
    let (seconds, _report) = figure_dataset("fig7", &args);
    let bins = bins_of(&seconds);
    let rows: Vec<Vec<String>> = occupied_bins(&bins)
        .into_iter()
        .map(|u| {
            let b = bins.bin(u);
            vec![
                u.to_string(),
                format!("{:.2}", b.mean_rts_per_sec()),
                format!("{:.2}", b.mean_cts_per_sec()),
            ]
        })
        .collect();
    print_series(
        "Fig 7: RTS & CTS frames per second vs utilization",
        &["utilization %", "RTS/s", "CTS/s"],
        &rows,
    );
}
