//! Ablation A2: RTS/CTS adoption and fairness.
//!
//! Section 6.1 concludes that when only a few stations use RTS/CTS in a
//! congested network, those stations are denied fair channel access: their
//! exchanges require two extra vulnerable control frames. This ablation
//! sweeps the RTS-using fraction and compares per-station delivery between
//! users and non-users of the mechanism. The `(fraction, seed)` grid runs
//! as one parallel sweep; with `--seeds N > 1` each column is a cross-seed
//! mean ± 95 % CI.

use congestion::mean_ci95;
use congestion_bench::{print_series, run_cells, scaled, Cell, SweepArgs};
use ietf_workloads::{load_ramp_with, StationSummary};
use wifi_frames::phy::Rate;
use wifi_sim::rate::RateAdaptation;

const FRACTIONS: [f64; 5] = [0.0, 0.02, 0.1, 0.3, 1.0];

/// Per-run fairness numbers: RTS-client count and the four per-client means.
struct RunStats {
    rts_clients: usize,
    delivered_rts: f64,
    delivered_plain: f64,
    drops_rts: f64,
    drops_plain: f64,
}

fn run_stats(stations: &[StationSummary]) -> RunStats {
    let clients: Vec<&StationSummary> = stations.iter().filter(|s| !s.is_ap).collect();
    let (rts_users, plain): (Vec<&StationSummary>, Vec<&StationSummary>) =
        clients.iter().partition(|s| s.uses_rts);
    let mean = |set: &[&StationSummary], f: fn(&StationSummary) -> u64| -> f64 {
        if set.is_empty() {
            return f64::NAN;
        }
        set.iter().map(|s| f(s) as f64).sum::<f64>() / set.len() as f64
    };
    RunStats {
        rts_clients: rts_users.len(),
        delivered_rts: mean(&rts_users, |s| s.delivered),
        delivered_plain: mean(&plain, |s| s.delivered),
        drops_rts: mean(&rts_users, |s| s.retry_drops),
        drops_plain: mean(&plain, |s| s.retry_drops),
    }
}

/// Formats a cross-seed column: plain mean for one seed, `mean ± CI` for
/// more; `-` when no run had stations in the class.
fn col(stats: &[RunStats], prec: usize, f: fn(&RunStats) -> f64) -> String {
    let xs: Vec<f64> = stats.iter().map(f).filter(|v| v.is_finite()).collect();
    match mean_ci95(&xs) {
        None => "-".into(),
        Some(ci) if ci.n == 1 => format!("{:.prec$}", ci.mean),
        Some(ci) => format!("{ci:.prec$}"),
    }
}

fn main() {
    let args = SweepArgs::parse(1);
    let users = scaled(260, 50) as usize;
    let duration = scaled(360, 30);
    let seeds = args.seed_list(41);

    let mut cells = Vec::new();
    for &fraction in &FRACTIONS {
        for &seed in &seeds {
            cells.push(Cell::new(
                format!("ramp seed={seed} rts={:.0}%", fraction * 100.0),
                seed,
                move || {
                    load_ramp_with(
                        seed,
                        users,
                        duration,
                        1.7,
                        RateAdaptation::Arf(Rate::R11),
                        fraction,
                    )
                },
            ));
        }
    }
    let (results, _report) = run_cells("ablation_rtscts", &args, cells);

    // Cells are (fraction-major, seed-minor); fold each fraction's seeds.
    let rows: Vec<Vec<String>> = FRACTIONS
        .iter()
        .enumerate()
        .map(|(fi, fraction)| {
            let stats: Vec<RunStats> = results[fi * seeds.len()..(fi + 1) * seeds.len()]
                .iter()
                .map(|r| run_stats(&r.stations))
                .collect();
            let mean_clients =
                stats.iter().map(|s| s.rts_clients).sum::<usize>() as f64 / stats.len() as f64;
            vec![
                format!("{:.0}%", fraction * 100.0),
                format!("{mean_clients:.0}"),
                col(&stats, 1, |s| s.delivered_rts),
                col(&stats, 1, |s| s.delivered_plain),
                col(&stats, 2, |s| s.drops_rts),
                col(&stats, 2, |s| s.drops_plain),
            ]
        })
        .collect();
    print_series(
        &format!(
            "A2: RTS/CTS adoption sweep — per-client uplink delivery under congestion \
             ({} seed(s))",
            seeds.len()
        ),
        &[
            "RTS fraction",
            "RTS clients",
            "delivered/RTS client",
            "delivered/plain client",
            "drops/RTS client",
            "drops/plain client",
        ],
        &rows,
    );
    println!(
        "\npaper's position: a small RTS/CTS minority is starved relative to \
              non-users; the deficit should shrink as adoption approaches 100%."
    );
}
