//! Ablation A2: RTS/CTS adoption and fairness.
//!
//! Section 6.1 concludes that when only a few stations use RTS/CTS in a
//! congested network, those stations are denied fair channel access: their
//! exchanges require two extra vulnerable control frames. This ablation
//! sweeps the RTS-using fraction and compares per-station delivery between
//! users and non-users of the mechanism.

use congestion_bench::{print_series, scaled};
use ietf_workloads::load_ramp_with;
use wifi_frames::phy::Rate;
use wifi_sim::rate::RateAdaptation;

fn main() {
    let users = scaled(260, 50) as usize;
    let duration = scaled(360, 30);
    let mut rows = Vec::new();
    for rts_fraction in [0.0, 0.02, 0.1, 0.3, 1.0] {
        let result = load_ramp_with(
            41,
            users,
            duration,
            1.7,
            RateAdaptation::Arf(Rate::R11),
            rts_fraction,
        )
        .run();
        let clients: Vec<_> = result.stations.iter().filter(|s| !s.is_ap).collect();
        let (rts_users, plain): (Vec<_>, Vec<_>) = clients.iter().partition(|s| s.uses_rts);
        let mean_delivered = |set: &[&&ietf_workloads::StationSummary]| -> f64 {
            if set.is_empty() {
                return f64::NAN;
            }
            set.iter().map(|s| s.delivered as f64).sum::<f64>() / set.len() as f64
        };
        let mean_drops = |set: &[&&ietf_workloads::StationSummary]| -> f64 {
            if set.is_empty() {
                return f64::NAN;
            }
            set.iter().map(|s| s.retry_drops as f64).sum::<f64>() / set.len() as f64
        };
        rows.push(vec![
            format!("{:.0}%", rts_fraction * 100.0),
            rts_users.len().to_string(),
            format!("{:.1}", mean_delivered(&rts_users)),
            format!("{:.1}", mean_delivered(&plain)),
            format!("{:.2}", mean_drops(&rts_users)),
            format!("{:.2}", mean_drops(&plain)),
        ]);
    }
    print_series(
        "A2: RTS/CTS adoption sweep — per-client uplink delivery under congestion",
        &[
            "RTS fraction",
            "RTS clients",
            "delivered/RTS client",
            "delivered/plain client",
            "drops/RTS client",
            "drops/plain client",
        ],
        &rows,
    );
    println!(
        "\npaper's position: a small RTS/CTS minority is starved relative to \
              non-users; the deficit should shrink as adoption approaches 100%."
    );
}
