//! Pinned perf baseline: one mid-congestion scenario, one JSON artifact.
//!
//! Runs a fixed load-ramp cell (the knee region the paper's figures live
//! in) and writes `BENCH_sim.json` with events/s, frames/s, a peak-RSS
//! proxy, and wall-clock, so every future PR has a number to compare
//! against:
//!
//! ```text
//! cargo run --release -p congestion-bench --bin bench_baseline
//! cargo run --release -p congestion-bench --bin bench_baseline -- \
//!     --quick --check BENCH_sim_quick.json    # CI smoke: fail on >30% drop
//! ```
//!
//! `--check <file>` re-runs the same pinned scenario and exits non-zero if
//! events/s fell below 70 % of the committed baseline (after verifying the
//! baseline's scenario fingerprint matches, so a stale file can't silently
//! gate against the wrong workload).

use congestion_bench::streaming::run_streaming;
use ietf_workloads::load_ramp;

/// The pinned scenario: seed and load are part of the baseline contract.
struct Pin {
    seed: u64,
    users: usize,
    duration_s: u64,
    per_user_fps: f64,
    quick: bool,
}

impl Pin {
    fn new(quick: bool) -> Pin {
        if quick {
            // CI smoke scale: long enough that the wall-clock measurement is
            // not dominated by startup noise, small enough for every PR.
            Pin {
                seed: 11,
                users: 48,
                duration_s: 60,
                per_user_fps: 1.7,
                quick,
            }
        } else {
            // Mid-congestion: dense enough that the medium saturates and the
            // sensing loop dominates, short enough to run on every PR.
            Pin {
                seed: 11,
                users: 320,
                duration_s: 30,
                per_user_fps: 1.7,
                quick,
            }
        }
    }

    fn default_out(&self) -> &'static str {
        if self.quick {
            "BENCH_sim_quick.json"
        } else {
            "BENCH_sim.json"
        }
    }
}

fn main() {
    let mut quick = false;
    let mut check: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = Some(it.next().expect("--check needs a file")),
            "--out" => out = Some(it.next().expect("--out needs a file")),
            "--help" | "-h" => {
                println!(
                    "usage: bench_baseline [--quick] [--out FILE] [--check BASELINE]\n\
                     \n\
                     Runs the pinned mid-congestion scenario and writes a perf\n\
                     baseline JSON (default BENCH_sim.json; BENCH_sim_quick.json\n\
                     with --quick). --check compares events/s against a committed\n\
                     baseline and exits 1 on a >30% regression."
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let pin = Pin::new(quick);
    let out = out.unwrap_or_else(|| pin.default_out().to_string());

    let mut scenario = load_ramp(pin.seed, pin.users, pin.duration_s, pin.per_user_fps);
    // Perf run: skip the ground-truth tape (it is O(frames) memory and no
    // figure reads it here); the on-air counter still runs.
    scenario.sim.config.record_ground_truth = false;

    let start = std::time::Instant::now();
    let run = run_streaming(scenario, 1_000_000);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let events_per_sec = run.events_processed as f64 / (wall_ms / 1e3).max(1e-9);
    let frames_per_sec = run.frames_on_air as f64 / (wall_ms / 1e3).max(1e-9);
    let seconds_analyzed: usize = run.per_sniffer_seconds.iter().map(|s| s.len()).sum();

    let json = format!(
        "{{\n  \"scenario\": \"ramp\",\n  \"quick\": {},\n  \"seed\": {},\n  \
         \"users\": {},\n  \"duration_s\": {},\n  \"per_user_fps\": {},\n  \
         \"events\": {},\n  \"frames_on_air\": {},\n  \"seconds_analyzed\": {},\n  \
         \"wall_ms\": {:.1},\n  \"events_per_sec\": {:.0},\n  \
         \"frames_per_sec\": {:.0},\n  \"peak_rss_kb\": {}\n}}\n",
        pin.quick,
        pin.seed,
        pin.users,
        pin.duration_s,
        pin.per_user_fps,
        run.events_processed,
        run.frames_on_air,
        seconds_analyzed,
        wall_ms,
        events_per_sec,
        frames_per_sec,
        peak_rss_kb(),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "bench_baseline: {} events in {:.1} ms -> {:.0} events/s, {:.0} frames/s ({out})",
        run.events_processed, wall_ms, events_per_sec, frames_per_sec
    );

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        // The fingerprint fields must match — a baseline from a different
        // pinned scenario would make the ratio meaningless.
        for (field, want) in [
            ("seed", pin.seed as f64),
            ("users", pin.users as f64),
            ("duration_s", pin.duration_s as f64),
            ("per_user_fps", pin.per_user_fps),
            ("events", run.events_processed as f64),
        ] {
            let got = json_number(&baseline, field).unwrap_or_else(|| {
                eprintln!("error: baseline {baseline_path} missing field {field:?}");
                std::process::exit(1);
            });
            if got != want {
                eprintln!(
                    "error: baseline fingerprint mismatch on {field:?}: \
                     baseline has {got}, this run has {want}"
                );
                std::process::exit(1);
            }
        }
        let base_eps = json_number(&baseline, "events_per_sec").unwrap_or_else(|| {
            eprintln!("error: baseline {baseline_path} missing events_per_sec");
            std::process::exit(1);
        });
        let floor = 0.7 * base_eps;
        if events_per_sec < floor {
            eprintln!(
                "FAIL: events/s regressed >30%: {events_per_sec:.0} < 0.7 x \
                 baseline {base_eps:.0}"
            );
            std::process::exit(1);
        }
        eprintln!(
            "check ok: {:.0} events/s vs baseline {:.0} ({:+.0}%)",
            events_per_sec,
            base_eps,
            (events_per_sec / base_eps - 1.0) * 100.0
        );
    }
}

/// Pulls a numeric field out of the flat baseline JSON (no serde in the
/// offline workspace; the file is machine-written, one `"key": value` pair
/// per line).
fn json_number(json: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let value: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    value.parse().ok()
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`); 0 where
/// procfs is unavailable, so the field is informational, never a gate.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}
