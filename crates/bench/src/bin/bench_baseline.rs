//! Pinned perf baselines: three scenarios, one append-only trajectory each.
//!
//! Each *pin* is a fixed scenario (seed, scale, duration are part of the
//! contract) whose throughput is tracked across the life of the repository
//! in a JSON trajectory file — every blessed optimization appends an entry,
//! so the file reads as the perf history of the simulator:
//!
//! * `ramp-quick`   — 48-user load ramp, 60 s (CI smoke scale) → `BENCH_sim_quick.json`
//! * `ramp-320`     — 320-user mid-congestion ramp, 30 s       → `BENCH_sim.json`
//! * `plenary-523`  — the paper's full IETF-62 plenary peak:
//!   523 concurrent users at plenary activity, 30 s            → `BENCH_sim_plenary.json`
//! * `venue-5k`     — the whole conference campus: ≈5,000 users, 39 APs over
//!   channels 1/6/11 in 13 RF-isolated halls, 10 s, run on the sharded
//!   intra-scenario parallel path (`--threads`)   → `BENCH_sim_venue.json`
//! * `churn`        — the mobile venue: 160 users on the nine-AP floor,
//!   a third walking waypoint routes and roaming between APs on coherence
//!   ticks (incremental topology maintenance)     → `BENCH_sim_churn.json`
//! * `trace-merge-3x` — the ingestion fast path: three skewed, lossy 30 s
//!   sniffer captures of one channel streamed through parallel decode,
//!   the k-way online merge, and per-second analysis → `BENCH_trace.json`
//!
//! ```text
//! cargo run --release -p congestion-bench --bin bench_baseline -- --pin ramp-320
//! cargo run --release -p congestion-bench --bin bench_baseline -- \
//!     --pin ramp-quick --out bench_ci.json --check BENCH_sim_quick.json
//! cargo run --release -p congestion-bench --bin bench_baseline -- \
//!     --pin venue-5k --threads 8
//! ```
//!
//! The serial pins use the pipelined sim→analysis path (event loop and
//! per-second congestion analysis overlapped on two threads; results
//! byte-identical to the serial path — `crates/bench/tests/golden.rs` pins
//! that down). The venue pin runs `run_sharded`: one event loop per
//! RF-isolation shard on a `--threads`-wide work queue, merged output again
//! identical for every thread count. The plenary pin with `--max-shards > 1`
//! also runs `run_sharded` — its three per-channel cells are each one coupled
//! component, so the split comes from time-window lockstep sharding (bounded
//! window advance, cross-shard TxStart/TxEnd exchange at window boundaries),
//! still byte-identical to the serial run. Sharded trajectory entries carry
//! `threads`/`shards`/`components`/`lockstep`/`host_cpus` so scaling claims
//! can be read against the hardware that produced them — an entry at
//! `--threads 8` on a one-CPU host measures scheduling overhead, not speedup.
//!
//! `--check <file>` compares events/s against the *last* trajectory entry of
//! a committed baseline and exits non-zero on a >15 % drop — after verifying
//! the entry's scenario fingerprint (seed/users/duration/event count), so a
//! stale file can't silently gate against the wrong workload.

use congestion_bench::streaming::{
    run_sharded, run_streaming_mobile, run_streaming_pipelined, MobilityStats, StreamedRun,
};
use ietf_workloads::{
    ietf_plenary, ietf_plenary_sharded, load_ramp, mobile_venue, venue_campus, CampusScale,
    ChurnScale, Scenario, SessionScale,
};

/// The pinned scenarios: identity and scale are part of the baseline
/// contract; changing any number here invalidates the trajectory file.
#[derive(Clone, Copy, PartialEq)]
enum PinName {
    RampQuick,
    Ramp320,
    Plenary523,
    Venue5k,
    Churn,
    TraceMerge3x,
}

struct Pin {
    name: PinName,
    seed: u64,
    users: usize,
    duration_s: u64,
}

impl Pin {
    fn by_name(name: &str) -> Option<Pin> {
        let pin = match name {
            // CI smoke scale: long enough that the wall-clock measurement
            // is not dominated by startup noise, small enough for every PR.
            "ramp-quick" => Pin {
                name: PinName::RampQuick,
                seed: 11,
                users: 48,
                duration_s: 60,
            },
            // Mid-congestion: dense enough that the medium saturates and
            // contention dominates, short enough to run on every PR.
            "ramp-320" => Pin {
                name: PinName::Ramp320,
                seed: 11,
                users: 320,
                duration_s: 30,
            },
            // The paper's venue at its peak: 523 concurrent users in the
            // merged plenary ballroom (Section 2 of the paper).
            "plenary-523" => Pin {
                name: PinName::Plenary523,
                seed: 11,
                users: 523,
                duration_s: 30,
            },
            // The whole conference campus: the venue-scale pin for the
            // sharded intra-scenario parallel path (13 halls × 3 channels
            // of RF isolation).
            "venue-5k" => Pin {
                name: PinName::Venue5k,
                seed: 11,
                users: 5_000,
                duration_s: 10,
            },
            // The mobile venue: waypoint walkers roaming the nine-AP floor
            // on coherence ticks — the churn workload family opened by
            // incremental topology maintenance.
            "churn" => Pin {
                name: PinName::Churn,
                seed: 11,
                users: 160,
                duration_s: 60,
            },
            // The trace-ingestion fast path: three skewed, lossy 30 s
            // sniffer captures of one synthetic channel, streamed through
            // parallel decode + k-way merge + per-second analysis. `users`
            // is the sniffer count here.
            "trace-merge-3x" => Pin {
                name: PinName::TraceMerge3x,
                seed: 11,
                users: 3,
                duration_s: 30,
            },
            _ => return None,
        };
        Some(pin)
    }

    fn label(&self) -> &'static str {
        match self.name {
            PinName::RampQuick => "ramp-quick",
            PinName::Ramp320 => "ramp-320",
            PinName::Plenary523 => "plenary-523",
            PinName::Venue5k => "venue-5k",
            PinName::Churn => "churn",
            PinName::TraceMerge3x => "trace-merge-3x",
        }
    }

    fn default_out(&self) -> &'static str {
        match self.name {
            PinName::RampQuick => "BENCH_sim_quick.json",
            PinName::Ramp320 => "BENCH_sim.json",
            PinName::Plenary523 => "BENCH_sim_plenary.json",
            PinName::Venue5k => "BENCH_sim_venue.json",
            PinName::Churn => "BENCH_sim_churn.json",
            PinName::TraceMerge3x => "BENCH_trace.json",
        }
    }

    fn build(&self) -> Scenario {
        let mut scenario = match self.name {
            PinName::RampQuick | PinName::Ramp320 => {
                load_ramp(self.seed, self.users, self.duration_s, 1.7)
            }
            PinName::Plenary523 => ietf_plenary(SessionScale {
                seed: self.seed,
                users: self.users,
                duration_s: self.duration_s,
                activity: 3.0,
                rts_fraction: 0.02,
            }),
            PinName::Venue5k => unreachable!("venue-5k runs the sharded path"),
            PinName::Churn => unreachable!("churn runs the mobile streaming path"),
            PinName::TraceMerge3x => unreachable!("trace-merge-3x runs the ingest path"),
        };
        // Perf run: skip the ground-truth tape (it is O(frames) memory and
        // no figure reads it here); the on-air counter still runs.
        scenario.sim.config.record_ground_truth = false;
        scenario
    }

    /// Runs the pin. The serial pins take the pipelined two-thread path;
    /// venue-5k partitions into RF-isolation shards and runs them on a
    /// `threads`-wide work queue; plenary-523 with `--max-shards > 1` takes
    /// the sharded path too, where the three coupled per-channel cells split
    /// further under time-window lockstep. Returns the merged run plus
    /// `(shards, components, lockstep)` for sharded runs.
    fn run(
        &self,
        threads: usize,
        max_shards: usize,
    ) -> (
        StreamedRun,
        Option<(usize, usize, bool)>,
        Option<MobilityStats>,
    ) {
        match self.name {
            PinName::Churn => {
                let scale = ChurnScale::venue_default(self.seed);
                debug_assert!(scale.users == self.users && scale.duration_s == self.duration_s);
                let mut scenario = mobile_venue(scale);
                scenario.sim.config.record_ground_truth = false;
                let (run, mobility) = run_streaming_mobile(scenario, 1_000_000);
                (run, None, Some(mobility))
            }
            PinName::Venue5k => {
                let scale = CampusScale::venue_5k(self.seed);
                debug_assert!(scale.users == self.users && scale.duration_s == self.duration_s);
                let mut scenario = venue_campus(scale);
                scenario.spec.config_mut().record_ground_truth = false;
                let sharded = run_sharded(scenario, 1_000_000, threads, max_shards);
                (
                    sharded.run,
                    Some((sharded.shards, sharded.components, sharded.lockstep)),
                    None,
                )
            }
            PinName::Plenary523 if max_shards > 1 => {
                let mut scenario = ietf_plenary_sharded(SessionScale {
                    seed: self.seed,
                    users: self.users,
                    duration_s: self.duration_s,
                    activity: 3.0,
                    rts_fraction: 0.02,
                });
                scenario.spec.config_mut().record_ground_truth = false;
                let sharded = run_sharded(scenario, 1_000_000, threads, max_shards);
                (
                    sharded.run,
                    Some((sharded.shards, sharded.components, sharded.lockstep)),
                    None,
                )
            }
            _ => (run_streaming_pipelined(self.build(), 1_000_000), None, None),
        }
    }
}

fn main() {
    let mut pin_name = "ramp-320".to_string();
    let mut check: Option<String> = None;
    let mut out: Option<String> = None;
    let mut entry_label = "current".to_string();
    let mut notes: Option<String> = None;
    let mut threads = 1usize;
    let mut max_shards: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pin" => pin_name = it.next().expect("--pin needs a name"),
            "--quick" => pin_name = "ramp-quick".to_string(),
            "--check" => check = Some(it.next().expect("--check needs a file")),
            "--out" => out = Some(it.next().expect("--out needs a file")),
            "--label" => entry_label = it.next().expect("--label needs a string"),
            "--notes" => notes = Some(it.next().expect("--notes needs a string")),
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t >= 1)
                    .expect("--threads needs a positive integer")
            }
            "--max-shards" => {
                max_shards = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&m| m >= 1)
                        .expect("--max-shards needs a positive integer"),
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_baseline [--pin NAME] [--label L] [--notes S] \
                     [--threads N] [--max-shards M] [--out FILE] [--check BASELINE]\n\
                     \n\
                     Pins: ramp-quick (48u/60s), ramp-320 (320u/30s, default),\n\
                     plenary-523 (523u plenary/30s), venue-5k (5000u campus/10s,\n\
                     sharded over RF-isolation domains on --threads workers),\n\
                     churn (160u mobile venue/60s, waypoint walkers roaming\n\
                     the nine-AP floor), trace-merge-3x (three skewed lossy\n\
                     30s sniffer captures through the streaming ingest\n\
                     pipeline: parallel decode + k-way merge + analysis).\n\
                     Runs the pinned scenario and appends one entry (tagged\n\
                     --label, with optional free-form --notes) to the pin's\n\
                     trajectory JSON (default\n\
                     BENCH_sim[_quick|_plenary|_venue|_churn].json). --quick =\n\
                     --pin ramp-quick. --max-shards caps the partition; for\n\
                     plenary-523 a value > 1 takes the sharded path, splitting\n\
                     the coupled per-channel cells by time-window lockstep\n\
                     (results byte-identical to the serial run). --check\n\
                     compares events/s against the last entry of a committed\n\
                     trajectory and exits 1 on a >15% regression."
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let Some(pin) = Pin::by_name(&pin_name) else {
        eprintln!(
            "error: unknown pin {pin_name:?} (ramp-quick | ramp-320 | plenary-523 | \
             venue-5k | churn | trace-merge-3x)"
        );
        std::process::exit(2);
    };
    let out = out.unwrap_or_else(|| pin.default_out().to_string());
    // Read the check baseline *before* writing anything, so `--out` and
    // `--check` may name the same trajectory file.
    let baseline = check.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path}: {e}");
            std::process::exit(1);
        })
    });

    if pin.name == PinName::TraceMerge3x {
        run_trace_pin(
            &pin,
            &out,
            check.as_deref(),
            baseline.as_deref(),
            &entry_label,
            notes.as_deref(),
        );
        return;
    }

    // Venue-5k defaults to "as many shards as the topology allows"; the
    // serial pins default to the unsharded path.
    let max_shards = max_shards.unwrap_or(match pin.name {
        PinName::Venue5k => usize::MAX,
        _ => 1,
    });

    let start = std::time::Instant::now();
    let (run, sharding, mobility) = pin.run(threads, max_shards);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let events_per_sec = run.events_processed as f64 / (wall_ms / 1e3).max(1e-9);
    let frames_per_sec = run.frames_on_air as f64 / (wall_ms / 1e3).max(1e-9);
    let seconds_analyzed: usize = run.per_sniffer_seconds.iter().map(|s| s.len()).sum();

    // Sharded entries record how the run was cut and what hardware ran it:
    // events/s at `threads` only means speedup when `host_cpus` can supply
    // that many workers.
    let sharding_fields = sharding
        .map(|(shards, components, lockstep)| {
            format!(
                ", \"threads\": {}, \"shards\": {}, \"components\": {}, \
                 \"lockstep\": {}, \"host_cpus\": {}",
                threads,
                shards,
                components,
                lockstep,
                std::thread::available_parallelism().map_or(0, usize::from),
            )
        })
        .unwrap_or_default();
    // Churn entries record the movement volume behind the numbers: events/s
    // at 0 moves would mean the walkers never walked.
    let mobility_fields = mobility
        .map(|m| {
            format!(
                ", \"walkers\": {}, \"moves\": {}, \"roams\": {}",
                m.walkers, m.moves, m.roams
            )
        })
        .unwrap_or_default();
    // Free-form context for the entry (what changed, measured side costs);
    // `--check` only reads named numeric fields, so notes never gate.
    let notes_field = notes
        .map(|n| format!(", \"notes\": \"{}\"", n.replace(['"', '\\'], "_")))
        .unwrap_or_default();
    let entry = format!(
        "    {{\"label\": \"{}\", \"pin\": \"{}\", \"seed\": {}, \"users\": {}, \
         \"duration_s\": {}, \"events\": {}, \"frames_on_air\": {}, \
         \"seconds_analyzed\": {}, \"queue_pushed\": {}, \"queue_popped\": {}, \
         \"queue_stale_dropped\": {}, \"queue_cascaded\": {}, \"wall_ms\": {:.1}, \
         \"events_per_sec\": {:.0}, \"frames_per_sec\": {:.0}, \"peak_rss_kb\": {}{}{}{}}}",
        entry_label.replace(['"', '\\'], "_"),
        pin.label(),
        pin.seed,
        pin.users,
        pin.duration_s,
        run.events_processed,
        run.frames_on_air,
        seconds_analyzed,
        run.queue.pushed,
        run.queue.popped,
        run.queue.stale_dropped,
        run.queue.cascaded,
        wall_ms,
        events_per_sec,
        frames_per_sec,
        peak_rss_kb(),
        sharding_fields,
        mobility_fields,
        notes_field,
    );
    if let Err(e) = append_entry(&out, pin.label(), &entry) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    let sharding_note = sharding
        .map(|(shards, components, lockstep)| {
            let mode = if lockstep { "lockstep" } else { "component" };
            format!(" [{shards} shards / {components} components, {mode} @ {threads} threads]")
        })
        .unwrap_or_default();
    eprintln!(
        "bench_baseline[{}]: {} events in {:.1} ms -> {:.0} events/s, {:.0} frames/s \
         ({out}){sharding_note}",
        pin.label(),
        run.events_processed,
        wall_ms,
        events_per_sec,
        frames_per_sec
    );

    if let Some(baseline) = baseline {
        check_regression(
            &baseline,
            check.as_deref().unwrap_or(""),
            &[
                ("seed", pin.seed as f64),
                ("users", pin.users as f64),
                ("duration_s", pin.duration_s as f64),
                ("events", run.events_processed as f64),
            ],
            events_per_sec,
        );
    }
}

/// Gates this run's events/s against the last entry of a committed baseline
/// trajectory: the fingerprint fields must match exactly (a baseline from a
/// different pinned workload — or a semantics-changing build — would make
/// the throughput ratio meaningless), then a >15 % drop fails.
///
/// The 15 % gate (was 30 % while the trajectories were still moving):
/// interleaved same-host medians vary well under this band, so a breach
/// means a real regression, not scheduler noise.
fn check_regression(
    baseline: &str,
    baseline_path: &str,
    fingerprint: &[(&str, f64)],
    events_per_sec: f64,
) {
    let entry = last_entry(baseline).unwrap_or_else(|| {
        eprintln!("error: baseline {baseline_path} has no trajectory entries");
        std::process::exit(1);
    });
    for &(field, want) in fingerprint {
        let got = json_number(entry, field).unwrap_or_else(|| {
            eprintln!("error: baseline {baseline_path} missing field {field:?}");
            std::process::exit(1);
        });
        if got != want {
            eprintln!(
                "error: baseline fingerprint mismatch on {field:?}: \
                 baseline has {got}, this run has {want}"
            );
            std::process::exit(1);
        }
    }
    let base_eps = json_number(entry, "events_per_sec").unwrap_or_else(|| {
        eprintln!("error: baseline {baseline_path} missing events_per_sec");
        std::process::exit(1);
    });
    let floor = 0.85 * base_eps;
    if events_per_sec < floor {
        eprintln!(
            "FAIL: events/s regressed >15%: {events_per_sec:.0} < 0.85 x \
             baseline {base_eps:.0}"
        );
        std::process::exit(1);
    }
    eprintln!(
        "check ok: {:.0} events/s vs baseline {:.0} ({:+.0}%)",
        events_per_sec,
        base_eps,
        (events_per_sec / base_eps - 1.0) * 100.0
    );
}

/// The trace-ingestion pin: generates the pinned sniffer captures — three
/// skewed, 20 %-lossy views of one dense synthetic 30 s channel, written
/// record-by-record so generation never materializes a trace and the timed
/// phase dominates peak RSS — then times the streaming pipeline end to end:
/// parallel per-sniffer decode, bounded channels, k-way online merge with
/// dedup, per-second congestion analysis.
///
/// `events` in the trajectory entry is the total records decoded across all
/// sniffers (the fingerprint: generation is deterministic in the pin's
/// seed), `events_per_sec` is the gated throughput.
fn run_trace_pin(
    pin: &Pin,
    out: &str,
    check: Option<&str>,
    baseline: Option<&str>,
    entry_label: &str,
    notes: Option<&str>,
) {
    use ietf80211_congestion::ingest::analyze_capture_streams;
    use ietf80211_congestion::trace::CaptureWriter;
    use wifi_frames::fc::FrameKind;
    use wifi_frames::mac::MacAddr;
    use wifi_frames::phy::{Channel, Rate};
    use wifi_frames::record::FrameRecord;

    let sniffers = pin.users as u64;
    // ~1500 data/ACK exchanges per second — a hot 802.11b channel.
    let exchanges = pin.duration_s * 1_500;
    let rates = [Rate::R1, Rate::R2, Rate::R5_5, Rate::R11];
    let payloads = [64u32, 400, 900, 1472];

    // Deterministic ~20 % per-sniffer loss, independent across sniffers.
    let keep = |record: u64, sniffer: u64| -> bool {
        let h = (record ^ (sniffer << 32) ^ pin.seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        !(h >> 33).is_multiple_of(5)
    };

    let dir = std::env::temp_dir().join("congestion_bench_trace_pin");
    std::fs::create_dir_all(&dir).expect("cannot create trace-pin scratch dir");
    let paths: Vec<std::path::PathBuf> = (0..sniffers)
        .map(|s| dir.join(format!("trace_pin_sniffer{s}.pcap")))
        .collect();
    let mut writers: Vec<CaptureWriter> = paths
        .iter()
        .map(|p| CaptureWriter::create(p, 250).expect("cannot create trace-pin capture"))
        .collect();
    let mut write_views = |record_idx: u64, base: &FrameRecord| {
        for (s, w) in writers.iter_mut().enumerate() {
            if keep(record_idx, s as u64) {
                let mut r = *base;
                r.timestamp_us += 25 * s as u64; // per-sniffer clock skew
                r.signal_dbm -= s as i8; // different vantage point
                w.write_record(&r).expect("trace-pin write failed");
            }
        }
    };
    for i in 0..exchanges {
        let t = i * 667;
        let src = MacAddr::from_id(1 + (i % 40) as u32);
        let payload = payloads[(i as usize / 4) % 4];
        let data = FrameRecord {
            timestamp_us: t,
            kind: FrameKind::Data,
            rate: rates[i as usize % 4],
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(src),
            bssid: Some(MacAddr::from_id(99)),
            retry: i % 7 == 0,
            seq: Some((i % 4096) as u16),
            mac_bytes: payload + 28,
            payload_bytes: payload,
            signal_dbm: -60,
            duration_us: 314,
        };
        write_views(2 * i, &data);
        let ack = FrameRecord {
            timestamp_us: t + 340,
            kind: FrameKind::Ack,
            rate: Rate::R1,
            channel: Channel::new(1).unwrap(),
            dst: src,
            src: None,
            bssid: None,
            retry: false,
            seq: None,
            mac_bytes: 14,
            payload_bytes: 0,
            signal_dbm: -60,
            duration_us: 0,
        };
        write_views(2 * i + 1, &ack);
    }
    let written: u64 = writers
        .into_iter()
        .map(|w| w.finish().expect("trace-pin flush failed"))
        .sum();

    let start = std::time::Instant::now();
    let analysis = analyze_capture_streams(&paths).expect("trace-pin ingestion failed");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }

    // Clean captures: every written record decodes, so `events` doubles as
    // the determinism fingerprint.
    let events: u64 = analysis
        .sources
        .iter()
        .map(|s| s.report.records_total())
        .sum();
    assert_eq!(
        events, written,
        "trace pin must decode every written record"
    );
    let events_per_sec = events as f64 / (wall_ms / 1e3).max(1e-9);

    let notes_field = notes
        .map(|n| format!(", \"notes\": \"{}\"", n.replace(['"', '\\'], "_")))
        .unwrap_or_default();
    let entry = format!(
        "    {{\"label\": \"{}\", \"pin\": \"{}\", \"seed\": {}, \"users\": {}, \
         \"duration_s\": {}, \"events\": {}, \"records_merged\": {}, \
         \"seconds_analyzed\": {}, \"wall_ms\": {:.1}, \"events_per_sec\": {:.0}, \
         \"peak_rss_kb\": {}{}}}",
        entry_label.replace(['"', '\\'], "_"),
        pin.label(),
        pin.seed,
        pin.users,
        pin.duration_s,
        events,
        analysis.merged_records,
        analysis.per_second.len(),
        wall_ms,
        events_per_sec,
        peak_rss_kb(),
        notes_field,
    );
    if let Err(e) = append_entry(out, pin.label(), &entry) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "bench_baseline[{}]: {} records ({} merged) in {:.1} ms -> {:.0} records/s ({out})",
        pin.label(),
        events,
        analysis.merged_records,
        wall_ms,
        events_per_sec
    );
    if let Some(baseline) = baseline {
        check_regression(
            baseline,
            check.unwrap_or(""),
            &[
                ("seed", pin.seed as f64),
                ("users", pin.users as f64),
                ("duration_s", pin.duration_s as f64),
                ("events", events as f64),
            ],
            events_per_sec,
        );
    }
}

/// Appends `entry` to the trajectory array in `path`, creating the document
/// if the file does not exist (or predates the trajectory format). Entries
/// are one line each, so the line-oriented field scanner below stays valid.
fn append_entry(path: &str, pin_label: &str, entry: &str) -> std::io::Result<()> {
    let doc = match std::fs::read_to_string(path) {
        Ok(existing) if existing.contains("\"trajectory\"") => {
            let end = existing.rfind("\n  ]").ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{path}: trajectory array terminator not found"),
                )
            })?;
            format!("{},\n{}{}", &existing[..end], entry, &existing[end..])
        }
        _ => format!("{{\n  \"pin\": \"{pin_label}\",\n  \"trajectory\": [\n{entry}\n  ]\n}}\n"),
    };
    std::fs::write(path, doc)
}

/// The last trajectory entry line (entries are one `{...}` per line).
fn last_entry(json: &str) -> Option<&str> {
    json.lines()
        .rev()
        .find(|l| l.trim_start().starts_with('{') && l.contains("\"events\""))
}

/// Pulls a numeric field out of a flat JSON fragment (no serde in the
/// offline workspace; the files are machine-written `"key": value` pairs).
fn json_number(json: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let value: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    value.parse().ok()
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`); 0 where
/// procfs is unavailable, so the field is informational, never a gate.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}
