//! Ablation A7: fragmentation threshold under error-prone channels.
//!
//! The paper's related work (Modiano \[16\], Torrent-Moreno et al. \[20\])
//! optimizes frame sizes for high-bit-error environments. With the MAC's
//! own fragmentation implemented, this ablation sweeps the threshold on a
//! strongly-fading channel and on a clean one: fragmentation should help
//! when bit errors kill long frames, and only add overhead when they don't.

use congestion_bench::{print_series, scaled};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wifi_frames::phy::Rate;
use wifi_sim::geometry::Pos;
use wifi_sim::radio::{Fading, RadioConfig};
use wifi_sim::rate::RateAdaptation;
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::{FlowConfig, SizeDist, TrafficProfile};
use wifi_sim::{ClientConfig, SimConfig, Simulator};

fn run(fading: Fading, frag: Option<u32>, duration_s: u64) -> (u64, u64, f64) {
    let mut rng = SmallRng::seed_from_u64(0xA7);
    let mut sim = Simulator::new(SimConfig {
        seed: 0xA7,
        radio: RadioConfig {
            tx_power_dbm: 13.0,
            pathloss_exp: 3.5,
            fading,
            ..RadioConfig::default()
        },
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(32.0, 18.0), 0, 6);
    for _ in 0..20 {
        let pos = Pos::new(rng.gen_range(10.0..54.0), rng.gen_range(6.0..30.0));
        sim.add_client(ClientConfig {
            pos,
            channel_idx: 0,
            rts_policy: RtsPolicy::Never,
            adaptation: RateAdaptation::Fixed(Rate::R11),
            traffic: TrafficProfile {
                uplink: FlowConfig::poisson(8.0, SizeDist::fixed(1472)),
                downlink: FlowConfig::off(),
            },
            join_at_us: 0,
            leave_at_us: None,
            power_save_interval_us: None,
            frag_threshold: frag,
        });
    }
    sim.run_until(duration_s * 1_000_000);
    let delivered: u64 = sim
        .stations()
        .iter()
        .filter(|s| !s.is_ap())
        .map(|s| s.stats.delivered.saturating_sub(1)) // minus the assoc MSDU
        .sum();
    let drops: u64 = sim.stations().iter().map(|s| s.stats.retry_drops).sum();
    let goodput_mbps = delivered as f64 * 1472.0 * 8.0 / (duration_s as f64 * 1e6);
    (delivered, drops, goodput_mbps)
}

fn main() {
    let duration = scaled(120, 20);
    let mut rows = Vec::new();
    for (env, fading) in [
        ("clean", Fading::NONE),
        (
            "fading σ=10dB",
            Fading {
                sigma_db: 10.0,
                coherence_us: 2_000_000,
                seed: 7,
            },
        ),
    ] {
        for frag in [None, Some(750), Some(400)] {
            let (delivered, drops, goodput) = run(fading, frag, duration);
            rows.push(vec![
                env.to_string(),
                frag.map(|t| t.to_string()).unwrap_or_else(|| "off".into()),
                delivered.to_string(),
                drops.to_string(),
                format!("{goodput:.2}"),
            ]);
        }
    }
    print_series(
        "A7: fragmentation threshold × channel quality (20 stations, 1472 B MSDUs)",
        &[
            "channel",
            "frag threshold",
            "MSDUs delivered",
            "retry drops",
            "goodput Mbps",
        ],
        &rows,
    );
    println!(
        "\nexpected: on the clean channel fragmentation only spends air time on \
         extra headers and ACKs; under deep fading, smaller fragments survive \
         error bursts that destroy full-MTU frames (the Modiano effect)."
    );
}
