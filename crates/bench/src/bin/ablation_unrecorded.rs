//! Ablation A4: validating the unrecorded-frame estimator against ground
//! truth — the check the original study could never run, because it had no
//! ground truth. The simulator knows exactly which frames the sniffer
//! missed; Equation 1's estimate is compared against that.

use congestion::estimate_unrecorded;
use congestion_bench::{print_series, scaled};
use ietf_workloads::{ietf_day, ietf_plenary, load_ramp, SessionScale};

fn main() {
    let mut rows = Vec::new();

    let mut day = SessionScale::day_default(51);
    let mut plenary = SessionScale::plenary_default(52);
    if congestion_bench::quick() {
        day.users = 40;
        day.duration_s = 20;
        plenary.users = 40;
        plenary.duration_s = 20;
    }
    let scenarios = vec![
        ietf_day(day).run(),
        ietf_plenary(plenary).run(),
        load_ramp(53, scaled(320, 50) as usize, scaled(400, 30), 1.7).run(),
    ];
    for result in &scenarios {
        for (ch, trace) in result.traces.iter().enumerate() {
            let est = estimate_unrecorded(trace);
            let st = &result.sniffer_stats[ch];
            let missed = st.missed_range + st.missed_bit_error + st.missed_hardware;
            let true_pct = missed as f64 / (missed + st.captured).max(1) as f64 * 100.0;
            rows.push(vec![
                format!("{} ch{}", result.name, ch),
                st.captured.to_string(),
                missed.to_string(),
                format!("{:.2}", true_pct),
                format!("{:.2}", est.unrecorded_pct()),
                est.counts.data.to_string(),
                est.counts.rts.to_string(),
                est.counts.cts.to_string(),
            ]);
        }
    }
    print_series(
        "A4: unrecorded-frame estimator vs simulator ground truth",
        &[
            "trace",
            "captured",
            "truly missed",
            "true %",
            "estimated %",
            "est. DATA",
            "est. RTS",
            "est. CTS",
        ],
        &rows,
    );
    println!(
        "\nThe estimate is a LOWER bound (the paper notes exchanges losing both \
              frames are invisible); it should track the true loss rate from below."
    );
}
