//! Figure 6: channel throughput and goodput per second versus channel
//! utilization, and the congestion classification derived from the curve
//! (Section 5.2–5.3).

use congestion::theory::{tmt_bps, tmt_with_backoff_bps};
use congestion::{find_knee, CongestionClassifier};
use congestion_bench::{bins_of, figure_dataset, occupied_bins, print_series, SweepArgs};
use wifi_frames::phy::Rate;
use wifi_frames::timing::Dcf;

fn main() {
    let args = SweepArgs::parse(3);
    let (seconds, _report) = figure_dataset("fig6", &args);
    let bins = bins_of(&seconds);
    let rows: Vec<Vec<String>> = occupied_bins(&bins)
        .into_iter()
        .map(|u| {
            let b = bins.bin(u);
            vec![
                u.to_string(),
                b.seconds.to_string(),
                format!("{:.2}", b.mean_throughput_mbps()),
                format!("{:.2}", b.mean_goodput_mbps()),
            ]
        })
        .collect();
    print_series(
        "Fig 6: throughput & goodput vs utilization (paper: peak 4.9/4.4 Mbps at 84%, falling to 2.8/2.6 by 98%)",
        &["utilization %", "seconds", "throughput Mbps", "goodput Mbps"],
        &rows,
    );

    let knee = find_knee(&bins);
    println!("\nestimated congestion knee: {knee:?} (paper: 84%)");
    println!(
        "theoretical ceilings (ref [11]): TMT(1472 B @ 11 Mbps) = {:.2} Mbps, \
         with mean backoff = {:.2} Mbps — the paper compares its 4.9 Mbps peak \
         against these",
        tmt_bps(1472, Rate::R11) / 1e6,
        tmt_with_backoff_bps(1472, Rate::R11, &Dcf::standard()) / 1e6
    );
    let classifier = CongestionClassifier::from_measurements(&bins);
    println!(
        "congestion classes: uncongested < {:.0}%, moderate {:.0}–{:.0}%, high > {:.0}%",
        classifier.low_pct, classifier.low_pct, classifier.high_pct, classifier.high_pct
    );
}
