//! Ablation A3: stability of the congestion knee.
//!
//! The paper fixes the high-congestion threshold at 84% from one network's
//! throughput curve. How stable is a measured knee across seeds and
//! workload intensities? This ablation re-estimates it under both.

use congestion::{analyze, find_knee, UtilizationBins};
use congestion_bench::{print_series, scaled};
use ietf_workloads::load_ramp;

fn main() {
    let users = scaled(320, 60) as usize;
    let duration = scaled(700, 60);
    let mut rows = Vec::new();
    for seed in [101u64, 102, 103] {
        for fps in [1.3, 1.7, 2.2] {
            let result = load_ramp(seed, users, duration, fps).run();
            let stats = analyze(&result.traces[0]);
            let bins = UtilizationBins::build(&stats);
            let knee = find_knee(&bins);
            rows.push(vec![
                seed.to_string(),
                format!("{fps:.1}"),
                knee.map(|k| format!("{k:.0}%"))
                    .unwrap_or_else(|| "none".into()),
                bins.mode()
                    .map(|m| m.to_string())
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    print_series(
        "A3: congestion-knee estimate across seeds and offered loads",
        &["seed", "per-user fps", "knee", "utilization mode"],
        &rows,
    );
    println!(
        "\npaper's 84% threshold is one draw from this distribution; the knee \
              should sit in the mid-80s whenever the run saturates."
    );
}
