//! Ablation A3: stability of the congestion knee.
//!
//! The paper fixes the high-congestion threshold at 84% from one network's
//! throughput curve. How stable is a measured knee across seeds and
//! workload intensities? This ablation re-estimates it under both: the
//! `(seed, offered load)` grid runs as one parallel sweep, and per load the
//! knees are aggregated across seeds as mean ± 95 % CI.

use congestion::{analyze, find_knee, mean_ci95, UtilizationBins};
use congestion_bench::{print_series, run_cells, scaled, Cell, SweepArgs};
use ietf_workloads::load_ramp;

const LOADS: [f64; 3] = [1.3, 1.7, 2.2];

fn main() {
    let args = SweepArgs::parse(3);
    let users = scaled(320, 60) as usize;
    let duration = scaled(700, 60);
    let seeds = args.seed_list(101);

    let mut cells = Vec::new();
    for &seed in &seeds {
        for fps in LOADS {
            cells.push(Cell::new(
                format!("ramp seed={seed} fps={fps:.1}"),
                seed,
                move || load_ramp(seed, users, duration, fps),
            ));
        }
    }
    let (results, _report) = run_cells("ablation_knee", &args, cells);

    // Per-cell knee estimates, in the (seed-major, load-minor) cell order.
    let mut rows = Vec::new();
    let mut knees = vec![Vec::new(); LOADS.len()]; // per load, across seeds
    for (i, result) in results.iter().enumerate() {
        let seed = seeds[i / LOADS.len()];
        let load_idx = i % LOADS.len();
        let stats = analyze(&result.traces[0]);
        let bins = UtilizationBins::build(&stats);
        let knee = find_knee(&bins);
        if let Some(k) = knee {
            knees[load_idx].push(k);
        }
        rows.push(vec![
            seed.to_string(),
            format!("{:.1}", LOADS[load_idx]),
            knee.map(|k| format!("{k:.0}%"))
                .unwrap_or_else(|| "none".into()),
            bins.mode()
                .map(|m| m.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    print_series(
        "A3: congestion-knee estimate across seeds and offered loads",
        &["seed", "per-user fps", "knee", "utilization mode"],
        &rows,
    );

    let rows: Vec<Vec<String>> = LOADS
        .iter()
        .zip(&knees)
        .map(|(fps, ks)| {
            vec![
                format!("{fps:.1}"),
                format!("{}/{}", ks.len(), seeds.len()),
                mean_ci95(ks)
                    .map(|ci| format!("{ci:.1}%"))
                    .unwrap_or_else(|| "none".into()),
            ]
        })
        .collect();
    print_series(
        &format!(
            "A3: knee across {} seeds per load (mean ± 95% CI)",
            seeds.len()
        ),
        &["per-user fps", "knees found", "knee"],
        &rows,
    );
    println!(
        "\npaper's 84% threshold is one draw from this distribution; the knee \
              should sit in the mid-80s whenever the run saturates."
    );
}
