//! Ablation A8: sensitivity of the busy-time metric to the aggregation
//! interval.
//!
//! Section 5.1 of the paper fixes the interval at one second and calls it
//! "an appropriate granularity" without evidence. This ablation recomputes
//! the utilization distribution of the same trace at intervals from 100 ms
//! to 10 s: too short and the histogram smears toward the extremes (an
//! interval holds either a frame or silence); too long and congestion
//! episodes are averaged away. One second sits on the plateau between the
//! two failure modes — quantified support for the paper's choice.

use congestion::busy_time::utilization_series;
use congestion_bench::{print_series, scaled};
use ietf_workloads::load_ramp;

fn main() {
    let users = scaled(260, 50) as usize;
    let duration = scaled(360, 30);
    let result = load_ramp(0xA8, users, duration, 1.7).run();
    let trace = &result.traces[0];
    // Judge each interval by the spread of measured utilization over the
    // *steady saturated tail* — the true channel state is near-constant
    // there, so spread is measurement noise.
    let tail_from = (duration * 7 / 10) * 1_000_000;
    let mut rows = Vec::new();
    for interval_ms in [100u64, 250, 500, 1000, 2000, 5000, 10000] {
        let series = utilization_series(trace, interval_ms * 1000);
        let tail: Vec<f64> = series
            .iter()
            .filter(|&&(t, _)| t >= tail_from)
            .map(|&(_, u)| u)
            .collect();
        if tail.len() < 2 {
            continue;
        }
        let n = tail.len() as f64;
        let mean = tail.iter().sum::<f64>() / n;
        let var = tail.iter().map(|u| (u - mean) * (u - mean)).sum::<f64>() / n;
        let over100 = tail.iter().filter(|&&u| u > 100.0).count();
        rows.push(vec![
            format!("{interval_ms}"),
            tail.len().to_string(),
            format!("{mean:.1}"),
            format!("{:.1}", var.sqrt()),
            over100.to_string(),
        ]);
    }
    print_series(
        "A8: aggregation-interval sensitivity over the saturated tail",
        &[
            "interval ms",
            "samples",
            "mean util %",
            "std dev",
            ">100% samples",
        ],
        &rows,
    );
    println!(
        "\nexpected: the standard deviation falls steeply up to ~1 s and flattens \
         after; sub-second intervals also produce nonsense >100% samples (one \
         long 1 Mbps frame overflows a 100 ms bucket). The paper's one-second \
         choice is the shortest interval on the stable plateau."
    );
}
