//! Figures 10–13: average data frames transmitted per second by size class
//! and rate, versus channel utilization (Section 6.3).
//!
//! * Fig 10 — small frames at each rate (S-11 dominates);
//! * Fig 11 — extra-large frames at each rate (XL-11 dominates);
//! * Fig 12 — 1 Mbps frames of each size class (S-1 above XL-1, both rising
//!   under congestion);
//! * Fig 13 — 11 Mbps frames of each size class.

use congestion::SizeClass;
use congestion_bench::{bins_of, figure_dataset, occupied_bins, print_series, SweepArgs};

fn main() {
    let args = SweepArgs::parse(3);
    let (seconds, _report) = figure_dataset("fig10_13", &args);
    let bins = bins_of(&seconds);
    let us = occupied_bins(&bins);

    // Figs 10 & 11: one size class across rates.
    for (fig, size, label) in [
        ("Fig 10", SizeClass::Small, "small (S)"),
        ("Fig 11", SizeClass::ExtraLarge, "extra-large (XL)"),
    ] {
        let si = size.index();
        let rows: Vec<Vec<String>> = us
            .iter()
            .map(|&u| {
                let b = bins.bin(u);
                vec![
                    u.to_string(),
                    format!("{:.1}", b.mean_tx_per_sec(si, 0)),
                    format!("{:.1}", b.mean_tx_per_sec(si, 1)),
                    format!("{:.1}", b.mean_tx_per_sec(si, 2)),
                    format!("{:.1}", b.mean_tx_per_sec(si, 3)),
                ]
            })
            .collect();
        print_series(
            &format!("{fig}: {label} data frames per second at each rate"),
            &["utilization %", "-1", "-2", "-5.5", "-11"],
            &rows,
        );
    }

    // Figs 12 & 13: one rate across size classes.
    for (fig, rate_idx, label) in [("Fig 12", 0usize, "1 Mbps"), ("Fig 13", 3, "11 Mbps")] {
        let rows: Vec<Vec<String>> = us
            .iter()
            .map(|&u| {
                let b = bins.bin(u);
                vec![
                    u.to_string(),
                    format!("{:.1}", b.mean_tx_per_sec(0, rate_idx)),
                    format!("{:.1}", b.mean_tx_per_sec(1, rate_idx)),
                    format!("{:.1}", b.mean_tx_per_sec(2, rate_idx)),
                    format!("{:.1}", b.mean_tx_per_sec(3, rate_idx)),
                ]
            })
            .collect();
        print_series(
            &format!("{fig}: {label} data frames per second in each size class"),
            &["utilization %", "S", "M", "L", "XL"],
            &rows,
        );
    }
}
