//! Figure 14: average data frames successfully acknowledged per second at
//! their first transmission attempt, by rate, versus channel utilization
//! (Section 6.4). The paper sees 11 Mbps dip across 80–84% (contention)
//! then recover under high congestion.

use congestion::persec::SecondStats;
use congestion_bench::{bins_of, figure_dataset, occupied_bins, print_series, SweepArgs};

fn main() {
    let args = SweepArgs::parse(3);
    let (seconds, _report) = figure_dataset("fig14", &args);
    let bins = bins_of(&seconds);
    let rows: Vec<Vec<String>> = occupied_bins(&bins)
        .into_iter()
        .map(|u| {
            let f = bins.bin(u).mean_first_ack_by_rate();
            vec![
                u.to_string(),
                format!("{:.1}", f[0]),
                format!("{:.1}", f[1]),
                format!("{:.1}", f[2]),
                format!("{:.1}", f[3]),
            ]
        })
        .collect();
    print_series(
        "Fig 14: data frames acknowledged at first attempt per second, by rate",
        &["utilization %", "1 Mbps", "2 Mbps", "5.5 Mbps", "11 Mbps"],
        &rows,
    );

    // Companion series (extension): the retransmission rate the paper
    // attributes the Figs 12–13 growth to, measured directly.
    let mut per_bin: Vec<(u64, u64)> = vec![(0, 0); 101];
    let clamp = |s: &SecondStats| s.utilization_pct().round().clamp(0.0, 100.0) as usize;
    for s in &seconds {
        let u = clamp(s);
        per_bin[u].0 += s.retries;
        per_bin[u].1 += 1;
    }
    let rows: Vec<Vec<String>> = occupied_bins(&bins)
        .into_iter()
        .map(|u| {
            let (r, n) = per_bin[u];
            vec![u.to_string(), format!("{:.1}", r as f64 / n.max(1) as f64)]
        })
        .collect();
    print_series(
        "Extension: data-frame retransmissions per second vs utilization",
        &["utilization %", "retries/s"],
        &rows,
    );
}
