//! Figures 8 and 9: per-rate channel busy time (fraction of each second)
//! and per-rate bytes transmitted per second, versus channel utilization
//! (Section 6.2). The paper's headline numbers: the 1 Mbps share grows from
//! 0.43 s to 0.54 s under high congestion while 11 Mbps moves ≈300% more
//! bytes in about half the air time.

use congestion_bench::{bins_of, figure_dataset, occupied_bins, print_series, SweepArgs};

fn main() {
    let args = SweepArgs::parse(3);
    let (seconds, _report) = figure_dataset("fig8_9", &args);
    let bins = bins_of(&seconds);

    let rows: Vec<Vec<String>> = occupied_bins(&bins)
        .into_iter()
        .map(|u| {
            let share = bins.bin(u).mean_busy_share_by_rate();
            vec![
                u.to_string(),
                format!("{:.3}", share[0]),
                format!("{:.3}", share[1]),
                format!("{:.3}", share[2]),
                format!("{:.3}", share[3]),
            ]
        })
        .collect();
    print_series(
        "Fig 8: channel busy-time share of each rate (seconds of each second)",
        &["utilization %", "1 Mbps", "2 Mbps", "5.5 Mbps", "11 Mbps"],
        &rows,
    );

    let rows: Vec<Vec<String>> = occupied_bins(&bins)
        .into_iter()
        .map(|u| {
            let bytes = bins.bin(u).mean_bytes_by_rate();
            vec![
                u.to_string(),
                format!("{:.0}", bytes[0]),
                format!("{:.0}", bytes[1]),
                format!("{:.0}", bytes[2]),
                format!("{:.0}", bytes[3]),
            ]
        })
        .collect();
    print_series(
        "Fig 9: bytes transmitted per second at each rate",
        &["utilization %", "1 Mbps", "2 Mbps", "5.5 Mbps", "11 Mbps"],
        &rows,
    );

    // The paper's 300%/half-the-time comparison, over high-congestion bins.
    let high: Vec<usize> = occupied_bins(&bins)
        .into_iter()
        .filter(|&u| u >= 85)
        .collect();
    if !high.is_empty() {
        let mut time1 = 0.0;
        let mut time11 = 0.0;
        let mut bytes1 = 0.0;
        let mut bytes11 = 0.0;
        for &u in &high {
            let b = bins.bin(u);
            let share = b.mean_busy_share_by_rate();
            let bytes = b.mean_bytes_by_rate();
            time1 += share[0];
            time11 += share[3];
            bytes1 += bytes[0];
            bytes11 += bytes[3];
        }
        println!(
            "\nhigh congestion (≥85%): 11 Mbps air time is {:.0}% of 1 Mbps's (paper ≈50%), \
             and moves {:.0}% of 1 Mbps's bytes (paper ≈300%+)",
            time11 / time1 * 100.0,
            bytes11 / bytes1 * 100.0,
        );
    }
}
