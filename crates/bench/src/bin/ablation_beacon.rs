//! Ablation A5: the beacon-reliability congestion metric (the authors'
//! prior work, reference \[10\]) against the busy-time metric of this paper.
//! Both are computed per second over the same traces and correlated.

use congestion::analyze;
use congestion::ap_stats::infer_aps;
use congestion::beacon_metric::{pearson, reliability_per_second};
use congestion_bench::{print_series, scaled};
use ietf_workloads::load_ramp;

fn main() {
    let users = scaled(320, 50) as usize;
    let duration = scaled(500, 30);
    let result = load_ramp(61, users, duration, 1.7).run();
    let trace = &result.traces[0];
    let stats = analyze(trace);
    let aps = infer_aps(trace);
    let reliability = reliability_per_second(trace, &aps);

    // Align the two series on seconds.
    let mut util = Vec::new();
    let mut rel = Vec::new();
    for s in &stats {
        if let Some(&(_, r)) = reliability.iter().find(|&&(sec, _)| sec == s.second) {
            util.push(s.utilization_pct());
            rel.push(r);
        }
    }
    let corr = pearson(&util, &rel);

    let rows: Vec<Vec<String>> = stats
        .iter()
        .step_by((stats.len() / 25).max(1))
        .filter_map(|s| {
            let r = reliability.iter().find(|&&(sec, _)| sec == s.second)?;
            Some(vec![
                s.second.to_string(),
                format!("{:.1}", s.utilization_pct()),
                format!("{:.2}", r.1),
            ])
        })
        .collect();
    print_series(
        "A5: busy-time utilization vs beacon reliability (sampled seconds)",
        &["second", "utilization %", "beacon reliability"],
        &rows,
    );
    println!(
        "\nPearson correlation (utilization vs reliability): {:?}",
        corr.map(|c| (c * 1000.0).round() / 1000.0)
    );
    println!(
        "expected: a clear negative correlation — beacons go missing as the \
              channel saturates — but noisier than the direct busy-time measure, \
              which is the paper's argument for preferring busy time."
    );
}
