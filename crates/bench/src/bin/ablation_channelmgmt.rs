//! Ablation A6: dynamic channel assignment.
//!
//! The venue's Airespace controller switched AP channels to balance load
//! (Section 4.1 of the paper; details proprietary). This ablation builds a
//! deliberately imbalanced network — every AP and user piled onto channel 1
//! — and compares static assignment against the published-heuristic stand-in
//! (periodic least-loaded-channel switching with hysteresis).

use congestion::analyze;
use congestion_bench::{print_series, scaled};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wifi_frames::phy::Rate;
use wifi_sim::config::ChannelMgmt;
use wifi_sim::geometry::Pos;
use wifi_sim::rate::RateAdaptation;
use wifi_sim::sniffer::SnifferConfig;
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::{FlowConfig, SizeDist, TrafficProfile};
use wifi_sim::{ClientConfig, SimConfig, Simulator};

fn run(mgmt: Option<ChannelMgmt>, users: usize, duration_s: u64) -> (Vec<usize>, Vec<f64>, u64) {
    let mut rng = SmallRng::seed_from_u64(0xA6);
    let mut sim = Simulator::new(SimConfig {
        seed: 0xA6,
        channel_mgmt: mgmt,
        radio: ietf_workloads::ietf_radio(0xA6),
        ..SimConfig::ietf_three_channels(0xA6)
    });
    // Three APs, all initially crowded onto channel index 0.
    sim.add_ap(Pos::new(16.0, 18.0), 0, 6);
    sim.add_ap(Pos::new(32.0, 18.0), 0, 6);
    sim.add_ap(Pos::new(48.0, 18.0), 0, 6);
    for _ in 0..users {
        let pos = Pos::new(rng.gen_range(0.0..64.0), rng.gen_range(0.0..36.0));
        sim.add_client(ClientConfig {
            pos,
            channel_idx: 0,
            rts_policy: RtsPolicy::Never,
            adaptation: RateAdaptation::Arf(Rate::R11),
            traffic: TrafficProfile {
                uplink: FlowConfig::bursty(0.4, SizeDist::ietf_mix(), 20.0),
                downlink: FlowConfig::bursty(4.0, SizeDist::ietf_mix(), 25.0),
            },
            join_at_us: rng.gen_range(0..5_000_000),
            leave_at_us: None,
            power_save_interval_us: None,
            frag_threshold: None,
        });
    }
    for ch in 0..3 {
        sim.add_sniffer(SnifferConfig {
            pos: Pos::new(30.0, 17.0),
            channel_idx: ch,
            ..SnifferConfig::default()
        });
    }
    sim.run_until(duration_s * 1_000_000);
    let ap_channels: Vec<usize> = sim
        .stations()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_ap())
        .map(|(i, _)| sim.hot().channel_idx[i])
        .collect();
    let goodputs: Vec<f64> = (0..3)
        .map(|ch| {
            let stats = analyze(&sim.sniffers()[ch].trace);
            let n = stats.len().max(1) as f64;
            stats.iter().map(|s| s.goodput_mbps()).sum::<f64>() / n
        })
        .collect();
    let delivered: u64 = sim.stations().iter().map(|s| s.stats.delivered).sum();
    (ap_channels, goodputs, delivered)
}

fn main() {
    let users = scaled(120, 30) as usize;
    let duration = scaled(240, 30);
    let mut rows = Vec::new();
    for (name, mgmt) in [
        ("static", None),
        (
            "dynamic",
            Some(ChannelMgmt {
                eval_interval_us: 10_000_000,
                switch_ratio: 1.5,
                follow_delay_max_us: 500_000,
            }),
        ),
    ] {
        let (channels, goodputs, delivered) = run(mgmt, users, duration);
        rows.push(vec![
            name.to_string(),
            format!("{channels:?}"),
            format!("{:.2}", goodputs[0]),
            format!("{:.2}", goodputs[1]),
            format!("{:.2}", goodputs[2]),
            format!("{:.2}", goodputs.iter().sum::<f64>()),
            delivered.to_string(),
        ]);
    }
    print_series(
        "A6: dynamic channel assignment on a ch1-pile-up network",
        &[
            "assignment",
            "final AP channels",
            "ch1 Mbps",
            "ch6 Mbps",
            "ch11 Mbps",
            "total Mbps",
            "delivered",
        ],
        &rows,
    );
    println!(
        "\nexpected: the dynamic controller spreads APs over the three orthogonal \
         channels, multiplying usable capacity — the behaviour the paper observed \
         (\"trafc was fairly well distributed between the three orthogonal channels\")."
    );
}
