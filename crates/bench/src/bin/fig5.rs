//! Figure 5: (a, b) per-channel utilization time series for the day and
//! plenary sessions, (c) the frequency distribution of utilization values.

use congestion::analyze;
use congestion::bins::UtilizationBins;
use congestion_bench::{print_series, session_results, SweepArgs};
use ietf_workloads::ScenarioResult;

fn report(result: &ScenarioResult) -> UtilizationBins {
    let name = &result.name;
    let mut all_seconds = Vec::new();
    for (ch, trace) in result.traces.iter().enumerate() {
        let stats = analyze(trace);
        // Time series, decimated to every 10 s for terminal readability.
        let rows: Vec<Vec<String>> = stats
            .iter()
            .step_by(10)
            .map(|s| vec![s.second.to_string(), format!("{:.1}", s.utilization_pct())])
            .collect();
        print_series(
            &format!(
                "Fig 5({}) [{name} ch{ch}]: utilization time series (every 10th second)",
                if name == "day" { "a" } else { "b" }
            ),
            &["second", "utilization %"],
            &rows,
        );
        all_seconds.extend(stats);
    }
    UtilizationBins::build(&all_seconds)
}

fn main() {
    let args = SweepArgs::parse(1);
    let (day_runs, plenary_runs, _report) = session_results("fig5", &args);
    let day_bins = report(&day_runs[0]);
    let plenary_bins = report(&plenary_runs[0]);

    for (name, bins, paper_mode) in [("day", &day_bins, 55), ("plenary", &plenary_bins, 86)] {
        let rows: Vec<Vec<String>> = bins
            .histogram()
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .map(|(u, n)| vec![u.to_string(), n.to_string()])
            .collect();
        print_series(
            &format!("Fig 5(c) [{name}]: seconds per utilization percentage"),
            &["utilization %", "seconds"],
            &rows,
        );
        println!("mode: {:?} (paper: ≈{paper_mode}%)", bins.mode());
    }
}
