//! Table 1: the two sets of IETF wireless network data.

use congestion_bench::print_series;
use ietf_workloads::table1;

fn main() {
    let rows: Vec<Vec<String>> = table1()
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.date.to_string(),
                r.channel.to_string(),
                r.time.to_string(),
            ]
        })
        .collect();
    print_series(
        "Table 1: The two sets of IETF wireless network data",
        &["Data set", "Day", "Ch", "Time"],
        &rows,
    );
}
