//! Ablation A1: rate-adaptation algorithms under congestion.
//!
//! Section 7 of the paper argues that reacting to congestion losses by
//! lowering the rate is self-defeating, and that SNR-based selection "may
//! offer some relief". This ablation runs the same overloaded channel under
//! ARF, AARF, fixed-11 and SNR-threshold adaptation and reports goodput and
//! delivery statistics for each.

use congestion::analyze;
use congestion_bench::{print_series, scaled};
use ietf_workloads::load_ramp_with;
use wifi_frames::phy::Rate;
use wifi_sim::rate::RateAdaptation;

fn main() {
    let users = scaled(260, 50) as usize;
    let duration = scaled(360, 30);
    let mut rows = Vec::new();
    for (name, adaptation) in [
        ("ARF", RateAdaptation::Arf(Rate::R11)),
        ("AARF", RateAdaptation::Aarf(Rate::R11)),
        ("Fixed-11", RateAdaptation::Fixed(Rate::R11)),
        ("SNR(3dB)", RateAdaptation::Snr(3.0)),
    ] {
        let result = load_ramp_with(31, users, duration, 1.7, adaptation, 0.02).run();
        let stats = analyze(&result.traces[0]);
        // Score over the congested tail (last 40% of the run).
        let tail_from = duration * 6 / 10;
        let tail: Vec<_> = stats.iter().filter(|s| s.second >= tail_from).collect();
        let n = tail.len().max(1) as f64;
        let goodput: f64 = tail.iter().map(|s| s.goodput_mbps()).sum::<f64>() / n;
        let throughput: f64 = tail.iter().map(|s| s.throughput_mbps()).sum::<f64>() / n;
        let util: f64 = tail.iter().map(|s| s.utilization_pct()).sum::<f64>() / n;
        let delivered: u64 = result.stations.iter().map(|s| s.delivered).sum();
        let drops: u64 = result.stations.iter().map(|s| s.retry_drops).sum();
        rows.push(vec![
            name.to_string(),
            format!("{util:.1}"),
            format!("{throughput:.2}"),
            format!("{goodput:.2}"),
            delivered.to_string(),
            drops.to_string(),
        ]);
    }
    print_series(
        "A1: rate adaptation under a congested channel (tail averages)",
        &[
            "algorithm",
            "util %",
            "throughput Mbps",
            "goodput Mbps",
            "delivered",
            "retry drops",
        ],
        &rows,
    );
    println!(
        "\npaper's position: congestion-blind downshifting (ARF) should underperform \
              schemes that hold high rates (Fixed-11) or track SNR only."
    );
}
