//! Figure 15: acceptance delay (seconds) for S-1, XL-1, S-11 and XL-11
//! frames versus channel utilization (Section 6.5). The paper's key
//! observation: 1 Mbps frames suffer larger acceptance delays than 11 Mbps
//! frames *regardless of size* — S-1 is slower than XL-11.

use congestion::SizeClass;
use congestion_bench::{bins_of, figure_dataset, occupied_bins, print_series, SweepArgs};

fn main() {
    let args = SweepArgs::parse(3);
    let (seconds, _report) = figure_dataset("fig15", &args);
    let bins = bins_of(&seconds);
    let cats = [
        ("S-1", SizeClass::Small.index(), 0usize),
        ("XL-1", SizeClass::ExtraLarge.index(), 0),
        ("S-11", SizeClass::Small.index(), 3),
        ("XL-11", SizeClass::ExtraLarge.index(), 3),
    ];
    let rows: Vec<Vec<String>> = occupied_bins(&bins)
        .into_iter()
        .map(|u| {
            let b = bins.bin(u);
            let mut row = vec![u.to_string()];
            for &(_, si, ri) in &cats {
                row.push(
                    b.mean_acceptance_delay_s(si, ri)
                        .map(|d| format!("{d:.4}"))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            row
        })
        .collect();
    print_series(
        "Fig 15: acceptance delay (s) vs utilization (paper: S-1 and XL-1 >> S-11, XL-11; S-1 > XL-11)",
        &["utilization %", "S-1", "XL-1", "S-11", "XL-11"],
        &rows,
    );

    // The headline inequality over high-congestion bins.
    let mut agg = [congestion::DelayAgg::default(); 4];
    for u in occupied_bins(&bins).into_iter().filter(|&u| u >= 80) {
        let b = bins.bin(u);
        for (i, &(_, si, ri)) in cats.iter().enumerate() {
            agg[i].merge(&b.acc_delay[si][ri]);
        }
    }
    println!();
    for (i, &(name, _, _)) in cats.iter().enumerate() {
        if let Some(d) = agg[i].mean_seconds() {
            println!(
                "mean acceptance delay at ≥80% utilization, {name}: {d:.4} s ({} samples)",
                agg[i].count
            );
        }
    }
}
