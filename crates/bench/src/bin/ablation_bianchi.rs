//! Ablation A9: the simulator against Bianchi's saturation theory.
//!
//! Bianchi's model predicts the DCF's saturation throughput and per-attempt
//! collision probability for `n` permanently-backlogged stations. Running
//! the simulator in exactly that regime (fixed rate, no fading, everyone in
//! carrier-sense range, saturated queues) and comparing is the standard
//! credibility check for any DCF implementation.

use congestion::theory::{bianchi, tmt_bps};
use congestion_bench::{print_series, scaled};
use wifi_frames::phy::Rate;
use wifi_frames::timing::Dcf;
use wifi_sim::geometry::Pos;
use wifi_sim::rate::RateAdaptation;
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::{FlowConfig, SizeDist, TrafficProfile};
use wifi_sim::{ClientConfig, SimConfig, Simulator};

const PAYLOAD: u32 = 1000;

fn simulate(n: usize, duration_s: u64) -> (f64, f64) {
    let mut sim = Simulator::new(SimConfig {
        seed: 0xA9 + n as u64,
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    for i in 0..n {
        let angle = i as f64 / n as f64 * std::f64::consts::TAU;
        sim.add_client(ClientConfig {
            pos: Pos::new(6.0 * angle.cos(), 6.0 * angle.sin()),
            channel_idx: 0,
            rts_policy: RtsPolicy::Never,
            adaptation: RateAdaptation::Fixed(Rate::R11),
            // Far beyond per-station capacity: permanently backlogged.
            traffic: TrafficProfile {
                uplink: FlowConfig::poisson(2000.0 / n as f64, SizeDist::fixed(PAYLOAD)),
                downlink: FlowConfig::off(),
            },
            join_at_us: 0,
            leave_at_us: None,
            power_save_interval_us: None,
            frag_threshold: None,
        });
    }
    sim.run_until(duration_s * 1_000_000);
    let delivered: u64 = sim
        .stations()
        .iter()
        .filter(|s| !s.is_ap())
        .map(|s| s.stats.delivered.saturating_sub(2)) // probe + assoc
        .sum();
    let throughput_bps = delivered as f64 * PAYLOAD as f64 * 8.0 / duration_s as f64;
    let (tx, collisions) = sim.medium_stats()[0];
    let p_collision = collisions as f64 / tx.max(1) as f64;
    (throughput_bps, p_collision)
}

fn main() {
    let duration = scaled(60, 10);
    let dcf = Dcf::standard();
    let mut rows = Vec::new();
    for n in [2usize, 5, 10, 20, 40] {
        let theory = bianchi(n, PAYLOAD, Rate::R11, &dcf);
        let (sim_bps, sim_p) = simulate(n, duration);
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", theory.throughput_bps / 1e6),
            format!("{:.2}", sim_bps / 1e6),
            format!("{:.3}", theory.p),
            format!("{:.3}", sim_p),
        ]);
    }
    print_series(
        "A9: Bianchi saturation theory vs simulator (1000 B @ 11 Mbps, basic access)",
        &[
            "stations",
            "theory Mbps",
            "sim Mbps",
            "theory p(coll)",
            "sim p(coll)",
        ],
        &rows,
    );
    println!(
        "\nnote: the simulator's collision counter tallies overlapping *transmissions* \
         (a vulnerability-window event), while Bianchi's p is per-attempt conditional \
         collision probability; shapes and magnitudes should track, not match exactly. \
         TMT ceiling for this frame size: {:.2} Mbps.",
        tmt_bps(PAYLOAD, Rate::R11) / 1e6
    );
}
