//! The sweep engine's core guarantee: because every cell seeds its own
//! simulator and results are collected in cell order, a sweep's output is
//! byte-identical for every `--threads` value. Run reports may differ (they
//! record wall-clock), but the simulated data may not.

use congestion_bench::{run_cells, Cell, SweepArgs};
use ietf_workloads::{load_ramp, ScenarioResult};

/// Serializes everything deterministic about a result set — traces,
/// sniffer counters, medium stats, station outcomes, event counts — into
/// one comparable string. Wall-clock observability is deliberately absent.
fn digest(results: &[ScenarioResult]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for r in results {
        writeln!(
            out,
            "{} traces={:?} sniffers={:?} medium={:?} stations={:?} events={} on_air={}",
            r.name,
            r.traces,
            r.sniffer_stats,
            r.medium_stats,
            r.stations,
            r.events_processed,
            r.frames_on_air
        )
        .unwrap();
    }
    out
}

fn sweep(threads: usize) -> String {
    let args = SweepArgs { threads, seeds: 2 };
    let cells = args
        .seed_list(7)
        .into_iter()
        .map(|seed| {
            Cell::new(format!("ramp seed={seed}"), seed, move || {
                load_ramp(seed, 12, 8, 1.7)
            })
        })
        .collect();
    let (results, report) = run_cells("determinism_test", &args, cells);
    assert_eq!(report.threads, threads);
    assert_eq!(report.cells.len(), 2);
    assert!(report.total_events() > 0, "cells simulated nothing");
    digest(&results)
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = sweep(1);
    let parallel = sweep(4);
    assert!(
        serial == parallel,
        "a 4-thread sweep diverged from the serial run"
    );
    // And not vacuously: the digest must actually carry frames.
    assert!(serial.len() > 1000, "digest suspiciously small: {serial}");
}
