//! Property: `run_sharded` merges to exactly `run_streaming`'s result for
//! any campus shape, shard cap, and worker count.
//!
//! This is the end-to-end counterpart of `wifi-sim/tests/shard_equiv.rs`:
//! that test pins raw simulator state (traces, station counters, ground
//! truth); this one pins the full sharded *pipeline* — partition, parallel
//! per-shard streaming analysis, merge — against the serial unsharded path,
//! across `max_shards ∈ {1, auto}` and `threads ∈ {1, 4}`. Queue churn is
//! excluded (see `ShardedRun::run`).

use congestion_bench::streaming::{run_sharded, run_streaming, StreamedRun};
use ietf_workloads::{venue_campus, CampusScale, Scenario};
use proptest::prelude::*;

fn assert_runs_match(got: &StreamedRun, want: &StreamedRun, label: &str) {
    assert_eq!(
        got.events_processed, want.events_processed,
        "{label}: events"
    );
    assert_eq!(got.frames_on_air, want.frames_on_air, "{label}: frames");
    assert_eq!(got.medium_stats, want.medium_stats, "{label}: medium");
    assert_eq!(
        format!("{:?}", got.sniffer_stats),
        format!("{:?}", want.sniffer_stats),
        "{label}: sniffer stats"
    );
    assert_eq!(
        got.per_sniffer_seconds.len(),
        want.per_sniffer_seconds.len(),
        "{label}: sniffer count"
    );
    for (i, (g, w)) in got
        .per_sniffer_seconds
        .iter()
        .zip(&want.per_sniffer_seconds)
        .enumerate()
    {
        assert_eq!(
            format!("{g:?}"),
            format!("{w:?}"),
            "{label}: sniffer {i} seconds"
        );
    }
}

proptest! {
    fn sharded_pipeline_matches_serial(
        seed in 0u64..10_000,
        halls in 1usize..4,
        users in 2usize..14,
        cap_auto in 0u8..2,
        four_threads in 0u8..2,
        chunk_sel in 0usize..3,
    ) {
        // One (max_shards, threads) point per case; 256 cases sweep the
        // {1, auto} × {1, 4} grid many times over.
        let max_shards = if cap_auto == 1 { usize::MAX } else { 1 };
        let threads = if four_threads == 1 { 4 } else { 1 };
        let chunk_us = [250_000u64, 1_000_000, 10_000_000][chunk_sel];
        let scale = CampusScale { seed, halls, users, duration_s: 2, activity: 1.0 };
        let reference = venue_campus(scale);
        let baseline = run_streaming(
            Scenario {
                name: reference.name.clone(),
                duration_us: reference.duration_us,
                sim: reference.spec.build_unsharded(),
            },
            chunk_us,
        );
        let sharded = run_sharded(venue_campus(scale), chunk_us, threads, max_shards);
        prop_assert!(sharded.shards >= 1 && sharded.shards <= sharded.components);
        assert_runs_match(
            &sharded.run,
            &baseline,
            &format!("shards={max_shards} threads={threads}"),
        );
    }
}
