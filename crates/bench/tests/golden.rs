//! Golden determinism harness for the hot-path overhaul.
//!
//! The cached sensing topology, the allocation-free event loop, and the
//! streaming per-second analysis are pure performance work: they must not
//! move a single byte of simulated output. This test pins that down with
//! golden digests captured from the pre-optimization simulator:
//!
//! * fig4-style session cells (day + plenary) and ablation_knee-style
//!   load-ramp cells, three seeds each, two offered loads for the ramp;
//! * every cell set runs at `--threads 1` and `--threads 4` and the two
//!   sweeps must be byte-identical (the run-report's deterministic fields
//!   included);
//! * each cell's full result (traces, sniffer counters, medium stats,
//!   station outcomes, event counts) is hashed and compared against
//!   `tests/golden_digests.txt`, committed from the unoptimized build.
//!
//! Regenerate with `GOLDEN_BLESS=1 cargo test -p congestion-bench --test
//! golden` — but only when a change is *supposed* to alter simulated output;
//! a perf PR that needs a re-bless is a broken perf PR.

use congestion_bench::streaming::{run_streaming, run_streaming_pipelined};
use congestion_bench::{run_cells, Cell, SweepArgs};
use ietf_workloads::{ietf_day, ietf_plenary, load_ramp, ScenarioResult, SessionScale};

/// FNV-1a, the same folding the vendored proptest uses for test seeding —
/// enough to make accidental output drift unmistakable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Serializes everything deterministic about one result — the same field
/// set as the sweep determinism test, per cell.
fn cell_digest(r: &ScenarioResult) -> u64 {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{} traces={:?} sniffers={:?} medium={:?} stations={:?} events={} on_air={}",
        r.name,
        r.traces,
        r.sniffer_stats,
        r.medium_stats,
        r.stations,
        r.events_processed,
        r.frames_on_air
    )
    .unwrap();
    fnv1a(out.as_bytes())
}

fn tiny_day(seed: u64) -> SessionScale {
    SessionScale {
        seed,
        users: 14,
        duration_s: 7,
        activity: 0.75,
        rts_fraction: 0.02,
    }
}

fn tiny_plenary(seed: u64) -> SessionScale {
    SessionScale {
        seed,
        users: 14,
        duration_s: 7,
        activity: 3.0,
        rts_fraction: 0.02,
    }
}

/// The golden cell set: fig4's two sessions plus ablation_knee's
/// (seed × load) ramp grid, at smoke scale.
fn golden_cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    for seed in [21u64, 22, 23] {
        cells.push(Cell::new(format!("day seed={seed}"), seed, move || {
            ietf_day(tiny_day(seed))
        }));
    }
    for seed in [31u64, 32, 33] {
        cells.push(Cell::new(format!("plenary seed={seed}"), seed, move || {
            ietf_plenary(tiny_plenary(seed))
        }));
    }
    for seed in [101u64, 102, 103] {
        for fps in [1.3f64, 1.7] {
            cells.push(Cell::new(
                format!("ramp seed={seed} fps={fps:.1}"),
                seed,
                move || load_ramp(seed, 12, 10, fps),
            ));
        }
    }
    cells
}

/// Runs the golden sweep on `threads` workers; returns `(label, digest)`
/// per cell plus the deterministic run-report fields.
fn run_golden(threads: usize) -> (Vec<(String, u64)>, String) {
    let args = SweepArgs { threads, seeds: 1 };
    let (results, report) = run_cells("golden_test", &args, golden_cells());
    let digests = report
        .cells
        .iter()
        .zip(&results)
        .map(|(c, r)| (c.label.clone(), cell_digest(r)))
        .collect();
    // The run.json minus its wall-clock observability: these fields must be
    // byte-identical across thread counts and across the optimization.
    let mut det = String::new();
    for c in &report.cells {
        use std::fmt::Write;
        writeln!(
            det,
            "{} seed={} events={} on_air={} captured={} missed={}",
            c.label, c.seed, c.events, c.frames_on_air, c.frames_captured, c.frames_missed
        )
        .unwrap();
    }
    (digests, det)
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_digests.txt")
}

#[test]
fn output_matches_preoptimization_goldens_across_threads() {
    let (serial, serial_det) = run_golden(1);
    let (parallel, parallel_det) = run_golden(4);
    assert_eq!(
        serial, parallel,
        "4-thread golden sweep diverged from serial"
    );
    assert_eq!(
        serial_det, parallel_det,
        "run-report deterministic fields diverged across thread counts"
    );

    let mut lines = String::new();
    for (label, digest) in &serial {
        lines.push_str(&format!("{label}\t{digest:016x}\n"));
    }
    let path = golden_path();
    if std::env::var("GOLDEN_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &lines).expect("write golden file");
        eprintln!("blessed {} ({} cells)", path.display(), serial.len());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e})", path.display()));
    assert_eq!(
        lines, golden,
        "simulated output drifted from the pre-optimization goldens; if the \
         change is meant to alter results, re-bless with GOLDEN_BLESS=1"
    );
}

/// The pipelined sim→analysis path must match the serial streaming path
/// byte-for-byte on the golden cell set — same per-second statistics, same
/// counters — and both must match the batch `Scenario::run` denominators.
#[test]
fn pipelined_streaming_matches_serial_on_golden_cells() {
    for cell in golden_cells() {
        let batch = cell.build_scenario().run();
        let serial = run_streaming(cell.build_scenario(), 1_000_000);
        let piped = run_streaming_pipelined(cell.build_scenario(), 1_000_000);
        assert_eq!(
            piped.events_processed, serial.events_processed,
            "{}: pipelined event count diverged",
            cell.label
        );
        assert_eq!(piped.frames_on_air, serial.frames_on_air, "{}", cell.label);
        assert_eq!(piped.medium_stats, serial.medium_stats, "{}", cell.label);
        assert_eq!(piped.queue, serial.queue, "{}", cell.label);
        assert_eq!(
            format!("{:?}", piped.sniffer_stats),
            format!("{:?}", serial.sniffer_stats),
            "{}",
            cell.label
        );
        assert_eq!(
            format!("{:?}", piped.per_sniffer_seconds),
            format!("{:?}", serial.per_sniffer_seconds),
            "{}: pipelined per-second analysis diverged",
            cell.label
        );
        assert_eq!(
            serial.events_processed, batch.events_processed,
            "{}",
            cell.label
        );
        assert_eq!(serial.frames_on_air, batch.frames_on_air, "{}", cell.label);
    }
}
