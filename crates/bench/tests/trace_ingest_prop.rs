//! Property: the streaming ingestion path is record- and stat-identical to
//! the batch path, all the way from pcap bytes.
//!
//! Three layers, from narrow to full pipeline:
//!
//! * **merge over chaos-damaged bytes** — per-sniffer captures corrupted by
//!   the byte-level chaos harness, lossy-read, then merged both ways.
//!   Chaos can flip timestamp bits or let a garbage run parse as a record,
//!   which breaks the per-stream time-ordering contract both merge paths
//!   share — so each sniffer's surviving records are stable-sorted first
//!   (`merge_traces` full-sorts anyway; the sort is only for `MergeStream`'s
//!   input contract).
//! * **file-level e2e, clean** — `analyze_capture_streams` over per-sniffer
//!   files must equal `analyze(merge_traces(...))` over batch reads.
//! * **file-level e2e, truncated** — the one byte-fault that provably
//!   preserves record order (the survivors are a prefix), so the streaming
//!   pipeline can be compared end to end on damaged files too.

use congestion::merge::{merge_traces, MergeStream};
use congestion::{analyze, SecondStats};
use ietf80211_congestion::ingest::analyze_capture_streams;
use ietf80211_congestion::trace::{read_capture_lossy_bytes, write_capture_with_snaplen};
use proptest::prelude::*;
use std::path::PathBuf;
use wifi_frames::fc::FrameKind;
use wifi_frames::mac::MacAddr;
use wifi_frames::phy::{Channel, Rate};
use wifi_frames::record::FrameRecord;
use wifi_pcap::chaos::{corrupt_bytes, ChaosConfig, ChaosRng};

/// Data/ACK exchanges at 1 kHz — dense enough that thinned views overlap
/// inside the dedup window once skewed.
fn base_trace(exchanges: usize) -> Vec<FrameRecord> {
    let rates = [Rate::R1, Rate::R2, Rate::R5_5, Rate::R11];
    let mut out = Vec::with_capacity(2 * exchanges);
    for i in 0..exchanges as u64 {
        let t = i * 1_000;
        let src = MacAddr::from_id(1 + (i % 10) as u32);
        let payload = [64u32, 400, 900, 1472][(i as usize / 3) % 4];
        out.push(FrameRecord {
            timestamp_us: t,
            kind: FrameKind::Data,
            rate: rates[i as usize % 4],
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(src),
            bssid: Some(MacAddr::from_id(99)),
            retry: i % 5 == 0,
            seq: Some((i % 4096) as u16),
            mac_bytes: payload + 28,
            payload_bytes: payload,
            signal_dbm: -58,
            duration_us: 314,
        });
        out.push(FrameRecord {
            timestamp_us: t + 340,
            kind: FrameKind::Ack,
            rate: Rate::R1,
            channel: Channel::new(1).unwrap(),
            dst: src,
            src: None,
            bssid: None,
            retry: false,
            seq: None,
            mac_bytes: 14,
            payload_bytes: 0,
            signal_dbm: -58,
            duration_us: 0,
        });
    }
    out
}

/// One sniffer's view: thinned by a cycled keep-mask, shifted by a constant
/// clock skew (so per-stream time order is preserved).
fn thin(base: &[FrameRecord], mask: &[bool], skew_us: u64) -> Vec<FrameRecord> {
    base.iter()
        .zip(mask.iter().cycle())
        .filter(|(_, k)| **k)
        .map(|(r, _)| {
            let mut r = *r;
            r.timestamp_us += skew_us;
            r
        })
        .collect()
}

/// Serializes records to an in-memory classic pcap capture.
fn to_pcap_bytes(records: &[FrameRecord], name: &str) -> Vec<u8> {
    let path = temp_path(name);
    write_capture_with_snaplen(&path, records, 0).expect("write capture");
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    bytes
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ietf80211-congestion-ingest-prop");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Renders per-second stats through Debug — `SecondStats` holds floats, so
/// equality is checked on the same representation the golden digests use.
fn render(stats: &[SecondStats]) -> String {
    format!("{stats:?}")
}

proptest! {
    #[test]
    fn streaming_merge_matches_batch_over_chaos_damaged_captures(
        seed in 0u64..1u64 << 48,
        exchanges in 20usize..120,
        sniffers in 2usize..5,
        flips in 0.0f64..2.0,
        truncate in 0.0f64..1.0,
        garbage in 0.0f64..1.0,
        blast in 0.0f64..1.0,
    ) {
        let base = base_trace(exchanges);
        let cfg = ChaosConfig {
            bit_flips_per_kb: flips,
            truncate,
            garbage_insert: garbage,
            length_blast: blast,
        };
        let mut rng = ChaosRng::new(seed);
        let mut views: Vec<Vec<FrameRecord>> = Vec::new();
        for s in 0..sniffers {
            let mask: Vec<bool> = (0..17).map(|i| (i + s) % 4 != 0).collect();
            let records = thin(&base, &mask, 30 * s as u64);
            let mut bytes = to_pcap_bytes(&records, &format!("chaos_{seed}_{s}.pcap"));
            // Protect the 24-byte file header: container identity is not
            // the property under test here, record damage is.
            corrupt_bytes(&mut bytes, 24, &cfg, &mut rng);
            let mut survived = read_capture_lossy_bytes(&bytes)
                .expect("lossy ingest never fails on a valid magic")
                .records;
            // Restore the time-ordering contract chaos may have broken.
            survived.sort_by_key(|r| r.timestamp_us);
            views.push(survived);
        }
        let slices: Vec<&[FrameRecord]> = views.iter().map(|v| v.as_slice()).collect();
        let batch = merge_traces(&slices);
        let streamed: Vec<FrameRecord> =
            MergeStream::new(views.iter().map(|v| v.iter().copied()).collect()).collect();
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn streaming_file_pipeline_matches_batch_on_clean_captures(
        exchanges in 20usize..120,
        sniffers in 1usize..4,
        skew_step in 0u64..500,
        nonce in 0u64..1u64 << 32,
    ) {
        let base = base_trace(exchanges);
        let mut paths = Vec::new();
        let mut batch_views = Vec::new();
        for s in 0..sniffers {
            let mask: Vec<bool> = (0..13).map(|i| (i * 3 + s) % 5 != 0).collect();
            let records = thin(&base, &mask, skew_step * s as u64);
            let path = temp_path(&format!("clean_{nonce}_{s}.pcap"));
            write_capture_with_snaplen(&path, &records, 0).expect("write");
            paths.push(path);
            batch_views.push(records);
        }
        let out = analyze_capture_streams(&paths).expect("streaming analysis");
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
        let slices: Vec<&[FrameRecord]> = batch_views.iter().map(|v| v.as_slice()).collect();
        let merged = merge_traces(&slices);
        prop_assert_eq!(out.merged_records, merged.len() as u64);
        prop_assert_eq!(render(&out.per_second), render(&analyze(&merged)));
        prop_assert!(out.sources.iter().all(|s| s.is_clean()));
    }

    #[test]
    fn streaming_file_pipeline_matches_batch_on_truncated_captures(
        exchanges in 30usize..120,
        sniffers in 1usize..4,
        seed in 0u64..1u64 << 48,
    ) {
        // Truncation only: the survivors are a prefix of the original
        // records, so per-file time order holds and the streaming pipeline
        // can be validated end to end even on the damaged bytes.
        let base = base_trace(exchanges);
        let cfg = ChaosConfig {
            bit_flips_per_kb: 0.0,
            truncate: 0.8,
            garbage_insert: 0.0,
            length_blast: 0.0,
        };
        let mut rng = ChaosRng::new(seed);
        let mut paths = Vec::new();
        let mut batch_views = Vec::new();
        for s in 0..sniffers {
            let mask: Vec<bool> = (0..11).map(|i| (i + 2 * s) % 6 != 0).collect();
            let records = thin(&base, &mask, 40 * s as u64);
            let mut bytes = to_pcap_bytes(&records, &format!("trunc_{seed}_{s}_w.pcap"));
            corrupt_bytes(&mut bytes, 24, &cfg, &mut rng);
            let survived = read_capture_lossy_bytes(&bytes).expect("valid magic").records;
            let path = temp_path(&format!("trunc_{seed}_{s}.pcap"));
            std::fs::write(&path, &bytes).expect("write damaged");
            paths.push(path);
            batch_views.push(survived);
        }
        let out = analyze_capture_streams(&paths).expect("streaming analysis");
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
        let slices: Vec<&[FrameRecord]> = batch_views.iter().map(|v| v.as_slice()).collect();
        let merged = merge_traces(&slices);
        prop_assert_eq!(out.merged_records, merged.len() as u64);
        prop_assert_eq!(render(&out.per_second), render(&analyze(&merged)));
    }
}
