//! Criterion benchmarks of the streaming per-second accumulator against the
//! batch analyzer — the two must cost the same per frame (the batch path is
//! a thin wrapper), and the streaming path must not regress as the window
//! grows, since it holds only the open second plus one pending record.

use congestion::{analyze, SecondAccumulator};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wifi_frames::fc::FrameKind;
use wifi_frames::mac::MacAddr;
use wifi_frames::phy::{Channel, Rate};
use wifi_frames::record::FrameRecord;

/// Data/ACK exchanges with periodic beacons, in time order (the same shape
/// as the busy-time bench trace).
fn synthetic_trace(n: usize) -> Vec<FrameRecord> {
    let mut out = Vec::with_capacity(n);
    let mut t = 0u64;
    let rates = [Rate::R1, Rate::R2, Rate::R5_5, Rate::R11];
    let mut i = 0usize;
    while out.len() < n {
        let rate = rates[i % 4];
        let payload = [64u32, 400, 900, 1472][(i / 4) % 4];
        let src = 1 + (i % 40) as u32;
        t += 800;
        out.push(FrameRecord {
            timestamp_us: t,
            kind: FrameKind::Data,
            rate,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(MacAddr::from_id(src)),
            bssid: Some(MacAddr::from_id(99)),
            retry: i.is_multiple_of(7),
            seq: Some((i % 4096) as u16),
            mac_bytes: payload + 28,
            payload_bytes: payload,
            signal_dbm: -60,
            duration_us: 314,
        });
        t += 314;
        out.push(FrameRecord {
            timestamp_us: t,
            kind: FrameKind::Ack,
            rate: Rate::R1,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(src),
            src: None,
            bssid: None,
            retry: false,
            seq: None,
            mac_bytes: 14,
            payload_bytes: 0,
            signal_dbm: -60,
            duration_us: 0,
        });
        i += 1;
    }
    out.truncate(n);
    out
}

fn bench_streaming(c: &mut Criterion) {
    let trace = synthetic_trace(100_000);
    let mut g = c.benchmark_group("persec");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("streaming_100k_frames", |b| {
        b.iter(|| {
            let mut acc = SecondAccumulator::new();
            for r in &trace {
                acc.push(black_box(*r));
            }
            black_box(acc.finish())
        })
    });
    g.bench_function("batch_100k_frames", |b| {
        b.iter(|| black_box(analyze(black_box(&trace))))
    });
    g.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
