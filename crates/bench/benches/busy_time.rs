//! Criterion benchmarks of the analysis pipeline: the per-frame busy-time
//! charge, the single-pass per-second analyzer, the utilization binning and
//! the unrecorded-frame estimator.

use congestion::{analyze, cbt_us, estimate_unrecorded, UtilizationBins};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wifi_frames::fc::FrameKind;
use wifi_frames::mac::MacAddr;
use wifi_frames::phy::{Channel, Rate};
use wifi_frames::record::FrameRecord;

/// A synthetic but structurally-realistic trace: data/ACK exchanges with a
/// sprinkling of beacons and RTS/CTS, in time order.
fn synthetic_trace(n: usize) -> Vec<FrameRecord> {
    let mut out = Vec::with_capacity(n);
    let mut t = 0u64;
    let rates = [Rate::R1, Rate::R2, Rate::R5_5, Rate::R11];
    let mut i = 0usize;
    while out.len() < n {
        let rate = rates[i % 4];
        let payload = [64u32, 400, 900, 1472][(i / 4) % 4];
        let src = 1 + (i % 40) as u32;
        t += 800;
        out.push(FrameRecord {
            timestamp_us: t,
            kind: FrameKind::Data,
            rate,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(MacAddr::from_id(src)),
            bssid: Some(MacAddr::from_id(99)),
            retry: i.is_multiple_of(7),
            seq: Some((i % 4096) as u16),
            mac_bytes: payload + 28,
            payload_bytes: payload,
            signal_dbm: -60,
            duration_us: 314,
        });
        t += 314;
        out.push(FrameRecord {
            timestamp_us: t,
            kind: FrameKind::Ack,
            rate: Rate::R1,
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(src),
            src: None,
            bssid: None,
            retry: false,
            seq: None,
            mac_bytes: 14,
            payload_bytes: 0,
            signal_dbm: -60,
            duration_us: 0,
        });
        if i.is_multiple_of(25) {
            t += 400;
            out.push(FrameRecord {
                timestamp_us: t,
                kind: FrameKind::Beacon,
                rate: Rate::R1,
                channel: Channel::new(1).unwrap(),
                dst: MacAddr::BROADCAST,
                src: Some(MacAddr::from_id(200)),
                bssid: Some(MacAddr::from_id(200)),
                retry: false,
                seq: Some(0),
                mac_bytes: 57,
                payload_bytes: 0,
                signal_dbm: -50,
                duration_us: 0,
            });
        }
        i += 1;
    }
    out.truncate(n);
    out
}

fn bench_cbt(c: &mut Criterion) {
    let trace = synthetic_trace(10_000);
    let mut g = c.benchmark_group("cbt");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("cbt_us_10k_frames", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for r in &trace {
                total += cbt_us(black_box(r));
            }
            black_box(total)
        })
    });
    g.finish();
}

fn bench_analyze(c: &mut Criterion) {
    let trace = synthetic_trace(100_000);
    let mut g = c.benchmark_group("analyze");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("analyze_100k_frames", |b| {
        b.iter(|| black_box(analyze(black_box(&trace))))
    });
    g.finish();
}

fn bench_bins(c: &mut Criterion) {
    let trace = synthetic_trace(100_000);
    let stats = analyze(&trace);
    c.bench_function("utilization_bins", |b| {
        b.iter(|| black_box(UtilizationBins::build(black_box(&stats))))
    });
}

fn bench_unrecorded(c: &mut Criterion) {
    let trace = synthetic_trace(100_000);
    let mut g = c.benchmark_group("unrecorded");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("estimate_100k_frames", |b| {
        b.iter(|| black_box(estimate_unrecorded(black_box(&trace))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cbt,
    bench_analyze,
    bench_bins,
    bench_unrecorded
);
criterion_main!(benches);
