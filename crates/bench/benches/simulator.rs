//! Criterion benchmarks of the DCF simulator: events per wall-second for a
//! saturated single cell and for an IETF-style multi-AP channel.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ietf_workloads::load_ramp;
use wifi_frames::phy::Rate;
use wifi_sim::geometry::Pos;
use wifi_sim::rate::RateAdaptation;
use wifi_sim::sniffer::SnifferConfig;
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::TrafficProfile;
use wifi_sim::{ClientConfig, SimConfig, Simulator};

fn saturated_cell(seed: u64, clients: usize) -> Simulator {
    let mut sim = Simulator::new(SimConfig {
        seed,
        record_ground_truth: false,
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    for i in 0..clients {
        let angle = i as f64;
        sim.add_client(ClientConfig {
            pos: Pos::new(10.0 * angle.cos(), 10.0 * angle.sin()),
            channel_idx: 0,
            rts_policy: RtsPolicy::Never,
            adaptation: RateAdaptation::Arf(Rate::R11),
            traffic: TrafficProfile::symmetric(50.0),
            join_at_us: 0,
            leave_at_us: None,
            power_save_interval_us: None,
            frag_threshold: None,
        });
    }
    sim.add_sniffer(SnifferConfig::default());
    sim
}

fn bench_saturated_second(c: &mut Criterion) {
    c.bench_function("sim_saturated_cell_20sta_1s", |b| {
        b.iter(|| {
            let mut sim = saturated_cell(7, 20);
            sim.run_until(1_000_000);
            black_box(sim.sniffers()[0].trace.len())
        })
    });
}

fn bench_ietf_ramp_10s(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("ietf_ramp_100users_10s", |b| {
        b.iter(|| {
            let scenario = load_ramp(9, 100, 10, 2.0);
            let result = scenario.run();
            black_box(result.traces[0].len())
        })
    });
    g.finish();
}

fn bench_dense_cell(c: &mut Criterion) {
    // The sensing-topology stress case: every transmission used to pay an
    // O(stations) path-loss loop; with the cached matrix it pays one bitset
    // AND, so this bench is the direct witness of that optimization.
    let mut g = c.benchmark_group("dense");
    g.sample_size(10);
    g.bench_function("sim_dense_cell_200sta_1s", |b| {
        b.iter(|| {
            let mut sim = saturated_cell(13, 200);
            sim.run_until(1_000_000);
            black_box(sim.sniffers()[0].trace.len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_saturated_second,
    bench_ietf_ramp_10s,
    bench_dense_cell
);
criterion_main!(benches);
