//! Criterion benchmarks of incremental [`SensingTopology`] maintenance
//! against the full O(N²) rebuild, at N ∈ {320, 1000, 5000}.
//!
//! `rebuild` scales quadratically in the population; `add_station` (one
//! join) and `update_station` (one move) recompute only the dirty row +
//! column and must scale linearly — the O(N²) → O(N) win that makes ramp
//! joins and waypoint mobility affordable. The incremental paths are
//! pinned bit-identical to the rebuild by
//! `crates/sim/tests/topology_incremental.rs`, so this file measures cost
//! only.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wifi_sim::geometry::Pos;
use wifi_sim::radio::RadioConfig;
use wifi_sim::topology::SensingTopology;

/// Deterministic venue-like positions (no RNG in the hot loop).
fn positions(n: usize) -> Vec<Pos> {
    (0..n)
        .map(|i| {
            Pos::new(
                ((i * 37) % 640) as f64 * 0.1,
                ((i * 101) % 360) as f64 * 0.1,
            )
        })
        .collect()
}

fn built(n: usize, radio: &RadioConfig) -> SensingTopology {
    let mut topo = SensingTopology::default();
    topo.rebuild(&positions(n), &[Pos::new(30.0, 17.0)], radio);
    topo
}

fn bench_topology(c: &mut Criterion) {
    let radio = RadioConfig::default();
    let mut g = c.benchmark_group("topology_update");
    // Each sample is one join / move / rebuild; a handful suffices and
    // bounds the population drift of the add_station bench (see below).
    g.sample_size(10);
    for &n in &[320usize, 1_000, 5_000] {
        let pos = positions(n);
        let sniffer = [Pos::new(30.0, 17.0)];
        g.throughput(Throughput::Elements(1));
        // The O(N²) reference: what every join used to cost.
        g.bench_function(&format!("rebuild_{n}"), |b| {
            let mut topo = SensingTopology::default();
            b.iter(|| {
                topo.rebuild(black_box(&pos), black_box(&sniffer), &radio);
                black_box(topo.epoch())
            })
        });
        // One incremental join at population ~N. The population grows by
        // one per iteration; with sample_size capped the drift stays under
        // a dozen stations, and pre-reserving keeps grow() out of the
        // measurement.
        g.bench_function(&format!("add_station_{n}"), |b| {
            let mut topo = built(n, &radio);
            topo.reserve(n + 64, 1);
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                let p = Pos::new(31.0 + (i % 7) as f64, 18.0 + (i % 5) as f64);
                black_box(topo.add_station(black_box(p), &radio))
            })
        });
        // One incremental move at population N.
        g.bench_function(&format!("update_station_{n}"), |b| {
            let mut topo = built(n, &radio);
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let p = if flip {
                    Pos::new(1.0, 2.0)
                } else {
                    Pos::new(60.0, 30.0)
                };
                topo.update_station(black_box(n / 2), p, &radio);
                black_box(topo.epoch())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
