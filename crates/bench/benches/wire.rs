//! Criterion benchmarks of the byte-level layers: frame serialization and
//! parsing, FCS computation, radiotap encode/parse, and pcap write/read.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wifi_frames::fc::FcFlags;
use wifi_frames::frame::{Data, Frame, SeqCtl};
use wifi_frames::mac::MacAddr;
use wifi_frames::phy::{Channel, Rate};
use wifi_frames::radiotap::{self, CaptureMeta, FLAG_FCS_AT_END};
use wifi_frames::{fcs, wire};
use wifi_pcap::{LinkType, PcapReader, PcapWriter};

fn data_frame(payload: usize) -> Frame {
    Frame::Data(Data {
        flags: FcFlags {
            to_ds: true,
            ..FcFlags::default()
        },
        duration: 314,
        addr1: MacAddr::from_id(1),
        addr2: MacAddr::from_id(2),
        addr3: MacAddr::from_id(1),
        seq: SeqCtl::new(1234, 0),
        payload: vec![0xA5; payload],
        null: false,
    })
}

fn bench_wire(c: &mut Criterion) {
    let frame = data_frame(1472);
    let bytes = wire::encode(&frame);
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_1500B_data", |b| {
        b.iter(|| black_box(wire::encode(black_box(&frame))))
    });
    g.bench_function("parse_1500B_data", |b| {
        b.iter(|| black_box(wire::parse(black_box(&bytes)).unwrap()))
    });
    g.bench_function("parse_header_truncated", |b| {
        b.iter(|| black_box(wire::parse_header(black_box(&bytes[..250])).unwrap()))
    });
    g.finish();
}

fn bench_fcs(c: &mut Criterion) {
    let data = vec![0x5Au8; 1500];
    let mut g = c.benchmark_group("fcs");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("crc32_1500B", |b| {
        b.iter(|| black_box(fcs::crc32(black_box(&data))))
    });
    g.finish();
}

fn bench_radiotap(c: &mut Criterion) {
    let meta = CaptureMeta {
        tsft_us: 123_456_789,
        flags: FLAG_FCS_AT_END,
        rate: Rate::R11,
        channel: Channel::new(6).unwrap(),
        signal_dbm: -58,
        noise_dbm: -95,
        antenna: 1,
    };
    let frame = vec![0u8; 250];
    let packet = radiotap::encode_packet(&meta, &frame);
    c.bench_function("radiotap_encode", |b| {
        b.iter(|| black_box(radiotap::encode_packet(black_box(&meta), black_box(&frame))))
    });
    c.bench_function("radiotap_parse", |b| {
        b.iter(|| black_box(radiotap::parse_packet(black_box(&packet)).unwrap()))
    });
}

fn bench_pcap(c: &mut Criterion) {
    // Write 1000 records into memory, then benchmark reading them back.
    let payload = vec![0xEEu8; 275];
    let mut file = Vec::new();
    {
        let mut w = PcapWriter::new(&mut file, LinkType::Radiotap, 0).unwrap();
        for i in 0..1000u64 {
            w.write_packet(i * 1000, &payload).unwrap();
        }
    }
    let mut g = c.benchmark_group("pcap");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("write_1000_records", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(file.len());
            let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 0).unwrap();
            for i in 0..1000u64 {
                w.write_packet(i * 1000, black_box(&payload)).unwrap();
            }
            black_box(buf)
        })
    });
    g.bench_function("read_1000_records", |b| {
        b.iter(|| {
            let r = PcapReader::new(black_box(&file[..])).unwrap();
            let n = r.packets().count();
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_wire, bench_fcs, bench_radiotap, bench_pcap);
criterion_main!(benches);
