//! Criterion benchmarks of the timing-wheel event queue in isolation:
//! push/pop churn, timer re-arm (the DCF hot operation — every
//! DIFS/backoff/SIFS/NAV transition re-arms), and far-future spill
//! cascades, each at 1k–100k pending events.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wifi_sim::events::{Event, EventQueue, TimerKind};

/// A deterministic timestamp pattern: mostly near-future (contention-scale
/// offsets), with a far tail that exercises the spill level, matching the
/// shape a DCF simulation produces.
fn offset(i: u64) -> u64 {
    match i % 16 {
        0..=11 => 10 + (i * 37) % 1_500,        // slot/DIFS/backoff scale
        12..=14 => 2_000 + (i * 911) % 60_000,  // beacon/traffic scale
        _ => 100_000 + (i * 7919) % 10_000_000, // spill scale
    }
}

/// Pre-fills a queue with `pending` events starting at time `base`.
fn filled(pending: u64, base: u64) -> EventQueue {
    let mut q = EventQueue::new();
    for i in 0..pending {
        q.push(base + offset(i), Event::UserJoin { node: i as usize });
    }
    q
}

fn bench_push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/push_pop");
    for &pending in &[1_000u64, 10_000, 100_000] {
        g.throughput(Throughput::Elements(pending));
        g.bench_function(&format!("steady_state_{pending}"), |b| {
            // Steady state: a full queue where every pop schedules a
            // replacement — the event loop's actual regime.
            let mut q = filled(pending, 0);
            let mut now = 0u64;
            let mut i = pending;
            b.iter(|| {
                for _ in 0..pending {
                    let (at, ev) = q.pop().expect("queue drained in steady state");
                    now = at;
                    black_box(ev);
                    q.push(now + offset(i), Event::UserJoin { node: i as usize });
                    i += 1;
                }
            })
        });
    }
    g.finish();
}

fn bench_rearm(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/rearm");
    for &pending in &[1_000u64, 10_000, 100_000] {
        g.throughput(Throughput::Elements(pending));
        g.bench_function(&format!("rearm_under_{pending}_pending"), |b| {
            // Timer churn against a deep queue: node re-arms overwrite the
            // previous entry (the old scheme left it dead in the heap).
            let mut q = filled(pending, 0);
            let mut gen = 0u64;
            b.iter(|| {
                for node in 0..pending as usize {
                    gen += 1;
                    q.arm_timer(node & 1023, gen, TimerKind::BackoffDone, 20 + gen % 1_000);
                }
            })
        });
    }
    g.finish();
}

fn bench_cascade(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/cascade");
    let pending = 50_000u64;
    g.throughput(Throughput::Elements(pending));
    g.bench_function("drain_across_windows_50k", |b| {
        // Every event beyond the first window: draining forces window
        // advances and spill cascades.
        b.iter(|| {
            let mut q = filled(pending, 0);
            let mut n = 0u64;
            while let Some((at, _)) = q.pop() {
                n += black_box(at) & 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_push_pop, bench_rearm, bench_cascade);
criterion_main!(benches);
