//! Criterion benchmarks of the batched PHY kernels against their scalar
//! originals: `effective_sinr_db` over interferer lists of 1/4/16/64
//! entries, plus the batched frame-success evaluation at the same widths.
//! The batch kernels are pinned bit-identical to the scalar loops (see
//! `crates/sim/tests/phy_batch_equiv.rs`), so any delta here is pure loop
//! overhead — iterator adaptors and per-call constant recomputation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wifi_frames::phy::Rate;
use wifi_sim::radio::{batch, effective_sinr_db, processing_gain_db, ErrorModel};

/// A deterministic interferer RSSI pattern spanning the dynamic range a
/// dense cell produces (strong near-far captures down to floor grazes).
fn interferers(n: usize) -> Vec<f64> {
    (0..n).map(|i| -50.0 - ((i * 37) % 45) as f64).collect()
}

fn bench_sinr(c: &mut Criterion) {
    let mut g = c.benchmark_group("phy_batch/sinr");
    for &n in &[1usize, 4, 16, 64] {
        let interf = interferers(n);
        let pg = processing_gain_db(Rate::R11);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(&format!("scalar_{n}"), |b| {
            b.iter(|| {
                black_box(effective_sinr_db(
                    black_box(-55.0),
                    black_box(&interf),
                    -95.0,
                    pg,
                ))
            })
        });
        g.bench_function(&format!("batch_{n}"), |b| {
            b.iter(|| {
                black_box(batch::effective_sinr_db(
                    black_box(-55.0),
                    black_box(&interf),
                    -95.0,
                    pg,
                ))
            })
        });
    }
    g.finish();
}

fn bench_success(c: &mut Criterion) {
    let mut g = c.benchmark_group("phy_batch/success");
    let model = ErrorModel::default();
    for &n in &[1usize, 4, 16, 64] {
        // SINRs straddling the rate threshold, where the exp() tail is live.
        let sinrs: Vec<f64> = (0..n).map(|i| ((i * 29) % 25) as f64 - 5.0).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(&format!("scalar_{n}"), |b| {
            b.iter(|| {
                for &s in black_box(&sinrs) {
                    black_box(model.frame_success_prob(s, Rate::R11, 1460));
                }
            })
        });
        g.bench_function(&format!("batch_{n}"), |b| {
            let mut out = Vec::with_capacity(n);
            b.iter(|| {
                out.clear();
                batch::frame_success_probs(&model, black_box(&sinrs), Rate::R11, 1460, &mut out);
                black_box(out.last().copied())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sinr, bench_success);
criterion_main!(benches);
