//! Criterion benchmarks of the k-way streaming merge against the batch
//! sort-and-dedup path, at 2 / 3 / 8 sniffers of one channel.
//!
//! The two produce record-identical output (pinned by the proptests in
//! `crates/core`); what differs is cost shape. The batch path concatenates,
//! sorts the whole union, then scans; the streaming path pays a heap
//! sift per record and a hash probe per dedup decision in O(window)
//! memory. Throughput is reported per *input* record so the numbers stay
//! comparable as the sniffer count (and so the duplicate ratio) grows.

use congestion::merge::{merge_traces, MergeStream};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wifi_frames::fc::FrameKind;
use wifi_frames::mac::MacAddr;
use wifi_frames::phy::{Channel, Rate};
use wifi_frames::record::FrameRecord;

/// A dense data/ACK channel, then `sniffers` skewed ~80 %-coverage views of
/// it — the same shape as the `trace-merge-3x` pin, minus the pcap layer.
fn sniffer_views(sniffers: usize, exchanges: u64) -> Vec<Vec<FrameRecord>> {
    let rates = [Rate::R1, Rate::R2, Rate::R5_5, Rate::R11];
    let payloads = [64u32, 400, 900, 1472];
    let mut base = Vec::with_capacity(2 * exchanges as usize);
    for i in 0..exchanges {
        let t = i * 667;
        let src = MacAddr::from_id(1 + (i % 40) as u32);
        let payload = payloads[(i as usize / 4) % 4];
        base.push(FrameRecord {
            timestamp_us: t,
            kind: FrameKind::Data,
            rate: rates[i as usize % 4],
            channel: Channel::new(1).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(src),
            bssid: Some(MacAddr::from_id(99)),
            retry: i % 7 == 0,
            seq: Some((i % 4096) as u16),
            mac_bytes: payload + 28,
            payload_bytes: payload,
            signal_dbm: -60,
            duration_us: 314,
        });
        base.push(FrameRecord {
            timestamp_us: t + 340,
            kind: FrameKind::Ack,
            rate: Rate::R1,
            channel: Channel::new(1).unwrap(),
            dst: src,
            src: None,
            bssid: None,
            retry: false,
            seq: None,
            mac_bytes: 14,
            payload_bytes: 0,
            signal_dbm: -60,
            duration_us: 0,
        });
    }
    (0..sniffers)
        .map(|s| {
            base.iter()
                .enumerate()
                .filter(|(i, _)| {
                    let h =
                        (*i as u64 ^ ((s as u64) << 32) ^ 11).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    !(h >> 33).is_multiple_of(5)
                })
                .map(|(_, r)| {
                    let mut r = *r;
                    r.timestamp_us += 25 * s as u64;
                    r
                })
                .collect()
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_merge");
    for sniffers in [2usize, 3, 8] {
        let views = sniffer_views(sniffers, 15_000);
        let total: usize = views.iter().map(Vec::len).sum();
        group.throughput(Throughput::Elements(total as u64));
        let slices: Vec<&[FrameRecord]> = views.iter().map(Vec::as_slice).collect();
        group.bench_function(&format!("batch_{sniffers}_sniffers"), |b| {
            b.iter(|| black_box(merge_traces(black_box(&slices))).len())
        });
        group.bench_function(&format!("streaming_{sniffers}_sniffers"), |b| {
            b.iter(|| {
                let streams: Vec<_> = views.iter().map(|v| v.iter().copied()).collect();
                black_box(MergeStream::new(streams).count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
