//! Property-based tests: pcap write→read is the identity (modulo snaplen
//! truncation, which is itself exactly characterized).

use proptest::prelude::*;
use wifi_pcap::{LinkType, PcapPacket, PcapReader, PcapWriter};

fn arb_packets() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    proptest::collection::vec(
        (
            0u64..4_000_000_000_000u64,
            proptest::collection::vec(any::<u8>(), 0..600),
        ),
        0..40,
    )
}

proptest! {
    #[test]
    fn roundtrip_unlimited_snaplen(packets in arb_packets()) {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 65535).unwrap();
            for (ts, data) in &packets {
                w.write_packet(*ts, data).unwrap();
            }
        }
        let r = PcapReader::new(&buf[..]).unwrap();
        let read: Vec<PcapPacket> = r.packets().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(read.len(), packets.len());
        for (got, (ts, data)) in read.iter().zip(&packets) {
            prop_assert_eq!(got.timestamp_us, *ts);
            prop_assert_eq!(&got.data, data);
            prop_assert_eq!(got.orig_len as usize, data.len());
            prop_assert!(!got.is_truncated());
        }
    }

    #[test]
    fn roundtrip_with_snaplen(packets in arb_packets(), snaplen in 1u32..400) {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, snaplen).unwrap();
            for (ts, data) in &packets {
                w.write_packet(*ts, data).unwrap();
            }
        }
        let r = PcapReader::new(&buf[..]).unwrap();
        let read: Vec<PcapPacket> = r.packets().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(read.len(), packets.len());
        for (got, (ts, data)) in read.iter().zip(&packets) {
            prop_assert_eq!(got.timestamp_us, *ts);
            let expect_cap = data.len().min(snaplen as usize);
            prop_assert_eq!(&got.data[..], &data[..expect_cap]);
            prop_assert_eq!(got.orig_len as usize, data.len());
            prop_assert_eq!(got.is_truncated(), data.len() > expect_cap);
        }
    }

    #[test]
    fn arbitrary_prefix_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Any byte soup must produce a clean error or packets, never a panic.
        if let Ok(r) = PcapReader::new(&bytes[..]) {
            for pkt in r.packets() {
                let _ = pkt;
            }
        }
    }

    #[test]
    fn truncated_valid_file_errors_cleanly(
        packets in arb_packets().prop_filter("nonempty", |p| !p.is_empty()),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 65535).unwrap();
            for (ts, data) in &packets {
                w.write_packet(*ts, data).unwrap();
            }
        }
        let cut = 24 + ((buf.len() - 24) as f64 * cut_frac) as usize;
        let r = PcapReader::new(&buf[..cut]).unwrap();
        // Either all records up to the cut parse, or the last yields an error.
        let mut count = 0usize;
        for item in r.packets() {
            match item {
                Ok(_) => count += 1,
                Err(_) => break,
            }
        }
        prop_assert!(count <= packets.len());
    }
}
