//! Fault-injection properties: no input — pure byte soup or a chaos-
//! corrupted valid capture — may panic a reader. Strict readers must fail
//! with structured errors; the lossy readers must stay total and account
//! for every recovery in their [`wifi_pcap::IngestReport`]. On *clean*
//! files the lossy readers must be byte-for-byte identical to strict.

use proptest::prelude::*;
use wifi_pcap::chaos::{corrupt_bytes, ChaosConfig, ChaosRng};
use wifi_pcap::pcapng::{NgPacket, PcapNgReader, PcapNgWriter};
use wifi_pcap::{read_pcap_lossy, read_pcapng_lossy, LinkType, PcapReader, PcapWriter};

fn arb_packets() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    proptest::collection::vec(
        (
            0u64..4_000_000_000_000u64,
            proptest::collection::vec(any::<u8>(), 0..300),
        ),
        0..24,
    )
}

fn classic_bytes(packets: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    {
        let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 65535).unwrap();
        for (ts, data) in packets {
            w.write_packet(*ts, data).unwrap();
        }
    }
    buf
}

fn ng_bytes(packets: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    {
        let mut w = PcapNgWriter::new(&mut buf, LinkType::Radiotap, 65535).unwrap();
        for (ts, data) in packets {
            w.write_packet(*ts, data).unwrap();
        }
        w.flush().unwrap();
    }
    buf
}

/// A hostile mix: flips, truncation, garbage splices and length blasts all
/// enabled at once.
fn hostile() -> ChaosConfig {
    ChaosConfig {
        bit_flips_per_kb: 2.0,
        truncate: 0.3,
        garbage_insert: 0.7,
        length_blast: 0.7,
    }
}

fn drain_strict_classic(bytes: &[u8]) {
    if let Ok(r) = PcapReader::new(bytes) {
        for item in r.packets() {
            if item.is_err() {
                break; // structured error ends the stream; no panic allowed
            }
        }
    }
}

fn drain_strict_ng(bytes: &[u8]) {
    let mut r = PcapNgReader::new(bytes);
    while let Ok(Some(_)) = r.next_packet() {}
}

proptest! {
    #[test]
    fn byte_soup_never_panics_any_reader(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        drain_strict_classic(&bytes);
        drain_strict_ng(&bytes);
        let _ = read_pcap_lossy(&bytes);
        let report = read_pcapng_lossy(&bytes).report;
        // A stream with no section header yields no records.
        if !bytes.windows(4).any(|w| w == [0x0A, 0x0D, 0x0D, 0x0A]) {
            prop_assert_eq!(report.records_total(), 0);
        }
    }

    #[test]
    fn chaos_corrupted_classic_never_panics(
        packets in arb_packets(),
        seed in any::<u64>(),
    ) {
        let mut bytes = classic_bytes(&packets);
        corrupt_bytes(&mut bytes, 0, &hostile(), &mut ChaosRng::new(seed));
        drain_strict_classic(&bytes);
        if let Ok(ingest) = read_pcap_lossy(&bytes) {
            // Resyncs without recoveries (or vice versa) would mean the
            // report lies about what the reader did.
            prop_assert!(ingest.report.records_recovered == 0 || ingest.report.resyncs > 0);
            prop_assert_eq!(
                ingest.report.records_total() as usize,
                ingest.packets.len()
            );
        }
    }

    #[test]
    fn chaos_corrupted_pcapng_never_panics(
        packets in arb_packets(),
        seed in any::<u64>(),
    ) {
        let mut bytes = ng_bytes(&packets);
        corrupt_bytes(&mut bytes, 0, &hostile(), &mut ChaosRng::new(seed));
        drain_strict_ng(&bytes);
        let ingest = read_pcapng_lossy(&bytes);
        prop_assert_eq!(ingest.report.records_total() as usize, ingest.packets.len());
    }

    #[test]
    fn lossy_equals_strict_on_clean_classic(packets in arb_packets()) {
        let bytes = classic_bytes(&packets);
        let strict = PcapReader::new(&bytes[..])
            .unwrap()
            .packets()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        let lossy = read_pcap_lossy(&bytes).unwrap();
        prop_assert!(lossy.report.is_clean(), "clean file: {:?}", lossy.report);
        prop_assert_eq!(lossy.link, LinkType::Radiotap);
        prop_assert_eq!(lossy.packets.len(), strict.len());
        for (a, b) in lossy.packets.iter().zip(&strict) {
            prop_assert_eq!(a.timestamp_us, b.timestamp_us);
            prop_assert_eq!(&a.data, &b.data);
            prop_assert_eq!(a.orig_len, b.orig_len);
        }
    }

    #[test]
    fn lossy_equals_strict_on_clean_pcapng(packets in arb_packets()) {
        let bytes = ng_bytes(&packets);
        let mut strict: Vec<NgPacket> = Vec::new();
        let mut r = PcapNgReader::new(&bytes[..]);
        while let Some(pkt) = r.next_packet().unwrap() {
            strict.push(pkt);
        }
        let lossy = read_pcapng_lossy(&bytes);
        prop_assert!(lossy.report.is_clean(), "clean file: {:?}", lossy.report);
        prop_assert_eq!(lossy.packets.len(), strict.len());
        for (a, b) in lossy.packets.iter().zip(&strict) {
            prop_assert_eq!(a.link, b.link);
            prop_assert_eq!(a.packet.timestamp_us, b.packet.timestamp_us);
            prop_assert_eq!(&a.packet.data, &b.packet.data);
            prop_assert_eq!(a.packet.orig_len, b.packet.orig_len);
        }
    }
}
