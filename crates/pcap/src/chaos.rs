//! Deterministic fault injection for capture byte streams — the adversarial
//! side of the ingestion layer.
//!
//! Real RFMon captures arrive damaged: sniffers crash mid-write (truncated
//! files), disks and NFS mangle bytes (bit flips), buggy tools emit
//! impossible block lengths, and multi-sniffer rigs disagree on time (clock
//! skew) and coverage (dropped frames). This module reproduces every one of
//! those faults *reproducibly*: all corruption derives from a caller-provided
//! seed via [`ChaosRng`], so a failing case replays from its seed alone.
//!
//! Two layers:
//!
//! * [`corrupt_records`] damages a packet list before serialization —
//!   drops, duplicates, adjacent swaps, clock skew/jitter, and malformed
//!   record heads (where a radiotap header lives) — returning the exact
//!   indices dropped, which downstream tests use as loss ground truth;
//! * [`corrupt_bytes`] damages a serialized stream — seeded bit flips,
//!   truncation, garbage insertion, and length-field blasts (oversized or
//!   misaligned block lengths).
//!
//! The lossy readers in [`crate::lossy`] are expected to survive anything
//! these produce; the strict readers must fail with structured errors, never
//! panics.

/// A tiny deterministic generator (splitmix64) so the harness needs no
/// external RNG crate and corruption replays from a seed.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A generator fully determined by `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Byte-stream fault mix. Probabilities are per-stream unless noted.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Expected random bit flips per 1024 bytes of stream.
    pub bit_flips_per_kb: f64,
    /// Probability of chopping the stream at a random point.
    pub truncate: f64,
    /// Probability of inserting a short garbage run at a random offset.
    pub garbage_insert: f64,
    /// Probability of overwriting one aligned u32 with an absurd length
    /// (exercises oversized/misaligned block-length handling).
    pub length_blast: f64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            bit_flips_per_kb: 0.5,
            truncate: 0.25,
            garbage_insert: 0.25,
            length_blast: 0.25,
        }
    }
}

/// What [`corrupt_bytes`] actually did to a stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByteFaults {
    /// Individual bits flipped.
    pub bit_flips: u64,
    /// Offset the stream was truncated at, if it was.
    pub truncated_at: Option<u64>,
    /// Garbage bytes inserted.
    pub garbage_bytes: u64,
    /// Length fields overwritten with absurd values.
    pub length_blasts: u64,
}

impl ByteFaults {
    /// True when no fault was injected (the stream is still pristine).
    pub fn is_clean(&self) -> bool {
        self.bit_flips == 0
            && self.truncated_at.is_none()
            && self.garbage_bytes == 0
            && self.length_blasts == 0
    }
}

/// Corrupts a serialized capture stream in place. The first
/// `protect_prefix` bytes are left untouched (keep the file-level magic
/// readable when the scenario under test is *record* damage, or pass 0 to
/// attack the header too).
pub fn corrupt_bytes(
    buf: &mut Vec<u8>,
    protect_prefix: usize,
    cfg: &ChaosConfig,
    rng: &mut ChaosRng,
) -> ByteFaults {
    let mut faults = ByteFaults::default();
    if buf.len() <= protect_prefix {
        return faults;
    }
    let span = (buf.len() - protect_prefix) as u64;

    // Bit flips: Poisson-ish via one Bernoulli per expected flip.
    let expected = cfg.bit_flips_per_kb * span as f64 / 1024.0;
    let whole = expected.floor() as u64;
    for _ in 0..whole {
        let off = protect_prefix + rng.below(span) as usize;
        buf[off] ^= 1 << rng.below(8);
        faults.bit_flips += 1;
    }
    if rng.chance(expected - whole as f64) {
        let off = protect_prefix + rng.below(span) as usize;
        buf[off] ^= 1 << rng.below(8);
        faults.bit_flips += 1;
    }

    // Length blast: an aligned u32 becomes an implausible or misaligned
    // length.
    if rng.chance(cfg.length_blast) && span >= 4 {
        let off = protect_prefix + (rng.below(span - 3) as usize & !3);
        let absurd: u32 = match rng.below(3) {
            0 => 0xFFFF_FFFF,               // oversized
            1 => 7,                         // under-minimum and misaligned
            _ => rng.next_u64() as u32 | 1, // odd: misaligned
        };
        if off + 4 <= buf.len() {
            buf[off..off + 4].copy_from_slice(&absurd.to_le_bytes());
            faults.length_blasts += 1;
        }
    }

    // Garbage insertion: a short run of random bytes spliced mid-stream.
    if rng.chance(cfg.garbage_insert) {
        let off = protect_prefix + rng.below(span) as usize;
        let len = 1 + rng.below(64) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        buf.splice(off..off, garbage);
        faults.garbage_bytes = len as u64;
    }

    // Truncation last, so it can cut through any of the damage above.
    if rng.chance(cfg.truncate) {
        let keep = protect_prefix + rng.below((buf.len() - protect_prefix) as u64) as usize;
        buf.truncate(keep);
        faults.truncated_at = Some(keep as u64);
    }
    faults
}

/// Record-level fault mix, applied before serialization.
#[derive(Clone, Copy, Debug)]
pub struct RecordChaosConfig {
    /// Per-record drop probability (a sniffer missing the frame).
    pub drop: f64,
    /// Per-record duplication probability (driver re-delivery).
    pub duplicate: f64,
    /// Per-adjacent-pair swap probability (reordered records).
    pub swap: f64,
    /// Constant clock skew added to every timestamp (inter-sniffer offset).
    pub clock_skew_us: i64,
    /// Uniform per-record timestamp jitter in `[-jitter_us, +jitter_us]`.
    pub jitter_us: u64,
    /// Per-record probability of corrupting the head of the record's data
    /// (where the radiotap header lives).
    pub malform_head: f64,
}

impl Default for RecordChaosConfig {
    fn default() -> RecordChaosConfig {
        RecordChaosConfig {
            drop: 0.05,
            duplicate: 0.01,
            swap: 0.01,
            clock_skew_us: 0,
            jitter_us: 0,
            malform_head: 0.02,
        }
    }
}

/// What [`corrupt_records`] did, including the exact original indices it
/// dropped — the ground truth a loss-aware analysis validates against.
#[derive(Clone, Debug, Default)]
pub struct RecordFaults {
    /// Original indices of dropped records.
    pub dropped: Vec<usize>,
    /// Records duplicated.
    pub duplicated: u64,
    /// Adjacent pairs swapped.
    pub swapped: u64,
    /// Records whose head bytes were corrupted.
    pub malformed_heads: u64,
}

/// Damages a `(timestamp_us, bytes)` packet list in place, returning what
/// was done. Drops are decided first (on original indices); skew and jitter
/// apply to survivors; swaps exchange adjacent survivors.
pub fn corrupt_records(
    packets: &mut Vec<(u64, Vec<u8>)>,
    cfg: &RecordChaosConfig,
    rng: &mut ChaosRng,
) -> RecordFaults {
    let mut faults = RecordFaults::default();

    // Drops, recorded against original indices.
    let mut kept = Vec::with_capacity(packets.len());
    for (i, pkt) in packets.drain(..).enumerate() {
        if rng.chance(cfg.drop) {
            faults.dropped.push(i);
        } else {
            kept.push(pkt);
        }
    }
    *packets = kept;

    for pkt in packets.iter_mut() {
        // Clock skew + jitter, saturating at zero.
        let mut ts = pkt.0 as i128 + cfg.clock_skew_us as i128;
        if cfg.jitter_us > 0 {
            ts += rng.below(2 * cfg.jitter_us + 1) as i128 - cfg.jitter_us as i128;
        }
        pkt.0 = ts.clamp(0, u64::MAX as i128) as u64;

        // Malformed radiotap: flip bits in the first 25 bytes of data.
        if rng.chance(cfg.malform_head) && !pkt.1.is_empty() {
            let head = pkt.1.len().min(25) as u64;
            for _ in 0..1 + rng.below(4) {
                let off = rng.below(head) as usize;
                pkt.1[off] ^= 1 << rng.below(8);
            }
            faults.malformed_heads += 1;
        }
    }

    // Duplicates: re-insert a copy right after the original.
    let mut i = 0;
    while i < packets.len() {
        if rng.chance(cfg.duplicate) {
            let copy = packets[i].clone();
            packets.insert(i + 1, copy);
            faults.duplicated += 1;
            i += 1; // skip the copy
        }
        i += 1;
    }

    // Adjacent swaps (out-of-order delivery).
    let mut i = 0;
    while i + 1 < packets.len() {
        if rng.chance(cfg.swap) {
            packets.swap(i, i + 1);
            faults.swapped += 1;
            i += 1; // don't swap the same pair back
        }
        i += 1;
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let draw = |seed| {
            let mut r = ChaosRng::new(seed);
            (0..32).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn chance_extremes() {
        let mut r = ChaosRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn corruption_replays_from_seed() {
        let base: Vec<u8> = (0..4096).map(|i| i as u8).collect();
        let run = || {
            let mut buf = base.clone();
            let mut rng = ChaosRng::new(42);
            let f = corrupt_bytes(&mut buf, 24, &ChaosConfig::default(), &mut rng);
            (buf, f)
        };
        let (a, fa) = run();
        let (b, fb) = run();
        assert_eq!(a, b);
        assert_eq!(fa, fb);
    }

    #[test]
    fn prefix_is_protected() {
        let base = vec![0xAAu8; 2048];
        let mut buf = base.clone();
        let mut rng = ChaosRng::new(3);
        let cfg = ChaosConfig {
            bit_flips_per_kb: 16.0,
            truncate: 0.0,
            garbage_insert: 0.0,
            length_blast: 1.0,
        };
        corrupt_bytes(&mut buf, 24, &cfg, &mut rng);
        assert_eq!(&buf[..24], &base[..24]);
        assert_ne!(buf, base, "faults were requested at certainty");
    }

    #[test]
    fn zero_config_is_identity() {
        let mut packets = vec![(10u64, vec![1, 2, 3]), (20, vec![4, 5])];
        let orig = packets.clone();
        let cfg = RecordChaosConfig {
            drop: 0.0,
            duplicate: 0.0,
            swap: 0.0,
            clock_skew_us: 0,
            jitter_us: 0,
            malform_head: 0.0,
        };
        let mut rng = ChaosRng::new(9);
        let f = corrupt_records(&mut packets, &cfg, &mut rng);
        assert_eq!(packets, orig);
        assert!(f.dropped.is_empty());
        let mut buf = orig.iter().flat_map(|(_, d)| d.clone()).collect::<Vec<_>>();
        let before = buf.clone();
        let byte_cfg = ChaosConfig {
            bit_flips_per_kb: 0.0,
            truncate: 0.0,
            garbage_insert: 0.0,
            length_blast: 0.0,
        };
        assert!(corrupt_bytes(&mut buf, 0, &byte_cfg, &mut rng).is_clean());
        assert_eq!(buf, before);
    }

    #[test]
    fn drops_report_original_indices() {
        let mut packets: Vec<(u64, Vec<u8>)> =
            (0..200).map(|i| (i as u64, vec![i as u8])).collect();
        let cfg = RecordChaosConfig {
            drop: 0.3,
            duplicate: 0.0,
            swap: 0.0,
            clock_skew_us: 0,
            jitter_us: 0,
            malform_head: 0.0,
        };
        let mut rng = ChaosRng::new(11);
        let f = corrupt_records(&mut packets, &cfg, &mut rng);
        assert_eq!(packets.len() + f.dropped.len(), 200);
        // Survivors are exactly the non-dropped originals, in order.
        let dropped: std::collections::HashSet<usize> = f.dropped.iter().copied().collect();
        let expect: Vec<u64> = (0..200u64)
            .filter(|i| !dropped.contains(&(*i as usize)))
            .collect();
        assert_eq!(packets.iter().map(|p| p.0).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn clock_skew_shifts_timestamps() {
        let mut packets = vec![(1_000u64, vec![0u8; 30]), (2_000, vec![0u8; 30])];
        let cfg = RecordChaosConfig {
            drop: 0.0,
            duplicate: 0.0,
            swap: 0.0,
            clock_skew_us: -250,
            jitter_us: 0,
            malform_head: 0.0,
        };
        let mut rng = ChaosRng::new(5);
        corrupt_records(&mut packets, &cfg, &mut rng);
        assert_eq!(packets[0].0, 750);
        assert_eq!(packets[1].0, 1_750);
    }
}
