//! # wifi-pcap
//!
//! A from-scratch implementation of the classic libpcap capture-file format,
//! sufficient to persist and re-read the sniffer traces of the congestion
//! study.
//!
//! Supports:
//!
//! * both byte orders (the magic number disambiguates),
//! * microsecond and nanosecond timestamp variants,
//! * snap-length truncation on write (the study used a 250-byte snaplen),
//! * streaming reads and writes over any [`std::io::Read`]/[`std::io::Write`].
//!
//! ```
//! use wifi_pcap::{LinkType, PcapReader, PcapWriter};
//!
//! let mut buf = Vec::new();
//! {
//!     let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 250).unwrap();
//!     w.write_packet(1_000_000, &[0xB4, 0x00, 0x12, 0x34]).unwrap();
//! }
//! let mut r = PcapReader::new(&buf[..]).unwrap();
//! let pkt = r.next_packet().unwrap().unwrap();
//! assert_eq!(pkt.timestamp_us, 1_000_000);
//! assert_eq!(pkt.data, vec![0xB4, 0x00, 0x12, 0x34]);
//! ```

#![warn(missing_docs)]

pub mod chaos;
mod format;
pub mod lossy;
pub mod pcapng;
mod reader;
pub mod stream;
mod writer;

pub use format::{LinkType, PacketRef, PcapError, PcapPacket, MAGIC_BE, MAGIC_LE, MAGIC_NS_LE};
pub use lossy::{is_pcapng, read_pcap_lossy, read_pcapng_lossy, IngestReport};
pub use pcapng::{NgPacket, NgPacketRef, PcapNgReader, PcapNgWriter};
pub use reader::PcapReader;
pub use stream::{ChunkedSource, FillStatus, LossyPcapNgStream, LossyPcapStream, Polled};
pub use writer::PcapWriter;

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Reads every packet of a pcap file into memory.
pub fn read_file(path: &Path) -> Result<(LinkType, Vec<PcapPacket>), PcapError> {
    let file = File::open(path)?;
    let mut reader = PcapReader::new(BufReader::new(file))?;
    let link = reader.link_type();
    let mut packets = Vec::new();
    while let Some(pkt) = reader.next_packet()? {
        packets.push(pkt);
    }
    Ok((link, packets))
}

/// Writes packets (already in `(timestamp_us, bytes)` form) to a pcap file.
pub fn write_file<'a>(
    path: &Path,
    link: LinkType,
    snaplen: u32,
    packets: impl IntoIterator<Item = (u64, &'a [u8])>,
) -> Result<(), PcapError> {
    let file = File::create(path)?;
    let mut writer = PcapWriter::new(BufWriter::new(file), link, snaplen)?;
    for (ts, data) in packets {
        writer.write_packet(ts, data)?;
    }
    writer.flush()?;
    Ok(())
}
