//! Chunked streaming engines behind the lossy readers.
//!
//! [`crate::read_pcap_lossy`] and [`crate::read_pcapng_lossy`] historically
//! worked over a whole-file byte slice, which meant ingesting a capture cost
//! O(file) memory before the first record came out. The engines here make
//! the same decisions over a **bounded rolling window** fed from any
//! [`Read`] source, so a multi-gigabyte sniffer trace decodes in O(window)
//! memory; the whole-buffer functions are now thin collecting wrappers over
//! these streams.
//!
//! # The window invariant
//!
//! Every structural decision the lossy engines make — "does this record's
//! body run past end-of-stream?", "does the stream end exactly after this
//! candidate?", "is the following header also sane?" — looks at most
//! `2 * MAX_SANE_CAPLEN + 64` bytes past the current position:
//!
//! * a classic record occupies at most `RECORD_HEADER_LEN +
//!   MAX_SANE_CAPLEN` bytes, and resync double-confirmation peeks one more
//!   record header past it;
//! * a pcapng block occupies at most `2 * MAX_SANE_CAPLEN` bytes
//!   (the strict reader's own bound).
//!
//! [`ChunkedSource`] guarantees that after a refill the window holds at
//! least that many bytes *or* the source is exhausted and the window is
//! exactly the remainder of the stream. Under that invariant every
//! boundary test against `window.len()` means precisely what it meant
//! against `bytes.len()` in the whole-buffer engine, so the streams are
//! decision-for-decision identical to the batch readers — including every
//! [`IngestReport`] counter — for *any* chunking of the underlying reads.
//! The tests at the bottom enforce this by differencing the two paths over
//! clean and chaos-corrupted captures at several read granularities.
//!
//! # Live (non-blocking) sources
//!
//! A tailed live capture cannot satisfy the invariant: the last bytes of a
//! growing file are a partial window with no end-of-stream in sight. Sources
//! that return [`std::io::ErrorKind::WouldBlock`] surface this as
//! [`FillStatus::Partial`], and the [`LossyPcapStream::poll_packet`] /
//! [`LossyPcapNgStream::poll_packet`] entry points then follow one rule: on
//! a partial window, either act on a **fully-validated in-window record**
//! (a decision unchanged by any extension of the window, so the batch
//! engine over the final bytes makes it identically) or change nothing and
//! report [`Polled::Pending`]. Resynchronization after corruption always
//! waits for a full (or end-of-stream) window. Consequently a poll-driven
//! decode of a growing file converges, byte-for-byte in records and
//! accounting, to the batch decode of the final file contents.

use crate::format::{
    LinkType, PacketRef, PcapError, GLOBAL_HEADER_LEN, MAGIC_BE, MAGIC_LE, MAGIC_NS_BE,
    MAGIC_NS_LE, MAX_SANE_CAPLEN, RECORD_HEADER_LEN,
};
use crate::lossy::IngestReport;
use crate::pcapng::{
    parse_epb_ref, parse_idb, parse_spb_ref, Interface, NgPacketRef, BT_EPB, BT_IDB, BT_SHB,
    BT_SPB, BYTE_ORDER_MAGIC,
};
use std::io::Read;

/// Resync plausibility: a candidate record's whole-seconds timestamp must be
/// within this many seconds of the last good record (captures are sessions,
/// not decades).
const RESYNC_TS_TOLERANCE_S: u64 = 86_400;

/// The minimum number of bytes a non-exhausted window must hold: the
/// largest lookahead any engine decision needs (see the module docs).
pub const WINDOW_TARGET: usize = 2 * (MAX_SANE_CAPLEN as usize) + 64;

/// Refill high-water mark: topping up to twice the window target halves the
/// number of compaction memmoves per byte consumed.
const REFILL_TARGET: usize = 2 * WINDOW_TARGET;

/// Granularity of reads from the underlying source.
const READ_CHUNK: usize = 64 * 1024;

/// What a [`ChunkedSource::fill`] achieved.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FillStatus {
    /// The window invariant holds: at least [`WINDOW_TARGET`] bytes, or
    /// end-of-stream with the window the exact remainder.
    Full,
    /// The source would block: the window is a prefix (possibly empty) of
    /// the eventual remainder and must not drive structural decisions.
    Partial,
}

/// Outcome of a single non-blocking [`LossyPcapStream::poll_packet`] /
/// [`LossyPcapNgStream::poll_packet`].
#[derive(Debug)]
pub enum Polled<T> {
    /// The next surviving record.
    Packet(T),
    /// The source would block before enough bytes were visible to decide;
    /// nothing changed — poll again once the source may have more bytes.
    Pending,
    /// True end of stream.
    End,
}

/// A bounded rolling byte window over any [`Read`] source.
///
/// Invariant: after [`ChunkedSource::fill`] returns [`FillStatus::Full`],
/// either the window holds at least [`WINDOW_TARGET`] bytes, or
/// [`ChunkedSource::eof`] is true and the window is exactly the unconsumed
/// remainder of the stream.
pub struct ChunkedSource<R> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    chunk: Vec<u8>,
    eof: bool,
}

impl<R: Read> ChunkedSource<R> {
    /// Wraps a byte source. No bytes are read until the first [`fill`].
    ///
    /// [`fill`]: ChunkedSource::fill
    pub fn new(inner: R) -> ChunkedSource<R> {
        ChunkedSource {
            inner,
            buf: Vec::new(),
            pos: 0,
            chunk: Vec::new(),
            eof: false,
        }
    }

    /// Tops the window up to at least [`WINDOW_TARGET`] bytes (reading ahead
    /// to twice that), unless the source is exhausted first. Cheap no-op when
    /// the window is already full enough.
    ///
    /// A source that returns [`std::io::ErrorKind::WouldBlock`] before the
    /// target is met yields [`FillStatus::Partial`]: the window then holds a
    /// prefix of the eventual remainder and the invariant does **not** hold.
    /// Blocking sources never produce `Partial`.
    pub fn fill(&mut self) -> Result<FillStatus, PcapError> {
        if self.eof || self.buf.len() - self.pos >= WINDOW_TARGET {
            return Ok(FillStatus::Full);
        }
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        if self.chunk.is_empty() {
            self.chunk.resize(READ_CHUNK, 0);
        }
        while self.buf.len() < REFILL_TARGET {
            match self.inner.read(&mut self.chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => self.buf.extend_from_slice(&self.chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(if self.buf.len() >= WINDOW_TARGET {
                        FillStatus::Full
                    } else {
                        FillStatus::Partial
                    });
                }
                Err(e) => return Err(PcapError::Io(e)),
            }
        }
        Ok(FillStatus::Full)
    }

    /// The bytes currently visible at the stream position.
    pub fn window(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Advances the stream position by `n` bytes (which must be within the
    /// current window).
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.buf.len() - self.pos);
        self.pos += n;
    }

    /// True once the underlying source has reported end-of-stream; the
    /// window then holds exactly the remaining bytes.
    pub fn eof(&self) -> bool {
        self.eof
    }
}

pub(crate) struct ClassicHeader {
    pub(crate) big_endian: bool,
    pub(crate) nanos: bool,
    pub(crate) link: LinkType,
}

pub(crate) fn u32_end(big_endian: bool, bytes: &[u8], off: usize) -> u32 {
    let b = [bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]];
    if big_endian {
        u32::from_be_bytes(b)
    } else {
        u32::from_le_bytes(b)
    }
}

fn parse_global_header(bytes: &[u8]) -> Result<ClassicHeader, PcapError> {
    if bytes.len() < GLOBAL_HEADER_LEN {
        return Err(PcapError::TruncatedFile);
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let (big_endian, nanos) = match magic {
        MAGIC_LE => (false, false),
        MAGIC_NS_LE => (false, true),
        MAGIC_BE => (true, false),
        MAGIC_NS_BE => (true, true),
        other => return Err(PcapError::BadMagic(other)),
    };
    let major = {
        let b = [bytes[4], bytes[5]];
        if big_endian {
            u16::from_be_bytes(b)
        } else {
            u16::from_le_bytes(b)
        }
    };
    if major != 2 {
        let minor = {
            let b = [bytes[6], bytes[7]];
            if big_endian {
                u16::from_be_bytes(b)
            } else {
                u16::from_le_bytes(b)
            }
        };
        return Err(PcapError::UnsupportedVersion(major, minor));
    }
    Ok(ClassicHeader {
        big_endian,
        nanos,
        link: LinkType::from_code(u32_end(big_endian, bytes, 20)),
    })
}

/// Why a record at the window head could not be taken as-is.
enum RecordFailure {
    /// The header's lengths are impossible.
    BadHeader,
    /// The header parses but the body runs past end-of-stream.
    PastEof,
}

/// Basic record-header validation at the window head — exactly what the
/// strict reader checks, so clean files decode identically in both modes.
/// Returns `(timestamp_us, orig_len, end)` with `end` one past the body.
fn record_head(w: &[u8], h: &ClassicHeader) -> Result<(u64, u32, usize), RecordFailure> {
    let ts_sec = u32_end(h.big_endian, w, 0) as u64;
    let ts_frac = u32_end(h.big_endian, w, 4) as u64;
    let caplen = u32_end(h.big_endian, w, 8);
    let orig_len = u32_end(h.big_endian, w, 12);
    if caplen > MAX_SANE_CAPLEN || caplen > orig_len {
        return Err(RecordFailure::BadHeader);
    }
    let end = RECORD_HEADER_LEN + caplen as usize;
    if end > w.len() {
        return Err(RecordFailure::PastEof);
    }
    let micros = if h.nanos { ts_frac / 1000 } else { ts_frac };
    Ok((ts_sec * 1_000_000 + micros, orig_len, end))
}

/// Resync plausibility at the window head: stricter than [`record_head`] so
/// a scan does not lock onto payload bytes that merely look like a header.
fn plausible_record(w: &[u8], h: &ClassicHeader, last_sec: Option<u64>) -> bool {
    if w.len() < RECORD_HEADER_LEN {
        return false;
    }
    let ts_sec = u32_end(h.big_endian, w, 0) as u64;
    let ts_frac = u32_end(h.big_endian, w, 4) as u64;
    let caplen = u32_end(h.big_endian, w, 8);
    let orig_len = u32_end(h.big_endian, w, 12);
    let frac_bound = if h.nanos { 1_000_000_000 } else { 1_000_000 };
    if ts_frac >= frac_bound
        || caplen > MAX_SANE_CAPLEN
        || caplen > orig_len
        || orig_len > MAX_SANE_CAPLEN
    {
        return false;
    }
    if let Some(last) = last_sec {
        if ts_sec.abs_diff(last) > RESYNC_TS_TOLERANCE_S {
            return false;
        }
    }
    let next = RECORD_HEADER_LEN + caplen as usize;
    if next > w.len() {
        return false;
    }
    // Double confirmation: the stream must end exactly here, or the next
    // header must also look sane. (`next == w.len()` implies eof: a
    // non-exhausted window always holds more than one record's lookahead.)
    if next == w.len() {
        return true;
    }
    if next + RECORD_HEADER_LEN > w.len() {
        return false; // trailing sliver that can't be a record
    }
    let n_frac = u32_end(h.big_endian, w, next + 4) as u64;
    let n_caplen = u32_end(h.big_endian, w, next + 8);
    let n_orig = u32_end(h.big_endian, w, next + 12);
    n_frac < frac_bound && n_caplen <= MAX_SANE_CAPLEN && n_caplen <= n_orig
}

/// A lossy, resynchronizing classic-pcap reader over any byte stream, in
/// O(window) memory.
///
/// Decision-for-decision identical — records *and* [`IngestReport`]
/// accounting — to [`crate::read_pcap_lossy`], which is a collecting wrapper
/// over this type.
pub struct LossyPcapStream<R> {
    src: ChunkedSource<R>,
    header: ClassicHeader,
    report: IngestReport,
    last_sec: Option<u64>,
    just_resynced: bool,
    /// Mid-resync-scan across a [`Polled::Pending`] return: re-entry resumes
    /// the scan instead of re-counting the resync entry.
    resyncing: bool,
    pending: usize,
}

impl<R: Read> LossyPcapStream<R> {
    /// Wraps a byte stream and validates the global header — the one part
    /// of the file without which there is nothing to recover. On a live
    /// (`WouldBlock`) source this waits until the header bytes arrive or the
    /// source ends.
    pub fn new(inner: R) -> Result<LossyPcapStream<R>, PcapError> {
        let mut src = ChunkedSource::new(inner);
        loop {
            let status = src.fill()?;
            if status == FillStatus::Full || src.window().len() >= GLOBAL_HEADER_LEN {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let header = parse_global_header(src.window())?;
        src.consume(GLOBAL_HEADER_LEN);
        Ok(LossyPcapStream {
            src,
            header,
            report: IngestReport::default(),
            last_sec: None,
            just_resynced: false,
            resyncing: false,
            pending: 0,
        })
    }

    /// The file's data-link type.
    pub fn link(&self) -> LinkType {
        self.header.link
    }

    /// The accounting so far; final once `next_packet` returns `Ok(None)`.
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// The next surviving record; `Ok(None)` at end of stream. The returned
    /// [`PacketRef`] borrows the internal window and is invalidated by the
    /// next call.
    ///
    /// Blocking-source convenience over [`LossyPcapStream::poll_packet`]: a
    /// non-blocking source that reports [`Polled::Pending`] surfaces here as
    /// a [`std::io::ErrorKind::WouldBlock`] error.
    pub fn next_packet(&mut self) -> Result<Option<PacketRef<'_>>, PcapError> {
        match self.poll_packet()? {
            Polled::Packet(p) => Ok(Some(p)),
            Polled::End => Ok(None),
            Polled::Pending => Err(PcapError::Io(std::io::ErrorKind::WouldBlock.into())),
        }
    }

    /// Non-blocking decode step; see the module docs on live sources. On
    /// [`Polled::Pending`] no observable state (position, accounting)
    /// changes, so any interleaving of polls converges to the batch decode
    /// of the final bytes.
    pub fn poll_packet(&mut self) -> Result<Polled<PacketRef<'_>>, PcapError> {
        self.src.consume(self.pending);
        self.pending = 0;
        let (timestamp_us, orig_len, end) = loop {
            if self.resyncing {
                loop {
                    if self.src.fill()? == FillStatus::Partial {
                        return Ok(Polled::Pending);
                    }
                    let w = self.src.window();
                    if w.len() < RECORD_HEADER_LEN {
                        // Trailing sliver too small for a record: the
                        // scan discards it without a truncated-tail
                        // flag, same as the batch engine.
                        self.report.bytes_skipped += w.len() as u64;
                        let n = w.len();
                        self.src.consume(n);
                        return Ok(Polled::End);
                    }
                    if plausible_record(w, &self.header, self.last_sec) {
                        break;
                    }
                    self.src.consume(1);
                    self.report.bytes_skipped += 1;
                }
                self.resyncing = false;
                self.just_resynced = true;
            }
            let status = self.src.fill()?;
            let len = self.src.window().len();
            if len == 0 {
                return Ok(match status {
                    FillStatus::Full => Polled::End,
                    FillStatus::Partial => Polled::Pending,
                });
            }
            if len < RECORD_HEADER_LEN {
                if status == FillStatus::Partial {
                    return Ok(Polled::Pending);
                }
                // The window invariant makes this end-of-stream by
                // construction: too few bytes for a record header.
                self.report.truncated_tail = true;
                self.report.bytes_skipped += len as u64;
                self.src.consume(len);
                return Ok(Polled::End);
            }
            match record_head(self.src.window(), &self.header) {
                Ok(rec) => {
                    // In-window sane record: the batch engine over any
                    // extension of this window decodes it identically, so
                    // emitting is safe even on a partial window.
                    self.last_sec = Some(rec.0 / 1_000_000);
                    if self.just_resynced {
                        self.report.records_recovered += 1;
                        self.just_resynced = false;
                    } else {
                        self.report.records_ok += 1;
                    }
                    break rec;
                }
                Err(_) if status == FillStatus::Partial => {
                    // A body not yet arrived looks like PastEof, and even a
                    // bad header must not start a resync before the scan's
                    // full-window lookahead is available.
                    return Ok(Polled::Pending);
                }
                Err(failure) => {
                    if matches!(failure, RecordFailure::PastEof) {
                        self.report.truncated_tail = true;
                    }
                    self.report.resyncs += 1;
                    self.report.blocks_skipped += 1;
                    self.src.consume(1);
                    self.report.bytes_skipped += 1;
                    self.resyncing = true;
                }
            }
        };
        self.pending = end;
        let data = &self.src.window()[RECORD_HEADER_LEN..end];
        Ok(Polled::Packet(PacketRef {
            timestamp_us,
            orig_len,
            data,
        }))
    }
}

/// Block-length sanity at the window head, shared by in-stride parsing and
/// resync scanning: lead length in range and aligned, body inside the
/// stream, trailing length equal to the lead.
fn ng_block_sane(w: &[u8], big_endian: bool) -> Option<usize> {
    if w.len() < 12 {
        return None;
    }
    let total_len = u32_end(big_endian, w, 4) as usize;
    if total_len < 12 || !total_len.is_multiple_of(4) || total_len as u32 > MAX_SANE_CAPLEN * 2 {
        return None;
    }
    if total_len > w.len() {
        return None;
    }
    let trailing = u32_end(big_endian, w, total_len - 4) as usize;
    if trailing != total_len {
        return None;
    }
    Some(total_len)
}

/// Validates an SHB candidate at the window head; returns
/// `(big_endian, total_len)`.
fn ng_shb_sane(w: &[u8]) -> Option<(bool, usize)> {
    if w.len() < 12 {
        return None;
    }
    if u32::from_le_bytes([w[0], w[1], w[2], w[3]]) != BT_SHB {
        return None;
    }
    let magic_le = u32::from_le_bytes([w[8], w[9], w[10], w[11]]);
    let big_endian = match magic_le {
        BYTE_ORDER_MAGIC => false,
        m if m == BYTE_ORDER_MAGIC.swap_bytes() => true,
        _ => return None,
    };
    let total_len = ng_block_sane(w, big_endian)?;
    if total_len < 28 {
        return None;
    }
    // Version major must be 1.
    let major = {
        let b = [w[12], w[13]];
        if big_endian {
            u16::from_be_bytes(b)
        } else {
            u16::from_le_bytes(b)
        }
    };
    if major != 1 {
        return None;
    }
    Some((big_endian, total_len))
}

/// Which packet-bearing block type the scan loop stopped on.
enum NgBlockKind {
    Epb,
    Spb,
}

/// A lossy, resynchronizing pcapng reader over any byte stream, in
/// O(window) memory. Total like [`crate::read_pcapng_lossy`] (its collecting
/// wrapper): a stream with no recoverable section yields zero packets with
/// every byte accounted as skipped; only source I/O can error.
pub struct LossyPcapNgStream<R> {
    src: ChunkedSource<R>,
    report: IngestReport,
    big_endian: bool,
    started: bool,
    interfaces: Vec<Option<Interface>>,
    just_resynced: bool,
    /// Mid-resync-scan across a [`Polled::Pending`] return; see
    /// [`LossyPcapStream`].
    resyncing: bool,
    pending: usize,
}

impl<R: Read> LossyPcapNgStream<R> {
    /// Wraps a byte stream. Nothing is validated up front: pcapng recovery
    /// can start mid-stream at any Section Header Block.
    pub fn new(inner: R) -> LossyPcapNgStream<R> {
        LossyPcapNgStream {
            src: ChunkedSource::new(inner),
            report: IngestReport::default(),
            big_endian: false,
            started: false,
            interfaces: Vec::new(),
            just_resynced: false,
            resyncing: false,
            pending: 0,
        }
    }

    /// The accounting so far; final once `next_packet` returns `Ok(None)`.
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// The next surviving packet; `Ok(None)` at end of stream. The returned
    /// [`NgPacketRef`] borrows the internal window and is invalidated by the
    /// next call.
    ///
    /// Blocking-source convenience over [`LossyPcapNgStream::poll_packet`]:
    /// a non-blocking source that reports [`Polled::Pending`] surfaces here
    /// as a [`std::io::ErrorKind::WouldBlock`] error.
    pub fn next_packet(&mut self) -> Result<Option<NgPacketRef<'_>>, PcapError> {
        match self.poll_packet()? {
            Polled::Packet(p) => Ok(Some(p)),
            Polled::End => Ok(None),
            Polled::Pending => Err(PcapError::Io(std::io::ErrorKind::WouldBlock.into())),
        }
    }

    /// Non-blocking decode step; see the module docs on live sources. On
    /// [`Polled::Pending`] no observable state (position, accounting)
    /// changes, so any interleaving of polls converges to the batch decode
    /// of the final bytes.
    pub fn poll_packet(&mut self) -> Result<Polled<NgPacketRef<'_>>, PcapError> {
        self.src.consume(self.pending);
        self.pending = 0;
        let (kind, total_len) = loop {
            if self.resyncing {
                loop {
                    if self.src.fill()? == FillStatus::Partial {
                        return Ok(Polled::Pending);
                    }
                    let w = self.src.window();
                    if w.len() < 12 {
                        self.report.bytes_skipped += w.len() as u64;
                        let n = w.len();
                        self.src.consume(n);
                        return Ok(Polled::End);
                    }
                    if ng_shb_sane(w).is_some() {
                        break;
                    }
                    if self.started {
                        let block_type = u32_end(self.big_endian, w, 0);
                        if matches!(block_type, BT_IDB | BT_EPB | BT_SPB)
                            && ng_block_sane(w, self.big_endian).is_some()
                        {
                            break;
                        }
                    }
                    self.src.consume(1);
                    self.report.bytes_skipped += 1;
                }
                self.resyncing = false;
                self.just_resynced = true;
            }
            let status = self.src.fill()?;
            let len = self.src.window().len();
            if len == 0 {
                return Ok(match status {
                    FillStatus::Full => Polled::End,
                    FillStatus::Partial => Polled::Pending,
                });
            }
            if len < 12 {
                if status == FillStatus::Partial {
                    return Ok(Polled::Pending);
                }
                self.report.truncated_tail = true;
                self.report.bytes_skipped += len as u64;
                self.src.consume(len);
                return Ok(Polled::End);
            }
            // SHB first: its type is identifiable before endianness is known.
            if let Some((be, shb_len)) = ng_shb_sane(self.src.window()) {
                self.big_endian = be;
                self.started = true;
                self.interfaces.clear();
                self.src.consume(shb_len);
                continue;
            }
            let in_stride = if self.started {
                ng_block_sane(self.src.window(), self.big_endian)
            } else {
                None
            };
            match in_stride {
                Some(total_len) => {
                    let block_type = u32_end(self.big_endian, self.src.window(), 0);
                    match block_type {
                        BT_IDB => {
                            let parsed =
                                parse_idb(self.big_endian, &self.src.window()[8..total_len - 4]);
                            match parsed {
                                Ok(iface) => self.interfaces.push(Some(iface)),
                                Err(_) => {
                                    // Keep interface ids aligned: the slot
                                    // exists but is unusable; its packets
                                    // are skipped.
                                    self.interfaces.push(None);
                                    self.report.blocks_skipped += 1;
                                }
                            }
                            self.src.consume(total_len);
                        }
                        BT_EPB | BT_SPB => {
                            let body = &self.src.window()[8..total_len - 4];
                            let decodes = if block_type == BT_EPB {
                                parse_epb_ref(self.big_endian, body, &self.interfaces).is_ok()
                            } else {
                                parse_spb_ref(self.big_endian, body, &self.interfaces).is_ok()
                            };
                            if decodes {
                                if self.just_resynced {
                                    self.report.records_recovered += 1;
                                    self.just_resynced = false;
                                } else {
                                    self.report.records_ok += 1;
                                }
                                let kind = if block_type == BT_EPB {
                                    NgBlockKind::Epb
                                } else {
                                    NgBlockKind::Spb
                                };
                                break (kind, total_len);
                            }
                            self.report.blocks_skipped += 1;
                            self.src.consume(total_len);
                        }
                        _ => self.src.consume(total_len), // unknown: skipped by length
                    }
                }
                None if status == FillStatus::Partial => {
                    // The head may be a block whose tail has not arrived
                    // yet (and a resync needs full-window lookahead): wait.
                    return Ok(Polled::Pending);
                }
                None => {
                    // Resync: scan for the next self-consistent known block
                    // (the scan itself runs at the top of the outer loop).
                    self.report.resyncs += 1;
                    self.report.blocks_skipped += 1;
                    self.src.consume(1);
                    self.report.bytes_skipped += 1;
                    self.resyncing = true;
                }
            }
        };
        self.pending = total_len;
        let body = &self.src.window()[8..total_len - 4];
        let pkt = match kind {
            NgBlockKind::Epb => parse_epb_ref(self.big_endian, body, &self.interfaces),
            NgBlockKind::Spb => parse_spb_ref(self.big_endian, body, &self.interfaces),
        }
        .expect("block decoded in the scan loop");
        Ok(Polled::Packet(pkt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{corrupt_bytes, ChaosConfig, ChaosRng};
    use crate::lossy::{read_pcap_lossy, read_pcapng_lossy};
    use crate::pcapng::PcapNgWriter;
    use crate::writer::PcapWriter;
    use crate::PcapPacket;

    /// A reader that hands out at most `max` bytes per call, to exercise
    /// every possible record-straddles-chunk-boundary alignment.
    struct SmallReads<'a> {
        bytes: &'a [u8],
        pos: usize,
        max: usize,
    }

    impl Read for SmallReads<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.max).min(self.bytes.len() - self.pos);
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn small(bytes: &[u8], max: usize) -> SmallReads<'_> {
        SmallReads { bytes, pos: 0, max }
    }

    fn classic_file(n: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 0).unwrap();
        for i in 0..n {
            let data: Vec<u8> = (0..40).map(|b| (b + i) as u8).collect();
            w.write_packet(1_000_000 + i as u64 * 1_000, &data).unwrap();
        }
        buf
    }

    fn ng_file(n: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = PcapNgWriter::new(&mut buf, LinkType::Radiotap, 0).unwrap();
        for i in 0..n {
            let data: Vec<u8> = (0..40).map(|b| (b + i) as u8).collect();
            w.write_packet(1_000_000 + i as u64 * 1_000, &data).unwrap();
        }
        buf
    }

    fn stream_classic(bytes: &[u8], max: usize) -> (Vec<PcapPacket>, IngestReport) {
        let mut s = LossyPcapStream::new(small(bytes, max)).unwrap();
        let mut out = Vec::new();
        while let Some(p) = s.next_packet().unwrap() {
            out.push(p.to_owned());
        }
        (out, *s.report())
    }

    fn stream_ng(bytes: &[u8], max: usize) -> (Vec<crate::NgPacket>, IngestReport) {
        let mut s = LossyPcapNgStream::new(small(bytes, max));
        let mut out = Vec::new();
        while let Some(p) = s.next_packet().unwrap() {
            out.push(p.to_owned());
        }
        (out, *s.report())
    }

    #[test]
    fn classic_chunking_is_invisible_on_clean_files() {
        let buf = classic_file(60);
        let batch = read_pcap_lossy(&buf).unwrap();
        for max in [1, 7, 64, 4096] {
            let (pkts, report) = stream_classic(&buf, max);
            assert_eq!(pkts, batch.packets, "read granularity {max}");
            assert_eq!(report, batch.report, "read granularity {max}");
        }
        assert!(batch.report.is_clean());
    }

    #[test]
    fn ng_chunking_is_invisible_on_clean_files() {
        let buf = ng_file(60);
        let batch = read_pcapng_lossy(&buf);
        for max in [1, 7, 64, 4096] {
            let (pkts, report) = stream_ng(&buf, max);
            assert_eq!(pkts, batch.packets, "read granularity {max}");
            assert_eq!(report, batch.report, "read granularity {max}");
        }
        assert!(batch.report.is_clean());
    }

    #[test]
    fn classic_chunking_is_invisible_under_chaos() {
        for seed in 0..40u64 {
            let mut buf = classic_file(30);
            let mut rng = ChaosRng::new(seed);
            let cfg = ChaosConfig {
                bit_flips_per_kb: 4.0,
                truncate: 0.3,
                garbage_insert: 0.5,
                length_blast: 0.5,
            };
            corrupt_bytes(&mut buf, GLOBAL_HEADER_LEN, &cfg, &mut rng);
            let batch = read_pcap_lossy(&buf).unwrap();
            for max in [1, 13, 256] {
                let (pkts, report) = stream_classic(&buf, max);
                assert_eq!(pkts, batch.packets, "seed {seed} granularity {max}");
                assert_eq!(report, batch.report, "seed {seed} granularity {max}");
            }
        }
    }

    #[test]
    fn ng_chunking_is_invisible_under_chaos() {
        for seed in 0..40u64 {
            let mut buf = ng_file(30);
            let mut rng = ChaosRng::new(seed ^ 0xA5A5);
            let cfg = ChaosConfig {
                bit_flips_per_kb: 4.0,
                truncate: 0.3,
                garbage_insert: 0.5,
                length_blast: 0.5,
            };
            corrupt_bytes(&mut buf, 0, &cfg, &mut rng);
            let batch = read_pcapng_lossy(&buf);
            for max in [1, 13, 256] {
                let (pkts, report) = stream_ng(&buf, max);
                assert_eq!(pkts, batch.packets, "seed {seed} granularity {max}");
                assert_eq!(report, batch.report, "seed {seed} granularity {max}");
            }
        }
    }

    #[test]
    fn classic_stream_reports_header_errors() {
        assert!(matches!(
            LossyPcapStream::new(&[0u8; 40][..]).err(),
            Some(PcapError::BadMagic(_))
        ));
        assert!(matches!(
            LossyPcapStream::new(&[1u8, 2, 3][..]).err(),
            Some(PcapError::TruncatedFile)
        ));
    }

    #[test]
    fn packet_refs_borrow_then_convert() {
        let buf = classic_file(3);
        let mut s = LossyPcapStream::new(&buf[..]).unwrap();
        let p = s.next_packet().unwrap().unwrap();
        assert_eq!(p.timestamp_us, 1_000_000);
        assert_eq!(p.data.len(), 40);
        assert!(!p.is_truncated());
        let owned = p.to_owned();
        assert_eq!(owned.data, p.data);
        assert_eq!(s.link(), LinkType::Radiotap);
    }

    /// A reader that serves bytes in small slices with a `WouldBlock` error
    /// interleaved before every successful read, imitating a tailed file
    /// that grows while being polled.
    struct BlockyReads<'a> {
        bytes: &'a [u8],
        pos: usize,
        max: usize,
        block_next: bool,
    }

    impl Read for BlockyReads<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.block_next && self.pos < self.bytes.len() {
                self.block_next = false;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.block_next = true;
            let n = buf.len().min(self.max).min(self.bytes.len() - self.pos);
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn poll_classic(bytes: &[u8], max: usize) -> (Vec<PcapPacket>, IngestReport) {
        let src = BlockyReads {
            bytes,
            pos: 0,
            max,
            block_next: false,
        };
        let mut s = LossyPcapStream::new(src).unwrap();
        let mut out = Vec::new();
        loop {
            match s.poll_packet().unwrap() {
                Polled::Packet(p) => out.push(p.to_owned()),
                Polled::Pending => continue, // next poll sees more bytes
                Polled::End => break,
            }
        }
        (out, *s.report())
    }

    fn poll_ng(bytes: &[u8], max: usize) -> (Vec<crate::NgPacket>, IngestReport) {
        let src = BlockyReads {
            bytes,
            pos: 0,
            max,
            block_next: true,
        };
        let mut s = LossyPcapNgStream::new(src);
        let mut out = Vec::new();
        loop {
            match s.poll_packet().unwrap() {
                Polled::Packet(p) => out.push(p.to_owned()),
                Polled::Pending => continue,
                Polled::End => break,
            }
        }
        (out, *s.report())
    }

    #[test]
    fn classic_polling_converges_to_batch_on_clean_files() {
        let buf = classic_file(60);
        let batch = read_pcap_lossy(&buf).unwrap();
        for max in [7, 64, 4096] {
            let (pkts, report) = poll_classic(&buf, max);
            assert_eq!(pkts, batch.packets, "granularity {max}");
            assert_eq!(report, batch.report, "granularity {max}");
        }
    }

    #[test]
    fn ng_polling_converges_to_batch_on_clean_files() {
        let buf = ng_file(60);
        let batch = read_pcapng_lossy(&buf);
        for max in [7, 64, 4096] {
            let (pkts, report) = poll_ng(&buf, max);
            assert_eq!(pkts, batch.packets, "granularity {max}");
            assert_eq!(report, batch.report, "granularity {max}");
        }
    }

    #[test]
    fn classic_polling_converges_to_batch_under_chaos() {
        for seed in 0..25u64 {
            let mut buf = classic_file(30);
            let mut rng = ChaosRng::new(seed);
            let cfg = ChaosConfig {
                bit_flips_per_kb: 4.0,
                truncate: 0.3,
                garbage_insert: 0.5,
                length_blast: 0.5,
            };
            corrupt_bytes(&mut buf, GLOBAL_HEADER_LEN, &cfg, &mut rng);
            let batch = read_pcap_lossy(&buf).unwrap();
            for max in [13, 256] {
                let (pkts, report) = poll_classic(&buf, max);
                assert_eq!(pkts, batch.packets, "seed {seed} granularity {max}");
                assert_eq!(report, batch.report, "seed {seed} granularity {max}");
            }
        }
    }

    #[test]
    fn ng_polling_converges_to_batch_under_chaos() {
        for seed in 0..25u64 {
            let mut buf = ng_file(30);
            let mut rng = ChaosRng::new(seed ^ 0x5A5A);
            let cfg = ChaosConfig {
                bit_flips_per_kb: 4.0,
                truncate: 0.3,
                garbage_insert: 0.5,
                length_blast: 0.5,
            };
            corrupt_bytes(&mut buf, 0, &cfg, &mut rng);
            let batch = read_pcapng_lossy(&buf);
            for max in [13, 256] {
                let (pkts, report) = poll_ng(&buf, max);
                assert_eq!(pkts, batch.packets, "seed {seed} granularity {max}");
                assert_eq!(report, batch.report, "seed {seed} granularity {max}");
            }
        }
    }

    #[test]
    fn next_packet_surfaces_pending_as_would_block() {
        let buf = classic_file(3);
        // A source that blocks forever after the header: next_packet must
        // fail with WouldBlock, not spin or misreport end-of-stream.
        struct HeaderThenBlock<'a>(&'a [u8], usize);
        impl Read for HeaderThenBlock<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= GLOBAL_HEADER_LEN {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = out.len().min(GLOBAL_HEADER_LEN - self.1);
                out[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
                self.1 += n;
                Ok(n)
            }
        }
        let mut s = LossyPcapStream::new(HeaderThenBlock(&buf, 0)).unwrap();
        match s.next_packet() {
            Err(PcapError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock),
            other => panic!("expected WouldBlock, got {other:?}"),
        }
        assert!(
            s.report().is_clean(),
            "a pending poll must not change accounting"
        );
    }

    #[test]
    fn chunked_source_window_invariant_holds() {
        // A stream longer than one refill: every fill either tops the window
        // past WINDOW_TARGET or exhausts the source.
        let bytes: Vec<u8> = (0..(REFILL_TARGET + 1234)).map(|i| i as u8).collect();
        let mut src = ChunkedSource::new(small(&bytes, 50_000));
        let mut seen = Vec::new();
        loop {
            src.fill().unwrap();
            assert!(
                src.window().len() >= WINDOW_TARGET || src.eof(),
                "window invariant violated"
            );
            if src.window().is_empty() {
                break;
            }
            let take = src.window().len().min(100_000);
            seen.extend_from_slice(&src.window()[..take]);
            src.consume(take);
        }
        assert_eq!(seen, bytes, "no bytes lost or duplicated across refills");
    }
}
