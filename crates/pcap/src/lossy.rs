//! Lossy, resynchronizing capture ingestion.
//!
//! The strict readers ([`crate::PcapReader`], [`crate::PcapNgReader`]) abort
//! an entire trace at the first damaged byte — correct for validating our own
//! writers, useless for real vicinity captures, which arrive truncated,
//! bit-flipped, and spliced. The readers here skip damaged regions and
//! *resynchronize*:
//!
//! * **classic pcap** has no per-record framing, so recovery scans forward
//!   byte-by-byte for a *plausible* record header — sane lengths, a
//!   sub-second fraction field in range, a timestamp near the last good
//!   record — and demands the following record also look sane (or the
//!   stream end there) before accepting it;
//! * **pcapng** is self-framing: every block states its length twice (lead
//!   and trail), so recovery scans for the next known block type whose two
//!   lengths agree and whose body fits the buffer — a ~2⁻³² false-positive
//!   rate per scanned offset.
//!
//! Every decision is accounted in an [`IngestReport`]: how many records
//! decoded cleanly, how many were recovered after a resync, how many
//! blocks were abandoned, and how many bytes were discarded. On an
//! undamaged file both readers are byte-identical to strict mode and the
//! report shows zero skips — a property the test suite enforces.
//!
//! The decode engines live in [`crate::stream`] and run over a bounded
//! rolling window, so captures larger than RAM ingest in O(window) memory
//! through [`crate::LossyPcapStream`] / [`crate::LossyPcapNgStream`]. The
//! whole-buffer functions here are thin collecting wrappers over those
//! streams, which keeps the two paths equivalent by construction.

use crate::format::{LinkType, PcapError, PcapPacket};
use crate::pcapng::{NgPacket, BT_SHB};
use crate::stream::{LossyPcapNgStream, LossyPcapStream};

/// Accounting of one lossy ingestion pass. All counters are cumulative;
/// [`IngestReport::merge`] folds per-file reports into a campaign total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Records decoded cleanly, with no resync since the previous record.
    pub records_ok: u64,
    /// Records decoded immediately after a resync scan — data that strict
    /// mode would have thrown away.
    pub records_recovered: u64,
    /// Damaged records/blocks abandoned (undecodable, oversized, or
    /// referencing an unusable interface).
    pub blocks_skipped: u64,
    /// Forward scans performed to re-find a record or block boundary.
    pub resyncs: u64,
    /// Bytes discarded by resync scans and abandoned tails.
    pub bytes_skipped: u64,
    /// Radiotap headers that failed to decode (filled by the trace layer,
    /// which owns radiotap parsing).
    pub undecodable_radiotap: u64,
    /// 802.11 frame headers behind a good radiotap header that failed to
    /// parse (also filled by the trace layer).
    pub undecodable_frames: u64,
    /// The stream ended inside a record or block body.
    pub truncated_tail: bool,
}

impl IngestReport {
    /// Records that made it out, clean or recovered.
    pub fn records_total(&self) -> u64 {
        self.records_ok + self.records_recovered
    }

    /// True when the pass saw no damage at all.
    pub fn is_clean(&self) -> bool {
        self.records_recovered == 0
            && self.blocks_skipped == 0
            && self.resyncs == 0
            && self.bytes_skipped == 0
            && self.undecodable_radiotap == 0
            && self.undecodable_frames == 0
            && !self.truncated_tail
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: &IngestReport) {
        self.records_ok += other.records_ok;
        self.records_recovered += other.records_recovered;
        self.blocks_skipped += other.blocks_skipped;
        self.resyncs += other.resyncs;
        self.bytes_skipped += other.bytes_skipped;
        self.undecodable_radiotap += other.undecodable_radiotap;
        self.undecodable_frames += other.undecodable_frames;
        self.truncated_tail |= other.truncated_tail;
    }

    /// The report as a single-line JSON object, for embedding in the run
    /// reports under `results/`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"records_ok\": {}, \"records_recovered\": {}, \"blocks_skipped\": {}, \
             \"resyncs\": {}, \"bytes_skipped\": {}, \"undecodable_radiotap\": {}, \
             \"undecodable_frames\": {}, \"truncated_tail\": {}}}",
            self.records_ok,
            self.records_recovered,
            self.blocks_skipped,
            self.resyncs,
            self.bytes_skipped,
            self.undecodable_radiotap,
            self.undecodable_frames,
            self.truncated_tail,
        )
    }
}

/// Result of a lossy classic-pcap pass.
#[derive(Debug)]
pub struct PcapIngest {
    /// The file's data-link type.
    pub link: LinkType,
    /// Every record that decoded, clean or recovered.
    pub packets: Vec<PcapPacket>,
    /// What happened along the way.
    pub report: IngestReport,
}

/// Result of a lossy pcapng pass.
#[derive(Debug)]
pub struct PcapNgIngest {
    /// Every packet that decoded, tagged with its interface's link type.
    pub packets: Vec<NgPacket>,
    /// What happened along the way.
    pub report: IngestReport,
}

/// True when the buffer leads with a pcapng Section Header Block. The SHB
/// type bytes are byte-order palindromic, so one comparison covers both
/// endiannesses.
pub fn is_pcapng(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) == BT_SHB
}

/// Reads a classic pcap buffer in lossy mode: damaged records are skipped
/// and the reader resynchronizes on the next plausible record boundary.
/// Only an unusable global header (bad magic, truncated, wrong version) is
/// a hard error — there is nothing to recover without it.
///
/// Collecting wrapper over [`LossyPcapStream`]; for captures that should
/// not be materialized, drive the stream directly.
pub fn read_pcap_lossy(bytes: &[u8]) -> Result<PcapIngest, PcapError> {
    let mut stream = LossyPcapStream::new(bytes)?;
    let mut packets = Vec::new();
    while let Some(pkt) = stream
        .next_packet()
        .expect("in-memory source cannot fail mid-stream")
    {
        packets.push(pkt.to_owned());
    }
    Ok(PcapIngest {
        link: stream.link(),
        packets,
        report: *stream.report(),
    })
}

/// Reads a pcapng buffer in lossy mode. Total: a stream with no
/// recoverable section simply yields zero packets with every byte
/// accounted as skipped.
///
/// Collecting wrapper over [`LossyPcapNgStream`]; for captures that should
/// not be materialized, drive the stream directly.
pub fn read_pcapng_lossy(bytes: &[u8]) -> PcapNgIngest {
    let mut stream = LossyPcapNgStream::new(bytes);
    let mut packets = Vec::new();
    while let Some(pkt) = stream
        .next_packet()
        .expect("in-memory source cannot fail mid-stream")
    {
        packets.push(pkt.to_owned());
    }
    PcapNgIngest {
        packets,
        report: *stream.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::GLOBAL_HEADER_LEN;
    use crate::pcapng::{PcapNgWriter, BT_EPB, BT_IDB, BYTE_ORDER_MAGIC};
    use crate::writer::PcapWriter;
    use crate::PcapReader;

    fn classic_file(n: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 0).unwrap();
        for i in 0..n {
            let data: Vec<u8> = (0..40).map(|b| (b + i) as u8).collect();
            w.write_packet(1_000_000 + i as u64 * 1_000, &data).unwrap();
        }
        buf
    }

    fn ng_file(n: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = PcapNgWriter::new(&mut buf, LinkType::Radiotap, 0).unwrap();
        for i in 0..n {
            let data: Vec<u8> = (0..40).map(|b| (b + i) as u8).collect();
            w.write_packet(1_000_000 + i as u64 * 1_000, &data).unwrap();
        }
        buf
    }

    #[test]
    fn clean_classic_matches_strict_byte_for_byte() {
        let buf = classic_file(50);
        let strict: Vec<PcapPacket> = PcapReader::new(&buf[..])
            .unwrap()
            .packets()
            .collect::<Result<_, _>>()
            .unwrap();
        let lossy = read_pcap_lossy(&buf).unwrap();
        assert_eq!(lossy.packets, strict);
        assert!(lossy.report.is_clean());
        assert_eq!(lossy.report.records_ok, 50);
    }

    #[test]
    fn clean_ng_matches_strict_byte_for_byte() {
        let buf = ng_file(50);
        let mut r = crate::PcapNgReader::new(&buf[..]);
        let mut strict = Vec::new();
        while let Some(p) = r.next_packet().unwrap() {
            strict.push(p);
        }
        let lossy = read_pcapng_lossy(&buf);
        assert_eq!(lossy.packets, strict);
        assert!(lossy.report.is_clean());
    }

    #[test]
    fn classic_resyncs_over_a_corrupted_record() {
        let mut buf = classic_file(10);
        // Blast the caplen of record 4 (records are 16 + 40 bytes each).
        let rec4 = GLOBAL_HEADER_LEN + 4 * 56;
        buf[rec4 + 8..rec4 + 12].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        let out = read_pcap_lossy(&buf).unwrap();
        assert_eq!(out.report.resyncs, 1);
        assert!(out.report.records_recovered >= 1);
        // All other records survive: 9 of 10 (the damaged one is lost).
        assert_eq!(out.packets.len(), 9);
        assert!(out.packets.iter().all(|p| p.data.len() == 40));
    }

    #[test]
    fn classic_strict_fails_where_lossy_recovers() {
        let mut buf = classic_file(10);
        let rec4 = GLOBAL_HEADER_LEN + 4 * 56;
        buf[rec4 + 8..rec4 + 12].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        let strict: Result<Vec<_>, _> = PcapReader::new(&buf[..]).unwrap().packets().collect();
        assert!(strict.is_err());
        assert_eq!(read_pcap_lossy(&buf).unwrap().packets.len(), 9);
    }

    #[test]
    fn classic_truncated_tail_is_flagged() {
        let mut buf = classic_file(5);
        buf.truncate(buf.len() - 17);
        let out = read_pcap_lossy(&buf).unwrap();
        assert!(out.report.truncated_tail);
        assert_eq!(out.packets.len(), 4);
    }

    #[test]
    fn ng_resyncs_over_spliced_garbage() {
        let base = ng_file(6);
        // Splice garbage between the 3rd and 4th EPB. Block sizes: SHB 28,
        // IDB 20, EPB 32 + 40 = 72.
        let cut = 28 + 20 + 3 * 72;
        let mut buf = base[..cut].to_vec();
        buf.extend_from_slice(&[0x5A; 37]);
        buf.extend_from_slice(&base[cut..]);
        let out = read_pcapng_lossy(&buf);
        assert_eq!(out.packets.len(), 6, "all six packets survive");
        assert_eq!(out.report.resyncs, 1);
        assert_eq!(out.report.records_recovered, 1);
        assert_eq!(out.report.bytes_skipped, 37);
    }

    #[test]
    fn ng_bad_idb_keeps_interface_ids_aligned() {
        // Section with two IDBs where the first carries an overflowing
        // if_tsresol: packets on interface 0 are skipped, interface 1 still
        // decodes.
        let mut buf = Vec::new();
        buf.extend_from_slice(&crate::pcapng::BT_SHB.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        // IDB 0 with if_tsresol = 20 (10^20: overflow).
        buf.extend_from_slice(&BT_IDB.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&127u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&9u16.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&[20, 0, 0, 0]);
        buf.extend_from_slice(&28u32.to_le_bytes());
        // IDB 1, plain microseconds.
        buf.extend_from_slice(&BT_IDB.to_le_bytes());
        buf.extend_from_slice(&20u32.to_le_bytes());
        buf.extend_from_slice(&105u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&20u32.to_le_bytes());
        // EPB on interface 0 (unusable) then interface 1.
        for iface in [0u32, 1] {
            buf.extend_from_slice(&BT_EPB.to_le_bytes());
            buf.extend_from_slice(&36u32.to_le_bytes());
            buf.extend_from_slice(&iface.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&77u32.to_le_bytes());
            buf.extend_from_slice(&2u32.to_le_bytes());
            buf.extend_from_slice(&2u32.to_le_bytes());
            buf.extend_from_slice(&[0xAB, 0xCD, 0, 0]);
            buf.extend_from_slice(&36u32.to_le_bytes());
        }
        let out = read_pcapng_lossy(&buf);
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.packets[0].link, LinkType::Ieee80211);
        assert_eq!(out.packets[0].packet.timestamp_us, 77);
        // One skipped IDB + one skipped EPB.
        assert_eq!(out.report.blocks_skipped, 2);
    }

    #[test]
    fn garbage_only_stream_yields_nothing() {
        let junk: Vec<u8> = (0..700u32).map(|i| (i * 37 + 11) as u8).collect();
        let out = read_pcapng_lossy(&junk);
        assert!(out.packets.is_empty());
        assert_eq!(out.report.records_total(), 0);
        assert!(out.report.bytes_skipped > 0);
    }

    #[test]
    fn bad_global_header_is_a_hard_error() {
        assert!(matches!(
            read_pcap_lossy(&[0u8; 40]),
            Err(PcapError::BadMagic(_))
        ));
        assert!(matches!(
            read_pcap_lossy(&[1, 2, 3]),
            Err(PcapError::TruncatedFile)
        ));
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = IngestReport {
            records_ok: 5,
            resyncs: 1,
            ..Default::default()
        };
        let b = IngestReport {
            records_ok: 2,
            records_recovered: 3,
            truncated_tail: true,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.records_ok, 7);
        assert_eq!(a.records_total(), 10);
        assert!(a.truncated_tail);
        assert!(!a.is_clean());
        let json = a.to_json();
        assert!(json.contains("\"resyncs\": 1"));
        assert!(json.contains("\"truncated_tail\": true"));
    }
}
