//! Lossy, resynchronizing capture ingestion.
//!
//! The strict readers ([`crate::PcapReader`], [`crate::PcapNgReader`]) abort
//! an entire trace at the first damaged byte — correct for validating our own
//! writers, useless for real vicinity captures, which arrive truncated,
//! bit-flipped, and spliced. The readers here skip damaged regions and
//! *resynchronize*:
//!
//! * **classic pcap** has no per-record framing, so recovery scans forward
//!   byte-by-byte for a *plausible* record header — sane lengths, a
//!   sub-second fraction field in range, a timestamp near the last good
//!   record — and demands the following record also look sane (or the
//!   stream end there) before accepting it;
//! * **pcapng** is self-framing: every block states its length twice (lead
//!   and trail), so recovery scans for the next known block type whose two
//!   lengths agree and whose body fits the buffer — a ~2⁻³² false-positive
//!   rate per scanned offset.
//!
//! Every decision is accounted in an [`IngestReport`]: how many records
//! decoded cleanly, how many were recovered after a resync, how many
//! blocks were abandoned, and how many bytes were discarded. On an
//! undamaged file both readers are byte-identical to strict mode and the
//! report shows zero skips — a property the test suite enforces.

use crate::format::{
    LinkType, PcapError, PcapPacket, GLOBAL_HEADER_LEN, MAGIC_BE, MAGIC_LE, MAGIC_NS_BE,
    MAGIC_NS_LE, MAX_SANE_CAPLEN, RECORD_HEADER_LEN,
};
use crate::pcapng::{
    parse_epb, parse_idb, parse_spb, Interface, NgPacket, BT_EPB, BT_IDB, BT_SHB, BT_SPB,
    BYTE_ORDER_MAGIC,
};

/// Resync plausibility: a candidate record's whole-seconds timestamp must be
/// within this many seconds of the last good record (captures are sessions,
/// not decades).
const RESYNC_TS_TOLERANCE_S: u64 = 86_400;

/// Accounting of one lossy ingestion pass. All counters are cumulative;
/// [`IngestReport::merge`] folds per-file reports into a campaign total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Records decoded cleanly, with no resync since the previous record.
    pub records_ok: u64,
    /// Records decoded immediately after a resync scan — data that strict
    /// mode would have thrown away.
    pub records_recovered: u64,
    /// Damaged records/blocks abandoned (undecodable, oversized, or
    /// referencing an unusable interface).
    pub blocks_skipped: u64,
    /// Forward scans performed to re-find a record or block boundary.
    pub resyncs: u64,
    /// Bytes discarded by resync scans and abandoned tails.
    pub bytes_skipped: u64,
    /// Radiotap headers that failed to decode (filled by the trace layer,
    /// which owns radiotap parsing).
    pub undecodable_radiotap: u64,
    /// 802.11 frame headers behind a good radiotap header that failed to
    /// parse (also filled by the trace layer).
    pub undecodable_frames: u64,
    /// The stream ended inside a record or block body.
    pub truncated_tail: bool,
}

impl IngestReport {
    /// Records that made it out, clean or recovered.
    pub fn records_total(&self) -> u64 {
        self.records_ok + self.records_recovered
    }

    /// True when the pass saw no damage at all.
    pub fn is_clean(&self) -> bool {
        self.records_recovered == 0
            && self.blocks_skipped == 0
            && self.resyncs == 0
            && self.bytes_skipped == 0
            && self.undecodable_radiotap == 0
            && self.undecodable_frames == 0
            && !self.truncated_tail
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: &IngestReport) {
        self.records_ok += other.records_ok;
        self.records_recovered += other.records_recovered;
        self.blocks_skipped += other.blocks_skipped;
        self.resyncs += other.resyncs;
        self.bytes_skipped += other.bytes_skipped;
        self.undecodable_radiotap += other.undecodable_radiotap;
        self.undecodable_frames += other.undecodable_frames;
        self.truncated_tail |= other.truncated_tail;
    }

    /// The report as a single-line JSON object, for embedding in the run
    /// reports under `results/`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"records_ok\": {}, \"records_recovered\": {}, \"blocks_skipped\": {}, \
             \"resyncs\": {}, \"bytes_skipped\": {}, \"undecodable_radiotap\": {}, \
             \"undecodable_frames\": {}, \"truncated_tail\": {}}}",
            self.records_ok,
            self.records_recovered,
            self.blocks_skipped,
            self.resyncs,
            self.bytes_skipped,
            self.undecodable_radiotap,
            self.undecodable_frames,
            self.truncated_tail,
        )
    }
}

/// Result of a lossy classic-pcap pass.
#[derive(Debug)]
pub struct PcapIngest {
    /// The file's data-link type.
    pub link: LinkType,
    /// Every record that decoded, clean or recovered.
    pub packets: Vec<PcapPacket>,
    /// What happened along the way.
    pub report: IngestReport,
}

/// Result of a lossy pcapng pass.
#[derive(Debug)]
pub struct PcapNgIngest {
    /// Every packet that decoded, tagged with its interface's link type.
    pub packets: Vec<NgPacket>,
    /// What happened along the way.
    pub report: IngestReport,
}

/// True when the buffer leads with a pcapng Section Header Block. The SHB
/// type bytes are byte-order palindromic, so one comparison covers both
/// endiannesses.
pub fn is_pcapng(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) == BT_SHB
}

struct ClassicHeader {
    big_endian: bool,
    nanos: bool,
    link: LinkType,
}

fn u32_end(big_endian: bool, bytes: &[u8], off: usize) -> u32 {
    let b = [bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]];
    if big_endian {
        u32::from_be_bytes(b)
    } else {
        u32::from_le_bytes(b)
    }
}

fn parse_global_header(bytes: &[u8]) -> Result<ClassicHeader, PcapError> {
    if bytes.len() < GLOBAL_HEADER_LEN {
        return Err(PcapError::TruncatedFile);
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let (big_endian, nanos) = match magic {
        MAGIC_LE => (false, false),
        MAGIC_NS_LE => (false, true),
        MAGIC_BE => (true, false),
        MAGIC_NS_BE => (true, true),
        other => return Err(PcapError::BadMagic(other)),
    };
    let major = {
        let b = [bytes[4], bytes[5]];
        if big_endian {
            u16::from_be_bytes(b)
        } else {
            u16::from_le_bytes(b)
        }
    };
    if major != 2 {
        let minor = {
            let b = [bytes[6], bytes[7]];
            if big_endian {
                u16::from_be_bytes(b)
            } else {
                u16::from_le_bytes(b)
            }
        };
        return Err(PcapError::UnsupportedVersion(major, minor));
    }
    Ok(ClassicHeader {
        big_endian,
        nanos,
        link: LinkType::from_code(u32_end(big_endian, bytes, 20)),
    })
}

/// Why a record at some offset could not be taken as-is.
enum RecordFailure {
    /// The header's lengths are impossible.
    BadHeader,
    /// The header parses but the body runs past end-of-stream.
    PastEof,
}

/// Basic record-header validation — exactly what the strict reader checks,
/// so clean files decode identically in both modes.
fn record_at(
    bytes: &[u8],
    pos: usize,
    h: &ClassicHeader,
) -> Result<(PcapPacket, usize), RecordFailure> {
    let ts_sec = u32_end(h.big_endian, bytes, pos) as u64;
    let ts_frac = u32_end(h.big_endian, bytes, pos + 4) as u64;
    let caplen = u32_end(h.big_endian, bytes, pos + 8);
    let orig_len = u32_end(h.big_endian, bytes, pos + 12);
    if caplen > MAX_SANE_CAPLEN || caplen > orig_len {
        return Err(RecordFailure::BadHeader);
    }
    let body = pos + RECORD_HEADER_LEN;
    let end = body + caplen as usize;
    if end > bytes.len() {
        return Err(RecordFailure::PastEof);
    }
    let micros = if h.nanos { ts_frac / 1000 } else { ts_frac };
    Ok((
        PcapPacket {
            timestamp_us: ts_sec * 1_000_000 + micros,
            orig_len,
            data: bytes[body..end].to_vec(),
        },
        end,
    ))
}

/// Resync plausibility: stricter than [`record_at`] so a scan does not lock
/// onto payload bytes that merely look like a header.
fn plausible_record_at(bytes: &[u8], pos: usize, h: &ClassicHeader, last_sec: Option<u64>) -> bool {
    if pos + RECORD_HEADER_LEN > bytes.len() {
        return false;
    }
    let ts_sec = u32_end(h.big_endian, bytes, pos) as u64;
    let ts_frac = u32_end(h.big_endian, bytes, pos + 4) as u64;
    let caplen = u32_end(h.big_endian, bytes, pos + 8);
    let orig_len = u32_end(h.big_endian, bytes, pos + 12);
    let frac_bound = if h.nanos { 1_000_000_000 } else { 1_000_000 };
    if ts_frac >= frac_bound
        || caplen > MAX_SANE_CAPLEN
        || caplen > orig_len
        || orig_len > MAX_SANE_CAPLEN
    {
        return false;
    }
    if let Some(last) = last_sec {
        if ts_sec.abs_diff(last) > RESYNC_TS_TOLERANCE_S {
            return false;
        }
    }
    let next = pos + RECORD_HEADER_LEN + caplen as usize;
    if next > bytes.len() {
        return false;
    }
    // Double confirmation: the stream must end exactly here, or the next
    // header must also look sane.
    if next == bytes.len() {
        return true;
    }
    if next + RECORD_HEADER_LEN > bytes.len() {
        return false; // trailing sliver that can't be a record
    }
    let n_frac = u32_end(h.big_endian, bytes, next + 4) as u64;
    let n_caplen = u32_end(h.big_endian, bytes, next + 8);
    let n_orig = u32_end(h.big_endian, bytes, next + 12);
    n_frac < frac_bound && n_caplen <= MAX_SANE_CAPLEN && n_caplen <= n_orig
}

/// Reads a classic pcap buffer in lossy mode: damaged records are skipped
/// and the reader resynchronizes on the next plausible record boundary.
/// Only an unusable global header (bad magic, truncated, wrong version) is
/// a hard error — there is nothing to recover without it.
pub fn read_pcap_lossy(bytes: &[u8]) -> Result<PcapIngest, PcapError> {
    let h = parse_global_header(bytes)?;
    let mut packets = Vec::new();
    let mut report = IngestReport::default();
    let mut last_sec: Option<u64> = None;
    let mut just_resynced = false;
    let mut pos = GLOBAL_HEADER_LEN;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < RECORD_HEADER_LEN {
            report.truncated_tail = true;
            report.bytes_skipped += remaining as u64;
            break;
        }
        match record_at(bytes, pos, &h) {
            Ok((pkt, next)) => {
                last_sec = Some(pkt.timestamp_us / 1_000_000);
                if just_resynced {
                    report.records_recovered += 1;
                    just_resynced = false;
                } else {
                    report.records_ok += 1;
                }
                packets.push(pkt);
                pos = next;
            }
            Err(failure) => {
                if matches!(failure, RecordFailure::PastEof) {
                    report.truncated_tail = true;
                }
                report.resyncs += 1;
                report.blocks_skipped += 1;
                let start = pos;
                pos += 1;
                while pos + RECORD_HEADER_LEN <= bytes.len()
                    && !plausible_record_at(bytes, pos, &h, last_sec)
                {
                    pos += 1;
                }
                if pos + RECORD_HEADER_LEN > bytes.len() {
                    pos = bytes.len();
                }
                report.bytes_skipped += (pos - start) as u64;
                just_resynced = true;
            }
        }
    }
    Ok(PcapIngest {
        link: h.link,
        packets,
        report,
    })
}

/// Block-length sanity shared by in-stride parsing and resync scanning:
/// lead length in range and aligned, body inside the buffer, trailing
/// length equal to the lead.
fn ng_block_sane(bytes: &[u8], pos: usize, big_endian: bool) -> Option<usize> {
    if pos + 12 > bytes.len() {
        return None;
    }
    let total_len = u32_end(big_endian, bytes, pos + 4) as usize;
    if total_len < 12 || !total_len.is_multiple_of(4) || total_len as u32 > MAX_SANE_CAPLEN * 2 {
        return None;
    }
    if pos + total_len > bytes.len() {
        return None;
    }
    let trailing = u32_end(big_endian, bytes, pos + total_len - 4) as usize;
    if trailing != total_len {
        return None;
    }
    Some(total_len)
}

/// Validates an SHB candidate at `pos`; returns `(big_endian, total_len)`.
fn ng_shb_sane(bytes: &[u8], pos: usize) -> Option<(bool, usize)> {
    if pos + 12 > bytes.len() {
        return None;
    }
    if u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]) != BT_SHB {
        return None;
    }
    let magic_le = u32::from_le_bytes([
        bytes[pos + 8],
        bytes[pos + 9],
        bytes[pos + 10],
        bytes[pos + 11],
    ]);
    let big_endian = match magic_le {
        BYTE_ORDER_MAGIC => false,
        m if m == BYTE_ORDER_MAGIC.swap_bytes() => true,
        _ => return None,
    };
    let total_len = ng_block_sane(bytes, pos, big_endian)?;
    if total_len < 28 {
        return None;
    }
    // Version major must be 1.
    let major = {
        let b = [bytes[pos + 12], bytes[pos + 13]];
        if big_endian {
            u16::from_be_bytes(b)
        } else {
            u16::from_le_bytes(b)
        }
    };
    if major != 1 {
        return None;
    }
    Some((big_endian, total_len))
}

/// Reads a pcapng buffer in lossy mode. Total: a stream with no
/// recoverable section simply yields zero packets with every byte
/// accounted as skipped.
pub fn read_pcapng_lossy(bytes: &[u8]) -> PcapNgIngest {
    let mut packets = Vec::new();
    let mut report = IngestReport::default();
    let mut big_endian = false;
    let mut started = false;
    let mut interfaces: Vec<Option<Interface>> = Vec::new();
    let mut just_resynced = false;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 12 {
            report.truncated_tail = true;
            report.bytes_skipped += remaining as u64;
            break;
        }
        // SHB first: its type is identifiable before endianness is known.
        if let Some((be, total_len)) = ng_shb_sane(bytes, pos) {
            big_endian = be;
            started = true;
            interfaces.clear();
            pos += total_len;
            continue;
        }
        let in_stride = if started {
            ng_block_sane(bytes, pos, big_endian)
        } else {
            None
        };
        match in_stride {
            Some(total_len) => {
                let block_type = u32_end(big_endian, bytes, pos);
                let body = &bytes[pos + 8..pos + total_len - 4];
                match block_type {
                    BT_IDB => match parse_idb(big_endian, body) {
                        Ok(iface) => interfaces.push(Some(iface)),
                        Err(_) => {
                            // Keep interface ids aligned: the slot exists
                            // but is unusable; its packets are skipped.
                            interfaces.push(None);
                            report.blocks_skipped += 1;
                        }
                    },
                    BT_EPB => match parse_epb(big_endian, body, &interfaces) {
                        Ok(pkt) => {
                            if just_resynced {
                                report.records_recovered += 1;
                                just_resynced = false;
                            } else {
                                report.records_ok += 1;
                            }
                            packets.push(pkt);
                        }
                        Err(_) => report.blocks_skipped += 1,
                    },
                    BT_SPB => match parse_spb(big_endian, body, &interfaces) {
                        Ok(pkt) => {
                            if just_resynced {
                                report.records_recovered += 1;
                                just_resynced = false;
                            } else {
                                report.records_ok += 1;
                            }
                            packets.push(pkt);
                        }
                        Err(_) => report.blocks_skipped += 1,
                    },
                    _ => {} // unknown block: legally skipped by length
                }
                pos += total_len;
            }
            None => {
                // Resync: scan for the next self-consistent known block.
                report.resyncs += 1;
                report.blocks_skipped += 1;
                let start = pos;
                pos += 1;
                while pos + 12 <= bytes.len() {
                    if ng_shb_sane(bytes, pos).is_some() {
                        break;
                    }
                    if started {
                        let block_type = u32_end(big_endian, bytes, pos);
                        if matches!(block_type, BT_IDB | BT_EPB | BT_SPB)
                            && ng_block_sane(bytes, pos, big_endian).is_some()
                        {
                            break;
                        }
                    }
                    pos += 1;
                }
                if pos + 12 > bytes.len() {
                    report.bytes_skipped += (bytes.len() - start) as u64;
                    pos = bytes.len();
                } else {
                    report.bytes_skipped += (pos - start) as u64;
                }
                just_resynced = true;
            }
        }
    }
    PcapNgIngest { packets, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcapng::PcapNgWriter;
    use crate::writer::PcapWriter;
    use crate::PcapReader;

    fn classic_file(n: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 0).unwrap();
        for i in 0..n {
            let data: Vec<u8> = (0..40).map(|b| (b + i) as u8).collect();
            w.write_packet(1_000_000 + i as u64 * 1_000, &data).unwrap();
        }
        buf
    }

    fn ng_file(n: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = PcapNgWriter::new(&mut buf, LinkType::Radiotap, 0).unwrap();
        for i in 0..n {
            let data: Vec<u8> = (0..40).map(|b| (b + i) as u8).collect();
            w.write_packet(1_000_000 + i as u64 * 1_000, &data).unwrap();
        }
        buf
    }

    #[test]
    fn clean_classic_matches_strict_byte_for_byte() {
        let buf = classic_file(50);
        let strict: Vec<PcapPacket> = PcapReader::new(&buf[..])
            .unwrap()
            .packets()
            .collect::<Result<_, _>>()
            .unwrap();
        let lossy = read_pcap_lossy(&buf).unwrap();
        assert_eq!(lossy.packets, strict);
        assert!(lossy.report.is_clean());
        assert_eq!(lossy.report.records_ok, 50);
    }

    #[test]
    fn clean_ng_matches_strict_byte_for_byte() {
        let buf = ng_file(50);
        let mut r = crate::PcapNgReader::new(&buf[..]);
        let mut strict = Vec::new();
        while let Some(p) = r.next_packet().unwrap() {
            strict.push(p);
        }
        let lossy = read_pcapng_lossy(&buf);
        assert_eq!(lossy.packets, strict);
        assert!(lossy.report.is_clean());
    }

    #[test]
    fn classic_resyncs_over_a_corrupted_record() {
        let mut buf = classic_file(10);
        // Blast the caplen of record 4 (records are 16 + 40 bytes each).
        let rec4 = GLOBAL_HEADER_LEN + 4 * 56;
        buf[rec4 + 8..rec4 + 12].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        let out = read_pcap_lossy(&buf).unwrap();
        assert_eq!(out.report.resyncs, 1);
        assert!(out.report.records_recovered >= 1);
        // All other records survive: 9 of 10 (the damaged one is lost).
        assert_eq!(out.packets.len(), 9);
        assert!(out.packets.iter().all(|p| p.data.len() == 40));
    }

    #[test]
    fn classic_strict_fails_where_lossy_recovers() {
        let mut buf = classic_file(10);
        let rec4 = GLOBAL_HEADER_LEN + 4 * 56;
        buf[rec4 + 8..rec4 + 12].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        let strict: Result<Vec<_>, _> = PcapReader::new(&buf[..]).unwrap().packets().collect();
        assert!(strict.is_err());
        assert_eq!(read_pcap_lossy(&buf).unwrap().packets.len(), 9);
    }

    #[test]
    fn classic_truncated_tail_is_flagged() {
        let mut buf = classic_file(5);
        buf.truncate(buf.len() - 17);
        let out = read_pcap_lossy(&buf).unwrap();
        assert!(out.report.truncated_tail);
        assert_eq!(out.packets.len(), 4);
    }

    #[test]
    fn ng_resyncs_over_spliced_garbage() {
        let base = ng_file(6);
        // Splice garbage between the 3rd and 4th EPB. Block sizes: SHB 28,
        // IDB 20, EPB 32 + 40 = 72.
        let cut = 28 + 20 + 3 * 72;
        let mut buf = base[..cut].to_vec();
        buf.extend_from_slice(&[0x5A; 37]);
        buf.extend_from_slice(&base[cut..]);
        let out = read_pcapng_lossy(&buf);
        assert_eq!(out.packets.len(), 6, "all six packets survive");
        assert_eq!(out.report.resyncs, 1);
        assert_eq!(out.report.records_recovered, 1);
        assert_eq!(out.report.bytes_skipped, 37);
    }

    #[test]
    fn ng_bad_idb_keeps_interface_ids_aligned() {
        // Section with two IDBs where the first carries an overflowing
        // if_tsresol: packets on interface 0 are skipped, interface 1 still
        // decodes.
        let mut buf = Vec::new();
        buf.extend_from_slice(&BT_SHB.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        // IDB 0 with if_tsresol = 20 (10^20: overflow).
        buf.extend_from_slice(&BT_IDB.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&127u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&9u16.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&[20, 0, 0, 0]);
        buf.extend_from_slice(&28u32.to_le_bytes());
        // IDB 1, plain microseconds.
        buf.extend_from_slice(&BT_IDB.to_le_bytes());
        buf.extend_from_slice(&20u32.to_le_bytes());
        buf.extend_from_slice(&105u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&20u32.to_le_bytes());
        // EPB on interface 0 (unusable) then interface 1.
        for iface in [0u32, 1] {
            buf.extend_from_slice(&BT_EPB.to_le_bytes());
            buf.extend_from_slice(&36u32.to_le_bytes());
            buf.extend_from_slice(&iface.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&77u32.to_le_bytes());
            buf.extend_from_slice(&2u32.to_le_bytes());
            buf.extend_from_slice(&2u32.to_le_bytes());
            buf.extend_from_slice(&[0xAB, 0xCD, 0, 0]);
            buf.extend_from_slice(&36u32.to_le_bytes());
        }
        let out = read_pcapng_lossy(&buf);
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.packets[0].link, LinkType::Ieee80211);
        assert_eq!(out.packets[0].packet.timestamp_us, 77);
        // One skipped IDB + one skipped EPB.
        assert_eq!(out.report.blocks_skipped, 2);
    }

    #[test]
    fn garbage_only_stream_yields_nothing() {
        let junk: Vec<u8> = (0..700u32).map(|i| (i * 37 + 11) as u8).collect();
        let out = read_pcapng_lossy(&junk);
        assert!(out.packets.is_empty());
        assert_eq!(out.report.records_total(), 0);
        assert!(out.report.bytes_skipped > 0);
    }

    #[test]
    fn bad_global_header_is_a_hard_error() {
        assert!(matches!(
            read_pcap_lossy(&[0u8; 40]),
            Err(PcapError::BadMagic(_))
        ));
        assert!(matches!(
            read_pcap_lossy(&[1, 2, 3]),
            Err(PcapError::TruncatedFile)
        ));
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = IngestReport {
            records_ok: 5,
            resyncs: 1,
            ..Default::default()
        };
        let b = IngestReport {
            records_ok: 2,
            records_recovered: 3,
            truncated_tail: true,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.records_ok, 7);
        assert_eq!(a.records_total(), 10);
        assert!(a.truncated_tail);
        assert!(!a.is_clean());
        let json = a.to_json();
        assert!(json.contains("\"resyncs\": 1"));
        assert!(json.contains("\"truncated_tail\": true"));
    }
}
