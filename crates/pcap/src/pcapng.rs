//! pcapng (pcap-next-generation) support — the block-structured capture
//! format modern tools (Wireshark, tcpdump ≥ 4.1) write by default.
//!
//! Implemented from the specification, supporting what a trace-analysis
//! pipeline needs:
//!
//! * Section Header Blocks in either byte order, including mid-stream new
//!   sections (each resets the interface list and may change endianness);
//! * Interface Description Blocks with the `if_tsresol` option (decimal and
//!   binary resolutions), per-interface link type and snap length;
//! * Enhanced Packet Blocks and Simple Packet Blocks;
//! * unknown block types and options are skipped by length, as required.
//!
//! Timestamps are normalized to microseconds on read, matching the classic
//! reader.

use crate::format::{LinkType, PcapError, PcapPacket, MAX_SANE_CAPLEN};
use std::io::Read;

/// Block type: Section Header Block.
pub const BT_SHB: u32 = 0x0A0D_0D0A;
/// Block type: Interface Description Block.
pub const BT_IDB: u32 = 0x0000_0001;
/// Block type: Enhanced Packet Block.
pub const BT_EPB: u32 = 0x0000_0006;
/// Block type: Simple Packet Block.
pub const BT_SPB: u32 = 0x0000_0003;
/// The byte-order magic inside an SHB.
pub const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;

#[derive(Clone, Copy, Debug)]
pub(crate) struct Interface {
    pub(crate) link: LinkType,
    pub(crate) snaplen: u32,
    /// Timestamp units per second.
    pub(crate) ticks_per_sec: u64,
}

/// A packet read from a pcapng stream, tagged with its interface's link
/// type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NgPacket {
    /// The interface's data-link type.
    pub link: LinkType,
    /// The packet record (timestamp in microseconds).
    pub packet: PcapPacket,
}

/// A borrowed view of one pcapng packet, yielded by the zero-copy paths
/// ([`PcapNgReader::next_packet_ref`] and [`crate::LossyPcapNgStream`]).
/// The data slice lives in the reader's internal buffer and is only valid
/// until the next read call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NgPacketRef<'a> {
    /// The interface's data-link type.
    pub link: LinkType,
    /// Capture timestamp in microseconds.
    pub timestamp_us: u64,
    /// Original on-air length.
    pub orig_len: u32,
    /// The captured bytes, borrowed from the reader's buffer.
    pub data: &'a [u8],
}

impl NgPacketRef<'_> {
    /// Copies the packet into an owned [`NgPacket`].
    pub fn to_owned(&self) -> NgPacket {
        NgPacket {
            link: self.link,
            packet: PcapPacket {
                timestamp_us: self.timestamp_us,
                orig_len: self.orig_len,
                data: self.data.to_vec(),
            },
        }
    }
}

/// A streaming pcapng reader.
pub struct PcapNgReader<R> {
    inner: R,
    big_endian: bool,
    interfaces: Vec<Option<Interface>>,
    started: bool,
    /// Reused per-block body buffer for the zero-copy read path.
    scratch: Vec<u8>,
}

impl<R: Read> PcapNgReader<R> {
    /// Wraps a byte stream. The first block must be a Section Header Block;
    /// it is validated lazily on the first packet read.
    pub fn new(inner: R) -> PcapNgReader<R> {
        PcapNgReader {
            inner,
            big_endian: false,
            interfaces: Vec::new(),
            started: false,
            scratch: Vec::new(),
        }
    }

    fn u16_of(&self, b: [u8; 2]) -> u16 {
        if self.big_endian {
            u16::from_be_bytes(b)
        } else {
            u16::from_le_bytes(b)
        }
    }

    fn u32_of(&self, b: [u8; 4]) -> u32 {
        if self.big_endian {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    }

    /// Reads the next packet; `Ok(None)` at clean end of stream.
    pub fn next_packet(&mut self) -> Result<Option<NgPacket>, PcapError> {
        Ok(self.next_packet_ref()?.map(|p| p.to_owned()))
    }

    /// Reads the next packet without copying its bytes out of the reader's
    /// block buffer; `Ok(None)` at clean end of stream. The returned
    /// [`NgPacketRef`] is invalidated by the next read call.
    pub fn next_packet_ref(&mut self) -> Result<Option<NgPacketRef<'_>>, PcapError> {
        // The loop fills `self.scratch` with block bodies until it lands on
        // a packet-bearing one, then breaks so the borrow of the scratch
        // buffer starts only after all mutation is done.
        let is_epb = loop {
            // Block header: type (4) + total length (4).
            let mut head = [0u8; 8];
            match read_fully(&mut self.inner, &mut head)? {
                ReadOutcome::Eof => return Ok(None),
                ReadOutcome::Partial => return Err(PcapError::TruncatedFile),
                ReadOutcome::Full => {}
            }
            // The SHB's type bytes are palindromic, so readable before the
            // byte order is known.
            let raw_type = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
            if raw_type == BT_SHB {
                self.read_shb(&head)?;
                continue;
            }
            if !self.started {
                return Err(PcapError::BadMagic(raw_type));
            }
            let block_type = self.u32_of([head[0], head[1], head[2], head[3]]);
            let total_len = self.u32_of([head[4], head[5], head[6], head[7]]) as usize;
            if total_len < 12 || !total_len.is_multiple_of(4) {
                return Err(PcapError::BadBlockLength(total_len as u32));
            }
            if total_len as u32 > MAX_SANE_CAPLEN * 2 {
                return Err(PcapError::OversizedRecord(total_len as u32));
            }
            let body_len = total_len - 12; // minus header and trailing length
            self.scratch.clear();
            self.scratch.resize(body_len + 4, 0);
            match read_fully(&mut self.inner, &mut self.scratch)? {
                ReadOutcome::Full => {}
                _ => return Err(PcapError::TruncatedFile),
            }
            let tail: [u8; 4] = match self.scratch[body_len..].try_into() {
                Ok(t) => t,
                Err(_) => return Err(PcapError::BadBlockLength(total_len as u32)),
            };
            let trailing = self.u32_of(tail) as usize;
            if trailing != total_len {
                return Err(PcapError::BadBlockLength(trailing as u32));
            }
            self.scratch.truncate(body_len);
            match block_type {
                BT_IDB => {
                    let iface = parse_idb(self.big_endian, &self.scratch)?;
                    self.interfaces.push(Some(iface));
                }
                BT_EPB => break true,
                BT_SPB => break false,
                _ => {} // unknown block: skipped by length
            }
        };
        let pkt = if is_epb {
            parse_epb_ref(self.big_endian, &self.scratch, &self.interfaces)?
        } else {
            parse_spb_ref(self.big_endian, &self.scratch, &self.interfaces)?
        };
        Ok(Some(pkt))
    }

    fn read_shb(&mut self, head: &[u8; 8]) -> Result<(), PcapError> {
        // Read enough of the body to find the byte-order magic.
        let mut rest = [0u8; 4]; // byte-order magic
        if !matches!(read_fully(&mut self.inner, &mut rest)?, ReadOutcome::Full) {
            return Err(PcapError::TruncatedFile);
        }
        let magic_le = u32::from_le_bytes(rest);
        self.big_endian = match magic_le {
            BYTE_ORDER_MAGIC => false,
            m if m == BYTE_ORDER_MAGIC.swap_bytes() => true,
            other => return Err(PcapError::BadMagic(other)),
        };
        let total_len = self.u32_of([head[4], head[5], head[6], head[7]]) as usize;
        if total_len < 28 || !total_len.is_multiple_of(4) {
            return Err(PcapError::BadBlockLength(total_len as u32));
        }
        // Consume the remaining body (version, section length, options) and
        // the trailing length.
        let mut remaining = vec![0u8; total_len - 12 - 4 + 4];
        if !matches!(
            read_fully(&mut self.inner, &mut remaining)?,
            ReadOutcome::Full
        ) {
            return Err(PcapError::TruncatedFile);
        }
        let major = self.u16_of([remaining[0], remaining[1]]);
        if major != 1 {
            let minor = self.u16_of([remaining[2], remaining[3]]);
            return Err(PcapError::UnsupportedVersion(major, minor));
        }
        // A new section resets the interface list.
        self.interfaces.clear();
        self.started = true;
        Ok(())
    }
}

fn u16_raw(big_endian: bool, body: &[u8], off: usize) -> u16 {
    let b = [body[off], body[off + 1]];
    if big_endian {
        u16::from_be_bytes(b)
    } else {
        u16::from_le_bytes(b)
    }
}

fn u32_raw(big_endian: bool, body: &[u8], off: usize) -> u32 {
    let b = [body[off], body[off + 1], body[off + 2], body[off + 3]];
    if big_endian {
        u32::from_be_bytes(b)
    } else {
        u32::from_le_bytes(b)
    }
}

/// Decodes an `if_tsresol` option byte into ticks per second, rejecting
/// resolutions whose tick rate overflows `u64` (which would otherwise
/// silently collapse every timestamp toward zero).
pub(crate) fn ticks_per_sec_of(raw: u8) -> Result<u64, PcapError> {
    let exp = raw & 0x7f;
    if raw & 0x80 == 0 {
        // Decimal: 10^exp; 10^19 < 2^64 < 10^20.
        if exp > 19 {
            return Err(PcapError::BadTimestampResolution(raw));
        }
        Ok(10u64.pow(exp as u32))
    } else {
        // Binary: 2^exp; 2^63 is the largest representable power.
        if exp > 63 {
            return Err(PcapError::BadTimestampResolution(raw));
        }
        Ok(1u64 << exp)
    }
}

/// Parses an Interface Description Block body.
pub(crate) fn parse_idb(big_endian: bool, body: &[u8]) -> Result<Interface, PcapError> {
    if body.len() < 8 {
        return Err(PcapError::TruncatedFile);
    }
    let link = LinkType::from_code(u16_raw(big_endian, body, 0) as u32);
    let snaplen = u32_raw(big_endian, body, 4);
    // Default resolution: microseconds; overridden by if_tsresol (9).
    let mut ticks_per_sec: u64 = 1_000_000;
    let mut off = 8;
    while off + 4 <= body.len() {
        let code = u16_raw(big_endian, body, off);
        let len = u16_raw(big_endian, body, off + 2) as usize;
        let val_off = off + 4;
        if code == 0 {
            break; // opt_endofopt
        }
        if val_off + len > body.len() {
            return Err(PcapError::TruncatedFile);
        }
        if code == 9 && len >= 1 {
            ticks_per_sec = ticks_per_sec_of(body[val_off])?;
        }
        off = val_off + len.div_ceil(4) * 4;
    }
    Ok(Interface {
        link,
        snaplen,
        ticks_per_sec,
    })
}

/// Parses an Enhanced Packet Block body against the section's interfaces,
/// borrowing the packet bytes from `body`.
pub(crate) fn parse_epb_ref<'a>(
    big_endian: bool,
    body: &'a [u8],
    interfaces: &[Option<Interface>],
) -> Result<NgPacketRef<'a>, PcapError> {
    if body.len() < 20 {
        return Err(PcapError::TruncatedFile);
    }
    let iface_id = u32_raw(big_endian, body, 0) as usize;
    let ts_high = u32_raw(big_endian, body, 4) as u64;
    let ts_low = u32_raw(big_endian, body, 8) as u64;
    let caplen = u32_raw(big_endian, body, 12);
    let orig_len = u32_raw(big_endian, body, 16);
    if caplen > MAX_SANE_CAPLEN {
        return Err(PcapError::OversizedRecord(caplen));
    }
    if caplen > orig_len {
        return Err(PcapError::InconsistentLengths { caplen, orig_len });
    }
    let iface = interfaces
        .get(iface_id)
        .copied()
        .flatten()
        .ok_or(PcapError::TruncatedFile)?;
    if 20 + caplen as usize > body.len() {
        return Err(PcapError::TruncatedFile);
    }
    let data = &body[20..20 + caplen as usize];
    let ticks = (ts_high << 32) | ts_low;
    // Widen through u128 so sub-microsecond resolutions keep precision
    // instead of saturating.
    let timestamp_us =
        ((ticks as u128 * 1_000_000) / iface.ticks_per_sec as u128).min(u64::MAX as u128) as u64;
    Ok(NgPacketRef {
        link: iface.link,
        timestamp_us,
        orig_len,
        data,
    })
}

/// Parses a Simple Packet Block body (always interface 0), borrowing the
/// packet bytes from `body`.
pub(crate) fn parse_spb_ref<'a>(
    big_endian: bool,
    body: &'a [u8],
    interfaces: &[Option<Interface>],
) -> Result<NgPacketRef<'a>, PcapError> {
    if body.len() < 4 {
        return Err(PcapError::TruncatedFile);
    }
    let orig_len = u32_raw(big_endian, body, 0);
    let iface = interfaces
        .first()
        .copied()
        .flatten()
        .ok_or(PcapError::TruncatedFile)?;
    let caplen = orig_len.min(iface.snaplen.max(1)) as usize;
    if 4 + caplen > body.len() {
        return Err(PcapError::TruncatedFile);
    }
    Ok(NgPacketRef {
        link: iface.link,
        timestamp_us: 0, // SPBs carry no timestamp
        orig_len,
        data: &body[4..4 + caplen],
    })
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, PcapError> {
    let mut read = 0;
    while read < buf.len() {
        match r.read(&mut buf[read..]) {
            Ok(0) => {
                return Ok(if read == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(PcapError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

/// A minimal pcapng writer: one section, one interface, Enhanced Packet
/// Blocks with microsecond timestamps.
pub struct PcapNgWriter<W: std::io::Write> {
    inner: W,
    snaplen: u32,
}

impl<W: std::io::Write> PcapNgWriter<W> {
    /// Writes the SHB and one IDB. `snaplen` 0 means unlimited.
    pub fn new(mut inner: W, link: LinkType, snaplen: u32) -> Result<Self, PcapError> {
        // SHB: 28 bytes, no options.
        inner.write_all(&BT_SHB.to_le_bytes())?;
        inner.write_all(&28u32.to_le_bytes())?;
        inner.write_all(&BYTE_ORDER_MAGIC.to_le_bytes())?;
        inner.write_all(&1u16.to_le_bytes())?; // major
        inner.write_all(&0u16.to_le_bytes())?; // minor
        inner.write_all(&u64::MAX.to_le_bytes())?; // section length unknown
        inner.write_all(&28u32.to_le_bytes())?;
        // IDB: 20 bytes, no options (default µs resolution).
        inner.write_all(&BT_IDB.to_le_bytes())?;
        inner.write_all(&20u32.to_le_bytes())?;
        inner.write_all(&(link.code() as u16).to_le_bytes())?;
        inner.write_all(&0u16.to_le_bytes())?;
        inner.write_all(&snaplen.to_le_bytes())?;
        inner.write_all(&20u32.to_le_bytes())?;
        Ok(PcapNgWriter { inner, snaplen })
    }

    /// Writes one packet as an EPB, truncating to the snap length.
    pub fn write_packet(&mut self, timestamp_us: u64, data: &[u8]) -> Result<(), PcapError> {
        let caplen = if self.snaplen == 0 {
            data.len()
        } else {
            data.len().min(self.snaplen as usize)
        };
        let padded = caplen.div_ceil(4) * 4;
        let total = (32 + padded) as u32;
        self.inner.write_all(&BT_EPB.to_le_bytes())?;
        self.inner.write_all(&total.to_le_bytes())?;
        self.inner.write_all(&0u32.to_le_bytes())?; // interface 0
        self.inner
            .write_all(&((timestamp_us >> 32) as u32).to_le_bytes())?;
        self.inner.write_all(&(timestamp_us as u32).to_le_bytes())?;
        self.inner.write_all(&(caplen as u32).to_le_bytes())?;
        self.inner.write_all(&(data.len() as u32).to_le_bytes())?;
        self.inner.write_all(&data[..caplen])?;
        self.inner.write_all(&vec![0u8; padded - caplen])?;
        self.inner.write_all(&total.to_le_bytes())?;
        Ok(())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> Result<(), PcapError> {
        self.inner.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(packets: &[(u64, Vec<u8>)], snaplen: u32) -> Vec<NgPacket> {
        let mut buf = Vec::new();
        {
            let mut w = PcapNgWriter::new(&mut buf, LinkType::Radiotap, snaplen).unwrap();
            for (ts, data) in packets {
                w.write_packet(*ts, data).unwrap();
            }
        }
        let mut r = PcapNgReader::new(&buf[..]);
        let mut out = Vec::new();
        while let Some(p) = r.next_packet().unwrap() {
            out.push(p);
        }
        out
    }

    #[test]
    fn writer_reader_roundtrip() {
        let packets = vec![
            (1_000_000u64, vec![1, 2, 3, 4, 5]),
            (2_500_001, vec![9; 100]),
            (u32::MAX as u64 + 17, vec![0xAB; 7]), // exercises ts_high
        ];
        let got = roundtrip(&packets, 0);
        assert_eq!(got.len(), 3);
        for (g, (ts, data)) in got.iter().zip(&packets) {
            assert_eq!(g.link, LinkType::Radiotap);
            assert_eq!(g.packet.timestamp_us, *ts);
            assert_eq!(&g.packet.data, data);
            assert_eq!(g.packet.orig_len as usize, data.len());
        }
    }

    #[test]
    fn snaplen_truncates_epb() {
        let got = roundtrip(&[(0, vec![7u8; 500])], 250);
        assert_eq!(got[0].packet.data.len(), 250);
        assert_eq!(got[0].packet.orig_len, 500);
        assert!(got[0].packet.is_truncated());
    }

    #[test]
    fn rejects_garbage() {
        let mut r = PcapNgReader::new(&[0xDEu8, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0][..]);
        assert!(matches!(r.next_packet(), Err(PcapError::BadMagic(_))));
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut r = PcapNgReader::new(&[][..]);
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn truncated_block_errors() {
        let mut buf = Vec::new();
        {
            let mut w = PcapNgWriter::new(&mut buf, LinkType::Radiotap, 0).unwrap();
            w.write_packet(5, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        }
        let cut = buf.len() - 5;
        let mut r = PcapNgReader::new(&buf[..cut]);
        assert!(matches!(r.next_packet(), Err(PcapError::TruncatedFile)));
    }

    #[test]
    fn unknown_blocks_are_skipped() {
        let mut buf = Vec::new();
        {
            let mut w = PcapNgWriter::new(&mut buf, LinkType::Ieee80211, 0).unwrap();
            w.write_packet(1, &[0xAA]).unwrap();
        }
        // Splice a custom block (type 0x0BAD) between IDB and EPB.
        let idb_end = 28 + 20;
        let mut custom = Vec::new();
        custom.extend_from_slice(&0x0BADu32.to_le_bytes());
        custom.extend_from_slice(&16u32.to_le_bytes());
        custom.extend_from_slice(&[0xFF; 4]);
        custom.extend_from_slice(&16u32.to_le_bytes());
        let mut spliced = buf[..idb_end].to_vec();
        spliced.extend_from_slice(&custom);
        spliced.extend_from_slice(&buf[idb_end..]);
        let mut r = PcapNgReader::new(&spliced[..]);
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.packet.data, vec![0xAA]);
        assert_eq!(p.link, LinkType::Ieee80211);
    }

    #[test]
    fn big_endian_section() {
        // Hand-build a big-endian SHB + IDB + EPB.
        let mut buf = Vec::new();
        // SHB (type bytes are palindromic; lengths big-endian).
        buf.extend_from_slice(&BT_SHB.to_be_bytes());
        buf.extend_from_slice(&28u32.to_be_bytes());
        buf.extend_from_slice(&BYTE_ORDER_MAGIC.to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&u64::MAX.to_be_bytes());
        buf.extend_from_slice(&28u32.to_be_bytes());
        // IDB.
        buf.extend_from_slice(&BT_IDB.to_be_bytes());
        buf.extend_from_slice(&20u32.to_be_bytes());
        buf.extend_from_slice(&127u16.to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&20u32.to_be_bytes());
        // EPB with 2 bytes of data.
        buf.extend_from_slice(&BT_EPB.to_be_bytes());
        buf.extend_from_slice(&36u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes()); // ts hi
        buf.extend_from_slice(&42u32.to_be_bytes()); // ts lo
        buf.extend_from_slice(&2u32.to_be_bytes()); // caplen
        buf.extend_from_slice(&2u32.to_be_bytes()); // origlen
        buf.extend_from_slice(&[0xCA, 0xFE, 0, 0]); // padded
        buf.extend_from_slice(&36u32.to_be_bytes());
        let mut r = PcapNgReader::new(&buf[..]);
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.link, LinkType::Radiotap);
        assert_eq!(p.packet.timestamp_us, 42);
        assert_eq!(p.packet.data, vec![0xCA, 0xFE]);
    }

    #[test]
    fn tsresol_option_nanoseconds() {
        // IDB with if_tsresol = 9 (nanoseconds); EPB timestamp in ns.
        let mut buf = Vec::new();
        buf.extend_from_slice(&BT_SHB.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        // IDB with one option: code 9, len 1, value 9 (10^-9), padded.
        buf.extend_from_slice(&BT_IDB.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&127u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&9u16.to_le_bytes()); // if_tsresol
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&[9, 0, 0, 0]); // value + pad
        buf.extend_from_slice(&28u32.to_le_bytes());
        // EPB at 5_000_000 ns = 5_000 µs.
        buf.extend_from_slice(&BT_EPB.to_le_bytes());
        buf.extend_from_slice(&36u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&5_000_000u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&[0x55, 0, 0, 0]);
        buf.extend_from_slice(&36u32.to_le_bytes());
        let mut r = PcapNgReader::new(&buf[..]);
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.packet.timestamp_us, 5_000);
    }

    /// SHB + IDB carrying `if_tsresol = raw` + one EPB with the given ticks.
    fn file_with_tsresol(raw: u8, ticks: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&BT_SHB.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&BT_IDB.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&127u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&9u16.to_le_bytes()); // if_tsresol
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&[raw, 0, 0, 0]); // value + pad
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&BT_EPB.to_le_bytes());
        buf.extend_from_slice(&36u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&ticks.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&[0x55, 0, 0, 0]);
        buf.extend_from_slice(&36u32.to_le_bytes());
        buf
    }

    #[test]
    fn tsresol_decimal_edge_is_exact() {
        // 10^19 ticks/s is the largest decimal resolution that fits u64:
        // 10^19 ticks = 1 second = 1_000_000 µs... but a u32 ts_low can
        // only carry small tick counts, which round to 0 µs. Use a ticks
        // value that lands on an exact microsecond via the u128 path.
        let buf = file_with_tsresol(19, u32::MAX);
        let mut r = PcapNgReader::new(&buf[..]);
        let p = r.next_packet().unwrap().unwrap();
        // 4294967295 ticks at 10^19/s = 4.29e-10 s -> 0 µs, no saturation.
        assert_eq!(p.packet.timestamp_us, 0);
    }

    #[test]
    fn tsresol_decimal_overflow_rejected() {
        let buf = file_with_tsresol(20, 1);
        let mut r = PcapNgReader::new(&buf[..]);
        assert!(matches!(
            r.next_packet(),
            Err(PcapError::BadTimestampResolution(20))
        ));
    }

    #[test]
    fn tsresol_binary_edge_and_overflow() {
        // 2^63 ticks/s parses; 1<<20 ticks = 1<<20 * 1e6 / 2^63 µs ≈ 0.
        let buf = file_with_tsresol(0x80 | 63, 1 << 20);
        let mut r = PcapNgReader::new(&buf[..]);
        assert_eq!(r.next_packet().unwrap().unwrap().packet.timestamp_us, 0);
        // 2^64 does not fit.
        let buf = file_with_tsresol(0x80 | 64, 1);
        let mut r = PcapNgReader::new(&buf[..]);
        assert!(matches!(
            r.next_packet(),
            Err(PcapError::BadTimestampResolution(raw)) if raw == (0x80 | 64)
        ));
    }

    #[test]
    fn tsresol_binary_microsecond_neighbour() {
        // 2^20 ticks/s (binary ~µs): 2^20 ticks = exactly 1 second.
        let buf = file_with_tsresol(0x80 | 20, 1 << 20);
        let mut r = PcapNgReader::new(&buf[..]);
        assert_eq!(
            r.next_packet().unwrap().unwrap().packet.timestamp_us,
            1_000_000
        );
    }

    #[test]
    fn misaligned_block_length_is_bad_block_length() {
        let mut buf = Vec::new();
        {
            let mut w = PcapNgWriter::new(&mut buf, LinkType::Radiotap, 0).unwrap();
            w.write_packet(1, &[0xAA; 8]).unwrap();
        }
        // Patch the EPB's total length to a misaligned value.
        let epb_off = 28 + 20;
        buf[epb_off + 4..epb_off + 8].copy_from_slice(&41u32.to_le_bytes());
        let mut r = PcapNgReader::new(&buf[..]);
        assert!(matches!(
            r.next_packet(),
            Err(PcapError::BadBlockLength(41))
        ));
        // And an under-minimum length.
        buf[epb_off + 4..epb_off + 8].copy_from_slice(&8u32.to_le_bytes());
        let mut r = PcapNgReader::new(&buf[..]);
        assert!(matches!(r.next_packet(), Err(PcapError::BadBlockLength(8))));
    }

    #[test]
    fn trailing_length_mismatch_is_bad_block_length() {
        let mut buf = Vec::new();
        {
            let mut w = PcapNgWriter::new(&mut buf, LinkType::Radiotap, 0).unwrap();
            w.write_packet(1, &[0xAA; 8]).unwrap();
        }
        let last4 = buf.len() - 4;
        buf[last4..].copy_from_slice(&44u32.to_le_bytes());
        let mut r = PcapNgReader::new(&buf[..]);
        assert!(matches!(
            r.next_packet(),
            Err(PcapError::BadBlockLength(44))
        ));
    }

    #[test]
    fn second_section_resets_interfaces() {
        let mut buf = Vec::new();
        {
            let mut w = PcapNgWriter::new(&mut buf, LinkType::Ethernet, 0).unwrap();
            w.write_packet(1, &[1]).unwrap();
        }
        // Append a whole second section with a different link type.
        {
            let mut second = Vec::new();
            let mut w = PcapNgWriter::new(&mut second, LinkType::Radiotap, 0).unwrap();
            w.write_packet(2, &[2]).unwrap();
            buf.extend_from_slice(&second);
        }
        let mut r = PcapNgReader::new(&buf[..]);
        let a = r.next_packet().unwrap().unwrap();
        let b = r.next_packet().unwrap().unwrap();
        assert_eq!(a.link, LinkType::Ethernet);
        assert_eq!(b.link, LinkType::Radiotap);
        assert!(r.next_packet().unwrap().is_none());
    }
}
