//! Wire-level constants and shared types of the classic pcap format.

use core::fmt;
use std::io;

/// Little-endian microsecond magic (`d4 c3 b2 a1` on disk).
pub const MAGIC_LE: u32 = 0xa1b2_c3d4;
/// Big-endian microsecond magic as read by a little-endian parser.
pub const MAGIC_BE: u32 = 0xd4c3_b2a1;
/// Little-endian nanosecond magic.
pub const MAGIC_NS_LE: u32 = 0xa1b2_3c4d;
/// Big-endian nanosecond magic as read by a little-endian parser.
pub const MAGIC_NS_BE: u32 = 0x4d3c_b2a1;

/// Major format version written (and the only one accepted).
pub const VERSION_MAJOR: u16 = 2;
/// Minor format version written.
pub const VERSION_MINOR: u16 = 4;

/// Global header length in bytes.
pub const GLOBAL_HEADER_LEN: usize = 24;
/// Per-record header length in bytes.
pub const RECORD_HEADER_LEN: usize = 16;

/// Upper bound on a single record's captured length; anything larger is
/// treated as file corruption rather than a 2 GB allocation request.
pub const MAX_SANE_CAPLEN: u32 = 1 << 20;

/// The data-link type stored in the pcap global header.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LinkType {
    /// DLT 1: Ethernet.
    Ethernet,
    /// DLT 105: IEEE 802.11 frames without a capture pseudo-header.
    Ieee80211,
    /// DLT 127: radiotap header followed by an 802.11 frame — what RFMon
    /// sniffers write and what this workspace uses.
    Radiotap,
    /// Any other registered link type.
    Other(u32),
}

impl LinkType {
    /// The registry number.
    pub const fn code(self) -> u32 {
        match self {
            LinkType::Ethernet => 1,
            LinkType::Ieee80211 => 105,
            LinkType::Radiotap => 127,
            LinkType::Other(n) => n,
        }
    }

    /// Decodes a registry number.
    pub const fn from_code(code: u32) -> LinkType {
        match code {
            1 => LinkType::Ethernet,
            105 => LinkType::Ieee80211,
            127 => LinkType::Radiotap,
            n => LinkType::Other(n),
        }
    }
}

/// One captured record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PcapPacket {
    /// Capture timestamp in microseconds since the epoch the file uses.
    pub timestamp_us: u64,
    /// Original on-air length; `data.len()` may be smaller if the capture was
    /// snaplen-truncated.
    pub orig_len: u32,
    /// The captured bytes.
    pub data: Vec<u8>,
}

impl PcapPacket {
    /// True when the record was truncated by the capture snap length.
    pub fn is_truncated(&self) -> bool {
        (self.data.len() as u32) < self.orig_len
    }
}

/// A borrowed view of one captured record, yielded by the zero-copy reader
/// paths ([`crate::PcapReader::next_packet_ref`] and the lossy streams in
/// [`crate::stream`]). The data slice lives in the reader's internal buffer
/// and is only valid until the next read call; [`PacketRef::to_owned`]
/// copies it out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PacketRef<'a> {
    /// Capture timestamp in microseconds since the epoch the file uses.
    pub timestamp_us: u64,
    /// Original on-air length; `data.len()` may be smaller if the capture was
    /// snaplen-truncated.
    pub orig_len: u32,
    /// The captured bytes, borrowed from the reader's buffer.
    pub data: &'a [u8],
}

impl PacketRef<'_> {
    /// Copies the record into an owned [`PcapPacket`].
    pub fn to_owned(&self) -> PcapPacket {
        PcapPacket {
            timestamp_us: self.timestamp_us,
            orig_len: self.orig_len,
            data: self.data.to_vec(),
        }
    }

    /// True when the record was truncated by the capture snap length.
    pub fn is_truncated(&self) -> bool {
        (self.data.len() as u32) < self.orig_len
    }
}

/// Errors produced by pcap reading or writing.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not begin with a recognized pcap magic number.
    BadMagic(u32),
    /// The file version is not 2.4.
    UnsupportedVersion(u16, u16),
    /// The stream ended inside a header or record body.
    TruncatedFile,
    /// A record header declared an implausible captured length.
    OversizedRecord(u32),
    /// A pcapng block declared a structurally invalid total length
    /// (below the 12-byte minimum, not a multiple of four, or a trailing
    /// length that disagrees with the leading one).
    BadBlockLength(u32),
    /// An interface declared an `if_tsresol` whose ticks-per-second does
    /// not fit in `u64` (decimal exponent > 19 or binary exponent > 63).
    BadTimestampResolution(u8),
    /// A record's captured length exceeds its original length.
    InconsistentLengths {
        /// Captured length from the record header.
        caplen: u32,
        /// Original length from the record header.
        orig_len: u32,
    },
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            PcapError::UnsupportedVersion(maj, min) => {
                write!(f, "unsupported pcap version {maj}.{min}")
            }
            PcapError::TruncatedFile => write!(f, "pcap stream ended mid-record"),
            PcapError::OversizedRecord(len) => {
                write!(f, "record claims implausible caplen {len}")
            }
            PcapError::BadBlockLength(len) => {
                write!(f, "pcapng block declares invalid total length {len}")
            }
            PcapError::BadTimestampResolution(raw) => {
                write!(f, "if_tsresol {raw:#04x} overflows u64 ticks-per-second")
            }
            PcapError::InconsistentLengths { caplen, orig_len } => {
                write!(
                    f,
                    "record caplen {caplen} exceeds original length {orig_len}"
                )
            }
        }
    }
}

impl std::error::Error for PcapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PcapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linktype_codes_roundtrip() {
        for lt in [
            LinkType::Ethernet,
            LinkType::Ieee80211,
            LinkType::Radiotap,
            LinkType::Other(228),
        ] {
            assert_eq!(LinkType::from_code(lt.code()), lt);
        }
        assert_eq!(LinkType::Radiotap.code(), 127);
        assert_eq!(LinkType::Ieee80211.code(), 105);
    }

    #[test]
    fn truncation_flag() {
        let full = PcapPacket {
            timestamp_us: 0,
            orig_len: 4,
            data: vec![1, 2, 3, 4],
        };
        assert!(!full.is_truncated());
        let cut = PcapPacket {
            timestamp_us: 0,
            orig_len: 1500,
            data: vec![0; 250],
        };
        assert!(cut.is_truncated());
    }

    #[test]
    fn error_display_is_informative() {
        let s = PcapError::BadMagic(0xdeadbeef).to_string();
        assert!(s.contains("0xdeadbeef"));
        let s = PcapError::InconsistentLengths {
            caplen: 100,
            orig_len: 50,
        }
        .to_string();
        assert!(s.contains("100") && s.contains("50"));
    }
}
