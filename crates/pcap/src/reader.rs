//! Streaming pcap reader.

use crate::format::{
    LinkType, PacketRef, PcapError, PcapPacket, GLOBAL_HEADER_LEN, MAGIC_BE, MAGIC_LE, MAGIC_NS_BE,
    MAGIC_NS_LE, MAX_SANE_CAPLEN, RECORD_HEADER_LEN,
};
use std::io::Read;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Endian {
    Little,
    Big,
}

/// A streaming reader over a classic pcap file.
///
/// Handles both byte orders and both timestamp resolutions; timestamps are
/// normalized to microseconds.
pub struct PcapReader<R> {
    inner: R,
    endian: Endian,
    nanos: bool,
    link: LinkType,
    snaplen: u32,
    /// Reused record-body buffer for the zero-copy read path.
    scratch: Vec<u8>,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    pub fn new(mut inner: R) -> Result<Self, PcapError> {
        let mut header = [0u8; GLOBAL_HEADER_LEN];
        read_exact_or(&mut inner, &mut header, PcapError::TruncatedFile)?;
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let (endian, nanos) = match magic {
            MAGIC_LE => (Endian::Little, false),
            MAGIC_NS_LE => (Endian::Little, true),
            MAGIC_BE => (Endian::Big, false),
            MAGIC_NS_BE => (Endian::Big, true),
            other => return Err(PcapError::BadMagic(other)),
        };
        let u16_at = |i: usize| -> u16 {
            let b = [header[i], header[i + 1]];
            match endian {
                Endian::Little => u16::from_le_bytes(b),
                Endian::Big => u16::from_be_bytes(b),
            }
        };
        let u32_at = |i: usize| -> u32 {
            let b = [header[i], header[i + 1], header[i + 2], header[i + 3]];
            match endian {
                Endian::Little => u32::from_le_bytes(b),
                Endian::Big => u32::from_be_bytes(b),
            }
        };
        let (major, minor) = (u16_at(4), u16_at(6));
        if major != 2 {
            return Err(PcapError::UnsupportedVersion(major, minor));
        }
        let snaplen = u32_at(16);
        let link = LinkType::from_code(u32_at(20));
        Ok(PcapReader {
            inner,
            endian,
            nanos,
            link,
            snaplen,
            scratch: Vec::new(),
        })
    }

    /// The file's data-link type.
    pub fn link_type(&self) -> LinkType {
        self.link
    }

    /// The snap length declared in the global header.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// True if the file stores nanosecond-resolution timestamps.
    pub fn is_nanosecond(&self) -> bool {
        self.nanos
    }

    /// Reads the next record; `Ok(None)` at a clean end of file.
    pub fn next_packet(&mut self) -> Result<Option<PcapPacket>, PcapError> {
        Ok(self.next_packet_ref()?.map(|p| p.to_owned()))
    }

    /// Reads the next record without copying its bytes out of the reader's
    /// internal buffer; `Ok(None)` at a clean end of file. The returned
    /// [`PacketRef`] is invalidated by the next read call.
    pub fn next_packet_ref(&mut self) -> Result<Option<PacketRef<'_>>, PcapError> {
        let mut header = [0u8; RECORD_HEADER_LEN];
        match self.inner.read(&mut header[..1])? {
            0 => return Ok(None), // clean EOF
            _ => read_exact_or(&mut self.inner, &mut header[1..], PcapError::TruncatedFile)?,
        }
        let u32_at = |i: usize| -> u32 {
            let b = [header[i], header[i + 1], header[i + 2], header[i + 3]];
            match self.endian {
                Endian::Little => u32::from_le_bytes(b),
                Endian::Big => u32::from_be_bytes(b),
            }
        };
        let ts_sec = u32_at(0) as u64;
        let ts_frac = u32_at(4) as u64;
        let caplen = u32_at(8);
        let orig_len = u32_at(12);
        if caplen > MAX_SANE_CAPLEN {
            return Err(PcapError::OversizedRecord(caplen));
        }
        if caplen > orig_len {
            return Err(PcapError::InconsistentLengths { caplen, orig_len });
        }
        self.scratch.clear();
        self.scratch.resize(caplen as usize, 0);
        read_exact_or(&mut self.inner, &mut self.scratch, PcapError::TruncatedFile)?;
        let micros = if self.nanos { ts_frac / 1000 } else { ts_frac };
        Ok(Some(PacketRef {
            timestamp_us: ts_sec * 1_000_000 + micros,
            orig_len,
            data: &self.scratch,
        }))
    }

    /// Consumes the reader, returning an iterator over records. Errors
    /// terminate the iteration after being yielded once.
    pub fn packets(self) -> Packets<R> {
        Packets {
            reader: self,
            done: false,
        }
    }
}

/// Iterator adapter returned by [`PcapReader::packets`].
pub struct Packets<R> {
    reader: PcapReader<R>,
    done: bool,
}

impl<R: Read> Iterator for Packets<R> {
    type Item = Result<PcapPacket, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.reader.next_packet() {
            Ok(Some(pkt)) => Some(Ok(pkt)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], on_eof: PcapError) -> Result<(), PcapError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(on_eof),
        Err(e) => Err(PcapError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::PcapWriter;

    fn sample_file() -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 250).unwrap();
        w.write_packet(1_500_000, &[1, 2, 3]).unwrap();
        w.write_packet(2_750_001, &[4; 10]).unwrap();
        buf
    }

    #[test]
    fn reads_what_writer_wrote() {
        let buf = sample_file();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::Radiotap);
        assert_eq!(r.snaplen(), 250);
        assert!(!r.is_nanosecond());
        let p1 = r.next_packet().unwrap().unwrap();
        assert_eq!(p1.timestamp_us, 1_500_000);
        assert_eq!(p1.data, vec![1, 2, 3]);
        assert_eq!(p1.orig_len, 3);
        let p2 = r.next_packet().unwrap().unwrap();
        assert_eq!(p2.timestamp_us, 2_750_001);
        assert!(r.next_packet().unwrap().is_none());
        // EOF is sticky.
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn iterator_yields_all_then_ends() {
        let buf = sample_file();
        let r = PcapReader::new(&buf[..]).unwrap();
        let pkts: Result<Vec<_>, _> = r.packets().collect();
        assert_eq!(pkts.unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage_magic() {
        let buf = vec![
            0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ];
        assert!(matches!(
            PcapReader::new(&buf[..]),
            Err(PcapError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_short_global_header() {
        let buf = sample_file();
        assert!(matches!(
            PcapReader::new(&buf[..10]),
            Err(PcapError::TruncatedFile)
        ));
    }

    #[test]
    fn rejects_truncated_record_header() {
        let buf = sample_file();
        // Cut in the middle of the second record header.
        let cut = GLOBAL_HEADER_LEN + RECORD_HEADER_LEN + 3 + 4;
        let mut r = PcapReader::new(&buf[..cut]).unwrap();
        r.next_packet().unwrap().unwrap();
        assert!(matches!(r.next_packet(), Err(PcapError::TruncatedFile)));
    }

    #[test]
    fn rejects_truncated_record_body() {
        let buf = sample_file();
        let cut = buf.len() - 2;
        let mut r = PcapReader::new(&buf[..cut]).unwrap();
        r.next_packet().unwrap().unwrap();
        assert!(matches!(r.next_packet(), Err(PcapError::TruncatedFile)));
    }

    #[test]
    fn reads_big_endian_files() {
        // Hand-build a big-endian µs file with one 2-byte packet.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_LE.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_be_bytes()); // sigfigs
        buf.extend_from_slice(&65535u32.to_be_bytes()); // snaplen
        buf.extend_from_slice(&127u32.to_be_bytes()); // linktype
        buf.extend_from_slice(&3u32.to_be_bytes()); // ts_sec
        buf.extend_from_slice(&14u32.to_be_bytes()); // ts_usec
        buf.extend_from_slice(&2u32.to_be_bytes()); // caplen
        buf.extend_from_slice(&2u32.to_be_bytes()); // orig_len
        buf.extend_from_slice(&[0xAA, 0xBB]);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::Radiotap);
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.timestamp_us, 3_000_014);
        assert_eq!(p.data, vec![0xAA, 0xBB]);
    }

    #[test]
    fn reads_nanosecond_files() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_NS_LE.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]);
        buf.extend_from_slice(&65535u32.to_le_bytes());
        buf.extend_from_slice(&105u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // ts_sec
        buf.extend_from_slice(&999_999_000u32.to_le_bytes()); // ts_nsec
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(0x42);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(r.is_nanosecond());
        assert_eq!(r.link_type(), LinkType::Ieee80211);
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.timestamp_us, 1_999_999);
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut buf = sample_file();
        buf[4] = 9; // version major
        assert!(matches!(
            PcapReader::new(&buf[..]),
            Err(PcapError::UnsupportedVersion(9, 4))
        ));
    }

    #[test]
    fn rejects_oversized_record() {
        let mut buf = sample_file();
        // Patch the first record's caplen to something absurd.
        let off = GLOBAL_HEADER_LEN + 8;
        buf[off..off + 4].copy_from_slice(&(MAX_SANE_CAPLEN + 1).to_le_bytes());
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(matches!(
            r.next_packet(),
            Err(PcapError::OversizedRecord(_))
        ));
    }

    #[test]
    fn rejects_caplen_exceeding_origlen() {
        let mut buf = sample_file();
        let off = GLOBAL_HEADER_LEN + 12;
        buf[off..off + 4].copy_from_slice(&1u32.to_le_bytes()); // orig_len = 1 < caplen = 3
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(matches!(
            r.next_packet(),
            Err(PcapError::InconsistentLengths { .. })
        ));
    }
}
