//! Streaming pcap writer (little-endian, microsecond timestamps).

use crate::format::{LinkType, PcapError, MAGIC_LE, VERSION_MAJOR, VERSION_MINOR};
use std::io::Write;

/// A streaming writer producing a classic little-endian, microsecond pcap
/// file. Packets longer than the snap length are truncated on write, with the
/// original length recorded — the same behaviour as a live capture.
pub struct PcapWriter<W: Write> {
    inner: W,
    snaplen: u32,
    packets_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header. `snaplen` of 0 is normalized to 65535
    /// (no truncation), matching tcpdump's convention.
    pub fn new(mut inner: W, link: LinkType, snaplen: u32) -> Result<Self, PcapError> {
        let snaplen = if snaplen == 0 { 65_535 } else { snaplen };
        inner.write_all(&MAGIC_LE.to_le_bytes())?;
        inner.write_all(&VERSION_MAJOR.to_le_bytes())?;
        inner.write_all(&VERSION_MINOR.to_le_bytes())?;
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&snaplen.to_le_bytes())?;
        inner.write_all(&link.code().to_le_bytes())?;
        Ok(PcapWriter {
            inner,
            snaplen,
            packets_written: 0,
        })
    }

    /// The effective snap length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Number of records written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    /// Writes one record, truncating `data` to the snap length.
    pub fn write_packet(&mut self, timestamp_us: u64, data: &[u8]) -> Result<(), PcapError> {
        self.write_packet_truncated(timestamp_us, data, data.len() as u32)
    }

    /// Writes one record whose bytes were *already* truncated: `orig_len` is
    /// the frame's true on-air length. Used when replaying another capture.
    pub fn write_packet_truncated(
        &mut self,
        timestamp_us: u64,
        data: &[u8],
        orig_len: u32,
    ) -> Result<(), PcapError> {
        debug_assert!(data.len() as u32 <= orig_len);
        let caplen = (data.len() as u32).min(self.snaplen);
        self.inner
            .write_all(&((timestamp_us / 1_000_000) as u32).to_le_bytes())?;
        self.inner
            .write_all(&((timestamp_us % 1_000_000) as u32).to_le_bytes())?;
        self.inner.write_all(&caplen.to_le_bytes())?;
        self.inner.write_all(&orig_len.to_le_bytes())?;
        self.inner.write_all(&data[..caplen as usize])?;
        self.packets_written += 1;
        Ok(())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> Result<(), PcapError> {
        self.inner.flush()?;
        Ok(())
    }

    /// Unwraps the inner writer (after flushing).
    pub fn into_inner(mut self) -> Result<W, PcapError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::GLOBAL_HEADER_LEN;
    use crate::reader::PcapReader;

    #[test]
    fn global_header_layout() {
        let mut buf = Vec::new();
        PcapWriter::new(&mut buf, LinkType::Radiotap, 250).unwrap();
        assert_eq!(buf.len(), GLOBAL_HEADER_LEN);
        assert_eq!(&buf[0..4], &[0xd4, 0xc3, 0xb2, 0xa1]);
        assert_eq!(u16::from_le_bytes([buf[4], buf[5]]), 2);
        assert_eq!(u16::from_le_bytes([buf[6], buf[7]]), 4);
        assert_eq!(
            u32::from_le_bytes([buf[16], buf[17], buf[18], buf[19]]),
            250
        );
        assert_eq!(
            u32::from_le_bytes([buf[20], buf[21], buf[22], buf[23]]),
            127
        );
    }

    #[test]
    fn snaplen_zero_becomes_unlimited() {
        let mut buf = Vec::new();
        let w = PcapWriter::new(&mut buf, LinkType::Ethernet, 0).unwrap();
        assert_eq!(w.snaplen(), 65_535);
    }

    #[test]
    fn truncates_to_snaplen_and_records_orig_len() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 250).unwrap();
            w.write_packet(42, &vec![0xCC; 1500]).unwrap();
            assert_eq!(w.packets_written(), 1);
        }
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.data.len(), 250);
        assert_eq!(p.orig_len, 1500);
        assert!(p.is_truncated());
    }

    #[test]
    fn timestamp_split_is_exact() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 65535).unwrap();
            w.write_packet(123_456_789_012, &[1]).unwrap();
        }
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.timestamp_us, 123_456_789_012);
    }

    #[test]
    fn write_pretruncated_record() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 65535).unwrap();
            w.write_packet_truncated(0, &[0xAB; 250], 1500).unwrap();
        }
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.data.len(), 250);
        assert_eq!(p.orig_len, 1500);
    }

    #[test]
    fn into_inner_returns_buffer() {
        let buf = Vec::new();
        let w = PcapWriter::new(buf, LinkType::Radiotap, 100).unwrap();
        let buf = w.into_inner().unwrap();
        assert_eq!(buf.len(), GLOBAL_HEADER_LEN);
    }
}
