//! Property-based equivalence: the timing-wheel [`EventQueue`] against a
//! reference lazy-deletion priority queue (the `BinaryHeap` scheme the wheel
//! replaced).
//!
//! Random operation schedules — pushes at near/far/multi-window-future
//! timestamps (including equal-timestamp runs), timer arm/re-arm/cancel on a
//! handful of nodes, and interleaved pops — must produce:
//!
//! * identical `(time, event)` delivery streams (live events only, in
//!   `(time, seq)` order, which exercises FIFO-within-bucket, sorted-insert
//!   into the drained region, and spill cascades);
//! * identical totals: the wheel's live pops plus its drained ghosts equal
//!   the reference's pops (live + stale), so the events-processed
//!   denominator is invariant under eager cancellation;
//! * `live_len()` matching the reference's live count at every step;
//! * `pop_batch` yielding exactly the `pop` stream, batched by timestamp.

use proptest::prelude::*;
use wifi_sim::events::{Event, EventQueue, TimerKind};

/// One wheel window (16 µs × 4096 slots), mirrored from the implementation
/// to aim pushes at slot/window/spill boundaries.
const WINDOW_US: u64 = 4096 << 4;

/// Reference model: every entry stays until popped; timers are invalidated
/// by overwriting the node's armed seq (lazy deletion). Pops scan for the
/// global `(at, seq)` minimum — O(n²) overall, fine at test sizes.
#[derive(Default)]
struct RefQueue {
    entries: Vec<RefEntry>,
    armed: Vec<Option<u64>>,
    next_seq: u64,
    delivered: Vec<(u64, Event)>,
    live_pops: u64,
    stale_pops: u64,
}

struct RefEntry {
    at: u64,
    seq: u64,
    event: Event,
    timer_node: Option<usize>,
}

impl RefQueue {
    fn push(&mut self, at: u64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(RefEntry {
            at,
            seq,
            event,
            timer_node: None,
        });
    }

    fn arm_timer(&mut self, node: usize, gen: u64, kind: TimerKind, at: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.armed.len() <= node {
            self.armed.resize(node + 1, None);
        }
        self.armed[node] = Some(seq); // the previous arm goes stale
        self.entries.push(RefEntry {
            at,
            seq,
            event: Event::Timer { node, gen, kind },
            timer_node: Some(node),
        });
    }

    fn cancel_timer(&mut self, node: usize) {
        if let Some(slot) = self.armed.get_mut(node) {
            *slot = None;
        }
    }

    fn live_len(&self) -> usize {
        self.entries.iter().filter(|e| self.entry_live(e)).count()
    }

    fn entry_live(&self, e: &RefEntry) -> bool {
        match e.timer_node {
            None => true,
            Some(node) => self.armed.get(node).copied().flatten() == Some(e.seq),
        }
    }

    /// Pops the global minimum; stale timer entries are consumed and counted
    /// but not delivered (the lazy-deletion behaviour). Returns false when
    /// empty.
    fn pop(&mut self) -> bool {
        let Some(min_idx) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.at, e.seq))
            .map(|(i, _)| i)
        else {
            return false;
        };
        let e = self.entries.swap_remove(min_idx);
        if self.entry_live(&e) {
            if let Some(node) = e.timer_node {
                self.armed[node] = None; // fired
            }
            self.delivered.push((e.at, e.event));
            self.live_pops += 1;
        } else {
            self.stale_pops += 1;
        }
        true
    }

    /// Drains only entries at or before `until` (the `run_until` contract).
    fn pop_until(&mut self, until: u64) -> bool {
        let next = self.entries.iter().map(|e| (e.at, e.seq)).min();
        match next {
            Some((at, _)) if at <= until => self.pop(),
            _ => false,
        }
    }
}

/// Decodes one opcode triple into an operation against both queues.
/// `now` tracks the last popped timestamp so the schedule resembles a real
/// simulation (pushes land at or after the present).
struct Driver {
    wheel: EventQueue,
    wheel_delivered: Vec<(u64, Event)>,
    wheel_ghosts: u64,
    reference: RefQueue,
    now: u64,
    node_gen: [u64; 4],
    next_id: usize,
}

impl Driver {
    fn new() -> Driver {
        Driver {
            wheel: EventQueue::new(),
            wheel_delivered: Vec::new(),
            wheel_ghosts: 0,
            reference: RefQueue::default(),
            now: 0,
            node_gen: [0; 4],
            next_id: 0,
        }
    }

    /// Timestamp classes: slot-dense (forces equal timestamps and drained-
    /// region inserts), intra-window, and multi-window spill.
    fn target_time(&self, class: u64, offset: u64) -> u64 {
        self.now
            + match class % 3 {
                0 => offset % 8,
                1 => offset % (2 * WINDOW_US),
                _ => offset % (40 * WINDOW_US),
            }
    }

    fn apply(&mut self, op: (u8, u64, u64)) {
        let (code, a, b) = op;
        match code % 6 {
            // Two push opcodes: pushes should dominate the mix.
            0 | 1 => {
                let at = self.target_time(a, b);
                let ev = Event::UserJoin { node: self.next_id };
                self.next_id += 1;
                self.wheel.push(at, ev);
                self.reference.push(at, ev);
            }
            2 => {
                let node = (a % 4) as usize;
                let at = self.target_time(a / 4, b);
                self.node_gen[node] += 1;
                let gen = self.node_gen[node];
                let kind = if a % 2 == 0 {
                    TimerKind::DeferDone
                } else {
                    TimerKind::AckTimeout
                };
                self.wheel.arm_timer(node, gen, kind, at);
                self.reference.arm_timer(node, gen, kind, at);
            }
            3 => {
                let node = (a % 4) as usize;
                self.wheel.cancel_timer(node);
                self.reference.cancel_timer(node);
            }
            _ => {
                for _ in 0..(b % 4) + 1 {
                    match self.wheel.pop() {
                        Some((at, ev)) => {
                            self.now = at;
                            self.wheel_delivered.push((at, ev));
                        }
                        None => break,
                    }
                    // The reference consumes stale entries up to (and at)
                    // the same timestamp before its next live pop.
                    loop {
                        let before = self.reference.delivered.len();
                        assert!(self.reference.pop(), "reference empty, wheel was not");
                        if self.reference.delivered.len() > before {
                            break;
                        }
                    }
                }
                // Ghosts of cancelled timers whose fire time has passed
                // become countable now, exactly as run_until drains them.
                self.wheel_ghosts += self.wheel.drain_ghosts(self.now);
            }
        }
    }

    fn drain_all(&mut self) {
        while let Some((at, ev)) = self.wheel.pop() {
            self.now = at;
            self.wheel_delivered.push((at, ev));
        }
        self.wheel_ghosts += self.wheel.drain_ghosts(u64::MAX);
        while self.reference.pop() {}
    }
}

proptest! {
    fn wheel_matches_reference_on_random_schedules(
        ops in proptest::collection::vec((0u8..24, 0u64..1_000_000, 0u64..u64::MAX / 2), 1..80),
    ) {
        let mut d = Driver::new();
        for op in ops {
            d.apply(op);
            prop_assert_eq!(d.wheel.live_len(), d.reference.live_len());
        }
        d.drain_all();
        prop_assert!(d.wheel.is_empty());
        prop_assert_eq!(&d.wheel_delivered, &d.reference.delivered);
        let stats = d.wheel.stats();
        // The events-processed identity: live pops + ghosts reproduce the
        // lazy scheme's pop total, and every push is accounted for.
        prop_assert_eq!(stats.popped, d.reference.live_pops);
        prop_assert_eq!(d.wheel_ghosts, d.reference.stale_pops);
        prop_assert_eq!(stats.stale_dropped, d.reference.stale_pops);
        prop_assert_eq!(stats.pushed, stats.popped + stats.stale_dropped);
    }

    /// `pop_batch` must yield the one-at-a-time stream, grouped by equal
    /// timestamps, and respect its `until` bound exactly.
    fn batch_pop_equals_single_pop(
        ops in proptest::collection::vec((0u8..24, 0u64..1_000_000, 0u64..u64::MAX / 2), 1..60),
        until_frac in 0u64..100,
    ) {
        // Build two identical queues from the push/arm/cancel prefix of the
        // schedule (pops skipped so both queues see the same inserts).
        let mut single = EventQueue::new();
        let mut batched = EventQueue::new();
        let mut gen = [0u64; 4];
        let mut id = 0usize;
        let mut max_at = 0u64;
        for (code, a, b) in ops {
            match code % 3 {
                0 | 1 => {
                    let at = match a % 3 {
                        0 => b % 64,
                        1 => b % (2 * WINDOW_US),
                        _ => b % (40 * WINDOW_US),
                    };
                    max_at = max_at.max(at);
                    let ev = Event::UserJoin { node: id };
                    id += 1;
                    single.push(at, ev);
                    batched.push(at, ev);
                }
                _ => {
                    let node = (a % 4) as usize;
                    gen[node] += 1;
                    let at = b % (2 * WINDOW_US);
                    max_at = max_at.max(at);
                    single.arm_timer(node, gen[node], TimerKind::DeferDone, at);
                    batched.arm_timer(node, gen[node], TimerKind::DeferDone, at);
                }
            }
        }
        let until = max_at / 100 * until_frac;
        let mut single_stream = Vec::new();
        while single.peek_time().is_some_and(|t| t <= until) {
            let (at, ev) = single.pop().unwrap();
            single_stream.push((at, ev));
        }
        let mut batch_stream = Vec::new();
        let mut batch = Vec::new();
        while let Some(at) = batched.pop_batch(until, &mut batch) {
            prop_assert!(at <= until);
            for ev in batch.drain(..) {
                batch_stream.push((at, ev));
            }
        }
        prop_assert_eq!(&batch_stream, &single_stream);
        prop_assert_eq!(batched.live_len(), single.live_len());
        // Timestamps within each queue's remainder agree too: drain fully.
        let mut rest_single = Vec::new();
        while let Some(x) = single.pop() { rest_single.push(x); }
        let mut rest_batch = Vec::new();
        while let Some(at) = batched.pop_batch(u64::MAX, &mut batch) {
            for ev in batch.drain(..) { rest_batch.push((at, ev)); }
        }
        prop_assert_eq!(&rest_batch, &rest_single);
    }

    /// Bounded popping (`pop_until`, the `run_until` contract) leaves both
    /// models in the same state when the bound advances in stages.
    fn staged_bounds_are_pure_continuations(
        ops in proptest::collection::vec((0u8..24, 0u64..1_000_000, 0u64..u64::MAX / 2), 1..40),
        stages in proptest::collection::vec(0u64..(45 * WINDOW_US), 1..5),
    ) {
        let mut d = Driver::new();
        for op in ops {
            // Inserts only (skip the pop opcode) to build pending state.
            if op.0 % 6 >= 4 { continue; }
            d.apply(op);
        }
        let mut stages = stages;
        stages.sort_unstable();
        for until in stages {
            loop {
                match d.wheel.peek_time() {
                    Some(t) if t <= until => {
                        let (at, ev) = d.wheel.pop().unwrap();
                        d.wheel_delivered.push((at, ev));
                    }
                    _ => break,
                }
            }
            d.wheel_ghosts += d.wheel.drain_ghosts(until);
            let mut ref_stales_and_lives = 0u64;
            while d.reference.pop_until(until) { ref_stales_and_lives += 1; }
            let _ = ref_stales_and_lives;
            prop_assert_eq!(d.wheel_delivered.len(), d.reference.delivered.len());
            // The ghost identity holds at every stage boundary, not just at
            // the end: counted stale == reference stale pops so far.
            prop_assert_eq!(
                d.wheel.stats().popped + d.wheel_ghosts,
                d.reference.live_pops + d.reference.stale_pops
            );
        }
        prop_assert_eq!(&d.wheel_delivered, &d.reference.delivered);
    }
}
