//! Sharded ≡ unsharded: the RF-isolation partitioning must not move a
//! single byte of simulated output.
//!
//! A [`ShardSpec`] is materialized twice — once as one per-channel
//! simulator, once as partitioned component simulators — and everything
//! observable must match:
//!
//! * per-sniffer traces, byte-identical (each sniffer lives in exactly one
//!   shard, so no merging is involved);
//! * per-station counters, keyed by the scenario-wide build index;
//! * ground-truth records as a canonically-ordered multiset (same-timestamp
//!   records from *different* components have no defined mutual order, so
//!   both sides sort by a canonical key before comparing);
//! * summed per-channel medium stats, ground-truth counters, and the
//!   events-processed denominator (per-entity event counts are exact, so
//!   the shard sum reproduces the global count).
//!
//! Timing-wheel churn (`QueueStats`) is deliberately *not* compared:
//! cascade and ghost bookkeeping depends on how events distribute over
//! wheels — observability, not simulated output.
//!
//! The property test drives this across random campus topologies (hall
//! count, spacing, per-hall population, channel layouts, sniffer
//! placement), random shard caps, and both materializations.

use proptest::prelude::*;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::SECOND;
use wifi_sim::geometry::Pos;
use wifi_sim::rate::RateAdaptation;
use wifi_sim::shard::ShardSpec;
use wifi_sim::sniffer::SnifferConfig;
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::{FlowConfig, SizeDist, TrafficProfile};
use wifi_sim::{ClientConfig, SimConfig, Simulator};

/// Canonical order for ground-truth records: timestamp first, then the full
/// record rendering as a tiebreak — total, and independent of which
/// component emitted the frame.
fn canonical(records: &mut Vec<FrameRecord>) {
    records.sort_by(|a, b| {
        a.timestamp_us
            .cmp(&b.timestamp_us)
            .then_with(|| format!("{a:?}").cmp(&format!("{b:?}")))
    });
}

/// Everything we compare from one materialization.
struct Observed {
    sniffer_traces: Vec<Vec<FrameRecord>>,
    sniffer_stats: Vec<String>,
    station_stats: Vec<(u64, String)>,
    ground_truth: Vec<FrameRecord>,
    medium_stats: Vec<(u64, u64)>,
    transmissions: u64,
    delivered: u64,
    retry_drops: u64,
    events_processed: u64,
}

fn observe(mut sims: Vec<(Simulator, Vec<usize>)>, until: u64, sniffers: usize) -> Observed {
    let mut sniffer_traces = vec![Vec::new(); sniffers];
    let mut sniffer_stats = vec![String::new(); sniffers];
    let mut station_stats = Vec::new();
    let mut ground_truth = Vec::new();
    let mut medium_stats = Vec::new();
    let (mut transmissions, mut delivered, mut retry_drops, mut events) = (0, 0, 0, 0);
    for (sim, sniffer_idx) in &mut sims {
        sim.run_until(until);
        for (local, &global) in sniffer_idx.iter().enumerate() {
            sniffer_traces[global] = std::mem::take(&mut sim.sniffers_mut()[local].trace);
            sniffer_stats[global] = format!("{:?}", sim.sniffers()[local].stats);
        }
        for st in sim.stations() {
            station_stats.push((st.key, format!("{:?}", st.stats)));
        }
        ground_truth.extend(sim.ground_truth.records.iter().copied());
        if medium_stats.is_empty() {
            medium_stats = sim.medium_stats();
        } else {
            for (acc, (tx, coll)) in medium_stats.iter_mut().zip(sim.medium_stats()) {
                acc.0 += tx;
                acc.1 += coll;
            }
        }
        transmissions += sim.ground_truth.transmissions;
        delivered += sim.ground_truth.delivered;
        retry_drops += sim.ground_truth.retry_drops;
        events += sim.events_processed();
    }
    station_stats.sort_by_key(|&(key, _)| key);
    canonical(&mut ground_truth);
    Observed {
        sniffer_traces,
        sniffer_stats,
        station_stats,
        ground_truth,
        medium_stats,
        transmissions,
        delivered,
        retry_drops,
        events_processed: events,
    }
}

fn assert_equivalent(spec: &ShardSpec, until: u64, max_shards: usize) {
    let sniffers = spec.sniffer_count();
    let unsharded = observe(
        vec![(spec.build_unsharded(), (0..sniffers).collect())],
        until,
        sniffers,
    );
    let plan = spec
        .partition(max_shards)
        .expect("test scenarios are shardable");
    let sims = plan
        .shards
        .iter()
        .map(|s| (spec.build_shard(s), s.sniffer_indices().collect()))
        .collect();
    let sharded = observe(sims, until, sniffers);

    assert_eq!(
        sharded.sniffer_traces, unsharded.sniffer_traces,
        "sniffer traces diverged (max_shards={max_shards})"
    );
    assert_eq!(sharded.sniffer_stats, unsharded.sniffer_stats);
    assert_eq!(sharded.station_stats, unsharded.station_stats);
    assert_eq!(sharded.ground_truth, unsharded.ground_truth);
    assert_eq!(sharded.medium_stats, unsharded.medium_stats);
    assert_eq!(sharded.transmissions, unsharded.transmissions);
    assert_eq!(sharded.delivered, unsharded.delivered);
    assert_eq!(sharded.retry_drops, unsharded.retry_drops);
    assert_eq!(
        sharded.events_processed, unsharded.events_processed,
        "events-processed denominator diverged"
    );
}

fn traffic(fps: f64) -> TrafficProfile {
    TrafficProfile {
        uplink: FlowConfig::bursty(fps * 0.25, SizeDist::ietf_mix(), 20.0),
        downlink: FlowConfig::bursty(fps, SizeDist::ietf_mix(), 25.0),
    }
}

/// A campus: `halls` separated far beyond the coupling floor, each with one
/// AP per channel and `per_hall` clients spread over the channels.
fn campus(
    seed: u64,
    halls: usize,
    per_hall: usize,
    channels: usize,
    spacing: f64,
    sniffer_halls: &[usize],
) -> ShardSpec {
    let chans: Vec<wifi_frames::phy::Channel> = [1u8, 6, 11][..channels]
        .iter()
        .map(|&c| wifi_frames::phy::Channel::new(c).unwrap())
        .collect();
    let mut spec = ShardSpec::new(SimConfig {
        seed,
        channels: chans,
        ..SimConfig::default()
    });
    for h in 0..halls {
        let x = h as f64 * spacing;
        for ch in 0..channels {
            spec.add_ap(Pos::new(x + 10.0 * ch as f64, 0.0), ch, 6);
        }
    }
    for h in 0..halls {
        let x = h as f64 * spacing;
        for i in 0..per_hall {
            spec.add_client(ClientConfig {
                pos: Pos::new(x + 3.0 * i as f64, 5.0 + (i % 3) as f64),
                channel_idx: i % channels,
                rts_policy: if i % 7 == 0 {
                    RtsPolicy::Threshold(400)
                } else {
                    RtsPolicy::Never
                },
                adaptation: RateAdaptation::Arf(wifi_frames::phy::Rate::R11),
                traffic: traffic(2.0 + (i % 4) as f64),
                join_at_us: (i as u64 % 5) * 200_000,
                leave_at_us: None,
                power_save_interval_us: if i % 3 == 0 { Some(10_000_000) } else { None },
                frag_threshold: if i % 11 == 0 { Some(600) } else { None },
            });
        }
    }
    for &h in sniffer_halls {
        for ch in 0..channels {
            spec.add_sniffer(SnifferConfig {
                pos: Pos::new(h as f64 * spacing + 8.0, 3.0),
                channel_idx: ch,
                ..SnifferConfig::default()
            });
        }
    }
    spec
}

/// The deterministic anchor: a three-hall campus across the full shard-cap
/// range, including `max_shards = 1` (partitioned media in one simulator).
#[test]
fn campus_sharded_matches_unsharded() {
    let spec = campus(42, 3, 6, 3, 5_000.0, &[0, 2]);
    for max_shards in [1, 2, 16] {
        assert_equivalent(&spec, 4 * SECOND, max_shards);
    }
}

/// One hall only: the "partitioned" build degenerates to per-channel media
/// and must still match.
#[test]
fn single_hall_is_identity() {
    let spec = campus(7, 1, 8, 2, 5_000.0, &[0]);
    assert_equivalent(&spec, 3 * SECOND, 8);
}

proptest! {
    /// Random topologies: hall count, population, channel count, sniffer
    /// placement, and shard cap.
    fn random_campus_equivalence(
        seed in 0u64..1_000,
        halls in 1usize..4,
        per_hall in 1usize..5,
        channels in 1usize..4,
        sniffer_hall in 0usize..4,
        max_shards in 1usize..10,
    ) {
        let spec = campus(
            seed,
            halls,
            per_hall,
            channels,
            4_000.0,
            &[sniffer_hall % halls],
        );
        assert_equivalent(&spec, SECOND, max_shards);
    }
}
