//! Sharded ≡ unsharded: the RF-isolation partitioning must not move a
//! single byte of simulated output.
//!
//! A [`ShardSpec`] is materialized twice — once as one per-channel
//! simulator, once as partitioned component simulators — and everything
//! observable must match:
//!
//! * per-sniffer traces, byte-identical (each sniffer lives in exactly one
//!   shard, so no merging is involved);
//! * per-station counters, keyed by the scenario-wide build index;
//! * ground-truth records as a canonically-ordered multiset (same-timestamp
//!   records from *different* components have no defined mutual order, so
//!   both sides sort by a canonical key before comparing);
//! * summed per-channel medium stats, ground-truth counters, and the
//!   events-processed denominator (per-entity event counts are exact, so
//!   the shard sum reproduces the global count).
//!
//! Timing-wheel churn (`QueueStats`) is deliberately *not* compared:
//! cascade and ghost bookkeeping depends on how events distribute over
//! wheels — observability, not simulated output.
//!
//! The property test drives this across random campus topologies (hall
//! count, spacing, per-hall population, channel layouts, sniffer
//! placement), random shard caps, and both materializations.
//!
//! The second half does the same for **time-window lockstep sharding**
//! ([`ShardSpec::partition_lockstep`]): dense single-cell topologies where
//! every station is coupled, split by BSS and advanced in bounded windows
//! with cross-shard TxStart/TxEnd ghost exchange. The serial driver here
//! replicates the round protocol of `congestion_bench::streaming` (publish
//! → apply in shard order → skip-ahead), and the same byte-identity must
//! hold for every `(max_shards, window)` within the safe-window bound.

use proptest::prelude::*;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::SECOND;
use wifi_sim::geometry::Pos;
use wifi_sim::rate::RateAdaptation;
use wifi_sim::shard::{ShardSpec, DEFAULT_LOCKSTEP_WINDOW_US};
use wifi_sim::sniffer::SnifferConfig;
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::{FlowConfig, SizeDist, TrafficProfile};
use wifi_sim::{ClientConfig, RemoteNotice, SimConfig, Simulator};

/// Canonical order for ground-truth records: timestamp first, then the full
/// record rendering as a tiebreak — total, and independent of which
/// component emitted the frame.
fn canonical(records: &mut [FrameRecord]) {
    records.sort_by(|a, b| {
        a.timestamp_us
            .cmp(&b.timestamp_us)
            .then_with(|| format!("{a:?}").cmp(&format!("{b:?}")))
    });
}

/// Everything we compare from one materialization.
struct Observed {
    sniffer_traces: Vec<Vec<FrameRecord>>,
    sniffer_stats: Vec<String>,
    station_stats: Vec<(u64, String)>,
    ground_truth: Vec<FrameRecord>,
    medium_stats: Vec<(u64, u64)>,
    transmissions: u64,
    delivered: u64,
    retry_drops: u64,
    events_processed: u64,
}

fn observe(mut sims: Vec<(Simulator, Vec<usize>)>, until: u64, sniffers: usize) -> Observed {
    for (sim, _) in &mut sims {
        sim.run_until(until);
    }
    collect(sims, sniffers)
}

/// Gathers the comparable output of already-run simulators. Passive shell
/// stations (lockstep shards materialize the full roster) are skipped: they
/// hold no simulated state, and their owners report the real counters.
fn collect(mut sims: Vec<(Simulator, Vec<usize>)>, sniffers: usize) -> Observed {
    let mut sniffer_traces = vec![Vec::new(); sniffers];
    let mut sniffer_stats = vec![String::new(); sniffers];
    let mut station_stats = Vec::new();
    let mut ground_truth = Vec::new();
    let mut medium_stats = Vec::new();
    let (mut transmissions, mut delivered, mut retry_drops, mut events) = (0, 0, 0, 0);
    for (sim, sniffer_idx) in &mut sims {
        for (local, &global) in sniffer_idx.iter().enumerate() {
            sniffer_traces[global] = std::mem::take(&mut sim.sniffers_mut()[local].trace);
            sniffer_stats[global] = format!("{:?}", sim.sniffers()[local].stats);
        }
        for (i, st) in sim.stations().iter().enumerate() {
            if sim.hot().shell[i] {
                continue;
            }
            station_stats.push((sim.hot().key[i], format!("{:?}", st.stats)));
        }
        ground_truth.extend(sim.ground_truth.records.iter().copied());
        if medium_stats.is_empty() {
            medium_stats = sim.medium_stats();
        } else {
            for (acc, (tx, coll)) in medium_stats.iter_mut().zip(sim.medium_stats()) {
                acc.0 += tx;
                acc.1 += coll;
            }
        }
        transmissions += sim.ground_truth.transmissions;
        delivered += sim.ground_truth.delivered;
        retry_drops += sim.ground_truth.retry_drops;
        events += sim.events_processed();
    }
    station_stats.sort_by_key(|&(key, _)| key);
    canonical(&mut ground_truth);
    Observed {
        sniffer_traces,
        sniffer_stats,
        station_stats,
        ground_truth,
        medium_stats,
        transmissions,
        delivered,
        retry_drops,
        events_processed: events,
    }
}

fn assert_equivalent(spec: &ShardSpec, until: u64, max_shards: usize) {
    let sniffers = spec.sniffer_count();
    let unsharded = observe(
        vec![(spec.build_unsharded(), (0..sniffers).collect())],
        until,
        sniffers,
    );
    let plan = spec
        .partition(max_shards)
        .expect("test scenarios are shardable");
    let sims = plan
        .shards
        .iter()
        .map(|s| (spec.build_shard(s), s.sniffer_indices().collect()))
        .collect();
    let sharded = observe(sims, until, sniffers);

    assert_eq!(
        sharded.sniffer_traces, unsharded.sniffer_traces,
        "sniffer traces diverged (max_shards={max_shards})"
    );
    assert_eq!(sharded.sniffer_stats, unsharded.sniffer_stats);
    assert_eq!(sharded.station_stats, unsharded.station_stats);
    assert_eq!(sharded.ground_truth, unsharded.ground_truth);
    assert_eq!(sharded.medium_stats, unsharded.medium_stats);
    assert_eq!(sharded.transmissions, unsharded.transmissions);
    assert_eq!(sharded.delivered, unsharded.delivered);
    assert_eq!(sharded.retry_drops, unsharded.retry_drops);
    assert_eq!(
        sharded.events_processed, unsharded.events_processed,
        "events-processed denominator diverged"
    );
}

fn traffic(fps: f64) -> TrafficProfile {
    TrafficProfile {
        uplink: FlowConfig::bursty(fps * 0.25, SizeDist::ietf_mix(), 20.0),
        downlink: FlowConfig::bursty(fps, SizeDist::ietf_mix(), 25.0),
    }
}

/// A campus: `halls` separated far beyond the coupling floor, each with one
/// AP per channel and `per_hall` clients spread over the channels.
fn campus(
    seed: u64,
    halls: usize,
    per_hall: usize,
    channels: usize,
    spacing: f64,
    sniffer_halls: &[usize],
) -> ShardSpec {
    let chans: Vec<wifi_frames::phy::Channel> = [1u8, 6, 11][..channels]
        .iter()
        .map(|&c| wifi_frames::phy::Channel::new(c).unwrap())
        .collect();
    let mut spec = ShardSpec::new(SimConfig {
        seed,
        channels: chans,
        ..SimConfig::default()
    });
    for h in 0..halls {
        let x = h as f64 * spacing;
        for ch in 0..channels {
            spec.add_ap(Pos::new(x + 10.0 * ch as f64, 0.0), ch, 6);
        }
    }
    for h in 0..halls {
        let x = h as f64 * spacing;
        for i in 0..per_hall {
            spec.add_client(ClientConfig {
                pos: Pos::new(x + 3.0 * i as f64, 5.0 + (i % 3) as f64),
                channel_idx: i % channels,
                rts_policy: if i % 7 == 0 {
                    RtsPolicy::Threshold(400)
                } else {
                    RtsPolicy::Never
                },
                adaptation: RateAdaptation::Arf(wifi_frames::phy::Rate::R11),
                traffic: traffic(2.0 + (i % 4) as f64),
                join_at_us: (i as u64 % 5) * 200_000,
                leave_at_us: None,
                power_save_interval_us: if i % 3 == 0 { Some(10_000_000) } else { None },
                frag_threshold: if i % 11 == 0 { Some(600) } else { None },
            });
        }
    }
    for &h in sniffer_halls {
        for ch in 0..channels {
            spec.add_sniffer(SnifferConfig {
                pos: Pos::new(h as f64 * spacing + 8.0, 3.0),
                channel_idx: ch,
                ..SnifferConfig::default()
            });
        }
    }
    spec
}

/// The deterministic anchor: a three-hall campus across the full shard-cap
/// range, including `max_shards = 1` (partitioned media in one simulator).
#[test]
fn campus_sharded_matches_unsharded() {
    let spec = campus(42, 3, 6, 3, 5_000.0, &[0, 2]);
    for max_shards in [1, 2, 16] {
        assert_equivalent(&spec, 4 * SECOND, max_shards);
    }
}

/// One hall only: the "partitioned" build degenerates to per-channel media
/// and must still match.
#[test]
fn single_hall_is_identity() {
    let spec = campus(7, 1, 8, 2, 5_000.0, &[0]);
    assert_equivalent(&spec, 3 * SECOND, 8);
}

/// Serial reference implementation of the lockstep round protocol: run every
/// shard to the window end, exchange TxStart/TxEnd notices (each shard
/// applies its siblings' batches in shard order, never its own), then all
/// shards move to the same next window — skipping ahead when every shard is
/// idle past the window. Mirrors `run_lockstep` in
/// `congestion_bench::streaming` minus the threads and barriers; the merged
/// output must not depend on which driver ran the protocol.
fn run_lockstep_serial(sims: &mut [Simulator], window_us: u64, until: u64) {
    let w = window_us;
    let mut outboxes: Vec<Vec<RemoteNotice>> = vec![Vec::new(); sims.len()];
    let mut start = 0u64;
    loop {
        let target = (start + w - 1).min(until);
        for sim in sims.iter_mut() {
            sim.run_until(target);
        }
        if target == until {
            // Final window: leftover notices could only seed events past
            // the end of the run.
            break;
        }
        for (slot, sim) in outboxes.iter_mut().zip(sims.iter_mut()) {
            slot.clear();
            sim.drain_remote_notices(slot);
        }
        let mut min_next = u64::MAX;
        for (dst, sim) in sims.iter_mut().enumerate() {
            for (src, batch) in outboxes.iter().enumerate() {
                if src == dst {
                    continue;
                }
                for notice in batch {
                    sim.apply_remote_tx(notice);
                }
            }
            min_next = min_next.min(sim.next_event_time().unwrap_or(u64::MAX));
        }
        let mut next = start + w;
        if min_next > target {
            next = next.max(min_next.min(until) / w * w);
        }
        start = next.min(until / w * w);
    }
}

fn assert_lockstep_equivalent(spec: &ShardSpec, until: u64, max_shards: usize, window_us: u64) {
    let sniffers = spec.sniffer_count();
    let unsharded = observe(
        vec![(spec.build_unsharded(), (0..sniffers).collect())],
        until,
        sniffers,
    );
    let plan = spec
        .partition_lockstep(max_shards, window_us)
        .expect("dense-cell test scenarios admit a lockstep split");
    assert!(
        plan.shards.len() >= 2,
        "lockstep plan did not split (max_shards={max_shards})"
    );
    let mut sims: Vec<Simulator> = plan
        .shards
        .iter()
        .map(|s| spec.build_lockstep_shard(s))
        .collect();
    run_lockstep_serial(&mut sims, window_us, until);
    let lockstep = collect(
        sims.into_iter()
            .zip(&plan.shards)
            .map(|(sim, s)| (sim, s.sniffer_indices().collect()))
            .collect(),
        sniffers,
    );

    let tag = format!("(max_shards={max_shards}, window={window_us})");
    assert_eq!(
        lockstep.sniffer_traces, unsharded.sniffer_traces,
        "lockstep sniffer traces diverged {tag}"
    );
    assert_eq!(lockstep.sniffer_stats, unsharded.sniffer_stats, "{tag}");
    assert_eq!(lockstep.station_stats, unsharded.station_stats, "{tag}");
    assert_eq!(lockstep.ground_truth, unsharded.ground_truth, "{tag}");
    assert_eq!(lockstep.medium_stats, unsharded.medium_stats, "{tag}");
    assert_eq!(lockstep.transmissions, unsharded.transmissions, "{tag}");
    assert_eq!(lockstep.delivered, unsharded.delivered, "{tag}");
    assert_eq!(lockstep.retry_drops, unsharded.retry_drops, "{tag}");
    assert_eq!(
        lockstep.events_processed, unsharded.events_processed,
        "lockstep events-processed denominator diverged {tag}"
    );
}

/// One dense cell: `aps` base stations a few tens of meters apart — far
/// inside the coupling range, so every station carrier-senses every other
/// and the component partitioner sees a single blob per channel. Clients
/// cluster around their AP; sniffers sit in the middle of the cell.
fn dense_cell(seed: u64, aps: usize, per_ap: usize, channels: usize, spacing: f64) -> ShardSpec {
    let chans: Vec<wifi_frames::phy::Channel> = [1u8, 6, 11][..channels]
        .iter()
        .map(|&c| wifi_frames::phy::Channel::new(c).unwrap())
        .collect();
    let mut spec = ShardSpec::new(SimConfig {
        seed,
        channels: chans,
        ..SimConfig::default()
    });
    for a in 0..aps {
        spec.add_ap(Pos::new(a as f64 * spacing, 0.0), a % channels, 6);
    }
    for a in 0..aps {
        for i in 0..per_ap {
            spec.add_client(ClientConfig {
                pos: Pos::new(a as f64 * spacing + 2.0 + 3.0 * i as f64, 4.0),
                channel_idx: a % channels,
                rts_policy: if i % 5 == 0 {
                    RtsPolicy::Threshold(400)
                } else {
                    RtsPolicy::Never
                },
                adaptation: RateAdaptation::Arf(wifi_frames::phy::Rate::R11),
                traffic: traffic(2.0 + (i % 4) as f64),
                join_at_us: ((a + i) as u64 % 4) * 100_000,
                leave_at_us: None,
                power_save_interval_us: if i % 3 == 0 { Some(10_000_000) } else { None },
                frag_threshold: if (a + i) % 7 == 0 { Some(600) } else { None },
            });
        }
    }
    for ch in 0..channels {
        spec.add_sniffer(SnifferConfig {
            pos: Pos::new(spacing * (aps - 1) as f64 / 2.0, 2.0),
            channel_idx: ch,
            ..SnifferConfig::default()
        });
    }
    spec
}

/// Deterministic lockstep anchor: one coupled cell of three BSSes, split
/// across shard caps and window widths (the full safe range ends at the
/// 10 µs overlap guard).
#[test]
fn dense_cell_lockstep_matches_unsharded() {
    let spec = dense_cell(23, 3, 4, 2, 40.0);
    for (max_shards, window_us) in [
        (2, DEFAULT_LOCKSTEP_WINDOW_US),
        (3, DEFAULT_LOCKSTEP_WINDOW_US),
        (8, 1),
        (3, 7),
    ] {
        assert_lockstep_equivalent(&spec, 2 * SECOND, max_shards, window_us);
    }
}

proptest! {
    /// Random dense cells: AP count, per-BSS population, channel count, AP
    /// spacing, shard cap, and lockstep window — the merged lockstep output
    /// must stay byte-identical to the unsharded run for all of them.
    fn random_dense_cell_lockstep_equivalence(
        seed in 0u64..1_000,
        aps in 2usize..5,
        per_ap in 1usize..4,
        channels in 1usize..3,
        spacing_sel in 0usize..3,
        max_shards in 2usize..8,
        window_us in 1u64..=10,
    ) {
        let spacing = [15.0, 40.0, 90.0][spacing_sel];
        let spec = dense_cell(seed, aps, per_ap, channels, spacing);
        assert_lockstep_equivalent(&spec, SECOND / 2, max_shards, window_us);
    }
}

proptest! {
    /// Random topologies: hall count, population, channel count, sniffer
    /// placement, and shard cap.
    fn random_campus_equivalence(
        seed in 0u64..1_000,
        halls in 1usize..4,
        per_hall in 1usize..5,
        channels in 1usize..4,
        sniffer_hall in 0usize..4,
        max_shards in 1usize..10,
    ) {
        let spec = campus(
            seed,
            halls,
            per_hall,
            channels,
            4_000.0,
            &[sniffer_hall % halls],
        );
        assert_equivalent(&spec, SECOND, max_shards);
    }
}
