//! Finer-grained DCF behaviour tests: duration fields, NAV protection,
//! queue overflow, fading-driven rate selection, DSSS processing gain, and
//! the carrier-sense vulnerability window.

use wifi_frames::fc::FrameKind;
use wifi_frames::phy::Rate;
use wifi_frames::timing::delay;
use wifi_sim::geometry::Pos;
use wifi_sim::radio::{Fading, RadioConfig};
use wifi_sim::rate::RateAdaptation;
use wifi_sim::sniffer::SnifferConfig;
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::{FlowConfig, SizeDist, TrafficProfile};
use wifi_sim::{ClientConfig, SimConfig, Simulator};

const SEC: u64 = 1_000_000;

fn base_client(pos: Pos, fps: f64, payload: u32) -> ClientConfig {
    ClientConfig {
        pos,
        channel_idx: 0,
        rts_policy: RtsPolicy::Never,
        adaptation: RateAdaptation::Fixed(Rate::R11),
        traffic: TrafficProfile {
            uplink: FlowConfig::poisson(fps, SizeDist::fixed(payload)),
            downlink: FlowConfig::off(),
        },
        join_at_us: 0,
        leave_at_us: None,
        power_save_interval_us: None,
        frag_threshold: None,
    }
}

fn wide_open_sniffer() -> SnifferConfig {
    SnifferConfig {
        capacity_fps: 1e6,
        burst: 1e5,
        ..SnifferConfig::default()
    }
}

#[test]
fn data_frame_duration_covers_the_ack() {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    sim.add_client(base_client(Pos::new(5.0, 0.0), 20.0, 500));
    sim.add_sniffer(wide_open_sniffer());
    sim.run_until(3 * SEC);
    let trace = &sim.sniffers()[0].trace;
    for r in trace.iter().filter(|r| r.kind == FrameKind::Data) {
        assert_eq!(
            r.duration_us as u64,
            delay::SIFS + delay::ACK,
            "unicast data protects exactly one SIFS + ACK"
        );
    }
    for r in trace.iter().filter(|r| r.kind == FrameKind::Ack) {
        assert_eq!(r.duration_us, 0, "final ACK carries zero duration");
    }
}

#[test]
fn rts_duration_covers_the_whole_exchange() {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    let mut c = base_client(Pos::new(5.0, 0.0), 20.0, 1000);
    c.rts_policy = RtsPolicy::Always;
    sim.add_client(c);
    sim.add_sniffer(wide_open_sniffer());
    sim.run_until(3 * SEC);
    let trace = &sim.sniffers()[0].trace;
    let rts: Vec<_> = trace.iter().filter(|r| r.kind == FrameKind::Rts).collect();
    assert!(!rts.is_empty());
    // Duration = 3×SIFS + CTS + data air (1028 B at 11 Mbps: 192 + 748) + ACK.
    let data_air =
        wifi_frames::timing::frame_airtime_us(1028, Rate::R11, wifi_frames::phy::Preamble::Long);
    let expect = 3 * delay::SIFS + delay::CTS + data_air + delay::ACK;
    for r in &rts {
        assert_eq!(r.duration_us as u64, expect);
    }
    // And each CTS advertises the remaining time (duration - SIFS - CTS).
    for r in trace.iter().filter(|r| r.kind == FrameKind::Cts) {
        assert_eq!(r.duration_us as u64, expect - delay::SIFS - delay::CTS);
    }
}

#[test]
fn queue_overflow_drops_are_counted() {
    let mut sim = Simulator::new(SimConfig {
        queue_cap: 16,
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    // 2000 fps of 1500-byte frames: far beyond an 11 Mbps channel.
    sim.add_client(base_client(Pos::new(5.0, 0.0), 2000.0, 1472));
    sim.run_until(5 * SEC);
    let client = &sim.stations()[1];
    assert!(
        client.stats.queue_drops > 1000,
        "expected heavy queue loss, got {}",
        client.stats.queue_drops
    );
    assert!(client.stats.delivered > 100, "channel still drains");
}

#[test]
fn slow_fade_pushes_arf_down_and_recovery_pulls_it_up() {
    // One client, ARF, with a fading link: over a long run the trace must
    // contain both high-rate and low-rate phases.
    let mut sim = Simulator::new(SimConfig {
        radio: RadioConfig {
            tx_power_dbm: 13.0,
            pathloss_exp: 3.5,
            fading: Fading {
                sigma_db: 10.0,
                coherence_us: 2_000_000,
                seed: 3,
            },
            ..RadioConfig::default()
        },
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    let mut c = base_client(Pos::new(26.0, 0.0), 60.0, 800);
    c.adaptation = RateAdaptation::Arf(Rate::R11);
    sim.add_client(c);
    sim.add_sniffer(wide_open_sniffer());
    sim.run_until(60 * SEC);
    let trace = &sim.sniffers()[0].trace;
    let at = |rate: Rate| {
        trace
            .iter()
            .filter(|r| r.kind == FrameKind::Data && r.rate == rate)
            .count()
    };
    assert!(
        at(Rate::R11) > 100,
        "good phases run at 11 Mbps: {}",
        at(Rate::R11)
    );
    assert!(
        at(Rate::R1) + at(Rate::R2) + at(Rate::R5_5) > 50,
        "faded phases must push ARF below 11 Mbps ({} / {} / {})",
        at(Rate::R1),
        at(Rate::R2),
        at(Rate::R5_5)
    );
}

#[test]
fn processing_gain_lets_slow_frames_survive_equal_power_collisions() {
    // The despreading credit, checked at the radio model: an equal-power
    // interferer leaves raw SINR at ~0 dB, which kills CCK-11 outright but
    // leaves DBPSK-1 ~6 dB above its threshold.
    use wifi_sim::radio::{effective_sinr_db, processing_gain_db, ErrorModel};
    let signal = -60.0;
    let interferer = [-60.0];
    let noise = -95.0;
    let model = ErrorModel::default();

    let sinr_1 = effective_sinr_db(signal, &interferer, noise, processing_gain_db(Rate::R1));
    let sinr_11 = effective_sinr_db(signal, &interferer, noise, processing_gain_db(Rate::R11));
    assert!(sinr_1 > 10.0, "despread SINR at 1 Mbps: {sinr_1:.1}");
    assert!(sinr_11 < 1.0, "CCK-11 sees nearly raw SINR: {sinr_11:.1}");

    let p1 = model.frame_success_prob(sinr_1, Rate::R1, 428);
    let p11 = model.frame_success_prob(sinr_11, Rate::R11, 428);
    assert!(p1 > 0.95, "1 Mbps survives the collision: {p1:.3}");
    assert!(p11 < 0.01, "11 Mbps dies in the collision: {p11:.3}");
}

#[test]
fn vulnerability_window_scales_with_cs_delay() {
    // A longer carrier-sense detection delay must produce more collisions
    // on a contended channel.
    let collisions = |cs_delay_us: u64| -> u64 {
        let mut sim = Simulator::new(SimConfig {
            seed: 6,
            cs_delay_us,
            ..SimConfig::default()
        });
        sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
        for i in 0..12 {
            let angle = i as f64;
            sim.add_client(base_client(
                Pos::new(8.0 * angle.cos(), 8.0 * angle.sin()),
                120.0,
                400,
            ));
        }
        sim.run_until(10 * SEC);
        sim.medium_stats()[0].1
    };
    let short = collisions(5);
    let long = collisions(40);
    assert!(
        long > short,
        "cs_delay 40µs should collide more than 5µs: {long} vs {short}"
    );
}

#[test]
fn eifs_config_toggle_changes_behaviour_deterministically() {
    let run = |eifs: bool| {
        let mut sim = Simulator::new(SimConfig {
            seed: 8,
            eifs_enabled: eifs,
            radio: RadioConfig {
                fading: Fading::crowded_hall(4),
                ..RadioConfig::default()
            },
            ..SimConfig::default()
        });
        sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
        for i in 0..6 {
            sim.add_client(base_client(Pos::new(5.0 + i as f64 * 6.0, 0.0), 80.0, 800));
        }
        sim.add_sniffer(wide_open_sniffer());
        sim.run_until(5 * SEC);
        sim.sniffers()[0].trace.len()
    };
    // Not asserting which direction (workload-dependent), only that the
    // toggle is wired through and runs are self-consistent.
    let a = run(true);
    let b = run(true);
    assert_eq!(a, b);
    let _ = run(false);
}

#[test]
fn sniffer_hardware_saturation_engages_under_load() {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    for i in 0..6 {
        sim.add_client(base_client(Pos::new(4.0 + i as f64, 0.0), 150.0, 200));
    }
    sim.add_sniffer(SnifferConfig {
        capacity_fps: 100.0,
        burst: 20.0,
        ..SnifferConfig::default()
    });
    sim.run_until(5 * SEC);
    let st = &sim.sniffers()[0].stats;
    assert!(
        st.missed_hardware > 100,
        "a 100 fps sniffer on a busy channel must drop: {}",
        st.missed_hardware
    );
    assert!(st.captured > 300, "but it still captures at its capacity");
}

#[test]
fn ground_truth_can_be_disabled() {
    let mut sim = Simulator::new(SimConfig {
        record_ground_truth: false,
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    sim.add_client(base_client(Pos::new(5.0, 0.0), 50.0, 500));
    sim.run_until(2 * SEC);
    assert!(sim.ground_truth.records.is_empty());
    assert!(sim.ground_truth.transmissions > 50, "counters still work");
}

#[test]
fn power_save_null_frames_appear_and_are_acked() {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    let mut c = base_client(Pos::new(5.0, 0.0), 5.0, 300);
    c.power_save_interval_us = Some(2 * SEC);
    sim.add_client(c);
    sim.add_sniffer(wide_open_sniffer());
    sim.run_until(30 * SEC);
    let trace = &sim.sniffers()[0].trace;
    let nulls: Vec<_> = trace
        .iter()
        .filter(|r| r.kind == FrameKind::NullData)
        .collect();
    // ~12 ticks in 30 s at a 2–2.5 s jittered cadence.
    assert!(
        (8..=16).contains(&nulls.len()),
        "null frames: {}",
        nulls.len()
    );
    for n in &nulls {
        assert_eq!(n.mac_bytes, 28, "null frames carry no payload");
        assert_eq!(n.payload_bytes, 0);
    }
    // The analysis charges them as zero-payload data frames and they count
    // as acknowledged exchanges.
    let stats = congestion_smoke(trace);
    assert!(stats > 0, "nulls must be ACKed: {stats}");
}

/// Counts acknowledged NullData frames via DATA→ACK adjacency.
fn congestion_smoke(trace: &[wifi_frames::record::FrameRecord]) -> usize {
    trace
        .windows(2)
        .filter(|w| {
            w[0].kind == FrameKind::NullData
                && w[1].kind == FrameKind::Ack
                && Some(w[1].dst) == w[0].src
        })
        .count()
}

#[test]
fn fragmentation_splits_large_msdus_into_sifs_bursts() {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    let mut c = base_client(Pos::new(5.0, 0.0), 10.0, 1400);
    c.frag_threshold = Some(500);
    sim.add_client(c);
    sim.add_sniffer(wide_open_sniffer());
    sim.run_until(5 * SEC);
    let trace = &sim.sniffers()[0].trace;
    // Every 1400-byte MSDU becomes 500+500+400 fragments.
    let frag_sizes: Vec<u32> = trace
        .iter()
        .filter(|r| r.kind == FrameKind::Data)
        .map(|r| r.payload_bytes)
        .collect();
    assert!(!frag_sizes.is_empty());
    assert!(
        frag_sizes.iter().all(|&s| s == 500 || s == 400),
        "only fragment-sized payloads on air: {:?}",
        &frag_sizes[..frag_sizes.len().min(6)]
    );
    // Fragments of one burst are SIFS-spaced: data→ack gap 314 µs, then the
    // next fragment ends ≈ SIFS + its air time later. Count bursts: the
    // client delivered MSDUs, each as 3 fragments.
    let client = &sim.stations()[1];
    // Every burst is exactly 500 + 500 + 400.
    let tails = frag_sizes.iter().filter(|&&s| s == 400).count() as u64;
    let heads = frag_sizes.iter().filter(|&&s| s == 500).count() as u64;
    assert_eq!(
        heads,
        tails * 2,
        "each burst carries two 500-byte fragments"
    );
    // `delivered` also counts the probe and association MSDUs. The run may
    // end with the final burst's tail on air but its ACK still pending, so
    // that one burst may not have completed delivery.
    assert!(
        client.stats.delivered == tails + 2 || client.stats.delivered + 1 == tails + 2,
        "one delivered MSDU per complete burst (+probe/assoc): delivered={} bursts={}",
        client.stats.delivered,
        tails
    );
    assert!(tails > 20, "MSDUs flow");
    assert_eq!(client.stats.retry_drops, 0);
}

#[test]
fn fragmentation_off_keeps_msdus_whole() {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    sim.add_client(base_client(Pos::new(5.0, 0.0), 10.0, 1400));
    sim.add_sniffer(wide_open_sniffer());
    sim.run_until(3 * SEC);
    assert!(sim.sniffers()[0]
        .trace
        .iter()
        .filter(|r| r.kind == FrameKind::Data)
        .all(|r| r.payload_bytes == 1400));
}

#[test]
fn small_frames_are_never_fragmented() {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    let mut c = base_client(Pos::new(5.0, 0.0), 10.0, 300);
    c.frag_threshold = Some(500);
    sim.add_client(c);
    sim.add_sniffer(wide_open_sniffer());
    sim.run_until(3 * SEC);
    assert!(sim.sniffers()[0]
        .trace
        .iter()
        .filter(|r| r.kind == FrameKind::Data)
        .all(|r| r.payload_bytes == 300));
}

#[test]
fn probe_scan_precedes_association() {
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    sim.add_ap(Pos::new(20.0, 0.0), 0, 6);
    sim.add_client(base_client(Pos::new(5.0, 0.0), 5.0, 200));
    sim.add_sniffer(wide_open_sniffer());
    sim.run_until(2 * SEC);
    let trace = &sim.sniffers()[0].trace;
    let probe_req_at = trace
        .iter()
        .position(|r| r.kind == FrameKind::ProbeRequest)
        .expect("client probes before associating");
    let assoc_at = trace
        .iter()
        .position(|r| r.kind == FrameKind::AssocRequest)
        .expect("client associates");
    assert!(probe_req_at < assoc_at, "probe comes first");
    // Both APs answer the broadcast probe.
    let resps = trace
        .iter()
        .filter(|r| r.kind == FrameKind::ProbeResponse)
        .count();
    assert!(
        resps >= 2,
        "both APs should answer the probe, saw {resps} responses"
    );
    // Broadcast probes carry zero duration and draw no ACK.
    for r in trace.iter().filter(|r| r.kind == FrameKind::ProbeRequest) {
        assert_eq!(r.duration_us, 0);
    }
}
