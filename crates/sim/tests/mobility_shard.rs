//! Sharded ≡ unsharded under *mobility*: moves that change the coupling
//! cut mid-run must not move a byte of simulated output.
//!
//! A serial mobile driver advances component shards in coherence-tick
//! lockstep (moves only apply at tick boundaries), maintains a driver-side
//! [`SensingTopology`] incrementally, and watches for coupling-graph drift
//! with [`ShardPlan::drifted`]. When a move makes the natural cut escape
//! the current plan's medium grouping, the driver accumulates the
//! constraint edges of every signature seen so far
//! ([`CouplingSignature::constraint_edges`]), re-partitions with
//! [`ShardSpec::partition_with`], and deterministically restarts from t=0
//! replaying the same move schedule — the protocol documented in
//! `docs/DETERMINISM.md` §mobility. Plans only coarsen under accumulated
//! constraints, so the restart loop terminates; the merged result must be
//! byte-identical to an unsharded simulator driven through the identical
//! move schedule.

use wifi_frames::record::FrameRecord;
use wifi_frames::timing::SECOND;
use wifi_sim::geometry::Pos;
use wifi_sim::rate::RateAdaptation;
use wifi_sim::shard::{ShardPlan, ShardSpec};
use wifi_sim::sniffer::SnifferConfig;
use wifi_sim::station::RtsPolicy;
use wifi_sim::topology::SensingTopology;
use wifi_sim::traffic::{FlowConfig, SizeDist, TrafficProfile};
use wifi_sim::{ClientConfig, SimConfig, Simulator};

/// Reassociation hysteresis used by both drivers.
const HYSTERESIS_DB: f64 = 0.0;

/// One scheduled move: at tick boundary `at_us`, station `node` appears at
/// `pos` (ascending `(at_us, node)` — the canonical application order).
type MoveSchedule = Vec<(u64, usize, Pos)>;

fn canonical(records: &mut [FrameRecord]) {
    records.sort_by(|a, b| {
        a.timestamp_us
            .cmp(&b.timestamp_us)
            .then_with(|| format!("{a:?}").cmp(&format!("{b:?}")))
    });
}

struct Observed {
    sniffer_traces: Vec<Vec<FrameRecord>>,
    station_stats: Vec<(u64, String)>,
    ground_truth: Vec<FrameRecord>,
    transmissions: u64,
    events_processed: u64,
}

/// Gathers the comparable output of already-run simulators (each paired
/// with its global sniffer indices).
fn collect(mut sims: Vec<(Simulator, Vec<usize>)>, sniffers: usize) -> Observed {
    let mut sniffer_traces = vec![Vec::new(); sniffers];
    let mut station_stats = Vec::new();
    let mut ground_truth = Vec::new();
    let (mut transmissions, mut events) = (0, 0);
    for (sim, sniffer_idx) in &mut sims {
        for (local, &global) in sniffer_idx.iter().enumerate() {
            sniffer_traces[global] = std::mem::take(&mut sim.sniffers_mut()[local].trace);
        }
        for (i, st) in sim.stations().iter().enumerate() {
            station_stats.push((sim.hot().key[i], format!("{:?}", st.stats)));
        }
        ground_truth.extend(sim.ground_truth.records.iter().copied());
        transmissions += sim.ground_truth.transmissions;
        events += sim.events_processed();
    }
    station_stats.sort_by_key(|&(key, _)| key);
    canonical(&mut ground_truth);
    Observed {
        sniffer_traces,
        station_stats,
        ground_truth,
        transmissions,
        events_processed: events,
    }
}

/// The unsharded reference: one simulator, the same tick loop, the same
/// two-pass move-then-reassociate boundary protocol.
fn run_unsharded_mobile(
    spec: &ShardSpec,
    schedule: &MoveSchedule,
    until: u64,
    tick: u64,
) -> Observed {
    let mut sim = spec.build_unsharded();
    let mut now = 0u64;
    while now < until {
        now = (now + tick).min(until);
        sim.run_until(now);
        if now < until {
            let due: Vec<_> = schedule.iter().filter(|&&(at, _, _)| at == now).collect();
            for &&(_, node, pos) in &due {
                sim.move_station(node, pos);
            }
            for &&(_, node, _) in &due {
                sim.reassociate_strongest(node, HYSTERESIS_DB);
            }
        }
    }
    collect(
        vec![(sim, (0..spec.sniffer_count()).collect())],
        spec.sniffer_count(),
    )
}

/// Does the natural cut `sig` stay inside `plan`'s *medium* grouping?
/// Components become media of a shard's partitioned simulator, so any
/// united pair landing in different media — even of the same shard —
/// means a coupled interaction (or an argmax AP) the plan cannot express.
fn cut_contained(
    sig: &wifi_sim::shard::CouplingSignature,
    plan: &ShardPlan,
    n: usize,
    sniffers: usize,
) -> bool {
    // Entity (stations, then sniffers) → globally unique (shard, medium).
    let mut medium_of = vec![(usize::MAX, usize::MAX); n + sniffers];
    for (si, shard) in plan.shards.iter().enumerate() {
        for (gi, medium) in shard.station_media() {
            medium_of[gi] = (si, medium);
        }
        for (gs, medium) in shard.sniffer_media() {
            medium_of[n + gs] = (si, medium);
        }
    }
    sig.constraint_edges()
        .iter()
        .all(|&(a, b)| medium_of[a] == medium_of[b])
}

/// The mobile sharded driver: ticks, drift detection, constrained
/// re-partition with deterministic restart. Returns the merged observation
/// and how many restarts the schedule forced.
fn run_sharded_mobile(
    spec: &ShardSpec,
    station_pos: &[Pos],
    sniffer_pos: &[Pos],
    schedule: &MoveSchedule,
    until: u64,
    tick: u64,
    max_shards: usize,
) -> (Observed, usize) {
    let radio = spec.config().radio;
    let n = station_pos.len();
    let mut keep: Vec<(usize, usize)> = Vec::new();
    let mut restarts = 0usize;
    'attempt: loop {
        // The driver's topology starts at the build positions — the plan
        // must be valid for the whole replayed history.
        let mut topo = SensingTopology::default();
        topo.rebuild(station_pos, sniffer_pos, &radio);
        let plan = spec
            .partition_with(max_shards, &topo, &keep)
            .expect("test scenarios are shardable");
        let mut sims: Vec<Simulator> = plan.shards.iter().map(|s| spec.build_shard(s)).collect();
        // Global station → (shard, local node id).
        let mut loc = vec![(usize::MAX, usize::MAX); n];
        for (si, shard) in plan.shards.iter().enumerate() {
            for (local, gi) in shard.station_indices().enumerate() {
                loc[gi] = (si, local);
            }
        }
        let mut now = 0u64;
        while now < until {
            now = (now + tick).min(until);
            for sim in &mut sims {
                sim.run_until(now);
            }
            if now >= until {
                break;
            }
            let due: Vec<_> = schedule.iter().filter(|&&(at, _, _)| at == now).collect();
            if due.is_empty() {
                continue;
            }
            for &&(_, node, pos) in &due {
                let (si, local) = loc[node];
                sims[si].move_station(local, pos);
                topo.update_station(node, pos, &radio);
            }
            for &&(_, node, _) in &due {
                let (si, local) = loc[node];
                sims[si].reassociate_strongest(local, HYSTERESIS_DB);
            }
            // Epoch boundary: has the natural cut drifted out of the plan?
            if plan.drifted(spec, &topo) {
                let sig = spec
                    .coupling_signature(&topo)
                    .expect("coverage was checked at partition time");
                if !cut_contained(&sig, &plan, n, sniffer_pos.len()) {
                    // The new cut crosses the shard grouping: accumulate
                    // the constraints of both the plan's cut and the new
                    // one, and deterministically restart from t=0.
                    keep.extend(plan.signature.constraint_edges());
                    keep.extend(sig.constraint_edges());
                    restarts += 1;
                    assert!(restarts <= n, "restart loop failed to converge");
                    continue 'attempt;
                }
                // Drift that stays inside the grouping (a split, or a merge
                // already co-shard) is exact without re-partitioning.
            }
        }
        let observed = collect(
            sims.into_iter()
                .zip(&plan.shards)
                .map(|(sim, s)| (sim, s.sniffer_indices().collect()))
                .collect(),
            sniffer_pos.len(),
        );
        return (observed, restarts);
    }
}

fn traffic(fps: f64) -> TrafficProfile {
    TrafficProfile {
        uplink: FlowConfig::bursty(fps * 0.25, SizeDist::ietf_mix(), 20.0),
        downlink: FlowConfig::bursty(fps, SizeDist::ietf_mix(), 25.0),
    }
}

/// Two halls far beyond the coupling floor, one AP + `per_hall` clients
/// each, a sniffer in each hall. Returns the spec, the recorded positions,
/// and the node id of the "walker" (last client of hall A).
fn two_halls(seed: u64, per_hall: usize, spacing: f64) -> (ShardSpec, Vec<Pos>, Vec<Pos>, usize) {
    let mut spec = ShardSpec::new(SimConfig {
        seed,
        ..SimConfig::default()
    });
    let mut station_pos = Vec::new();
    let add_ap = |spec: &mut ShardSpec, pos: Pos, sp: &mut Vec<Pos>| {
        spec.add_ap(pos, 0, 6);
        sp.push(pos);
    };
    let mut walker = 0usize;
    add_ap(&mut spec, Pos::new(0.0, 0.0), &mut station_pos);
    add_ap(&mut spec, Pos::new(spacing, 0.0), &mut station_pos);
    for hall in 0..2 {
        let x0 = hall as f64 * spacing;
        for i in 0..per_hall {
            let pos = Pos::new(x0 + 3.0 + 2.0 * i as f64, 4.0);
            let node = spec.add_client(ClientConfig {
                pos,
                channel_idx: 0,
                rts_policy: RtsPolicy::Never,
                adaptation: RateAdaptation::Arf(wifi_frames::phy::Rate::R11),
                traffic: traffic(2.0 + i as f64),
                join_at_us: i as u64 * 100_000,
                leave_at_us: None,
                power_save_interval_us: None,
                frag_threshold: None,
            });
            station_pos.push(pos);
            if hall == 0 && i == per_hall - 1 {
                walker = node;
            }
        }
    }
    let mut sniffer_pos = Vec::new();
    for hall in 0..2 {
        let pos = Pos::new(hall as f64 * spacing + 5.0, 2.0);
        spec.add_sniffer(SnifferConfig {
            pos,
            channel_idx: 0,
            ..SnifferConfig::default()
        });
        sniffer_pos.push(pos);
    }
    (spec, station_pos, sniffer_pos, walker)
}

#[allow(clippy::too_many_arguments)]
fn assert_mobile_equivalent(
    spec: &ShardSpec,
    station_pos: &[Pos],
    sniffer_pos: &[Pos],
    schedule: &MoveSchedule,
    until: u64,
    tick: u64,
    max_shards: usize,
    expect_restart: bool,
) {
    let unsharded = run_unsharded_mobile(spec, schedule, until, tick);
    let (sharded, restarts) = run_sharded_mobile(
        spec,
        station_pos,
        sniffer_pos,
        schedule,
        until,
        tick,
        max_shards,
    );
    if expect_restart {
        assert!(restarts > 0, "schedule was built to change the cut");
    } else {
        assert_eq!(restarts, 0, "stable schedule must keep the plan");
    }
    assert_eq!(
        sharded.sniffer_traces, unsharded.sniffer_traces,
        "sniffer traces diverged under mobility"
    );
    assert_eq!(sharded.station_stats, unsharded.station_stats);
    assert_eq!(sharded.ground_truth, unsharded.ground_truth);
    assert_eq!(sharded.transmissions, unsharded.transmissions);
    assert_eq!(
        sharded.events_processed, unsharded.events_processed,
        "events-processed denominator diverged under mobility"
    );
}

/// A walker crosses from hall A to hall B mid-run: its coupling edges and
/// argmax AP flip to the other component, the drift detector fires, and
/// the constrained re-partition (both halls forced co-shard) reproduces
/// the unsharded run exactly.
#[test]
fn move_changing_component_cut_matches_unsharded() {
    let (spec, station_pos, sniffer_pos, walker) = two_halls(42, 3, 5_000.0);
    let tick = SECOND / 2;
    let schedule: MoveSchedule = vec![
        // First hop stays inside hall A; the cut is unchanged.
        (tick, walker, Pos::new(12.0, 6.0)),
        // Second hop lands next to hall B's AP: cut change.
        (2 * tick, walker, Pos::new(5_003.0, 2.0)),
    ];
    for max_shards in [2, 8] {
        assert_mobile_equivalent(
            &spec,
            &station_pos,
            &sniffer_pos,
            &schedule,
            2 * SECOND,
            tick,
            max_shards,
            true,
        );
    }
}

/// Moves that keep the cut (wandering within the home hall) never trigger
/// a re-partition and still match.
#[test]
fn stable_moves_keep_plan_and_match_unsharded() {
    let (spec, station_pos, sniffer_pos, walker) = two_halls(7, 3, 5_000.0);
    let tick = SECOND / 2;
    let schedule: MoveSchedule = vec![
        (tick, walker, Pos::new(10.0, 8.0)),
        (2 * tick, walker, Pos::new(1.0, 6.0)),
        (3 * tick, walker, Pos::new(14.0, 1.0)),
    ];
    assert_mobile_equivalent(
        &spec,
        &station_pos,
        &sniffer_pos,
        &schedule,
        2 * SECOND,
        tick,
        8,
        false,
    );
}
