//! Property tests pinning the batched PHY kernels to their scalar
//! originals, bit for bit.
//!
//! The golden digests depend on every SINR and frame-success value the
//! simulator ever computes, so `radio::batch` is only allowed to remove
//! loop overhead — never to reassociate a floating-point operation. These
//! tests compare `to_bits()` (not approximate equality) across random
//! interferer sets, rates, and frame sizes; any reordering of the
//! milliwatt accumulation or the logistic tail shows up as a last-ulp
//! mismatch long before it would move a golden.

use proptest::prelude::*;
use wifi_frames::phy::Rate;
use wifi_sim::radio::{batch, effective_sinr_db, processing_gain_db, ErrorModel};

/// dBm values are generated as integer tenths so strategies stay integral
/// while covering the full dynamic range at sub-dB granularity.
fn dbm(tenths: i32) -> f64 {
    tenths as f64 / 10.0
}

fn rate(idx: u8) -> Rate {
    match idx % 4 {
        0 => Rate::R1,
        1 => Rate::R2,
        2 => Rate::R5_5,
        _ => Rate::R11,
    }
}

proptest! {
    /// Batched SINR equals the scalar iterator fold exactly, for every
    /// prefix of the interferer list (prefixes catch an accumulation-order
    /// change that happens to cancel over the full list).
    fn batch_sinr_bit_identical(
        signal in -1200i32..300,
        interf in proptest::collection::vec(-1200i32..300, 0..24),
        noise in -1100i32..-600,
        rate_idx in 0u8..4,
    ) {
        let interf: Vec<f64> = interf.into_iter().map(dbm).collect();
        let pg = processing_gain_db(rate(rate_idx));
        for k in 0..=interf.len() {
            let scalar = effective_sinr_db(dbm(signal), &interf[..k], dbm(noise), pg);
            let batched = batch::effective_sinr_db(dbm(signal), &interf[..k], dbm(noise), pg);
            prop_assert_eq!(
                scalar.to_bits(),
                batched.to_bits(),
                "prefix {}: scalar {} batch {}",
                k,
                scalar,
                batched
            );
        }
    }

    /// Batched frame-success probabilities equal per-SINR scalar calls
    /// exactly: hoisting the per-frame constants out of the loop must not
    /// change a single result, element by element and in order.
    fn batch_success_bit_identical(
        sinrs in proptest::collection::vec(-400i32..800, 0..24),
        rate_idx in 0u8..4,
        bytes in 1u32..4096,
        steepness_tenths in 5i32..60,
        ref_bytes in 256u32..4096,
    ) {
        let sinrs: Vec<f64> = sinrs.into_iter().map(dbm).collect();
        let model = ErrorModel {
            steepness_db: dbm(steepness_tenths * 10),
            ref_bytes: ref_bytes as f64,
        };
        let r = rate(rate_idx);
        let mut out = Vec::new();
        batch::frame_success_probs(&model, &sinrs, r, bytes, &mut out);
        prop_assert_eq!(out.len(), sinrs.len());
        for (i, &sinr) in sinrs.iter().enumerate() {
            let scalar = model.frame_success_prob(sinr, r, bytes);
            prop_assert_eq!(
                scalar.to_bits(),
                out[i].to_bits(),
                "element {}: scalar {} batch {}",
                i,
                scalar,
                out[i]
            );
        }
    }

    /// The batch kernel appends: existing contents of `out` are preserved,
    /// so callers can reuse one scratch buffer across frames.
    fn batch_success_appends(
        sinrs in proptest::collection::vec(-400i32..800, 0..12),
        bytes in 1u32..4096,
    ) {
        let sinrs: Vec<f64> = sinrs.into_iter().map(dbm).collect();
        let model = ErrorModel::default();
        let mut out = vec![0.5f64];
        batch::frame_success_probs(&model, &sinrs, Rate::R2, bytes, &mut out);
        prop_assert_eq!(out.len(), sinrs.len() + 1);
        prop_assert_eq!(out[0].to_bits(), 0.5f64.to_bits());
    }
}
