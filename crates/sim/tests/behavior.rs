//! Behaviour-level tests of the DCF simulator: determinism, delivery,
//! contention, hidden terminals, rate adaptation, beacons, association.

use wifi_frames::fc::FrameKind;
use wifi_frames::phy::Rate;
use wifi_frames::record::FrameRecord;
use wifi_sim::geometry::Pos;
use wifi_sim::rate::RateAdaptation;
use wifi_sim::sniffer::SnifferConfig;
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::{FlowConfig, SizeDist, TrafficProfile};
use wifi_sim::{ClientConfig, SimConfig, Simulator};

const SEC: u64 = 1_000_000;

fn client(pos: Pos, fps: f64) -> ClientConfig {
    ClientConfig {
        pos,
        channel_idx: 0,
        rts_policy: RtsPolicy::Never,
        adaptation: RateAdaptation::Arf(Rate::R11),
        traffic: TrafficProfile {
            uplink: FlowConfig {
                mean_fps: fps,
                sizes: SizeDist::fixed(1000),
                mean_batch: 1.0,
            },
            downlink: FlowConfig::off(),
        },
        join_at_us: 0,
        leave_at_us: None,
        power_save_interval_us: None,
        frag_threshold: None,
    }
}

/// Builds a small cell: one AP at the origin, `n` clients on a ring.
fn small_cell(seed: u64, n: usize, fps: f64) -> Simulator {
    let mut sim = Simulator::new(SimConfig {
        seed,
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    for i in 0..n {
        let angle = i as f64 / n as f64 * std::f64::consts::TAU;
        let pos = Pos::new(8.0 * angle.cos(), 8.0 * angle.sin());
        sim.add_client(client(pos, fps));
    }
    sim.add_sniffer(SnifferConfig {
        pos: Pos::new(1.0, 1.0),
        capacity_fps: 100_000.0,
        burst: 10_000.0,
        ..SnifferConfig::default()
    });
    sim
}

#[test]
fn deterministic_given_seed() {
    let trace = |seed| {
        let mut sim = small_cell(seed, 5, 40.0);
        sim.run_until(3 * SEC);
        sim.sniffers()[0].trace.clone()
    };
    let a = trace(7);
    let b = trace(7);
    assert_eq!(a.len(), b.len());
    assert_eq!(a, b, "same seed must give identical traces");
    let c = trace(8);
    assert_ne!(a, c, "different seeds should diverge");
}

#[test]
fn low_load_delivers_everything_without_retries() {
    let mut sim = small_cell(1, 1, 10.0);
    sim.run_until(5 * SEC);
    let st = &sim.stations()[1]; // the lone client
    assert!(st.stats.delivered > 30, "delivered {}", st.stats.delivered);
    assert_eq!(st.stats.retry_drops, 0);
    assert_eq!(st.stats.queue_drops, 0);
    // At 10 fps on an idle channel, retries should be essentially absent:
    // attempts ≈ delivered (mgmt adds a couple).
    assert!(
        st.stats.tx_attempts <= st.stats.delivered + 3,
        "attempts {} vs delivered {}",
        st.stats.tx_attempts,
        st.stats.delivered
    );
}

#[test]
fn contention_causes_collisions_and_retries() {
    let mut sim = small_cell(3, 20, 200.0); // heavily saturated
    sim.run_until(5 * SEC);
    let (tx, collisions) = sim.medium_stats()[0];
    assert!(tx > 1000, "transmissions {tx}");
    assert!(
        collisions > tx / 100,
        "expected meaningful collisions, got {collisions}/{tx}"
    );
    // Retry flags must appear in the captured trace.
    let retries = sim.sniffers()[0].trace.iter().filter(|r| r.retry).count();
    assert!(retries > 10, "retries in trace: {retries}");
}

#[test]
fn saturation_throughput_is_bounded_and_positive() {
    let mut sim = small_cell(4, 10, 500.0);
    sim.run_until(10 * SEC);
    // Goodput: payload bytes of delivered MSDUs per second.
    let delivered: u64 = sim.stations().iter().map(|s| s.stats.delivered).sum();
    let secs = 10.0;
    let goodput_mbps = delivered as f64 * 1000.0 * 8.0 / 1e6 / secs;
    assert!(
        goodput_mbps > 1.0,
        "saturated cell should still move > 1 Mbps, got {goodput_mbps:.2}"
    );
    assert!(
        goodput_mbps < 8.0,
        "goodput cannot exceed the 11 Mbps channel's DCF ceiling, got {goodput_mbps:.2}"
    );
}

#[test]
fn arf_falls_back_under_heavy_contention() {
    let mut sim = small_cell(5, 25, 200.0);
    sim.run_until(10 * SEC);
    let trace = &sim.sniffers()[0].trace;
    let data: Vec<&FrameRecord> = trace.iter().filter(|r| r.kind == FrameKind::Data).collect();
    assert!(!data.is_empty());
    let slow = data.iter().filter(|r| r.rate == Rate::R1).count();
    assert!(
        slow > data.len() / 50,
        "ARF should push some traffic to 1 Mbps under contention: {slow}/{}",
        data.len()
    );
}

#[test]
fn fixed_rate_never_downshifts() {
    let mut sim = Simulator::new(SimConfig {
        seed: 6,
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    for i in 0..10 {
        let mut c = client(Pos::new(5.0 + i as f64, 0.0), 150.0);
        c.adaptation = RateAdaptation::Fixed(Rate::R11);
        sim.add_client(c);
    }
    sim.add_sniffer(SnifferConfig {
        capacity_fps: 100_000.0,
        burst: 10_000.0,
        ..SnifferConfig::default()
    });
    sim.run_until(5 * SEC);
    let non11 = sim.sniffers()[0]
        .trace
        .iter()
        .filter(|r| r.kind == FrameKind::Data && r.rate != Rate::R11)
        .count();
    assert_eq!(non11, 0, "fixed-rate stations must stay at 11 Mbps");
}

#[test]
fn beacons_arrive_on_schedule() {
    let mut sim = small_cell(7, 1, 1.0);
    sim.run_until(5 * SEC);
    let beacons: Vec<u64> = sim.sniffers()[0]
        .trace
        .iter()
        .filter(|r| r.kind == FrameKind::Beacon)
        .map(|r| r.timestamp_us)
        .collect();
    // ~48 beacons in 5 s at 102.4 ms; allow slack for contention and losses.
    assert!(
        (40..=50).contains(&beacons.len()),
        "beacon count {}",
        beacons.len()
    );
    // Gaps hover around the beacon interval.
    let gaps: Vec<u64> = beacons.windows(2).map(|w| w[1] - w[0]).collect();
    let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
    assert!(
        (95_000.0..=115_000.0).contains(&mean),
        "mean beacon gap {mean}"
    );
}

#[test]
fn association_handshake_appears_in_trace() {
    let mut sim = small_cell(8, 3, 20.0);
    sim.run_until(3 * SEC);
    let trace = &sim.sniffers()[0].trace;
    let reqs = trace
        .iter()
        .filter(|r| r.kind == FrameKind::AssocRequest)
        .count();
    let resps = trace
        .iter()
        .filter(|r| r.kind == FrameKind::AssocResponse)
        .count();
    assert!(reqs >= 3, "association requests: {reqs}");
    assert!(resps >= 3, "association responses: {resps}");
    // All clients ended up associated.
    for st in sim.stations().iter().filter(|s| !s.is_ap()) {
        assert!(
            st.associated_ap.is_some(),
            "client {} not associated",
            st.id
        );
    }
}

#[test]
fn uplink_and_downlink_both_flow() {
    let mut sim = Simulator::new(SimConfig {
        seed: 9,
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    sim.add_client(ClientConfig {
        pos: Pos::new(5.0, 0.0),
        channel_idx: 0,
        rts_policy: RtsPolicy::Never,
        adaptation: RateAdaptation::Arf(Rate::R11),
        traffic: TrafficProfile::symmetric(30.0),
        join_at_us: 0,
        leave_at_us: None,
        power_save_interval_us: None,
        frag_threshold: None,
    });
    sim.add_sniffer(SnifferConfig {
        capacity_fps: 100_000.0,
        burst: 10_000.0,
        ..SnifferConfig::default()
    });
    sim.run_until(5 * SEC);
    let ap_mac = sim.stations()[0].mac;
    let trace = &sim.sniffers()[0].trace;
    let up = trace
        .iter()
        .filter(|r| r.kind == FrameKind::Data && r.dst == ap_mac)
        .count();
    let down = trace
        .iter()
        .filter(|r| r.kind == FrameKind::Data && r.src == Some(ap_mac))
        .count();
    assert!(up > 50, "uplink frames {up}");
    assert!(down > 50, "downlink frames {down}");
}

#[test]
fn rts_cts_exchange_on_demand() {
    let mut sim = Simulator::new(SimConfig {
        seed: 10,
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    let mut c = client(Pos::new(5.0, 0.0), 50.0);
    c.rts_policy = RtsPolicy::Always;
    sim.add_client(c);
    sim.add_sniffer(SnifferConfig {
        capacity_fps: 100_000.0,
        burst: 10_000.0,
        ..SnifferConfig::default()
    });
    sim.run_until(5 * SEC);
    let trace = &sim.sniffers()[0].trace;
    let rts = trace.iter().filter(|r| r.kind == FrameKind::Rts).count();
    let cts = trace.iter().filter(|r| r.kind == FrameKind::Cts).count();
    let data = trace.iter().filter(|r| r.kind == FrameKind::Data).count();
    assert!(rts > 100, "RTS count {rts}");
    assert!(cts > 100, "CTS count {cts}");
    assert!(data > 100, "data count {data}");
    // On a clean channel RTS ≈ CTS ≈ data.
    assert!((rts as i64 - cts as i64).abs() < rts as i64 / 5);
}

#[test]
fn hidden_terminals_collide_and_rts_helps() {
    // Two clients 90 m apart (carrier-sense radius at default power is
    // ≈ 79 m), both 45 m from the AP: the classic hidden pair.
    let run = |rts: RtsPolicy, seed: u64| -> (f64, u64) {
        let mut sim = Simulator::new(SimConfig {
            seed,
            ..SimConfig::default()
        });
        sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
        for x in [-45.0f64, 45.0] {
            let mut c = client(Pos::new(x, 0.0), 120.0);
            c.rts_policy = rts;
            sim.add_client(c);
        }
        sim.run_until(10 * SEC);
        let delivered: u64 = sim
            .stations()
            .iter()
            .filter(|s| !s.is_ap())
            .map(|s| s.stats.delivered)
            .sum();
        let attempts: u64 = sim
            .stations()
            .iter()
            .filter(|s| !s.is_ap())
            .map(|s| s.stats.tx_attempts)
            .sum();
        let (_, collisions) = sim.medium_stats()[0];
        (delivered as f64 / attempts.max(1) as f64, collisions)
    };
    let (eff_no_rts, coll_no_rts) = run(RtsPolicy::Never, 11);
    let (eff_rts, _) = run(RtsPolicy::Always, 11);
    assert!(
        coll_no_rts > 100,
        "hidden terminals should collide: {coll_no_rts}"
    );
    assert!(
        eff_rts > eff_no_rts,
        "RTS/CTS should raise per-attempt delivery for hidden pairs: \
         {eff_rts:.3} vs {eff_no_rts:.3}"
    );
}

#[test]
fn sniffer_misses_out_of_range_traffic() {
    let mut sim = Simulator::new(SimConfig {
        seed: 12,
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    sim.add_client(client(Pos::new(5.0, 0.0), 50.0));
    // A sniffer beyond sensitivity range of the client and AP, but above
    // the pair-coupling floor: traffic reaches it too weak to decode and
    // is tallied as range misses.
    sim.add_sniffer(SnifferConfig {
        pos: Pos::new(300.0, 0.0),
        ..SnifferConfig::default()
    });
    // A sniffer below the coupling floor: the traffic is not on its air at
    // all, so nothing is captured *or* counted missed (this is what makes
    // sniffer accounting independent of RF-isolation sharding).
    sim.add_sniffer(SnifferConfig {
        pos: Pos::new(10_000.0, 0.0),
        ..SnifferConfig::default()
    });
    sim.run_until(3 * SEC);
    let sn = &sim.sniffers()[0];
    assert_eq!(sn.trace.len(), 0);
    assert!(sn.stats.missed_range > 100);
    let far = &sim.sniffers()[1];
    assert_eq!(far.trace.len(), 0);
    assert_eq!(far.stats.missed_range, 0);
}

#[test]
fn ground_truth_supersets_any_capture() {
    let mut sim = small_cell(13, 8, 80.0);
    sim.run_until(3 * SEC);
    let gt = sim.ground_truth.records.len();
    let cap = sim.sniffers()[0].trace.len();
    assert!(gt >= cap, "ground truth {gt} < captured {cap}");
    assert_eq!(gt as u64, sim.ground_truth.transmissions);
}

#[test]
fn leave_stops_traffic() {
    let mut sim = Simulator::new(SimConfig {
        seed: 14,
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    let mut c = client(Pos::new(5.0, 0.0), 100.0);
    c.leave_at_us = Some(2 * SEC);
    sim.add_client(c);
    sim.add_sniffer(SnifferConfig {
        capacity_fps: 100_000.0,
        burst: 10_000.0,
        ..SnifferConfig::default()
    });
    sim.run_until(6 * SEC);
    let late_data = sim.sniffers()[0]
        .trace
        .iter()
        .filter(|r| r.kind == FrameKind::Data && r.timestamp_us > 3 * SEC)
        .count();
    assert_eq!(late_data, 0, "no data frames after the user left");
}

#[test]
fn channels_are_isolated() {
    let mut sim = Simulator::new(SimConfig::ietf_three_channels(15));
    // AP + client on channel index 0 only.
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    sim.add_client(client(Pos::new(3.0, 0.0), 50.0));
    // Sniffers on all three channels at the same spot.
    for idx in 0..3 {
        sim.add_sniffer(SnifferConfig {
            pos: Pos::new(1.0, 0.0),
            channel_idx: idx,
            ..SnifferConfig::default()
        });
    }
    sim.run_until(3 * SEC);
    assert!(!sim.sniffers()[0].trace.is_empty());
    assert!(sim.sniffers()[1].trace.is_empty());
    assert!(sim.sniffers()[2].trace.is_empty());
}

#[test]
fn snr_adaptation_holds_high_rate_near_ap() {
    let mut sim = Simulator::new(SimConfig {
        seed: 16,
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    let mut c = client(Pos::new(3.0, 0.0), 80.0);
    c.adaptation = RateAdaptation::Snr(3.0);
    sim.add_client(c);
    sim.add_sniffer(SnifferConfig {
        capacity_fps: 100_000.0,
        burst: 10_000.0,
        ..SnifferConfig::default()
    });
    sim.run_until(5 * SEC);
    let data: Vec<&FrameRecord> = sim.sniffers()[0]
        .trace
        .iter()
        .filter(|r| r.kind == FrameKind::Data && !r.retry)
        .collect();
    let at11 = data.iter().filter(|r| r.rate == Rate::R11).count();
    // After the first SNR observation the client should sit at 11 Mbps.
    assert!(
        at11 as f64 > data.len() as f64 * 0.9,
        "{at11}/{} frames at 11 Mbps",
        data.len()
    );
}
