//! Tests of dynamic channel assignment: load-imbalanced networks should
//! rebalance, clients must follow their AP, and all carrier-sense
//! bookkeeping must stay consistent across switches.

use wifi_frames::fc::FrameKind;
use wifi_frames::phy::Rate;
use wifi_sim::config::ChannelMgmt;
use wifi_sim::geometry::Pos;
use wifi_sim::rate::RateAdaptation;
use wifi_sim::sniffer::SnifferConfig;
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::{FlowConfig, SizeDist, TrafficProfile};
use wifi_sim::{ClientConfig, SimConfig, Simulator};

const SEC: u64 = 1_000_000;

fn client(pos: Pos, channel_idx: usize, fps: f64) -> ClientConfig {
    ClientConfig {
        pos,
        channel_idx,
        rts_policy: RtsPolicy::Never,
        adaptation: RateAdaptation::Fixed(Rate::R11),
        traffic: TrafficProfile {
            uplink: FlowConfig::poisson(fps, SizeDist::fixed(800)),
            downlink: FlowConfig::off(),
        },
        join_at_us: 0,
        leave_at_us: None,
        power_save_interval_us: None,
        frag_threshold: None,
    }
}

/// Two APs crammed onto channel 0 of a three-channel network with heavy
/// load; channels 1 and 2 idle. With channel management on, at least one AP
/// must migrate off the hot channel and its clients must re-associate there.
fn imbalanced_sim(mgmt: Option<ChannelMgmt>) -> Simulator {
    let mut sim = Simulator::new(SimConfig {
        seed: 3,
        channel_mgmt: mgmt,
        ..SimConfig::ietf_three_channels(3)
    });
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    sim.add_ap(Pos::new(30.0, 0.0), 0, 6);
    for i in 0..16 {
        let x = (i % 8) as f64 * 4.0;
        let y = 3.0 + (i / 8) as f64 * 3.0;
        sim.add_client(client(Pos::new(x, y), 0, 60.0));
    }
    for ch in 0..3 {
        sim.add_sniffer(SnifferConfig {
            pos: Pos::new(15.0, 5.0),
            channel_idx: ch,
            capacity_fps: 1e6,
            burst: 1e5,
            ..SnifferConfig::default()
        });
    }
    sim
}

#[test]
fn static_assignment_leaves_other_channels_idle() {
    let mut sim = imbalanced_sim(None);
    sim.run_until(30 * SEC);
    assert!(!sim.sniffers()[0].trace.is_empty());
    let ch1_data = sim.sniffers()[1]
        .trace
        .iter()
        .filter(|r| r.kind == FrameKind::Data)
        .count();
    let ch2_data = sim.sniffers()[2]
        .trace
        .iter()
        .filter(|r| r.kind == FrameKind::Data)
        .count();
    assert_eq!(ch1_data + ch2_data, 0, "no management: nothing moves");
}

#[test]
fn dynamic_assignment_rebalances_the_hot_channel() {
    let mut sim = imbalanced_sim(Some(ChannelMgmt {
        eval_interval_us: 5 * SEC,
        switch_ratio: 1.5,
        follow_delay_max_us: 300_000,
    }));
    sim.run_until(60 * SEC);
    // An AP moved off channel 0…
    let ap_channels: Vec<usize> = sim
        .stations()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_ap())
        .map(|(i, _)| sim.hot().channel_idx[i])
        .collect();
    assert!(
        ap_channels.iter().any(|&c| c != 0),
        "at least one AP should leave the hot channel: {ap_channels:?}"
    );
    // …and took real traffic with it.
    let moved_data: usize = sim.sniffers()[1..]
        .iter()
        .map(|s| s.trace.iter().filter(|r| r.kind == FrameKind::Data).count())
        .sum();
    assert!(
        moved_data > 200,
        "data frames must flow on the new channel: {moved_data}"
    );
    // Followers re-associated (association handshakes on the new channel).
    let reassoc: usize = sim.sniffers()[1..]
        .iter()
        .map(|s| {
            s.trace
                .iter()
                .filter(|r| r.kind == FrameKind::AssocRequest)
                .count()
        })
        .sum();
    assert!(reassoc > 0, "clients must re-associate after following");
}

#[test]
fn balanced_load_does_not_flap() {
    // One AP per channel, equal load: evaluations must not trigger moves.
    let mut sim = Simulator::new(SimConfig {
        seed: 4,
        channel_mgmt: Some(ChannelMgmt {
            eval_interval_us: 3 * SEC,
            switch_ratio: 1.5,
            follow_delay_max_us: 200_000,
        }),
        ..SimConfig::ietf_three_channels(4)
    });
    for ch in 0..3usize {
        sim.add_ap(Pos::new(ch as f64 * 25.0, 0.0), ch, 6);
        for i in 0..4 {
            sim.add_client(client(Pos::new(ch as f64 * 25.0 + i as f64, 4.0), ch, 20.0));
        }
    }
    sim.run_until(30 * SEC);
    let ap_channels: Vec<usize> = sim
        .stations()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_ap())
        .map(|(i, _)| sim.hot().channel_idx[i])
        .collect();
    assert_eq!(ap_channels, vec![0, 1, 2], "balanced network must not flap");
}

#[test]
fn switching_is_deterministic() {
    let run = || {
        let mut sim = imbalanced_sim(Some(ChannelMgmt::default()));
        sim.run_until(40 * SEC);
        (
            sim.sniffers()[0].trace.len(),
            sim.sniffers()[1].trace.len(),
            sim.sniffers()[2].trace.len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn traffic_survives_the_migration() {
    let mut sim = imbalanced_sim(Some(ChannelMgmt {
        eval_interval_us: 5 * SEC,
        switch_ratio: 1.5,
        follow_delay_max_us: 300_000,
    }));
    sim.run_until(60 * SEC);
    // Every client keeps delivering after the shuffle: delivery counts are
    // healthy across the fleet (no one starves permanently). A couple of
    // clients may be mid-re-association when the run ends.
    let mut unassociated = 0;
    for st in sim.stations().iter().filter(|s| !s.is_ap()) {
        assert!(
            st.stats.delivered > 150,
            "client {} delivered only {}",
            st.id,
            st.stats.delivered
        );
        if st.associated_ap.is_none() {
            unassociated += 1;
        }
    }
    assert!(
        unassociated <= 3,
        "{unassociated} clients stranded without association"
    );
}
