//! Property-based bit-identity: incremental [`SensingTopology`] maintenance
//! against the full O(N²) `rebuild` reference.
//!
//! Random join/move/add-sniffer sequences must leave every RSSI matrix
//! cell, both direction of both bitsets (`sensed`, `coupled`), and every
//! sniffer RSSI row *bit-identical* (`f64::to_bits`, not approximate
//! equality) to a fresh rebuild of the same positions. That is the
//! contract that lets every downstream consumer — carrier sense, SINR,
//! shard drift signatures — treat the incrementally maintained cache as
//! indistinguishable from the from-scratch computation.

use proptest::prelude::*;
use wifi_sim::geometry::Pos;
use wifi_sim::radio::RadioConfig;
use wifi_sim::topology::SensingTopology;

/// One step of a maintenance schedule.
#[derive(Clone, Debug)]
enum Step {
    Join { x: f64, y: f64 },
    Move { which: usize, x: f64, y: f64 },
    Sniffer { x: f64, y: f64 },
}

/// Positions span co-located (< 1 m), mid-range, and far beyond the
/// coupling floor (~235 m for the default radio with exponent 3.5), so
/// bitset bits flip both ways across a schedule.
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0..30.0f64,
        0.0..400.0f64,
        // Exact repeats of a few lattice points force zero-distance pairs.
        (0u8..4).prop_map(|i| i as f64 * 100.0),
    ]
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (coord(), coord()).prop_map(|(x, y)| Step::Join { x, y }),
        (coord(), coord()).prop_map(|(x, y)| Step::Join { x, y }),
        (any::<usize>(), coord(), coord()).prop_map(|(which, x, y)| Step::Move { which, x, y }),
        (any::<usize>(), coord(), coord()).prop_map(|(which, x, y)| Step::Move { which, x, y }),
        (coord(), coord()).prop_map(|(x, y)| Step::Sniffer { x, y }),
    ]
}

/// Applies `steps` to an incrementally maintained topology, mirroring the
/// positions, and checks bit-identity against a fresh rebuild at the end
/// (and the invariant that every mutation bumps the epoch).
fn check_schedule(steps: &[Step], radio: &RadioConfig) {
    let mut topo = SensingTopology::default();
    let mut station_pos: Vec<Pos> = Vec::new();
    let mut sniffer_pos: Vec<Pos> = Vec::new();
    let mut last_epoch = topo.epoch();
    for s in steps {
        match *s {
            Step::Join { x, y } => {
                let p = Pos::new(x, y);
                let id = topo.add_station(p, radio);
                assert_eq!(id, station_pos.len());
                station_pos.push(p);
            }
            Step::Move { which, x, y } => {
                if station_pos.is_empty() {
                    continue;
                }
                let id = which % station_pos.len();
                let p = Pos::new(x, y);
                topo.update_station(id, p, radio);
                station_pos[id] = p;
            }
            Step::Sniffer { x, y } => {
                let p = Pos::new(x, y);
                let idx = topo.add_sniffer(p, radio);
                assert_eq!(idx, sniffer_pos.len());
                sniffer_pos.push(p);
            }
        }
        assert!(topo.epoch() > last_epoch, "every mutation bumps the epoch");
        last_epoch = topo.epoch();
    }

    let mut fresh = SensingTopology::default();
    fresh.rebuild(&station_pos, &sniffer_pos, radio);
    assert_eq!(topo.station_count(), station_pos.len());
    assert_eq!(topo.sniffer_count(), sniffer_pos.len());
    for a in 0..station_pos.len() {
        for b in 0..station_pos.len() {
            assert_eq!(
                topo.rssi(a, b).to_bits(),
                fresh.rssi(a, b).to_bits(),
                "rssi({a},{b})"
            );
            assert_eq!(topo.sensed(a, b), fresh.sensed(a, b), "sensed({a},{b})");
            assert_eq!(topo.coupled(a, b), fresh.coupled(a, b), "coupled({a},{b})");
        }
        for s in 0..sniffer_pos.len() {
            assert_eq!(
                topo.sniffer_rssi(s, a).to_bits(),
                fresh.sniffer_rssi(s, a).to_bits(),
                "sniffer_rssi({s},{a})"
            );
        }
    }
}

proptest! {
    /// Mixed join/move/sniffer schedules, un-hinted (geometric growth).
    #[test]
    fn incremental_matches_rebuild(steps in prop::collection::vec(step(), 1..40)) {
        check_schedule(&steps, &RadioConfig::default());
    }

    /// The same property under a tighter carrier-sense threshold, so the
    /// `sensed`/`coupled` rows diverge from each other.
    #[test]
    fn incremental_matches_rebuild_tight_cs(steps in prop::collection::vec(step(), 1..40)) {
        let radio = RadioConfig {
            cs_threshold_dbm: -80.0,
            ..RadioConfig::default()
        };
        check_schedule(&steps, &radio);
    }

    /// Join-only ramps against a `reserve` hint: the pre-sized path must be
    /// as bit-identical as the doubling path.
    #[test]
    fn hinted_ramp_matches_rebuild(
        joins in prop::collection::vec((coord(), coord()), 1..64),
    ) {
        let radio = RadioConfig::default();
        let mut topo = SensingTopology::default();
        topo.reserve(joins.len(), 1);
        topo.add_sniffer(Pos::new(10.0, 10.0), &radio);
        let mut pos = Vec::new();
        for &(x, y) in &joins {
            let p = Pos::new(x, y);
            topo.add_station(p, &radio);
            pos.push(p);
        }
        let mut fresh = SensingTopology::default();
        fresh.rebuild(&pos, &[Pos::new(10.0, 10.0)], &radio);
        for a in 0..pos.len() {
            for b in 0..pos.len() {
                prop_assert_eq!(topo.rssi(a, b).to_bits(), fresh.rssi(a, b).to_bits());
                prop_assert_eq!(topo.sensed(a, b), fresh.sensed(a, b));
                prop_assert_eq!(topo.coupled(a, b), fresh.coupled(a, b));
            }
            prop_assert_eq!(
                topo.sniffer_rssi(0, a).to_bits(),
                fresh.sniffer_rssi(0, a).to_bits()
            );
        }
    }
}
