//! Deterministic discrete-event queue on a hierarchical timing wheel.
//!
//! Events at equal timestamps pop in insertion order (a monotone sequence
//! number breaks ties), so a simulation is a pure function of its
//! configuration and seed. The original implementation was one global
//! `BinaryHeap`; at plenary scale the scheduler itself became the hot path —
//! every DIFS/backoff/SIFS/NAV re-arm paid an O(log n) sift against a heap
//! inflated by dead generation-mismatched timers. The wheel replaces that
//! with O(1) bucket pushes and batched, cache-friendly pops:
//!
//! * **Near future** (one 65.536 ms window of 4096 × 16 µs slots): an event
//!   is appended to its slot's FIFO bucket. Pops drain one slot at a time
//!   into a scratch buffer, stable-sorted by timestamp — stability preserves
//!   the sequence-number tie-break, so the pop stream is byte-identical to
//!   the heap's `(time, seq)` order.
//! * **Far future**: events overflow to a sorted spill level (a `BTreeMap`
//!   keyed by timestamp) and cascade into the wheel, at most once each, when
//!   their window arrives. An empty wheel jumps straight to the spill's
//!   first window instead of revolving through idle time.
//! * **Timers** ([`EventQueue::arm_timer`]): each node has at most one live
//!   contention timer, tracked in a per-node slot. Re-arming overwrites the
//!   slot — the previous entry is physically removed instead of lingering as
//!   a dead heap entry — and [`EventQueue::cancel_timer`] drops it outright.
//!   Cancelled fire times are kept in a tiny min-heap of "ghosts" so
//!   [`EventQueue::drain_ghosts`] can reproduce the historical
//!   events-processed denominator exactly (committed perf baselines
//!   fingerprint it); see the method docs.
//!
//! Queue churn is observable through [`EventQueue::stats`]:
//! pushed/popped/stale-dropped/cascaded counters that run reports surface
//! per cell.

use crate::arena::VecPool;
use std::collections::BTreeMap;
use wifi_frames::timing::Micros;

/// Identifies a node (station, AP, or sniffer) inside one simulation.
pub type NodeId = usize;

/// Timer kinds a station can arm. Contention timers (the first four) are
/// cancellable: arming via [`EventQueue::arm_timer`] overwrites the node's
/// single timer slot. `SifsResponse` and `NavExpired` are condition-validated
/// plain events and may coexist with a contention timer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimerKind {
    /// DIFS (or EIFS) wait finished; begin or resume backoff countdown.
    DeferDone,
    /// Backoff countdown reached zero; transmit.
    BackoffDone,
    /// The SIFS before an owed CTS/ACK response elapsed.
    SifsResponse,
    /// CTS did not arrive in time.
    CtsTimeout,
    /// ACK did not arrive in time.
    AckTimeout,
    /// NAV expired.
    NavExpired,
}

impl TimerKind {
    /// Whether this kind lives in the node's cancellable timer slot.
    pub fn is_cancellable(self) -> bool {
        matches!(
            self,
            TimerKind::DeferDone
                | TimerKind::BackoffDone
                | TimerKind::CtsTimeout
                | TimerKind::AckTimeout
        )
    }
}

/// A simulation event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// A transmission that started earlier finishes on `medium`.
    TxEnd {
        /// Index into the simulator's media list (a whole channel in an
        /// unsharded simulator, an RF-isolation component in a sharded one).
        medium: usize,
        /// The transmission id handed out by the medium.
        tx_id: u64,
    },
    /// Carrier sense of a transmission becomes detectable at listeners —
    /// one detection delay after the transmission began. Stations whose
    /// backoff expires inside that window transmit concurrently; this is the
    /// collision vulnerability window of CSMA.
    CsBusy {
        /// Index into the simulator's media list.
        medium: usize,
        /// The transmission whose energy becomes detectable.
        tx_id: u64,
    },
    /// A station timer fires. `gen` must match the station's current timer
    /// generation or the event is stale and dropped (for cancellable kinds
    /// this is a belt-and-braces check — the queue removes them eagerly).
    Timer {
        /// The station.
        node: NodeId,
        /// Generation stamp at arming time.
        gen: u64,
        /// Which timer.
        kind: TimerKind,
    },
    /// A traffic source emits its next MSDU.
    TrafficArrival {
        /// The station whose flow fires.
        node: NodeId,
        /// Flow index within the station.
        flow: usize,
    },
    /// A scheduled beacon target time (TBTT).
    BeaconDue {
        /// The AP.
        node: NodeId,
    },
    /// An AP evaluates per-channel load and may switch channels (the
    /// Airespace-style dynamic channel assignment of the paper's venue).
    ChannelEval {
        /// The AP.
        node: NodeId,
    },
    /// A client follows its AP to a new channel and re-associates.
    FollowAp {
        /// The client.
        node: NodeId,
        /// Destination channel index.
        channel_idx: usize,
    },
    /// A power-saving client emits its next Null-function frame.
    PowerSaveTick {
        /// The client.
        node: NodeId,
    },
    /// A user powers on and begins associating.
    UserJoin {
        /// The client.
        node: NodeId,
    },
    /// A user leaves the venue.
    UserLeave {
        /// The client.
        node: NodeId,
    },
}

/// Queue-churn counters, surfaced per sweep cell through run reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events inserted (plain pushes and timer arms).
    pub pushed: u64,
    /// Events delivered to the simulator.
    pub popped: u64,
    /// Timers dropped at cancellation/re-arm time instead of popping dead.
    pub stale_dropped: u64,
    /// Far-future events cascaded from the spill level into the wheel.
    pub cascaded: u64,
}

/// Width of one wheel slot, as a power-of-two shift (16 µs).
const SLOT_SHIFT: u32 = 4;
/// Number of slots per wheel window (must be a power of two).
const NUM_SLOTS: usize = 4096;
/// Shift from a timestamp to its window index.
const WINDOW_SHIFT: u32 = SLOT_SHIFT + NUM_SLOTS.trailing_zeros();
/// Span of one wheel window in microseconds (65.536 ms).
const WINDOW_US: Micros = (NUM_SLOTS as Micros) << SLOT_SHIFT;
/// Largest capacity (entries) a drained slot bucket may keep. Buckets grow
/// to the burstiest moment their 16 µs slot ever saw (join storms, beacon
/// alignment), and with 4096 of them those peaks used to accumulate into
/// megabytes of idle capacity — the ramp-320 peak-RSS regression the wheel
/// introduced. Dropping oversized buffers back to the allocator caps the
/// wheel's resident footprint at `NUM_SLOTS × SLOT_RETAIN_CAP` entries
/// (~900 kB worst case; in practice a few hundred kB since only touched
/// slots hold anything) while keeping the common few-events-per-slot path
/// allocation-free. Relinquished buffers go to the queue's [`VecPool`]
/// arena first (bounded, so the RSS cap holds; see [`POOL_SPARES`]) and
/// feed the next burst or spill bucket without allocator traffic; 4 covers
/// the typical slot population and measures within noise on events/s.
const SLOT_RETAIN_CAP: usize = 4;
/// Entry buffers the queue's arena keeps warm for reuse as spill buckets
/// and burst slots. With [`POOL_RETAIN_CAP`] this bounds the arena's
/// resident ceiling at `8 × 32 × size_of::<Entry>()` (~16 kB) — measured
/// against the ramp-320 peak-RSS pin, retaining more (16 × 256) showed up
/// as a ~200 kB regression because buffers the wheel used to free at their
/// burst peak stayed resident.
const POOL_SPARES: usize = 8;
/// Largest capacity (entries) the arena retains; burst-grown outliers are
/// still dropped to the allocator, exactly the RSS protection
/// [`SLOT_RETAIN_CAP`] was introduced for.
const POOL_RETAIN_CAP: usize = 32;

#[derive(Clone, Copy, Debug)]
struct Entry {
    at: Micros,
    seq: u64,
    event: Event,
    /// Tombstone: cancelled while already drained into the scratch buffer.
    dead: bool,
}

/// A node's armed cancellable timer: enough to locate the entry for removal.
#[derive(Clone, Copy)]
struct ArmedTimer {
    seq: u64,
    at: Micros,
}

/// The event queue.
pub struct EventQueue {
    /// The wheel: fixed-width FIFO buckets covering one window.
    slots: Vec<Vec<Entry>>,
    /// One bit per slot; makes "next non-empty slot" a few word scans.
    occupancy: Vec<u64>,
    /// Start time of `slots[0]` in the current window (window-aligned).
    wheel_base: Micros,
    /// Next slot index to drain.
    cursor: usize,
    /// Live entries resident in the wheel.
    wheel_len: usize,
    /// The drained slot, sorted by `(at, seq)`, consumed from `current_pos`.
    current: Vec<Entry>,
    current_pos: usize,
    /// Exclusive upper bound of the drained region: pushes below it merge
    /// into `current`, keeping the pop stream totally ordered.
    current_end: Micros,
    /// Far-future overflow, keyed by timestamp; each value vec is in
    /// insertion (sequence) order.
    spill: BTreeMap<Micros, Vec<Entry>>,
    spill_len: usize,
    /// Bounded arena recycling entry buffers between drained slots and
    /// spill buckets (per queue, hence per lockstep shard).
    pool: VecPool<Entry>,
    /// Per-node armed cancellable timer.
    armed: Vec<Option<ArmedTimer>>,
    /// Fire times of cancelled timers, for events-processed parity (see
    /// [`EventQueue::drain_ghosts`]). Unordered: timers are short-lived, so
    /// nearly every ghost is swept by the next drain — a flat retain scan
    /// beats heap sifts on the ~⅓ of pushes that end up cancelled.
    ghosts: Vec<Micros>,
    next_seq: u64,
    /// Live entries (excludes tombstones).
    live: usize,
    /// Physical entries (includes tombstones not yet skipped).
    raw: usize,
    stats: QueueStats,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..NUM_SLOTS).map(|_| Vec::new()).collect(),
            occupancy: vec![0u64; NUM_SLOTS / 64],
            wheel_base: 0,
            cursor: 0,
            wheel_len: 0,
            current: Vec::new(),
            current_pos: 0,
            current_end: 0,
            spill: BTreeMap::new(),
            spill_len: 0,
            pool: VecPool::new(POOL_SPARES, POOL_RETAIN_CAP),
            armed: Vec::new(),
            ghosts: Vec::new(),
            next_seq: 0,
            live: 0,
            raw: 0,
            stats: QueueStats::default(),
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: Micros, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.pushed += 1;
        self.insert(Entry {
            at,
            seq,
            event,
            dead: false,
        });
    }

    /// Arms `node`'s single cancellable timer at `at`, overwriting (and
    /// physically removing) any previously armed one.
    pub fn arm_timer(&mut self, node: NodeId, gen: u64, kind: TimerKind, at: Micros) {
        debug_assert!(kind.is_cancellable());
        self.cancel_timer(node);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.pushed += 1;
        if self.armed.len() <= node {
            self.armed.resize(node + 1, None);
        }
        self.armed[node] = Some(ArmedTimer { seq, at });
        self.insert(Entry {
            at,
            seq,
            event: Event::Timer { node, gen, kind },
            dead: false,
        });
    }

    /// Cancels `node`'s armed timer, removing its entry from the queue. The
    /// fire time is recorded as a ghost so the events-processed denominator
    /// stays identical to the lazy-deletion scheme this replaced.
    pub fn cancel_timer(&mut self, node: NodeId) {
        let Some(timer) = self.armed.get_mut(node).and_then(Option::take) else {
            return;
        };
        self.stats.stale_dropped += 1;
        self.live -= 1;
        self.ghosts.push(timer.at);
        if timer.at < self.current_end {
            // Already drained: tombstone in place so consume indices hold.
            for e in self.current[self.current_pos..].iter_mut() {
                if e.seq == timer.seq {
                    e.dead = true;
                    return;
                }
            }
            unreachable!("armed timer not found in drained buffer");
        } else if timer.at < self.wheel_base + WINDOW_US {
            let idx = ((timer.at - self.wheel_base) >> SLOT_SHIFT) as usize;
            let slot = &mut self.slots[idx];
            let pos = slot
                .iter()
                .position(|e| e.seq == timer.seq)
                .expect("armed timer not found in wheel slot");
            slot.remove(pos);
            if slot.is_empty() {
                self.occupancy[idx >> 6] &= !(1u64 << (idx & 63));
            }
            self.wheel_len -= 1;
            self.raw -= 1;
        } else {
            let entries = self
                .spill
                .get_mut(&timer.at)
                .expect("armed timer not found in spill");
            let pos = entries
                .iter()
                .position(|e| e.seq == timer.seq)
                .expect("armed timer not found in spill bucket");
            entries.remove(pos);
            if entries.is_empty() {
                if let Some(bucket) = self.spill.remove(&timer.at) {
                    self.pool.put(bucket);
                }
            }
            self.spill_len -= 1;
            self.raw -= 1;
        }
    }

    fn insert(&mut self, e: Entry) {
        self.live += 1;
        self.raw += 1;
        if e.at < self.current_end {
            // The drained region: merge at the entry's (at, seq) position,
            // never before the consume cursor.
            let pos = self.current_pos
                + self.current[self.current_pos..]
                    .partition_point(|x| (x.at, x.seq) <= (e.at, e.seq));
            self.current.insert(pos, e);
        } else if e.at < self.wheel_base + WINDOW_US {
            let idx = ((e.at - self.wheel_base) >> SLOT_SHIFT) as usize;
            self.slots[idx].push(e);
            self.occupancy[idx >> 6] |= 1u64 << (idx & 63);
            self.wheel_len += 1;
        } else {
            match self.spill.entry(e.at) {
                std::collections::btree_map::Entry::Occupied(mut o) => o.get_mut().push(e),
                std::collections::btree_map::Entry::Vacant(slot) => {
                    let mut bucket = self.pool.take();
                    bucket.push(e);
                    slot.insert(bucket);
                }
            }
            self.spill_len += 1;
        }
    }

    /// Moves every spill entry belonging to the current window into its
    /// wheel slot. Called once per window advance, so each far-future event
    /// cascades at most once.
    fn cascade_window(&mut self) {
        let window_end = self.wheel_base + WINDOW_US;
        match self.spill.keys().next() {
            Some(&first) if first < window_end => {}
            _ => return,
        }
        let rest = self.spill.split_off(&window_end);
        let take = std::mem::replace(&mut self.spill, rest);
        for (at, mut entries) in take {
            let idx = ((at - self.wheel_base) >> SLOT_SHIFT) as usize;
            let n = entries.len();
            // Appending (never prepending) keeps sequence order within the
            // slot; the drained bucket goes back to the arena.
            self.slots[idx].append(&mut entries);
            self.pool.put(entries);
            self.occupancy[idx >> 6] |= 1u64 << (idx & 63);
            self.wheel_len += n;
            self.spill_len -= n;
            self.stats.cascaded += n as u64;
        }
    }

    /// The first occupied slot at or after `cursor`, via the bitmap.
    fn next_occupied_slot(&self) -> Option<usize> {
        let mut word_idx = self.cursor >> 6;
        if word_idx >= self.occupancy.len() {
            return None;
        }
        let mut word = self.occupancy[word_idx] & (!0u64 << (self.cursor & 63));
        loop {
            if word != 0 {
                return Some((word_idx << 6) + word.trailing_zeros() as usize);
            }
            word_idx += 1;
            if word_idx >= self.occupancy.len() {
                return None;
            }
            word = self.occupancy[word_idx];
        }
    }

    /// Ensures `current[current_pos]` is the earliest live entry, draining
    /// slots, advancing windows, and cascading the spill as needed. Returns
    /// false when the queue is empty.
    fn prepare_next(&mut self) -> bool {
        loop {
            while self.current_pos < self.current.len() {
                if self.current[self.current_pos].dead {
                    self.current_pos += 1;
                    self.raw -= 1;
                } else {
                    return true;
                }
            }
            self.current.clear();
            self.current_pos = 0;
            if self.live == 0 {
                return false;
            }
            if self.wheel_len == 0 {
                // Nothing in this window: jump straight to the spill's first
                // window instead of revolving through idle time.
                let &first = self.spill.keys().next().expect("live entries exist");
                self.wheel_base = (first >> WINDOW_SHIFT) << WINDOW_SHIFT;
                self.cursor = 0;
                self.current_end = self.wheel_base;
                self.cascade_window();
            }
            match self.next_occupied_slot() {
                Some(s) => {
                    std::mem::swap(&mut self.current, &mut self.slots[s]);
                    // The slot inherits the previous drain buffer; if a past
                    // burst left it oversized, hand it to the arena (which
                    // drops it if it exceeds the retention policy) so the
                    // next burst or spill bucket reuses it.
                    if self.slots[s].capacity() > SLOT_RETAIN_CAP {
                        let v = std::mem::take(&mut self.slots[s]);
                        self.pool.put(v);
                    }
                    self.occupancy[s >> 6] &= !(1u64 << (s & 63));
                    self.wheel_len -= self.current.len();
                    // Stable sort: equal timestamps keep insertion (seq)
                    // order, reproducing the heap's (time, seq) tie-break.
                    self.current.sort_by_key(|e| e.at);
                    self.cursor = s + 1;
                    self.current_end = self.wheel_base + (((s + 1) as Micros) << SLOT_SHIFT);
                }
                None => {
                    self.wheel_base += WINDOW_US;
                    self.cursor = 0;
                    self.current_end = self.wheel_base;
                    self.cascade_window();
                }
            }
        }
    }

    /// Clears the armed-timer slot when its entry is delivered.
    #[inline]
    fn note_materialized(&mut self, e: &Entry) {
        if let Event::Timer { node, kind, .. } = e.event {
            if kind.is_cancellable() {
                if let Some(Some(t)) = self.armed.get(node) {
                    if t.seq == e.seq {
                        self.armed[node] = None;
                    }
                }
            }
        }
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Micros, Event)> {
        if !self.prepare_next() {
            return None;
        }
        let e = self.current[self.current_pos];
        self.current_pos += 1;
        self.live -= 1;
        self.raw -= 1;
        self.stats.popped += 1;
        self.note_materialized(&e);
        Some((e.at, e.event))
    }

    /// Pops every event sharing the earliest timestamp, provided that
    /// timestamp is `<= until`, appending them to `out` in sequence order.
    /// Returns the batch timestamp, or `None` (touching nothing) when the
    /// queue is empty or the next event is later than `until`. Events pushed
    /// at the same timestamp *during* batch processing carry higher sequence
    /// numbers, so re-calling yields them as a follow-up batch — identical
    /// to one-at-a-time popping.
    pub fn pop_batch(&mut self, until: Micros, out: &mut Vec<Event>) -> Option<Micros> {
        if !self.prepare_next() {
            return None;
        }
        let at = self.current[self.current_pos].at;
        if at > until {
            return None;
        }
        while self.current_pos < self.current.len() {
            let e = self.current[self.current_pos];
            if e.dead {
                self.current_pos += 1;
                self.raw -= 1;
                continue;
            }
            if e.at != at {
                break;
            }
            self.current_pos += 1;
            self.live -= 1;
            self.raw -= 1;
            self.stats.popped += 1;
            self.note_materialized(&e);
            out.push(e.event);
        }
        Some(at)
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&mut self) -> Option<Micros> {
        if !self.prepare_next() {
            return None;
        }
        Some(self.current[self.current_pos].at)
    }

    /// Counts (and forgets) cancelled timers whose fire time is `<= now`.
    ///
    /// Under lazy deletion these entries would have popped as stale events
    /// and been counted into the simulator's events-processed figure — the
    /// denominator committed perf baselines fingerprint. Eager cancellation
    /// removes the entries; this hands the simulator the exact count the
    /// lazy scheme would have produced by the time `now` is reached.
    pub fn drain_ghosts(&mut self, now: Micros) -> u64 {
        let before = self.ghosts.len();
        self.ghosts.retain(|&t| t > now);
        (before - self.ghosts.len()) as u64
    }

    /// Physical entries present, including cancelled-but-unskipped
    /// tombstones in the drained buffer. Under the heap this also counted
    /// dead generation-mismatched timers; see [`EventQueue::live_len`].
    pub fn len(&self) -> usize {
        self.raw
    }

    /// Pending events that will actually be delivered.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Churn counters since construction.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::BeaconDue { node: 3 });
        q.push(10, Event::BeaconDue { node: 1 });
        q.push(20, Event::BeaconDue { node: 2 });
        let order: Vec<Micros> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for node in 0..100 {
            q.push(5, Event::UserJoin { node });
        }
        let mut nodes = Vec::new();
        while let Some((t, Event::UserJoin { node })) = q.pop() {
            assert_eq!(t, 5);
            nodes.push(node);
        }
        assert_eq!(nodes, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(42, Event::BeaconDue { node: 0 });
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_spills_and_cascades_in_order() {
        let mut q = EventQueue::new();
        // Far beyond the first window, interleaved with near events.
        q.push(10 * WINDOW_US + 7, Event::BeaconDue { node: 4 });
        q.push(3, Event::BeaconDue { node: 1 });
        q.push(WINDOW_US + 1, Event::BeaconDue { node: 3 });
        q.push(WINDOW_US - 1, Event::BeaconDue { node: 2 });
        q.push(40 * WINDOW_US, Event::BeaconDue { node: 5 });
        let order: Vec<(Micros, NodeId)> = std::iter::from_fn(|| {
            q.pop().map(|(t, e)| match e {
                Event::BeaconDue { node } => (t, node),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(
            order,
            vec![
                (3, 1),
                (WINDOW_US - 1, 2),
                (WINDOW_US + 1, 3),
                (10 * WINDOW_US + 7, 4),
                (40 * WINDOW_US, 5),
            ]
        );
        assert!(q.stats().cascaded >= 3);
    }

    #[test]
    fn push_into_drained_region_keeps_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::BeaconDue { node: 1 });
        q.push(9, Event::BeaconDue { node: 3 });
        assert_eq!(q.pop().map(|(t, _)| t), Some(5));
        // 5 and 9 share the 16 µs slot, already drained; a push at 7 must
        // still pop before 9.
        q.push(7, Event::BeaconDue { node: 2 });
        assert_eq!(q.pop().map(|(t, _)| t), Some(7));
        assert_eq!(q.pop().map(|(t, _)| t), Some(9));
    }

    #[test]
    fn rearm_overwrites_and_cancel_removes() {
        let mut q = EventQueue::new();
        q.arm_timer(2, 1, TimerKind::DeferDone, 100);
        assert_eq!((q.len(), q.live_len()), (1, 1));
        // Re-arm: the old entry is gone, not lingering as a dead one.
        q.arm_timer(2, 2, TimerKind::BackoffDone, 300);
        assert_eq!((q.len(), q.live_len()), (1, 1));
        assert_eq!(q.stats().stale_dropped, 1);
        q.cancel_timer(2);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // Ghosts reproduce the lazy-deletion pop count: both cancelled
        // timers would have popped (stale) by t=300.
        assert_eq!(q.drain_ghosts(99), 0);
        assert_eq!(q.drain_ghosts(300), 2);
        assert_eq!(q.drain_ghosts(1_000_000), 0);
    }

    #[test]
    fn cancel_finds_entries_in_every_region() {
        let mut q = EventQueue::new();
        // Spill region.
        q.arm_timer(0, 1, TimerKind::AckTimeout, 5 * WINDOW_US);
        q.cancel_timer(0);
        assert!(q.is_empty());
        // Wheel region.
        q.arm_timer(0, 2, TimerKind::AckTimeout, 50);
        q.cancel_timer(0);
        assert!(q.is_empty());
        // Drained (current) region: same slot as an already-popped event.
        q.push(3, Event::BeaconDue { node: 9 });
        q.arm_timer(0, 3, TimerKind::AckTimeout, 4);
        assert_eq!(q.pop().map(|(t, _)| t), Some(3));
        q.cancel_timer(0);
        assert_eq!(q.live_len(), 0);
        assert_ne!(q.len(), 0, "tombstone still physically present");
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0, "tombstone reclaimed on pop");
    }

    #[test]
    fn batch_pop_returns_equal_timestamp_runs() {
        let mut q = EventQueue::new();
        q.push(10, Event::UserJoin { node: 0 });
        q.push(10, Event::UserJoin { node: 1 });
        q.push(20, Event::UserJoin { node: 2 });
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(100, &mut out), Some(10));
        assert_eq!(
            out,
            vec![Event::UserJoin { node: 0 }, Event::UserJoin { node: 1 }]
        );
        out.clear();
        // Bounded by `until`: nothing at 20 is touched.
        assert_eq!(q.pop_batch(15, &mut out), None);
        assert!(out.is_empty());
        assert_eq!(q.pop_batch(20, &mut out), Some(20));
        assert_eq!(out, vec![Event::UserJoin { node: 2 }]);
        assert!(q.is_empty());
    }

    #[test]
    fn stats_account_for_all_flows() {
        let mut q = EventQueue::new();
        q.push(1, Event::BeaconDue { node: 0 });
        q.arm_timer(1, 1, TimerKind::DeferDone, 30);
        q.arm_timer(1, 2, TimerKind::DeferDone, 60); // re-arm drops one
        while q.pop().is_some() {}
        let s = q.stats();
        assert_eq!(s.pushed, 3);
        assert_eq!(s.popped, 2);
        assert_eq!(s.stale_dropped, 1);
        assert_eq!(s.pushed, s.popped + s.stale_dropped);
    }
}
