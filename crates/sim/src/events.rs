//! Deterministic discrete-event queue.
//!
//! Events at equal timestamps pop in insertion order (a monotone sequence
//! number breaks ties), so a simulation is a pure function of its
//! configuration and seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wifi_frames::timing::Micros;

/// Identifies a node (station, AP, or sniffer) inside one simulation.
pub type NodeId = usize;

/// Timer kinds a station can arm. Stale timers are ignored via the
/// generation counter carried alongside.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimerKind {
    /// DIFS (or EIFS) wait finished; begin or resume backoff countdown.
    DeferDone,
    /// Backoff countdown reached zero; transmit.
    BackoffDone,
    /// The SIFS before an owed CTS/ACK response elapsed.
    SifsResponse,
    /// CTS did not arrive in time.
    CtsTimeout,
    /// ACK did not arrive in time.
    AckTimeout,
    /// NAV expired.
    NavExpired,
}

/// A simulation event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// A transmission that started earlier finishes on `channel`.
    TxEnd {
        /// Index into the simulator's channel list.
        channel: usize,
        /// The transmission id handed out by the medium.
        tx_id: u64,
    },
    /// Carrier sense of a transmission becomes detectable at listeners —
    /// one detection delay after the transmission began. Stations whose
    /// backoff expires inside that window transmit concurrently; this is the
    /// collision vulnerability window of CSMA.
    CsBusy {
        /// Index into the simulator's channel list.
        channel: usize,
        /// The transmission whose energy becomes detectable.
        tx_id: u64,
    },
    /// A station timer fires. `gen` must match the station's current timer
    /// generation or the event is stale and dropped.
    Timer {
        /// The station.
        node: NodeId,
        /// Generation stamp at arming time.
        gen: u64,
        /// Which timer.
        kind: TimerKind,
    },
    /// A traffic source emits its next MSDU.
    TrafficArrival {
        /// The station whose flow fires.
        node: NodeId,
        /// Flow index within the station.
        flow: usize,
    },
    /// A scheduled beacon target time (TBTT).
    BeaconDue {
        /// The AP.
        node: NodeId,
    },
    /// An AP evaluates per-channel load and may switch channels (the
    /// Airespace-style dynamic channel assignment of the paper's venue).
    ChannelEval {
        /// The AP.
        node: NodeId,
    },
    /// A client follows its AP to a new channel and re-associates.
    FollowAp {
        /// The client.
        node: NodeId,
        /// Destination channel index.
        channel_idx: usize,
    },
    /// A power-saving client emits its next Null-function frame.
    PowerSaveTick {
        /// The client.
        node: NodeId,
    },
    /// A user powers on and begins associating.
    UserJoin {
        /// The client.
        node: NodeId,
    },
    /// A user leaves the venue.
    UserLeave {
        /// The client.
        node: NodeId,
    },
}

#[derive(PartialEq, Eq)]
struct Entry {
    at: Micros,
    seq: u64,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: Micros, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Micros, Event)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Micros> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::BeaconDue { node: 3 });
        q.push(10, Event::BeaconDue { node: 1 });
        q.push(20, Event::BeaconDue { node: 2 });
        let order: Vec<Micros> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for node in 0..100 {
            q.push(5, Event::UserJoin { node });
        }
        let mut nodes = Vec::new();
        while let Some((t, Event::UserJoin { node })) = q.pop() {
            assert_eq!(t, 5);
            nodes.push(node);
        }
        assert_eq!(nodes, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(42, Event::BeaconDue { node: 0 });
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
