//! The vicinity-sniffer capture model.
//!
//! Section 4.4 of the paper names three reasons a sniffer misses frames:
//! bit errors, hardware drops under high load, and hidden terminals. All
//! three are modelled here:
//!
//! * **bit errors** — the same SINR-based decode draw every receiver makes;
//! * **hardware drops** — a token bucket bounding sustainable capture rate,
//!   mirroring the PCMCIA-card limits reported by Yeo et al.;
//! * **hidden terminals** — transmitters whose signal falls below the
//!   sniffer's sensitivity are simply never heard (a consequence of
//!   position, not a random draw).

use crate::geometry::Pos;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::Micros;

/// Capture-loss configuration of one sniffer.
#[derive(Clone, Copy, Debug)]
pub struct SnifferConfig {
    /// Sniffer position.
    pub pos: Pos,
    /// Index into the simulator's channel list this sniffer is tuned to.
    pub channel_idx: usize,
    /// Sustainable captures per second before hardware drops kick in.
    pub capacity_fps: f64,
    /// Token-bucket burst (frames).
    pub burst: f64,
    /// Snap length recorded with the trace (truncation applies at pcap
    /// export; the in-memory record always keeps the header fields).
    pub snaplen: u32,
    /// Scale on the shadow-fading sigma for links into this sniffer.
    /// Sniffers are deliberately sited (elevated, line of sight, diversity
    /// antennas), so they ride out crowd shadowing better than the average
    /// client link; 1.0 = fade like everyone else.
    pub fade_scale: f64,
}

impl Default for SnifferConfig {
    fn default() -> Self {
        SnifferConfig {
            pos: Pos::default(),
            channel_idx: 0,
            capacity_fps: 2_500.0,
            burst: 250.0,
            snaplen: 250,
            fade_scale: 0.35,
        }
    }
}

/// Why the sniffer missed a frame (ground-truth bookkeeping the real study
/// could never have — used to validate the unrecorded-frame estimator).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MissReason {
    /// Signal below sensitivity: a hidden terminal from the sniffer's seat.
    OutOfRange,
    /// Decode failed on SINR/bit errors (often a collision).
    BitError,
    /// The capture hardware was saturated.
    HardwareDrop,
}

/// Counters of one sniffer's capture performance.
#[derive(Clone, Copy, Debug, Default)]
pub struct SnifferStats {
    /// Frames captured.
    pub captured: u64,
    /// Frames missed: out of range.
    pub missed_range: u64,
    /// Frames missed: bit errors / collisions.
    pub missed_bit_error: u64,
    /// Frames missed: hardware saturation.
    pub missed_hardware: u64,
    /// Subset of bit-error misses with no overlapping transmission (pure
    /// fading/SNR, not collision).
    pub missed_clean: u64,
}

impl SnifferStats {
    /// Total frames that were on this sniffer's channel.
    pub fn total_on_air(&self) -> u64 {
        self.captured + self.missed_range + self.missed_bit_error + self.missed_hardware
    }
}

/// One sniffer: configuration, token bucket, and its trace.
pub struct Sniffer {
    /// Configuration.
    pub config: SnifferConfig,
    tokens: f64,
    last_refill: Micros,
    /// Captured records, in time order.
    pub trace: Vec<FrameRecord>,
    /// Capture counters.
    pub stats: SnifferStats,
}

impl Sniffer {
    /// A new sniffer with a full token bucket.
    pub fn new(config: SnifferConfig) -> Sniffer {
        Sniffer {
            tokens: config.burst,
            last_refill: 0,
            config,
            trace: Vec::new(),
            stats: SnifferStats::default(),
        }
    }

    /// Refills the token bucket up to `now` and tries to take one token.
    /// Returns false when the capture hardware is saturated.
    pub fn try_take_token(&mut self, now: Micros) -> bool {
        let dt_s = (now.saturating_sub(self.last_refill)) as f64 / 1e6;
        self.tokens = (self.tokens + dt_s * self.config.capacity_fps).min(self.config.burst);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Records a captured frame.
    pub fn capture(&mut self, record: FrameRecord) {
        self.stats.captured += 1;
        self.trace.push(record);
    }

    /// Records a miss.
    pub fn miss(&mut self, reason: MissReason) {
        match reason {
            MissReason::OutOfRange => self.stats.missed_range += 1,
            MissReason::BitError => self.stats.missed_bit_error += 1,
            MissReason::HardwareDrop => self.stats.missed_hardware += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sniffer(capacity_fps: f64, burst: f64) -> Sniffer {
        Sniffer::new(SnifferConfig {
            capacity_fps,
            burst,
            ..SnifferConfig::default()
        })
    }

    #[test]
    fn token_bucket_allows_burst_then_throttles() {
        let mut s = sniffer(100.0, 10.0);
        let mut taken = 0;
        for _ in 0..20 {
            if s.try_take_token(0) {
                taken += 1;
            }
        }
        assert_eq!(taken, 10, "burst bounded by bucket size");
        // After 50 ms, 5 more tokens have accrued.
        let mut more = 0;
        for _ in 0..20 {
            if s.try_take_token(50_000) {
                more += 1;
            }
        }
        assert_eq!(more, 5);
    }

    #[test]
    fn token_bucket_sustains_capacity_rate() {
        let mut s = sniffer(1000.0, 10.0);
        // Offer 2000 fps for one second; expect ~1000 + burst captures.
        let mut ok = 0;
        for i in 0..2000u64 {
            if s.try_take_token(i * 500) {
                ok += 1;
            }
        }
        assert!((1000..=1015).contains(&ok), "captured {ok}");
    }

    #[test]
    fn stats_accumulate_by_reason() {
        let mut s = sniffer(10.0, 1.0);
        s.miss(MissReason::OutOfRange);
        s.miss(MissReason::BitError);
        s.miss(MissReason::BitError);
        s.miss(MissReason::HardwareDrop);
        assert_eq!(s.stats.missed_range, 1);
        assert_eq!(s.stats.missed_bit_error, 2);
        assert_eq!(s.stats.missed_hardware, 1);
        assert_eq!(s.stats.total_on_air(), 4);
    }
}
