//! Counter-based per-entity random streams.
//!
//! The simulator used to thread one `SmallRng` through every random
//! decision, which made each draw depend on the global interleaving of all
//! preceding events. Shard-parallel execution (see [`crate::shard`]) needs
//! draws that are a pure function of *which entity* draws and *how many
//! draws it has made so far* — never of what unrelated entities are doing —
//! so that partitioning the population across shards or threads cannot move
//! a single output bit. [`SimRng`] provides that: a splitmix64-style counter
//! generator whose key derives from `(scenario seed, stream id)` and whose
//! `n`-th output is `mix(key + n·γ)`, the same pure-hash discipline the slow
//! fade model ([`crate::radio::Fading::fade_db`]) has always used.
//!
//! [`SimRng`] implements [`rand::RngCore`], so the [`rand::Rng`] sampling
//! surface (`gen`, `gen_range`, `gen_bool`) works on it unchanged.

use rand::RngCore;

/// The Weyl-sequence increment (the splitmix64 gamma).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64's finalizing mix — a full 64-bit permutation.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One deterministic random stream, keyed by `(seed, stream)`.
///
/// Draw `n` of a stream is `mix(key + n·γ)` — a pure function of the key and
/// the draw index. Two simulators that give an entity the same stream id and
/// the same local draw history therefore produce bit-identical values,
/// however the surrounding population is partitioned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    key: u64,
    ctr: u64,
}

impl SimRng {
    /// Stream `stream` of scenario seed `seed`.
    ///
    /// Seed and stream each pass through their own mix round before being
    /// combined, so nearby `(seed, stream)` pairs land on unrelated keys
    /// (plain XOR would alias `(s, t)` with `(s ^ d, t ^ d)`).
    pub fn new(seed: u64, stream: u64) -> SimRng {
        let key =
            mix(seed.wrapping_add(GAMMA)) ^ mix(stream.wrapping_mul(GAMMA).wrapping_add(GAMMA));
        SimRng {
            key: mix(key),
            ctr: 0,
        }
    }

    /// Draws made so far on this stream.
    pub fn draws(&self) -> u64 {
        self.ctr
    }
}

impl RngCore for SimRng {
    fn next_u64(&mut self) -> u64 {
        self.ctr = self.ctr.wrapping_add(1);
        mix(self.key.wrapping_add(self.ctr.wrapping_mul(GAMMA)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_key_same_stream() {
        let mut a = SimRng::new(7, 42);
        let mut b = SimRng::new(7, 42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_independent_of_interleaving() {
        // Drawing from stream A between draws of stream B must not move
        // stream B — the property sharding rests on.
        let mut solo = SimRng::new(3, 9);
        let expected: Vec<u64> = (0..50).map(|_| solo.next_u64()).collect();
        let mut interleaved = SimRng::new(3, 9);
        let mut other = SimRng::new(3, 10);
        let mut got = Vec::new();
        for i in 0..50 {
            for _ in 0..(i % 4) {
                other.next_u64();
            }
            got.push(interleaved.next_u64());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn distinct_seeds_and_streams_diverge() {
        let mut base = SimRng::new(1, 1);
        let mut seed2 = SimRng::new(2, 1);
        let mut stream2 = SimRng::new(1, 2);
        let mut swapped = SimRng::new(1, 0);
        let first = base.next_u64();
        assert_ne!(first, seed2.next_u64());
        assert_ne!(first, stream2.next_u64());
        assert_ne!(first, swapped.next_u64());
    }

    #[test]
    fn unit_draws_are_roughly_uniform() {
        let mut rng = SimRng::new(11, 0);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_works_through_rngcore() {
        let mut rng = SimRng::new(5, 5);
        for _ in 0..1_000 {
            let v: u32 = rng.gen_range(0..=31);
            assert!(v <= 31);
            let g: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&g));
        }
        assert_eq!(rng.draws(), 2_000);
    }
}
