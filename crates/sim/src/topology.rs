//! Cached sensing topology: pairwise RSSI and carrier-sense reachability.
//!
//! Station positions are fixed for the life of a scenario and
//! [`RadioConfig::rssi_dbm`](crate::radio::RadioConfig::rssi_dbm) is a pure
//! function of the two positions, so the per-transmission "who can sense
//! this?" loop — O(stations) of `log10` path-loss math on every frame — can
//! be computed once into an index-based matrix. [`SensingTopology`] holds:
//!
//! * the full pairwise RSSI matrix (`tx × rx`), bit-identical to calling
//!   `rssi_dbm` afresh (it *is* the same call, memoized);
//! * one carrier-sense row per transmitter: a bitset of the listeners whose
//!   cached RSSI clears the CS threshold (self excluded) — a transmission's
//!   `sensed_by` set becomes one word-wise AND with the channel-membership
//!   bitset instead of an O(stations) float loop;
//! * a sniffer RSSI matrix (`sniffer × tx`) for the capture path.
//!
//! The cache is *incrementally maintained*: joining a station, moving one,
//! or adding a sniffer recomputes only the dirty row + column
//! ([`SensingTopology::add_station`], [`SensingTopology::update_station`],
//! [`SensingTopology::add_sniffer`]) — O(population) per change, against
//! O(population²) for the full [`SensingTopology::rebuild`], which remains
//! as the reference implementation the incremental paths are proven
//! bit-identical to (`tests/topology_incremental.rs`). Every mutation bumps
//! an [`epoch`](SensingTopology::epoch) counter, the explicit dirty
//! protocol consumers (fade caches, shard drift detection) key off instead
//! of guessing from population counts. Fading is time-varying and
//! deliberately *not* cached here — callers add the current fade on top of
//! the cached path loss.

use crate::events::NodeId;
use crate::geometry::Pos;
use crate::radio::RadioConfig;

/// A set of node ids as a bitset. Iteration is ascending, matching the
/// `0..stations.len()` order of the loops it replaces, so replacing a
/// `Vec<NodeId>` built by such a loop preserves event order exactly.
#[derive(Clone, Debug, Default)]
pub struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    /// An empty set.
    pub fn new() -> NodeSet {
        NodeSet::default()
    }

    /// Adds `id`, growing the backing storage as needed.
    pub fn insert(&mut self, id: NodeId) {
        let word = id / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (id % 64);
    }

    /// Removes `id`; returns whether it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let word = id / 64;
        if word >= self.words.len() {
            return false;
        }
        let mask = 1 << (id % 64);
        let was = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        was
    }

    /// Membership test.
    pub fn contains(&self, id: NodeId) -> bool {
        self.words
            .get(id / 64)
            .is_some_and(|w| w & (1 << (id % 64)) != 0)
    }

    /// Removes every element, keeping capacity.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// True when no id is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of ids present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// Snapshots the backing words into `out` (cleared first). Callers on
    /// the carrier-sense hot path walk the bits of the copy directly —
    /// ascending, exactly like [`NodeSet::iter`] — instead of extracting
    /// every set bit into a `Vec<NodeId>` per transmission.
    pub fn copy_words_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.words);
    }

    fn words(&self) -> &[u64] {
        &self.words
    }
}

/// The precomputed pairwise radio geometry of the current population.
#[derive(Default)]
pub struct SensingTopology {
    /// Stations covered (matrix dimension).
    n: usize,
    /// Sniffers covered.
    sniffers: usize,
    /// Row stride of `rssi` and `sniffer_rssi` (≥ `n`; extra columns are
    /// reserved growth room so a join extends rows in place).
    cap: usize,
    /// Words per carrier-sense row (derived from `cap`).
    wpr: usize,
    /// Mutation counter: bumped by every `rebuild`/`add_*`/`update_*` call.
    epoch: u64,
    /// Station positions, the inputs the cache is derived from.
    positions: Vec<Pos>,
    /// Sniffer positions.
    sniffer_positions: Vec<Pos>,
    /// Path-loss RSSI, `[tx * cap + rx]`, dBm.
    rssi: Vec<f64>,
    /// Carrier-sense reachability rows, `wpr` words per transmitter: bit
    /// `rx` set when `rssi[tx][rx] >= cs_threshold_dbm` and `rx != tx`.
    sensed: Vec<u64>,
    /// Pair-coupling rows, same layout: bit `rx` set when `rssi[tx][rx]`
    /// clears the effective coupling floor (and `rx != tx`) — the edges of
    /// the RF-isolation graph [`crate::shard`] partitions along. Carrier
    /// sense and decode range are subsets by construction (the floor is
    /// clamped under both thresholds).
    coupled: Vec<u64>,
    /// Path-loss RSSI at each sniffer, `[sniffer * cap + tx]`, dBm.
    sniffer_rssi: Vec<f64>,
}

impl SensingTopology {
    /// Stations currently covered by the cache.
    #[inline]
    pub fn station_count(&self) -> usize {
        self.n
    }

    /// Sniffers currently covered by the cache.
    #[inline]
    pub fn sniffer_count(&self) -> usize {
        self.sniffers
    }

    /// The mutation epoch: incremented by every population or position
    /// change. Consumers that derive state from the topology (shard plans,
    /// fade caches) record the epoch they saw and compare instead of
    /// guessing from population counts — a moved station changes no count
    /// but does bump the epoch, so position changes can't be silently
    /// missed.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The position station `id` was last registered at.
    #[inline]
    pub fn position(&self, id: NodeId) -> Pos {
        self.positions[id]
    }

    /// Pre-sizes the cache for `stations`/`sniffers` before a batch of
    /// `add_station`/`add_sniffer` calls: one exact allocation, no
    /// geometric overshoot. Scenario builders know their final populations,
    /// so the incremental join path ends at exactly the footprint a
    /// one-shot `rebuild` would have had.
    pub fn reserve(&mut self, stations: usize, sniffers: usize) {
        if stations > self.cap {
            self.grow(stations);
        }
        self.positions
            .reserve_exact(stations.saturating_sub(self.positions.len()));
        self.sniffer_positions
            .reserve_exact(sniffers.saturating_sub(self.sniffer_positions.len()));
        let want = sniffers.max(self.sniffers) * self.cap;
        self.sniffer_rssi
            .reserve_exact(want.saturating_sub(self.sniffer_rssi.len()));
    }

    /// Re-strides every matrix to `new_cap` columns. Pure copies — no RSSI
    /// is recomputed, so grown caches stay bit-identical to a fresh
    /// rebuild. Growth reserves the *full* `new_cap × new_cap` matrix up
    /// front (exact when the caller sized via [`SensingTopology::reserve`];
    /// geometric-doubling overshoot otherwise is address space the ramp
    /// never touches — see the allocation note in
    /// [`SensingTopology::rebuild`]).
    fn grow(&mut self, new_cap: usize) {
        debug_assert!(new_cap > self.cap);
        let (old_cap, old_wpr) = (self.cap, self.wpr);
        let new_wpr = new_cap.div_ceil(64).max(1);
        let mut rssi = Vec::new();
        rssi.reserve_exact(new_cap * new_cap);
        rssi.resize(self.n * new_cap, f64::NAN);
        for tx in 0..self.n {
            rssi[tx * new_cap..tx * new_cap + self.n]
                .copy_from_slice(&self.rssi[tx * old_cap..tx * old_cap + self.n]);
        }
        self.rssi = rssi;
        let mut sensed = Vec::new();
        sensed.reserve_exact(new_cap * new_wpr);
        sensed.resize(self.n * new_wpr, 0);
        let mut coupled = Vec::new();
        coupled.reserve_exact(new_cap * new_wpr);
        coupled.resize(self.n * new_wpr, 0);
        for tx in 0..self.n {
            sensed[tx * new_wpr..tx * new_wpr + old_wpr]
                .copy_from_slice(&self.sensed[tx * old_wpr..(tx + 1) * old_wpr]);
            coupled[tx * new_wpr..tx * new_wpr + old_wpr]
                .copy_from_slice(&self.coupled[tx * old_wpr..(tx + 1) * old_wpr]);
        }
        self.sensed = sensed;
        self.coupled = coupled;
        let mut sniffer_rssi = Vec::new();
        sniffer_rssi.reserve_exact(self.sniffers * new_cap);
        sniffer_rssi.resize(self.sniffers * new_cap, f64::NAN);
        for s in 0..self.sniffers {
            sniffer_rssi[s * new_cap..s * new_cap + self.n]
                .copy_from_slice(&self.sniffer_rssi[s * old_cap..s * old_cap + self.n]);
        }
        self.sniffer_rssi = sniffer_rssi;
        self.cap = new_cap;
        self.wpr = new_wpr;
    }

    /// Registers a joining station and computes only its dirty row +
    /// column: RSSI to and from every existing station, `sensed`/`coupled`
    /// bits in both directions, and its column in every sniffer row —
    /// O(population) against the O(population²) full rebuild, and
    /// bit-identical to it (same pure calls in the same argument order).
    /// Returns the new station's id.
    pub fn add_station(&mut self, pos: Pos, radio: &RadioConfig) -> NodeId {
        if self.n == self.cap {
            self.grow((self.cap * 2).max(8));
        }
        let id = self.n;
        let (cap, wpr) = (self.cap, self.wpr);
        self.n = id + 1;
        self.positions.push(pos);
        self.rssi.resize(self.n * cap, f64::NAN);
        self.sensed.resize(self.n * wpr, 0);
        self.coupled.resize(self.n * wpr, 0);
        let floor = radio.effective_coupling_floor_dbm();
        let (col_word, col_mask) = (id / 64, 1u64 << (id % 64));
        for other in 0..self.n {
            // Row `id → other` (the diagonal included, as in `rebuild`).
            let out = radio.rssi_dbm(pos, self.positions[other]);
            self.rssi[id * cap + other] = out;
            if other != id {
                if out >= radio.cs_threshold_dbm {
                    self.sensed[id * wpr + other / 64] |= 1 << (other % 64);
                }
                if out >= floor {
                    self.coupled[id * wpr + other / 64] |= 1 << (other % 64);
                }
                // Column `other → id`.
                let inc = radio.rssi_dbm(self.positions[other], pos);
                self.rssi[other * cap + id] = inc;
                if inc >= radio.cs_threshold_dbm {
                    self.sensed[other * wpr + col_word] |= col_mask;
                }
                if inc >= floor {
                    self.coupled[other * wpr + col_word] |= col_mask;
                }
            }
        }
        for s in 0..self.sniffers {
            self.sniffer_rssi[s * cap + id] = radio.rssi_dbm(pos, self.sniffer_positions[s]);
        }
        self.epoch += 1;
        id
    }

    /// Moves station `id` to `pos`, recomputing only its row + column
    /// (both bitset directions and every sniffer's column entry). O(n)
    /// per move; bit-identical to a full rebuild at the new positions.
    pub fn update_station(&mut self, id: NodeId, pos: Pos, radio: &RadioConfig) {
        assert!(
            id < self.n,
            "update_station({id}) beyond population {}",
            self.n
        );
        self.positions[id] = pos;
        let (cap, wpr) = (self.cap, self.wpr);
        let floor = radio.effective_coupling_floor_dbm();
        self.sensed[id * wpr..(id + 1) * wpr].fill(0);
        self.coupled[id * wpr..(id + 1) * wpr].fill(0);
        let (col_word, col_mask) = (id / 64, 1u64 << (id % 64));
        for other in 0..self.n {
            let out = radio.rssi_dbm(pos, self.positions[other]);
            self.rssi[id * cap + other] = out;
            if other != id {
                if out >= radio.cs_threshold_dbm {
                    self.sensed[id * wpr + other / 64] |= 1 << (other % 64);
                }
                if out >= floor {
                    self.coupled[id * wpr + other / 64] |= 1 << (other % 64);
                }
                let inc = radio.rssi_dbm(self.positions[other], pos);
                self.rssi[other * cap + id] = inc;
                let s = &mut self.sensed[other * wpr + col_word];
                if inc >= radio.cs_threshold_dbm {
                    *s |= col_mask;
                } else {
                    *s &= !col_mask;
                }
                let c = &mut self.coupled[other * wpr + col_word];
                if inc >= floor {
                    *c |= col_mask;
                } else {
                    *c &= !col_mask;
                }
            }
        }
        for s in 0..self.sniffers {
            self.sniffer_rssi[s * cap + id] = radio.rssi_dbm(pos, self.sniffer_positions[s]);
        }
        self.epoch += 1;
    }

    /// Registers a new sniffer and computes its RSSI row over the current
    /// station population. O(n). Returns the sniffer's index.
    pub fn add_sniffer(&mut self, pos: Pos, radio: &RadioConfig) -> usize {
        let idx = self.sniffers;
        self.sniffers = idx + 1;
        self.sniffer_positions.push(pos);
        self.sniffer_rssi.resize(self.sniffers * self.cap, f64::NAN);
        for tx in 0..self.n {
            self.sniffer_rssi[idx * self.cap + tx] = radio.rssi_dbm(self.positions[tx], pos);
        }
        self.epoch += 1;
        idx
    }

    /// Recomputes the full cache for the given populations — the O(n²)
    /// reference implementation the incremental paths above are proven
    /// bit-identical against, and the bulk path for one-shot builds.
    pub fn rebuild(&mut self, station_pos: &[Pos], sniffer_pos: &[Pos], radio: &RadioConfig) {
        let n = station_pos.len();
        self.n = n;
        self.sniffers = sniffer_pos.len();
        self.cap = n;
        self.wpr = n.div_ceil(64).max(1);
        self.positions.clear();
        self.positions.extend_from_slice(station_pos);
        self.sniffer_positions.clear();
        self.sniffer_positions.extend_from_slice(sniffer_pos);
        // Exact-size matrix, old buffer dropped first: a one-shot rebuild
        // knows its final dimension, so it never pays growth overshoot.
        // The incremental join path reaches the same exact footprint when
        // the builder pre-sizes via `reserve`; un-hinted joins fall back to
        // geometric doubling whose over-reservation is address space the
        // run never writes (untouched pages stay non-resident — measured
        // flat against the ramp-320 RSS pin either way).
        self.rssi = Vec::new();
        self.rssi.reserve_exact(n * n);
        self.sensed.clear();
        self.sensed.resize(n * self.wpr, 0);
        self.coupled.clear();
        self.coupled.resize(n * self.wpr, 0);
        let floor = radio.effective_coupling_floor_dbm();
        for tx in 0..n {
            for rx in 0..n {
                let rssi = radio.rssi_dbm(station_pos[tx], station_pos[rx]);
                self.rssi.push(rssi);
                if rx != tx && rssi >= radio.cs_threshold_dbm {
                    self.sensed[tx * self.wpr + rx / 64] |= 1 << (rx % 64);
                }
                if rx != tx && rssi >= floor {
                    self.coupled[tx * self.wpr + rx / 64] |= 1 << (rx % 64);
                }
            }
        }
        self.sniffer_rssi = Vec::new();
        self.sniffer_rssi.reserve_exact(sniffer_pos.len() * n);
        for &sp in sniffer_pos {
            for &tp in station_pos {
                self.sniffer_rssi.push(radio.rssi_dbm(tp, sp));
            }
        }
        self.epoch += 1;
    }

    /// Cached path-loss RSSI of the `tx → rx` station link, dBm.
    #[inline]
    pub fn rssi(&self, tx: NodeId, rx: NodeId) -> f64 {
        self.rssi[tx * self.cap + rx]
    }

    /// Cached path-loss RSSI of station `tx` at sniffer `sniffer`, dBm.
    #[inline]
    pub fn sniffer_rssi(&self, sniffer: usize, tx: NodeId) -> f64 {
        self.sniffer_rssi[sniffer * self.cap + tx]
    }

    /// Whether `rx` carrier-senses transmissions from `tx` (always false
    /// for `rx == tx`; the row excludes self).
    #[inline]
    pub fn sensed(&self, tx: NodeId, rx: NodeId) -> bool {
        self.sensed[tx * self.wpr + rx / 64] & (1 << (rx % 64)) != 0
    }

    /// Whether stations `a` and `b` are RF-coupled: their path-loss RSSI
    /// clears the effective coupling floor (always false for `a == b`).
    /// Path loss is symmetric, so this relation is too.
    #[inline]
    pub fn coupled(&self, a: NodeId, b: NodeId) -> bool {
        self.coupled[a * self.wpr + b / 64] & (1 << (b % 64)) != 0
    }

    /// Fills `out` with the stations that sense a transmission from `tx`,
    /// restricted to `members` (the transmission channel's population):
    /// one word-wise AND over the cached row.
    pub fn sensed_into(&self, tx: NodeId, members: &NodeSet, out: &mut NodeSet) {
        out.words.clear();
        out.words.resize(self.wpr, 0);
        let row = &self.sensed[tx * self.wpr..(tx + 1) * self.wpr];
        for ((o, &r), &m) in out.words.iter_mut().zip(row).zip(members.words()) {
            *o = r & m;
        }
    }

    /// The boundary-coupling closure of one lockstep shard: every station
    /// whose transmissions the shard must observe for its own physics to be
    /// exact (see [`crate::shard`] and `docs/DETERMINISM.md`).
    ///
    /// Let `A` be the shard's `owned` stations and `S₁` the stations
    /// directly coupled to `A` — plus `audible`, the stations any of the
    /// shard's sniffers can hear (sniffer RSSI at or above the coupling
    /// floor). Frames from `S₁` can be sensed, decoded, or sniffed inside
    /// the shard, so they must be mirrored in. But a mirrored frame's
    /// *interferer list* must also be complete — SINR sums every registered
    /// interferer with no floor cut at the receiver, and a sniffer's
    /// `missed_clean` verdict reads list emptiness — so the neighbors of
    /// `S₁` (who interfere with frames from `S₁`) are needed too. The
    /// result written to `out` is the 2-hop closure
    /// `A ∪ S₁ ∪ neighbors(S₁)`, computed as word-wise ORs of the cached
    /// coupling rows. Over-approximation is harmless (an extra ghost draws
    /// no randomness and touches no owned state below the coupling floor);
    /// a missing member would be an exactness bug.
    pub fn boundary_relevance(&self, owned: &NodeSet, audible: &NodeSet, out: &mut NodeSet) {
        let mut s1 = vec![0u64; self.wpr];
        for id in owned.iter() {
            let row = &self.coupled[id * self.wpr..(id + 1) * self.wpr];
            for (w, &r) in s1.iter_mut().zip(row) {
                *w |= r;
            }
        }
        for (w, &a) in s1.iter_mut().zip(audible.words()) {
            *w |= a;
        }
        out.words.clear();
        out.words.resize(self.wpr, 0);
        out.words.copy_from_slice(&s1);
        // `owned`'s backing may be shorter than a full row (it grows
        // lazily); OR what exists.
        for (o, &a) in out.words.iter_mut().zip(owned.words()) {
            *o |= a;
        }
        for (wi, &word) in s1.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let id = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let row = &self.coupled[id * self.wpr..(id + 1) * self.wpr];
                for (o, &r) in out.words.iter_mut().zip(row) {
                    *o |= r;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radio() -> RadioConfig {
        RadioConfig {
            cs_threshold_dbm: -85.0,
            ..RadioConfig::default()
        }
    }

    #[test]
    fn nodeset_insert_remove_iter() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        for id in [3usize, 64, 200, 0] {
            s.insert(id);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 64, 200]);
        assert_eq!(s.len(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 200]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn matrix_matches_direct_computation() {
        let radio = radio();
        let pos: Vec<Pos> = (0..5)
            .map(|i| Pos::new(i as f64 * 20.0, (i % 2) as f64 * 7.0))
            .collect();
        let mut topo = SensingTopology::default();
        topo.rebuild(&pos, &[Pos::new(10.0, 3.0)], &radio);
        for tx in 0..pos.len() {
            for rx in 0..pos.len() {
                // Bit-identical: the cache stores the same pure function's
                // output.
                assert_eq!(topo.rssi(tx, rx), radio.rssi_dbm(pos[tx], pos[rx]));
                let expect = tx != rx && topo.rssi(tx, rx) >= radio.cs_threshold_dbm;
                assert_eq!(topo.sensed(tx, rx), expect, "sensed({tx},{rx})");
            }
            assert_eq!(
                topo.sniffer_rssi(0, tx),
                radio.rssi_dbm(pos[tx], Pos::new(10.0, 3.0))
            );
        }
    }

    #[test]
    fn sensed_into_masks_by_membership() {
        let radio = radio();
        // Three co-located stations: everyone senses everyone.
        let pos = vec![Pos::new(0.0, 0.0), Pos::new(1.0, 0.0), Pos::new(2.0, 0.0)];
        let mut topo = SensingTopology::default();
        topo.rebuild(&pos, &[], &radio);
        let mut members = NodeSet::new();
        members.insert(0);
        members.insert(2);
        let mut out = NodeSet::new();
        topo.sensed_into(0, &members, &mut out);
        // Self is excluded by the row, node 1 by membership.
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn boundary_relevance_is_the_two_hop_closure() {
        let radio = radio();
        // A chain of stations 400 m apart: each couples only with its
        // immediate neighbors (800 m is past the −110 dBm coupling floor
        // for this radio; asserted so the scenario can't silently degrade).
        let pos: Vec<Pos> = (0..6).map(|i| Pos::new(i as f64 * 400.0, 0.0)).collect();
        let mut topo = SensingTopology::default();
        topo.rebuild(&pos, &[], &radio);
        assert!(topo.coupled(0, 1) && !topo.coupled(0, 2), "chain premise");
        let mut owned = NodeSet::new();
        owned.insert(0);
        let mut out = NodeSet::new();
        topo.boundary_relevance(&owned, &NodeSet::new(), &mut out);
        // owned {0} → S1 {1} → neighbors(S1) {0, 2}.
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 1, 2]);

        // A sniffer-audible station extends the closure by its neighbors.
        let mut audible = NodeSet::new();
        audible.insert(4);
        topo.boundary_relevance(&owned, &audible, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn counts_and_epoch_track_every_mutation() {
        let radio = radio();
        let mut topo = SensingTopology::default();
        assert_eq!((topo.station_count(), topo.sniffer_count()), (0, 0));
        let e0 = topo.epoch();
        topo.rebuild(&[Pos::new(0.0, 0.0)], &[], &radio);
        assert_eq!((topo.station_count(), topo.sniffer_count()), (1, 0));
        assert!(topo.epoch() > e0);
        let e1 = topo.epoch();
        topo.add_station(Pos::new(5.0, 0.0), &radio);
        assert_eq!(topo.station_count(), 2);
        assert!(topo.epoch() > e1);
        let e2 = topo.epoch();
        // A move changes no population count — only the epoch says so.
        topo.update_station(1, Pos::new(9.0, 2.0), &radio);
        assert_eq!((topo.station_count(), topo.sniffer_count()), (2, 0));
        assert!(topo.epoch() > e2);
        let e3 = topo.epoch();
        topo.add_sniffer(Pos::new(1.0, 1.0), &radio);
        assert_eq!(topo.sniffer_count(), 1);
        assert!(topo.epoch() > e3);
    }

    /// Every matrix cell, both bitsets, and the sniffer rows must agree
    /// bit-for-bit between `incremental` and a fresh full rebuild of the
    /// same positions (the generic form is the proptest in
    /// `tests/topology_incremental.rs`).
    fn assert_matches_rebuild(topo: &SensingTopology, radio: &RadioConfig) {
        let mut fresh = SensingTopology::default();
        fresh.rebuild(&topo.positions, &topo.sniffer_positions, radio);
        let n = topo.station_count();
        for a in 0..n {
            for b in 0..n {
                assert_eq!(topo.rssi(a, b).to_bits(), fresh.rssi(a, b).to_bits());
                assert_eq!(topo.sensed(a, b), fresh.sensed(a, b), "sensed({a},{b})");
                assert_eq!(topo.coupled(a, b), fresh.coupled(a, b), "coupled({a},{b})");
            }
            for s in 0..topo.sniffer_count() {
                assert_eq!(
                    topo.sniffer_rssi(s, a).to_bits(),
                    fresh.sniffer_rssi(s, a).to_bits()
                );
            }
        }
    }

    #[test]
    fn incremental_join_and_move_match_full_rebuild() {
        let radio = radio();
        let mut topo = SensingTopology::default();
        topo.add_sniffer(Pos::new(10.0, 3.0), &radio);
        for i in 0..9 {
            topo.add_station(Pos::new(i as f64 * 20.0, (i % 3) as f64 * 7.0), &radio);
            assert_matches_rebuild(&topo, &radio);
        }
        topo.add_sniffer(Pos::new(60.0, 1.0), &radio);
        assert_matches_rebuild(&topo, &radio);
        // Moves, including ones that cross the CS threshold both ways.
        for (id, pos) in [(0, Pos::new(150.0, 0.0)), (4, Pos::new(1.0, 1.0))] {
            topo.update_station(id, pos, &radio);
            assert_matches_rebuild(&topo, &radio);
        }
    }

    #[test]
    fn reserve_avoids_restriding_and_changes_nothing() {
        let radio = radio();
        let mut hinted = SensingTopology::default();
        hinted.reserve(12, 1);
        let mut grown = SensingTopology::default();
        for i in 0..12 {
            let p = Pos::new(i as f64 * 30.0, 0.0);
            hinted.add_station(p, &radio);
            grown.add_station(p, &radio);
        }
        hinted.add_sniffer(Pos::new(5.0, 5.0), &radio);
        grown.add_sniffer(Pos::new(5.0, 5.0), &radio);
        assert_matches_rebuild(&hinted, &radio);
        assert_matches_rebuild(&grown, &radio);
    }
}
