//! Cached sensing topology: pairwise RSSI and carrier-sense reachability.
//!
//! Station positions are fixed for the life of a scenario and
//! [`RadioConfig::rssi_dbm`](crate::radio::RadioConfig::rssi_dbm) is a pure
//! function of the two positions, so the per-transmission "who can sense
//! this?" loop — O(stations) of `log10` path-loss math on every frame — can
//! be computed once into an index-based matrix. [`SensingTopology`] holds:
//!
//! * the full pairwise RSSI matrix (`tx × rx`), bit-identical to calling
//!   `rssi_dbm` afresh (it *is* the same call, memoized);
//! * one carrier-sense row per transmitter: a bitset of the listeners whose
//!   cached RSSI clears the CS threshold (self excluded) — a transmission's
//!   `sensed_by` set becomes one word-wise AND with the channel-membership
//!   bitset instead of an O(stations) float loop;
//! * a sniffer RSSI matrix (`sniffer × tx`) for the capture path.
//!
//! The simulator rebuilds the cache lazily whenever the station or sniffer
//! population changes (only possible between `run_until` calls); fading is
//! time-varying and deliberately *not* cached — callers add the current
//! fade on top of the cached path loss.

use crate::events::NodeId;
use crate::geometry::Pos;
use crate::radio::RadioConfig;

/// A set of node ids as a bitset. Iteration is ascending, matching the
/// `0..stations.len()` order of the loops it replaces, so replacing a
/// `Vec<NodeId>` built by such a loop preserves event order exactly.
#[derive(Clone, Debug, Default)]
pub struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    /// An empty set.
    pub fn new() -> NodeSet {
        NodeSet::default()
    }

    /// Adds `id`, growing the backing storage as needed.
    pub fn insert(&mut self, id: NodeId) {
        let word = id / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (id % 64);
    }

    /// Removes `id`; returns whether it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let word = id / 64;
        if word >= self.words.len() {
            return false;
        }
        let mask = 1 << (id % 64);
        let was = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        was
    }

    /// Membership test.
    pub fn contains(&self, id: NodeId) -> bool {
        self.words
            .get(id / 64)
            .is_some_and(|w| w & (1 << (id % 64)) != 0)
    }

    /// Removes every element, keeping capacity.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// True when no id is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of ids present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// Snapshots the backing words into `out` (cleared first). Callers on
    /// the carrier-sense hot path walk the bits of the copy directly —
    /// ascending, exactly like [`NodeSet::iter`] — instead of extracting
    /// every set bit into a `Vec<NodeId>` per transmission.
    pub fn copy_words_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.words);
    }

    fn words(&self) -> &[u64] {
        &self.words
    }
}

/// The precomputed pairwise radio geometry of the current population.
#[derive(Default)]
pub struct SensingTopology {
    /// Stations covered (matrix dimension).
    n: usize,
    /// Sniffers covered.
    sniffers: usize,
    /// Words per carrier-sense row.
    wpr: usize,
    /// Path-loss RSSI, `[tx * n + rx]`, dBm.
    rssi: Vec<f64>,
    /// Carrier-sense reachability rows, `wpr` words per transmitter: bit
    /// `rx` set when `rssi[tx][rx] >= cs_threshold_dbm` and `rx != tx`.
    sensed: Vec<u64>,
    /// Pair-coupling rows, same layout: bit `rx` set when `rssi[tx][rx]`
    /// clears the effective coupling floor (and `rx != tx`) — the edges of
    /// the RF-isolation graph [`crate::shard`] partitions along. Carrier
    /// sense and decode range are subsets by construction (the floor is
    /// clamped under both thresholds).
    coupled: Vec<u64>,
    /// Path-loss RSSI at each sniffer, `[sniffer * n + tx]`, dBm.
    sniffer_rssi: Vec<f64>,
}

impl SensingTopology {
    /// True when the cache still describes a population of `stations`
    /// stations and `sniffers` sniffers.
    pub fn matches(&self, stations: usize, sniffers: usize) -> bool {
        self.n == stations && self.sniffers == sniffers && (stations == 0 || !self.rssi.is_empty())
    }

    /// Recomputes the full cache for the given populations.
    pub fn rebuild(&mut self, station_pos: &[Pos], sniffer_pos: &[Pos], radio: &RadioConfig) {
        let n = station_pos.len();
        self.n = n;
        self.sniffers = sniffer_pos.len();
        self.wpr = n.div_ceil(64).max(1);
        // Exact-size matrix, old buffer dropped first: under incremental
        // population growth (one rebuild per user join) amortized `reserve`
        // doubling would leave the matrix at ~2× its final size — at ramp
        // scale, a megabyte of dead capacity held for the whole run.
        self.rssi = Vec::new();
        self.rssi.reserve_exact(n * n);
        self.sensed.clear();
        self.sensed.resize(n * self.wpr, 0);
        self.coupled.clear();
        self.coupled.resize(n * self.wpr, 0);
        let floor = radio.effective_coupling_floor_dbm();
        for tx in 0..n {
            for rx in 0..n {
                let rssi = radio.rssi_dbm(station_pos[tx], station_pos[rx]);
                self.rssi.push(rssi);
                if rx != tx && rssi >= radio.cs_threshold_dbm {
                    self.sensed[tx * self.wpr + rx / 64] |= 1 << (rx % 64);
                }
                if rx != tx && rssi >= floor {
                    self.coupled[tx * self.wpr + rx / 64] |= 1 << (rx % 64);
                }
            }
        }
        self.sniffer_rssi = Vec::new();
        self.sniffer_rssi.reserve_exact(sniffer_pos.len() * n);
        for &sp in sniffer_pos {
            for &tp in station_pos {
                self.sniffer_rssi.push(radio.rssi_dbm(tp, sp));
            }
        }
    }

    /// Cached path-loss RSSI of the `tx → rx` station link, dBm.
    #[inline]
    pub fn rssi(&self, tx: NodeId, rx: NodeId) -> f64 {
        self.rssi[tx * self.n + rx]
    }

    /// Cached path-loss RSSI of station `tx` at sniffer `sniffer`, dBm.
    #[inline]
    pub fn sniffer_rssi(&self, sniffer: usize, tx: NodeId) -> f64 {
        self.sniffer_rssi[sniffer * self.n + tx]
    }

    /// Whether `rx` carrier-senses transmissions from `tx` (always false
    /// for `rx == tx`; the row excludes self).
    #[inline]
    pub fn sensed(&self, tx: NodeId, rx: NodeId) -> bool {
        self.sensed[tx * self.wpr + rx / 64] & (1 << (rx % 64)) != 0
    }

    /// Whether stations `a` and `b` are RF-coupled: their path-loss RSSI
    /// clears the effective coupling floor (always false for `a == b`).
    /// Path loss is symmetric, so this relation is too.
    #[inline]
    pub fn coupled(&self, a: NodeId, b: NodeId) -> bool {
        self.coupled[a * self.wpr + b / 64] & (1 << (b % 64)) != 0
    }

    /// Fills `out` with the stations that sense a transmission from `tx`,
    /// restricted to `members` (the transmission channel's population):
    /// one word-wise AND over the cached row.
    pub fn sensed_into(&self, tx: NodeId, members: &NodeSet, out: &mut NodeSet) {
        out.words.clear();
        out.words.resize(self.wpr, 0);
        let row = &self.sensed[tx * self.wpr..(tx + 1) * self.wpr];
        for ((o, &r), &m) in out.words.iter_mut().zip(row).zip(members.words()) {
            *o = r & m;
        }
    }

    /// The boundary-coupling closure of one lockstep shard: every station
    /// whose transmissions the shard must observe for its own physics to be
    /// exact (see [`crate::shard`] and `docs/DETERMINISM.md`).
    ///
    /// Let `A` be the shard's `owned` stations and `S₁` the stations
    /// directly coupled to `A` — plus `audible`, the stations any of the
    /// shard's sniffers can hear (sniffer RSSI at or above the coupling
    /// floor). Frames from `S₁` can be sensed, decoded, or sniffed inside
    /// the shard, so they must be mirrored in. But a mirrored frame's
    /// *interferer list* must also be complete — SINR sums every registered
    /// interferer with no floor cut at the receiver, and a sniffer's
    /// `missed_clean` verdict reads list emptiness — so the neighbors of
    /// `S₁` (who interfere with frames from `S₁`) are needed too. The
    /// result written to `out` is the 2-hop closure
    /// `A ∪ S₁ ∪ neighbors(S₁)`, computed as word-wise ORs of the cached
    /// coupling rows. Over-approximation is harmless (an extra ghost draws
    /// no randomness and touches no owned state below the coupling floor);
    /// a missing member would be an exactness bug.
    pub fn boundary_relevance(&self, owned: &NodeSet, audible: &NodeSet, out: &mut NodeSet) {
        let mut s1 = vec![0u64; self.wpr];
        for id in owned.iter() {
            let row = &self.coupled[id * self.wpr..(id + 1) * self.wpr];
            for (w, &r) in s1.iter_mut().zip(row) {
                *w |= r;
            }
        }
        for (w, &a) in s1.iter_mut().zip(audible.words()) {
            *w |= a;
        }
        out.words.clear();
        out.words.resize(self.wpr, 0);
        out.words.copy_from_slice(&s1);
        // `owned`'s backing may be shorter than a full row (it grows
        // lazily); OR what exists.
        for (o, &a) in out.words.iter_mut().zip(owned.words()) {
            *o |= a;
        }
        for (wi, &word) in s1.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let id = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let row = &self.coupled[id * self.wpr..(id + 1) * self.wpr];
                for (o, &r) in out.words.iter_mut().zip(row) {
                    *o |= r;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radio() -> RadioConfig {
        RadioConfig {
            cs_threshold_dbm: -85.0,
            ..RadioConfig::default()
        }
    }

    #[test]
    fn nodeset_insert_remove_iter() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        for id in [3usize, 64, 200, 0] {
            s.insert(id);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 64, 200]);
        assert_eq!(s.len(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 200]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn matrix_matches_direct_computation() {
        let radio = radio();
        let pos: Vec<Pos> = (0..5)
            .map(|i| Pos::new(i as f64 * 20.0, (i % 2) as f64 * 7.0))
            .collect();
        let mut topo = SensingTopology::default();
        topo.rebuild(&pos, &[Pos::new(10.0, 3.0)], &radio);
        for tx in 0..pos.len() {
            for rx in 0..pos.len() {
                // Bit-identical: the cache stores the same pure function's
                // output.
                assert_eq!(topo.rssi(tx, rx), radio.rssi_dbm(pos[tx], pos[rx]));
                let expect = tx != rx && topo.rssi(tx, rx) >= radio.cs_threshold_dbm;
                assert_eq!(topo.sensed(tx, rx), expect, "sensed({tx},{rx})");
            }
            assert_eq!(
                topo.sniffer_rssi(0, tx),
                radio.rssi_dbm(pos[tx], Pos::new(10.0, 3.0))
            );
        }
    }

    #[test]
    fn sensed_into_masks_by_membership() {
        let radio = radio();
        // Three co-located stations: everyone senses everyone.
        let pos = vec![Pos::new(0.0, 0.0), Pos::new(1.0, 0.0), Pos::new(2.0, 0.0)];
        let mut topo = SensingTopology::default();
        topo.rebuild(&pos, &[], &radio);
        let mut members = NodeSet::new();
        members.insert(0);
        members.insert(2);
        let mut out = NodeSet::new();
        topo.sensed_into(0, &members, &mut out);
        // Self is excluded by the row, node 1 by membership.
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn boundary_relevance_is_the_two_hop_closure() {
        let radio = radio();
        // A chain of stations 400 m apart: each couples only with its
        // immediate neighbors (800 m is past the −110 dBm coupling floor
        // for this radio; asserted so the scenario can't silently degrade).
        let pos: Vec<Pos> = (0..6).map(|i| Pos::new(i as f64 * 400.0, 0.0)).collect();
        let mut topo = SensingTopology::default();
        topo.rebuild(&pos, &[], &radio);
        assert!(topo.coupled(0, 1) && !topo.coupled(0, 2), "chain premise");
        let mut owned = NodeSet::new();
        owned.insert(0);
        let mut out = NodeSet::new();
        topo.boundary_relevance(&owned, &NodeSet::new(), &mut out);
        // owned {0} → S1 {1} → neighbors(S1) {0, 2}.
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 1, 2]);

        // A sniffer-audible station extends the closure by its neighbors.
        let mut audible = NodeSet::new();
        audible.insert(4);
        topo.boundary_relevance(&owned, &audible, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rebuild_tracks_population_changes() {
        let radio = radio();
        let mut topo = SensingTopology::default();
        assert!(topo.matches(0, 0));
        topo.rebuild(&[Pos::new(0.0, 0.0)], &[], &radio);
        assert!(topo.matches(1, 0));
        assert!(!topo.matches(2, 0));
        assert!(!topo.matches(1, 1));
    }
}
