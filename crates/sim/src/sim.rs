//! The simulator: event loop and DCF orchestration.
//!
//! [`Simulator`] owns the stations, the per-channel media, the sniffers and
//! the event queue, and drives every MAC-layer interaction: CSMA/CA
//! contention (defer, backoff, freeze/resume), RTS/CTS exchanges, SIFS-spaced
//! responses, retransmission with exponential contention-window growth,
//! rate-adaptation feedback, beaconing, association, traffic generation, and
//! sniffer capture.
//!
//! ## Fidelity notes and deliberate simplifications
//!
//! * Propagation delay is zero (a conference hall is < 0.3 µs across).
//! * NAV is honoured for RTS/CTS overhearers; for plain DATA/ACK exchanges
//!   physical carrier sense alone is sufficient because SIFS (10 µs) is
//!   shorter than DIFS (50 µs): no conformant station can seize the channel
//!   inside a SIFS gap anyway.
//! * EIFS is applied at the intended receiver after a failed decode;
//!   third-party stations skip the draw for cost reasons.
//! * If a station owes two SIFS responses nearly simultaneously (two frames
//!   ending within a SIFS of each other — only possible via hidden
//!   terminals), the later obligation replaces the earlier, costing the
//!   first peer an ACK. Real hardware behaves comparably under collision.

use crate::config::SimConfig;
use crate::events::{Event, EventQueue, NodeId, QueueStats, TimerKind};
use crate::frame_info::SimFrame;
use crate::geometry::Pos;
use crate::medium::Medium;
use crate::radio::{batch, processing_gain_db};
use crate::rate::RateAdaptation;
use crate::rng::SimRng;
use crate::sniffer::{MissReason, Sniffer, SnifferConfig};
use crate::station::{HotState, MacState, Msdu, MsduKind, Role, RtsPolicy, Station, TxOp, TxPhase};
use crate::topology::{NodeSet, SensingTopology};
use crate::traffic::TrafficProfile;
use rand::Rng;
use std::collections::HashMap;
use wifi_frames::fc::FrameKind;
use wifi_frames::frame;
use wifi_frames::mac::MacAddr;
use wifi_frames::phy::Rate;
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::{delay, frame_airtime_us, Micros};

/// Management-frame body sizes (bytes) used for the association handshake.
const ASSOC_REQ_BODY: u32 = 34;
const ASSOC_RESP_BODY: u32 = 30;
const PROBE_REQ_BODY: u32 = 12;
const PROBE_RESP_BODY: u32 = 42;
/// Guard added to CTS/ACK timeouts beyond SIFS + response air time.
const TIMEOUT_MARGIN_US: Micros = 30;
/// Delay before a failed association is retried.
const ASSOC_RETRY_US: Micros = 500_000;
/// Key offset distinguishing sniffer fade links and RNG streams from
/// station ones (station keys are scenario build indices, far below this).
pub(crate) const SNIFFER_LINK_BASE: u64 = 1 << 40;

/// Ground-truth log of everything that actually went on air.
#[derive(Default)]
pub struct GroundTruth {
    /// Every transmitted frame (when `record_ground_truth` is on).
    pub records: Vec<FrameRecord>,
    /// Total transmissions.
    pub transmissions: u64,
    /// Data-frame transmissions (including retries).
    pub data_tx: u64,
    /// MSDUs delivered network-wide.
    pub delivered: u64,
    /// MSDUs dropped at the retry limit.
    pub retry_drops: u64,
}

/// Options for one client station.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Position.
    pub pos: Pos,
    /// Channel (index into [`SimConfig::channels`]).
    pub channel_idx: usize,
    /// RTS/CTS policy.
    pub rts_policy: RtsPolicy,
    /// Rate-adaptation algorithm.
    pub adaptation: RateAdaptation,
    /// Traffic flows.
    pub traffic: TrafficProfile,
    /// When the user powers on.
    pub join_at_us: Micros,
    /// When the user leaves (`None`: stays to the end).
    pub leave_at_us: Option<Micros>,
    /// Power-save signalling: when set, the client sends a Null-function
    /// frame to its AP at roughly this interval (µs), toggling the
    /// power-management bit — the short S-class chatter real clients emit.
    pub power_save_interval_us: Option<Micros>,
    /// Fragmentation threshold in payload bytes (`None`: off, the 2005
    /// default — cards shipped with threshold 2346, above the MTU).
    pub frag_threshold: Option<u32>,
}

/// A cross-shard transmission notification (lockstep sharding): everything
/// a remote shard needs to replay this transmission as a *ghost* on its own
/// medium via [`Simulator::apply_remote_tx`]. Lockstep rosters are
/// replicated, so `node` is meaningful on every shard. See
/// `docs/DETERMINISM.md` for the window-boundary exchange protocol.
#[derive(Clone, Debug)]
pub struct RemoteNotice {
    /// Transmitting station (global node id).
    pub node: NodeId,
    /// The frame on the air.
    pub frame: SimFrame,
    /// PHY rate of the transmission.
    pub rate: Rate,
    /// Airtime start, µs.
    pub start: Micros,
    /// Airtime end, µs.
    pub end: Micros,
}

/// The simulator.
pub struct Simulator {
    /// Configuration (immutable after construction).
    pub config: SimConfig,
    now: Micros,
    queue: EventQueue,
    stations: Vec<Station>,
    /// Struct-of-arrays columns of the per-station hot state (contention,
    /// carrier sense, NAV, identity keys), parallel to `stations`. The
    /// carrier-sense busy/release loops touch one field of many stations
    /// per frame; packed columns keep those walks on a few cache lines.
    hot: HotState,
    sniffers: Vec<Sniffer>,
    /// One medium per *partition*: per channel in an unsharded simulator,
    /// per RF-isolation component in a sharded one. Every effect of a
    /// transmission — reception, NAV, carrier sense, sniffer capture — is
    /// confined to its medium by construction.
    media: Vec<Medium>,
    /// The channel each medium lives on (`media[i]` ↔ `medium_channel[i]`).
    /// Identity mapping when media are per-channel.
    medium_channel: Vec<usize>,
    /// True when media are RF-isolation components rather than whole
    /// channels (built by [`crate::shard`]; disables channel migration).
    partitioned: bool,
    mac_index: HashMap<MacAddr, NodeId>,
    /// Ground truth.
    pub ground_truth: GroundTruth,
    events_processed: u64,
    /// Cumulative transmission air time per channel, µs (drives dynamic
    /// channel assignment).
    chan_airtime_us: Vec<u64>,
    /// Cached pairwise RSSI / carrier-sense reachability (rebuilt lazily
    /// when the population changes; see [`crate::topology`]).
    topology: SensingTopology,
    /// Which stations belong to each medium (kept in lockstep with
    /// `Station::medium_idx`), for masking cached sensing rows.
    medium_members: Vec<NodeSet>,
    /// The medium each sniffer captures on (parallel to `sniffers`).
    sniffer_medium: Vec<usize>,
    /// Global sniffer keys (scenario-wide build order; fade-link and RNG
    /// stream identity, stable across shard partitionings).
    sniffer_keys: Vec<u64>,
    /// Per-sniffer decode-draw streams, keyed
    /// `SNIFFER_LINK_BASE + sniffer_keys[i]`.
    sniffer_rngs: Vec<SimRng>,
    /// Scratch: sampled MSDU sizes of one traffic batch.
    sizes_scratch: Vec<u32>,
    /// Scratch: listener-bitset word snapshot while applying or releasing
    /// carrier-sense busy (bits are walked in place; extracting ~N ids per
    /// frame into a `Vec<NodeId>` dominated the 320-user profile).
    cs_scratch: Vec<u64>,
    /// Scratch: per-channel air-time deltas of one channel evaluation.
    eval_deltas: Vec<u64>,
    /// Scratch: clients following an AP's channel switch.
    followers_scratch: Vec<NodeId>,
    /// Scratch: interferer RSSI values of one reception.
    interferer_rssi: Vec<f64>,
    /// Scratch: one same-timestamp event batch from the queue.
    batch_scratch: Vec<Event>,
    /// Scratch: `(canonical key, event)` pairs of one batch being sorted.
    /// Keys are computed once per event here — `CsBusy`/`TxEnd` keys scan
    /// the medium's active list, too costly to recompute per comparison.
    keyed_scratch: Vec<((u8, u64, u64, u64), Event)>,
    /// Scratch: `(sniffer index, faded RSSI)` of every sniffer that hears
    /// one frame, gathered before the batched success-probability pass.
    sniffer_hear_scratch: Vec<(usize, f64)>,
    /// Scratch: SINRs parallel to [`Self::sniffer_hear_scratch`].
    sniffer_sinr_scratch: Vec<f64>,
    /// Scratch: decode probabilities parallel to the SINR scratch, filled
    /// by one [`batch::frame_success_probs`] call per frame.
    sniffer_prob_scratch: Vec<f64>,
    /// Memoized slow-fade draws per directed station link, `[tx * n + rx]`;
    /// `NAN` = not drawn this coherence bucket. Bucket boundaries are
    /// global (`now / coherence_us`), so one [`Self::fade_epoch`] stamp
    /// validates the whole cache instead of a per-entry tag — at ramp scale
    /// that halves the dominant O(n²) resident allocation. `Fading::fade_db`
    /// is a pure function of `(link, bucket, seed)` and never returns `NAN`,
    /// so a hit returns the exact value a fresh call would compute —
    /// results stay bit-identical.
    fade_cache: Vec<f64>,
    /// Memoized sniffer-link fades, `[sniffer * n + tx]`, same scheme.
    sniffer_fade_cache: Vec<f64>,
    /// Coherence bucket both fade caches describe (`u64::MAX` = none yet).
    fade_epoch: u64,
    /// Lockstep sharding: while `true`, the station adders materialize
    /// passive *shells* (identity only — no seeded events, no build-time
    /// RNG draws, no medium membership). Toggled by [`crate::shard`] while
    /// replaying the build order of stations owned by other shards.
    shell_mode: bool,
    /// Lockstep sharding: `export_mask[node]` marks stations audible across
    /// a shard cut, whose transmissions must be queued as [`RemoteNotice`]s
    /// for the window-boundary exchange. Empty outside lockstep shards.
    export_mask: Vec<bool>,
    /// Lockstep sharding: outbox of exported transmissions started since
    /// the last [`Self::drain_remote_notices`].
    remote_notices: Vec<RemoteNotice>,
}

impl Simulator {
    /// A new, empty simulation with one medium per channel.
    pub fn new(config: SimConfig) -> Simulator {
        let medium_channel = (0..config.channels.len()).collect();
        Simulator::with_media(config, medium_channel, false)
    }

    /// A simulator whose media are the given partitions (one per entry of
    /// `medium_channel`, which names the channel each medium lives on).
    /// Used by [`crate::shard`] to build RF-isolation-component media;
    /// incompatible with dynamic channel assignment, which migrates
    /// stations between media.
    pub(crate) fn new_partitioned(config: SimConfig, medium_channel: Vec<usize>) -> Simulator {
        assert!(
            config.channel_mgmt.is_none(),
            "partitioned media are incompatible with dynamic channel assignment"
        );
        assert!(
            medium_channel.iter().all(|&c| c < config.channels.len()),
            "medium on unknown channel"
        );
        Simulator::with_media(config, medium_channel, true)
    }

    fn with_media(config: SimConfig, medium_channel: Vec<usize>, partitioned: bool) -> Simulator {
        let media = medium_channel.iter().map(|_| Medium::new()).collect();
        let chan_airtime_us = vec![0; config.channels.len()];
        let medium_members = medium_channel.iter().map(|_| NodeSet::new()).collect();
        Simulator {
            config,
            now: 0,
            queue: EventQueue::new(),
            stations: Vec::new(),
            hot: HotState::default(),
            sniffers: Vec::new(),
            media,
            medium_channel,
            partitioned,
            mac_index: HashMap::new(),
            ground_truth: GroundTruth::default(),
            events_processed: 0,
            chan_airtime_us,
            topology: SensingTopology::default(),
            medium_members,
            sniffer_medium: Vec::new(),
            sniffer_keys: Vec::new(),
            sniffer_rngs: Vec::new(),
            sizes_scratch: Vec::new(),
            cs_scratch: Vec::new(),
            eval_deltas: Vec::new(),
            followers_scratch: Vec::new(),
            interferer_rssi: Vec::new(),
            batch_scratch: Vec::new(),
            keyed_scratch: Vec::new(),
            sniffer_hear_scratch: Vec::new(),
            sniffer_sinr_scratch: Vec::new(),
            sniffer_prob_scratch: Vec::new(),
            fade_cache: Vec::new(),
            sniffer_fade_cache: Vec::new(),
            fade_epoch: u64::MAX,
            shell_mode: false,
            export_mask: Vec::new(),
            remote_notices: Vec::new(),
        }
    }

    /// Current simulation time, microseconds.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Discrete events handled so far — the denominator of the
    /// events-per-second throughput figure in run reports.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Event-queue churn counters (pushed/popped/stale-dropped/cascaded).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Pending events that will actually fire (cancelled timers excluded).
    pub fn pending_events(&self) -> usize {
        self.queue.live_len()
    }

    /// The stations (APs and clients): cold per-station state.
    pub fn stations(&self) -> &[Station] {
        &self.stations
    }

    /// The struct-of-arrays hot-state columns (contention, carrier sense,
    /// NAV, keys), indexed by node id parallel to [`Self::stations`].
    pub fn hot(&self) -> &HotState {
        &self.hot
    }

    /// The sniffers.
    pub fn sniffers(&self) -> &[Sniffer] {
        &self.sniffers
    }

    /// Mutable sniffer access (e.g. to take traces out).
    pub fn sniffers_mut(&mut self) -> &mut [Sniffer] {
        &mut self.sniffers
    }

    /// Collision/transmission counters per channel, summed over that
    /// channel's media (one medium per channel unsharded, so the sum is
    /// the identity there).
    pub fn medium_stats(&self) -> Vec<(u64, u64)> {
        let mut per_channel = vec![(0u64, 0u64); self.config.channels.len()];
        for (m, &ch) in self.media.iter().zip(&self.medium_channel) {
            per_channel[ch].0 += m.transmissions;
            per_channel[ch].1 += m.collisions;
        }
        per_channel
    }

    /// Cached path-loss RSSI plus the current slow-fade of the `tx → rx`
    /// station link.
    #[inline]
    fn faded_rssi(&mut self, tx_node: NodeId, rx_node: NodeId) -> f64 {
        self.topology.rssi(tx_node, rx_node) + self.link_fade(tx_node, rx_node)
    }

    /// Invalidates both fade caches when `now` crossed into a new coherence
    /// bucket. Bucket boundaries are global, so one stamp covers every link.
    #[inline]
    fn fade_bucket(&mut self) -> u64 {
        let bucket = self.now / self.config.radio.fading.coherence_us.max(1);
        if bucket != self.fade_epoch {
            self.fade_cache.fill(f64::NAN);
            self.sniffer_fade_cache.fill(f64::NAN);
            self.fade_epoch = bucket;
        }
        bucket
    }

    /// Memoized `fade_db` for a station → station link: one Box–Muller
    /// draw (hash + `ln`/`sqrt`/`cos`) per link per coherence interval
    /// instead of per frame. Hits return the stored bits unchanged.
    #[inline]
    fn link_fade(&mut self, tx_node: NodeId, rx_node: NodeId) -> f64 {
        let fading = self.config.radio.fading;
        if fading.sigma_db == 0.0 {
            return 0.0;
        }
        self.fade_bucket();
        let tx_key = self.hot.fade_key(tx_node);
        let rx_key = self.hot.fade_key(rx_node);
        let n = self.stations.len();
        let slot = &mut self.fade_cache[tx_node * n + rx_node];
        if slot.is_nan() {
            *slot = fading.fade_db(tx_key, rx_key, self.now);
        }
        *slot
    }

    /// Memoized `fade_db` of station `tx_node` at sniffer `idx`
    /// (unscaled; callers apply the sniffer's `fade_scale`).
    #[inline]
    fn sniffer_fade(&mut self, idx: usize, tx_node: NodeId) -> f64 {
        let fading = self.config.radio.fading;
        if fading.sigma_db == 0.0 {
            return 0.0;
        }
        self.fade_bucket();
        let tx_key = self.hot.fade_key(tx_node);
        let link = SNIFFER_LINK_BASE + self.sniffer_keys[idx];
        let n = self.stations.len();
        let slot = &mut self.sniffer_fade_cache[idx * n + tx_node];
        if slot.is_nan() {
            *slot = fading.fade_db(tx_key, link, self.now);
        }
        *slot
    }

    /// SINR of transmission `tx` at station `rx_node`: cached+faded RSSI
    /// against the interferer set, summed in medium registration order via
    /// the reusable scratch buffer (no per-reception allocation).
    fn station_sinr(
        &mut self,
        rssi: f64,
        tx: &crate::medium::Transmission,
        rx_node: NodeId,
    ) -> f64 {
        let mut interf = std::mem::take(&mut self.interferer_rssi);
        interf.clear();
        let fading = self.config.radio.fading;
        if fading.sigma_db == 0.0 {
            for &nid in &tx.interferers {
                interf.push(self.topology.rssi(nid, rx_node));
            }
        } else {
            // Coherence-bucket-keyed prefetch: validate the fade caches once
            // for the whole interferer list, then walk the `→ rx_node` cache
            // column directly — `link_fade`'s per-call sigma/bucket checks
            // and key loads, hoisted out of the loop. A miss draws exactly
            // the `fade_db(tx_key, rx_key, now)` bits the scalar path would.
            self.fade_bucket();
            let n = self.stations.len();
            let now = self.now;
            let rx_key = self.hot.fade_key(rx_node);
            for &nid in &tx.interferers {
                let slot = &mut self.fade_cache[nid * n + rx_node];
                if slot.is_nan() {
                    *slot = fading.fade_db(self.hot.fade_key(nid), rx_key, now);
                }
                interf.push(self.topology.rssi(nid, rx_node) + *slot);
            }
        }
        let sinr = batch::effective_sinr_db(
            rssi,
            &interf,
            self.config.radio.noise_floor_dbm,
            processing_gain_db(tx.rate),
        );
        self.interferer_rssi = interf;
        sinr
    }

    /// Sizes the fade memos for the current population. The topology
    /// itself needs no check here: the station/sniffer adders and
    /// [`Self::move_station`] maintain it eagerly and incrementally (one
    /// dirty row + column per change, [`crate::topology`]), so by
    /// construction it always covers the population — asserted, not
    /// guessed from counts.
    fn ensure_topology(&mut self) {
        let (n, sniffers) = (self.stations.len(), self.sniffers.len());
        debug_assert_eq!(self.topology.station_count(), n);
        debug_assert_eq!(self.topology.sniffer_count(), sniffers);
        // Size the fade memos alongside the topology matrix; a population
        // change rebuilds them all-`NAN` ("never drawn"). Fresh exact-size
        // allocations, for the same reason as the RSSI matrix: incremental
        // joins would otherwise leave amortized-doubling dead capacity on
        // the largest allocation in the simulator.
        if self.fade_cache.len() != n * n {
            self.fade_cache = Vec::new();
            self.fade_cache.reserve_exact(n * n);
            self.fade_cache.resize(n * n, f64::NAN);
        }
        if self.sniffer_fade_cache.len() != sniffers * n {
            self.sniffer_fade_cache = Vec::new();
            self.sniffer_fade_cache.reserve_exact(sniffers * n);
            self.sniffer_fade_cache.resize(sniffers * n, f64::NAN);
        }
    }

    /// Adds an access point. Returns its node id. The first beacon is
    /// scheduled at a random offset inside one beacon interval so that
    /// co-channel APs do not beacon in lockstep.
    pub fn add_ap(&mut self, pos: Pos, channel_idx: usize, ssid_len: u32) -> NodeId {
        assert!(
            channel_idx < self.config.channels.len(),
            "bad channel index"
        );
        let key = self.stations.len() as u64;
        self.add_ap_keyed(
            pos,
            channel_idx,
            ssid_len,
            RateAdaptation::Arf(Rate::R11),
            RtsPolicy::Never,
            key,
            channel_idx,
        )
    }

    /// Adds an AP whose downlink transmissions use the given rate adaptation
    /// and RTS policy (ablations).
    pub fn add_ap_with(
        &mut self,
        pos: Pos,
        channel_idx: usize,
        ssid_len: u32,
        adaptation: RateAdaptation,
        rts_policy: RtsPolicy,
    ) -> NodeId {
        assert!(
            channel_idx < self.config.channels.len(),
            "bad channel index"
        );
        let key = self.stations.len() as u64;
        self.add_ap_keyed(
            pos,
            channel_idx,
            ssid_len,
            adaptation,
            rts_policy,
            key,
            channel_idx,
        )
    }

    /// AP adder taking the global identity explicitly: `key` is the
    /// scenario-wide build index (RNG stream, fade link, MAC) and
    /// `medium_idx` the local medium. The public adders pass
    /// `key = local index, medium = channel`; [`crate::shard`] passes
    /// global keys and component media.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn add_ap_keyed(
        &mut self,
        pos: Pos,
        channel_idx: usize,
        ssid_len: u32,
        adaptation: RateAdaptation,
        rts_policy: RtsPolicy,
        key: u64,
        medium_idx: usize,
    ) -> NodeId {
        let mac = MacAddr::from_id(key as u32 + 1);
        let id = self.stations.len();
        // Beacon body: fixed(12) + ssid IE(2+n) + rates IE(6) + DS IE(3).
        let beacon_body = frame::BEACON_FIXED_BODY_BYTES as u32 + 2 + ssid_len + 6 + 3;
        let mut st = Station::new(
            id,
            mac,
            pos,
            Role::Ap {
                beacon_body_bytes: beacon_body,
            },
            RtsPolicy::Never,
            RateAdaptation::Arf(Rate::R11),
            TrafficProfile::silent(),
        );
        st.adapter_cfg = adaptation;
        st.rts_policy = rts_policy;
        st.queue_cap = self.config.queue_cap;
        st.joined = true;
        st.rng = SimRng::new(self.config.seed, key);
        self.stations.push(st);
        self.hot.push(
            channel_idx,
            medium_idx,
            key,
            self.config.dcf.cw_min,
            self.shell_mode,
        );
        // Eager incremental topology maintenance: one dirty row + column,
        // shells included (every shard must agree on the full matrix).
        self.topology.add_station(pos, &self.config.radio);
        self.mac_index.insert(mac, id);
        if self.shell_mode {
            // Passive shell: identity only. No medium membership, no beacon
            // schedule, and — critically for cross-shard RNG agreement — no
            // build-time draws from the station's stream.
            return id;
        }
        self.medium_members[medium_idx].insert(id);
        let beacon_interval = self.config.beacon_interval_us;
        let channel_mgmt = self.config.channel_mgmt;
        let offset = self.stations[id].rng.gen_range(0..beacon_interval);
        self.queue.push(offset, Event::BeaconDue { node: id });
        if let Some(cm) = channel_mgmt {
            let jitter = self.stations[id]
                .rng
                .gen_range(0..cm.eval_interval_us.max(1));
            self.queue.push(
                cm.eval_interval_us + jitter,
                Event::ChannelEval { node: id },
            );
        }
        id
    }

    /// Adds a client. Returns its node id.
    pub fn add_client(&mut self, cfg: ClientConfig) -> NodeId {
        assert!(
            cfg.channel_idx < self.config.channels.len(),
            "bad channel index"
        );
        let key = self.stations.len() as u64;
        let medium_idx = cfg.channel_idx;
        self.add_client_keyed(cfg, key, medium_idx)
    }

    /// Client adder taking the global identity explicitly (see
    /// [`Self::add_ap_keyed`]).
    pub(crate) fn add_client_keyed(
        &mut self,
        cfg: ClientConfig,
        key: u64,
        medium_idx: usize,
    ) -> NodeId {
        let mac = MacAddr::from_id(key as u32 + 1);
        let id = self.stations.len();
        let mut st = Station::new(
            id,
            mac,
            cfg.pos,
            Role::Client,
            cfg.rts_policy,
            cfg.adaptation,
            cfg.traffic,
        );
        st.queue_cap = self.config.queue_cap;
        st.power_save_interval_us = cfg.power_save_interval_us;
        st.frag_threshold = cfg.frag_threshold;
        st.rng = SimRng::new(self.config.seed, key);
        self.stations.push(st);
        self.hot.push(
            cfg.channel_idx,
            medium_idx,
            key,
            self.config.dcf.cw_min,
            self.shell_mode,
        );
        self.topology.add_station(cfg.pos, &self.config.radio);
        self.mac_index.insert(mac, id);
        if self.shell_mode {
            return id; // passive shell (see add_ap_keyed)
        }
        self.medium_members[medium_idx].insert(id);
        self.queue
            .push(cfg.join_at_us, Event::UserJoin { node: id });
        if let Some(leave) = cfg.leave_at_us {
            self.queue.push(leave, Event::UserLeave { node: id });
        }
        if let Some(interval) = cfg.power_save_interval_us {
            let first = cfg.join_at_us + self.stations[id].rng.gen_range(0..interval.max(1));
            self.queue.push(first, Event::PowerSaveTick { node: id });
        }
        id
    }

    /// Adds a sniffer; returns its index.
    pub fn add_sniffer(&mut self, cfg: SnifferConfig) -> usize {
        assert!(
            cfg.channel_idx < self.config.channels.len(),
            "bad channel index"
        );
        let key = self.sniffers.len() as u64;
        let medium_idx = cfg.channel_idx;
        self.add_sniffer_keyed(cfg, key, medium_idx)
    }

    /// Sniffer adder taking the global identity explicitly (see
    /// [`Self::add_ap_keyed`]). The RNG stream and fade link are keyed
    /// `SNIFFER_LINK_BASE + key`, past the station key space.
    pub(crate) fn add_sniffer_keyed(
        &mut self,
        cfg: SnifferConfig,
        key: u64,
        medium_idx: usize,
    ) -> usize {
        self.sniffer_medium.push(medium_idx);
        self.sniffer_keys.push(key);
        self.sniffer_rngs
            .push(SimRng::new(self.config.seed, SNIFFER_LINK_BASE + key));
        self.topology.add_sniffer(cfg.pos, &self.config.radio);
        self.sniffers.push(Sniffer::new(cfg));
        self.sniffers.len() - 1
    }

    /// Pre-sizes the topology cache for a known final population: one
    /// exact allocation instead of geometric growth while stations join.
    /// Scenario builders call this with their final counts; the resulting
    /// footprint matches a one-shot full rebuild exactly.
    pub fn reserve_stations(&mut self, stations: usize, sniffers: usize) {
        self.topology.reserve(stations, sniffers);
    }

    /// The maintained sensing-topology cache (always covering the current
    /// population — the adders and [`Self::move_station`] update it
    /// eagerly). Shard drift detection reads coupling rows and the
    /// mutation epoch from here.
    pub fn topology(&self) -> &SensingTopology {
        &self.topology
    }

    // ------------------------------------------------------------------
    // Lockstep sharding (see `crate::shard` and docs/DETERMINISM.md)
    // ------------------------------------------------------------------

    /// Switches the builder into (or out of) *shell mode*: while on, the
    /// station adders materialize passive shells owned by another shard.
    /// Used by [`crate::shard`] to replay the full scenario build order on
    /// every lockstep shard, so node ids, MACs and topology rows agree
    /// across shards.
    pub(crate) fn set_shell_mode(&mut self, on: bool) {
        self.shell_mode = on;
    }

    /// Installs the export mask: stations whose transmissions must be
    /// queued as [`RemoteNotice`]s for the window-boundary exchange.
    pub(crate) fn set_export_mask(&mut self, mask: Vec<bool>) {
        self.export_mask = mask;
    }

    /// Drains the outbox of exported transmissions started since the last
    /// drain, appending them to `out` in start order. Called by the
    /// lockstep executor at each window boundary.
    pub fn drain_remote_notices(&mut self, out: &mut Vec<RemoteNotice>) {
        out.append(&mut self.remote_notices);
    }

    /// The timestamp of the earliest pending event, if any. Drives the
    /// lockstep executor's idle-window skip-ahead: when every shard's next
    /// event lies far in the future, whole windows are skipped at once.
    pub fn next_event_time(&mut self) -> Option<Micros> {
        self.queue.peek_time()
    }

    /// Replays a transmission owned by another shard as a *ghost* on this
    /// shard's medium. The ghost occupies air exactly like a local
    /// transmission — carrier sense, interference registration, reception,
    /// NAV and sniffer capture all fire for locally-owned listeners — but
    /// the transmitter's state machine, counters, air-time and ground truth
    /// advance only on its owning shard, and ghost `CsBusy`/`TxEnd` events
    /// are excluded from [`Self::events_processed`] so shard sums equal the
    /// unsharded count.
    ///
    /// Must be called at a window boundary `now < start + cs_delay` (the
    /// lockstep window bound `W <= cs_delay` guarantees it), so both ghost
    /// events land strictly in the future.
    pub fn apply_remote_tx(&mut self, notice: &RemoteNotice) {
        self.ensure_topology();
        let node = notice.node;
        let air = notice.end - notice.start;
        let medium = self.hot.medium_idx[node];
        let Simulator {
            media,
            topology,
            medium_members,
            ..
        } = self;
        // Listeners: locally-owned stations only (shells never join a
        // medium), sensed through the same cached carrier-sense row a local
        // transmission would use.
        let mut sensed_by = media[medium].take_set();
        topology.sensed_into(node, &medium_members[medium], &mut sensed_by);
        let tx_id = media[medium].register_remote(
            node,
            notice.frame.clone(),
            notice.rate,
            notice.start,
            notice.end,
            sensed_by,
            |other| topology.coupled(node, other),
        );
        let cs_at = notice.start + self.config.cs_delay_us.min(air.saturating_sub(1));
        debug_assert!(
            cs_at > self.now && notice.end > self.now,
            "ghost events must land in the future (window wider than cs_delay?)"
        );
        self.queue.push(cs_at, Event::CsBusy { medium, tx_id });
        self.queue.push(notice.end, Event::TxEnd { medium, tx_id });
    }

    /// Runs the simulation until `until` (microseconds).
    ///
    /// Events are drained in same-timestamp batches: one queue operation
    /// yields every event sharing the earliest time. Each batch is then
    /// re-ordered by the *canonical* key (`batch_sort_key`) — event
    /// class, then the acting entity's scenario-global key — rather than
    /// push-sequence order. Push order is materialization-local (a lockstep
    /// shard pushes only its own stations' events, in shard-local
    /// interleavings), while the canonical key is a pure function of the
    /// event itself, so every materialization of a scenario processes a
    /// same-microsecond batch identically. Handlers that push at the
    /// current timestamp form the *next* batch (higher sequence numbers),
    /// which is canonically sorted in turn.
    pub fn run_until(&mut self, until: Micros) {
        self.ensure_topology();
        let mut batch = std::mem::take(&mut self.batch_scratch);
        loop {
            batch.clear();
            let Some(at) = self.queue.pop_batch(until, &mut batch) else {
                break;
            };
            if batch.len() > 1 {
                // Stable: events with identical keys (only literally
                // identical, idempotent events can tie) keep queue order.
                // Keys are materialized once per event, then the pairs are
                // stable-sorted — same order `sort_by_key` produced when it
                // recomputed keys per comparison.
                let mut keyed = std::mem::take(&mut self.keyed_scratch);
                keyed.clear();
                keyed.extend(batch.iter().map(|e| (self.batch_sort_key(e), *e)));
                keyed.sort_by_key(|&(k, _)| k);
                batch.clear();
                batch.extend(keyed.iter().map(|&(_, e)| e));
                self.keyed_scratch = keyed;
            }
            self.now = at;
            self.events_processed += batch.len() as u64;
            for &event in &batch {
                self.handle(event);
            }
        }
        self.batch_scratch = batch;
        self.now = until;
        // Timers cancelled eagerly would have popped (and been counted) as
        // stale events under the lazy scheme; fold their ghosts back in so
        // the events-per-second denominator stays comparable across the
        // committed baseline trajectory.
        self.events_processed += self.queue.drain_ghosts(until);
    }

    /// Canonical order of same-microsecond events: `(event class, global
    /// entity key, detail)`. Every component is derived from scenario-global
    /// identity — station keys are build indices, transmission events order
    /// by their *transmitter's* key (never by `tx_id`, whose allocation is
    /// materialization-local) — so any two simulators holding the same
    /// events in a batch sort them the same way. A station has at most one
    /// transmission in flight, so the transmitter key is unique per
    /// `TxEnd`/`CsBusy` at one timestamp.
    fn batch_sort_key(&self, ev: &Event) -> (u8, u64, u64, u64) {
        let key = |node: NodeId| self.hot.key[node];
        let tx_key = |medium: usize, tx_id: u64| {
            self.media[medium]
                .active()
                .iter()
                .find(|t| t.tx_id == tx_id)
                .map_or(u64::MAX, |t| key(t.node))
        };
        let timer_rank = |kind: TimerKind| match kind {
            TimerKind::DeferDone => 0u64,
            TimerKind::BackoffDone => 1,
            TimerKind::SifsResponse => 2,
            TimerKind::CtsTimeout => 3,
            TimerKind::AckTimeout => 4,
            TimerKind::NavExpired => 5,
        };
        match *ev {
            Event::UserJoin { node } => (0, key(node), 0, 0),
            Event::UserLeave { node } => (1, key(node), 0, 0),
            Event::BeaconDue { node } => (2, key(node), 0, 0),
            Event::TrafficArrival { node, flow } => (3, key(node), flow as u64, 0),
            Event::Timer { node, gen, kind } => (4, key(node), timer_rank(kind), gen),
            Event::CsBusy { medium, tx_id } => (5, tx_key(medium, tx_id), 0, 0),
            Event::TxEnd { medium, tx_id } => (6, tx_key(medium, tx_id), 0, 0),
            Event::ChannelEval { node } => (7, key(node), 0, 0),
            Event::PowerSaveTick { node } => (8, key(node), 0, 0),
            Event::FollowAp { node, channel_idx } => (9, key(node), channel_idx as u64, 0),
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::UserJoin { node } => self.on_user_join(node),
            Event::UserLeave { node } => self.on_user_leave(node),
            Event::BeaconDue { node } => self.on_beacon_due(node),
            Event::TrafficArrival { node, flow } => self.on_traffic(node, flow),
            Event::Timer { node, gen, kind } => self.on_timer(node, gen, kind),
            Event::CsBusy { medium, tx_id } => self.on_cs_busy(medium, tx_id),
            Event::TxEnd { medium, tx_id } => self.on_tx_end(medium, tx_id),
            Event::ChannelEval { node } => self.on_channel_eval(node),
            Event::PowerSaveTick { node } => self.on_power_save_tick(node),
            Event::FollowAp { node, channel_idx } => self.on_follow_ap(node, channel_idx),
        }
    }

    /// Arms the station's single contention timer. The generation bump
    /// invalidates any previous arm (a cross-check retained in `on_timer`);
    /// the queue additionally removes the superseded entry outright, so
    /// re-arming never leaves a dead event behind.
    fn arm_timer(&mut self, node: NodeId, kind: TimerKind, at: Micros) {
        let gen = self.hot.bump_timer_gen(node);
        self.queue.arm_timer(node, gen, kind, at);
    }

    /// NavExpired is validated by condition, not generation, so it must not
    /// bump the generation (that would cancel a live contention timer).
    fn arm_nav_expiry(&mut self, node: NodeId, at: Micros) {
        let gen = self.hot.timer_gen[node];
        self.queue.push(
            at,
            Event::Timer {
                node,
                gen,
                kind: TimerKind::NavExpired,
            },
        );
    }

    fn on_timer(&mut self, node: NodeId, gen: u64, kind: TimerKind) {
        // NavExpired and SifsResponse are condition-validated; the rest are
        // generation-validated.
        match kind {
            TimerKind::NavExpired => {
                if self.hot.nav_until[node] <= self.now && self.hot.sensed[node] == 0 {
                    self.on_channel_idle(node);
                }
                return;
            }
            TimerKind::SifsResponse => {
                self.fire_sifs_response(node);
                return;
            }
            _ => {}
        }
        if self.hot.timer_gen[node] != gen {
            return; // stale
        }
        match kind {
            TimerKind::DeferDone => self.on_defer_done(node),
            TimerKind::BackoffDone => self.on_backoff_done(node),
            TimerKind::CtsTimeout => self.on_exchange_timeout(node, MacState::AwaitCts),
            TimerKind::AckTimeout => self.on_exchange_timeout(node, MacState::AwaitAck),
            TimerKind::NavExpired | TimerKind::SifsResponse => unreachable!(),
        }
    }

    // ------------------------------------------------------------------
    // Join / leave / association
    // ------------------------------------------------------------------

    fn on_user_join(&mut self, node: NodeId) {
        let st = &self.stations[node];
        if st.associated_ap.is_some() || st.departed {
            return; // already associated, or left for good (stale retry)
        }
        let medium_idx = self.hot.medium_idx[node];
        let first_join = !st.joined;
        self.stations[node].joined = true;
        // Active scanning: a broadcast probe request precedes the first
        // association attempt, as real clients do.
        if first_join {
            self.stations[node].enqueue(Msdu {
                dst: MacAddr::BROADCAST,
                bssid: MacAddr::BROADCAST,
                payload: PROBE_REQ_BODY,
                kind: MsduKind::Mgmt(FrameKind::ProbeRequest),
                enqueued_at: self.now,
            });
        }
        // Pick the strongest AP on our medium (cached path loss). Unsharded
        // the medium is the whole channel; sharded it is our RF-isolation
        // component, which contains our strongest co-channel AP by
        // construction (the shard planner's forced edge).
        let best_on = |sim: &Simulator, m: Option<usize>| -> Option<(NodeId, f64)> {
            let mut best: Option<(NodeId, f64)> = None;
            for (i, ap) in sim.stations.iter().enumerate() {
                if ap.is_ap() && m.is_none_or(|mm| sim.hot.medium_idx[i] == mm) {
                    let rssi = sim.topology.rssi(i, node);
                    if best.is_none_or(|(_, b)| rssi > b) {
                        best = Some((i, rssi));
                    }
                }
            }
            best
        };
        let mut choice = best_on(self, Some(medium_idx));
        if choice.is_none() && !self.partitioned {
            // Our channel has no AP (it may have migrated away): scan all
            // channels and retune to the strongest AP found anywhere.
            if let Some((ap_id, rssi)) = best_on(self, None) {
                let target = self.hot.channel_idx[ap_id];
                if self.move_station_channel(node, target) {
                    choice = Some((ap_id, rssi));
                }
            }
        }
        let Some((ap_id, _)) = choice else {
            // No AP anywhere yet (or we were mid-exchange); retry later.
            self.queue
                .push(self.now + ASSOC_RETRY_US, Event::UserJoin { node });
            return;
        };
        let ap_mac = self.stations[ap_id].mac;
        let msdu = Msdu {
            dst: ap_mac,
            bssid: ap_mac,
            payload: ASSOC_REQ_BODY,
            kind: MsduKind::Mgmt(FrameKind::AssocRequest),
            enqueued_at: self.now,
        };
        self.stations[node].enqueue(msdu);
        self.try_dequeue(node);
    }

    fn on_user_leave(&mut self, node: NodeId) {
        let st = &mut self.stations[node];
        st.joined = false;
        st.departed = true;
        st.associated_ap = None;
        st.queue.clear();
        // An in-flight TxOp completes or times out on its own.
    }

    fn complete_association(&mut self, client: NodeId, ap: NodeId) {
        let st = &mut self.stations[client];
        if st.associated_ap.is_some() || !st.joined {
            return;
        }
        st.associated_ap = Some(ap);
        // Start traffic flows; both directions draw on the client's stream.
        let Station { traffic, rng, .. } = st;
        let up_gap = traffic.uplink.next_gap(rng);
        let down_gap = traffic.downlink.next_gap(rng);
        if let Some(g) = up_gap {
            self.queue.push(
                self.now + g,
                Event::TrafficArrival {
                    node: client,
                    flow: 0,
                },
            );
        }
        if let Some(g) = down_gap {
            self.queue.push(
                self.now + g,
                Event::TrafficArrival {
                    node: client,
                    flow: 1,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Traffic and beacons
    // ------------------------------------------------------------------

    fn on_traffic(&mut self, node: NodeId, flow: usize) {
        let st = &self.stations[node];
        if !st.joined {
            return; // user left: flow dies
        }
        let Some(ap) = st.associated_ap else {
            return; // disassociated: flow dies (re-association restarts it)
        };
        let ap_mac = self.stations[ap].mac;
        let client_mac = st.mac;
        let now = self.now;
        // One arrival event delivers a (possibly bursty) batch of MSDUs.
        // Borrow-split so the flow config (whose size distribution is
        // heap-backed) is sampled in place instead of cloned per event. Both
        // directions of a client's traffic draw on the *client's* stream
        // (downlink MSDUs are enqueued at the AP but belong to this flow).
        {
            let Simulator {
                stations,
                sizes_scratch,
                ..
            } = self;
            let Station { traffic, rng, .. } = &mut stations[node];
            let flow_cfg = if flow == 0 {
                &traffic.uplink
            } else {
                &traffic.downlink
            };
            let batch = flow_cfg.batch_size(rng);
            sizes_scratch.clear();
            for _ in 0..batch {
                sizes_scratch.push(flow_cfg.sizes.sample(rng));
            }
        }
        let (enqueue_on, dst, to_ds) = if flow == 0 {
            (node, ap_mac, true)
        } else {
            (ap, client_mac, false)
        };
        for i in 0..self.sizes_scratch.len() {
            let size = self.sizes_scratch[i];
            self.stations[enqueue_on].enqueue(Msdu {
                dst,
                bssid: ap_mac,
                payload: size,
                kind: MsduKind::Data { to_ds },
                enqueued_at: now,
            });
        }
        self.try_dequeue(enqueue_on);
        let Simulator {
            stations, queue, ..
        } = self;
        let Station { traffic, rng, .. } = &mut stations[node];
        let flow_cfg = if flow == 0 {
            &traffic.uplink
        } else {
            &traffic.downlink
        };
        if let Some(g) = flow_cfg.next_gap(rng) {
            queue.push(now + g, Event::TrafficArrival { node, flow });
        }
    }

    fn on_beacon_due(&mut self, node: NodeId) {
        let Role::Ap { beacon_body_bytes } = self.stations[node].role else {
            return;
        };
        let mac = self.stations[node].mac;
        self.stations[node].enqueue_front(Msdu {
            dst: MacAddr::BROADCAST,
            bssid: mac,
            payload: beacon_body_bytes,
            kind: MsduKind::Beacon,
            enqueued_at: self.now,
        });
        self.queue.push(
            self.now + self.config.beacon_interval_us,
            Event::BeaconDue { node },
        );
        self.try_dequeue(node);
    }

    /// A power-saving client toggles its power-management bit with a
    /// Null-function frame to its AP — the short S-class signalling chatter
    /// real clients emit (Section 3's power-save machinery, trace-visible).
    fn on_power_save_tick(&mut self, node: NodeId) {
        let st = &self.stations[node];
        if !st.joined || st.departed {
            return; // user left: cadence dies
        }
        let Some(interval) = st.power_save_interval_us else {
            return;
        };
        if let Some(ap) = st.associated_ap {
            let ap_mac = self.stations[ap].mac;
            let st = &mut self.stations[node];
            st.power_save_state = !st.power_save_state;
            st.enqueue(Msdu {
                dst: ap_mac,
                bssid: ap_mac,
                payload: 0,
                kind: MsduKind::Null,
                enqueued_at: self.now,
            });
            self.try_dequeue(node);
        }
        let jitter = self.stations[node].rng.gen_range(0..interval / 4 + 1);
        self.queue
            .push(self.now + interval + jitter, Event::PowerSaveTick { node });
    }

    // ------------------------------------------------------------------
    // Contention
    // ------------------------------------------------------------------

    /// Starts serving the head-of-line MSDU if the station is free.
    fn try_dequeue(&mut self, node: NodeId) {
        if self.hot.state[node] != MacState::Idle {
            return;
        }
        let st = &mut self.stations[node];
        if st.current.is_some() {
            return;
        }
        let Some(msdu) = st.queue.pop_front() else {
            return;
        };
        let seq = st.take_seq();
        let unicast = !msdu.dst.is_multicast();
        let (rate, use_rts) = match msdu.kind {
            MsduKind::Data { .. } => {
                let r = st.pick_rate(msdu.dst);
                (r, unicast && st.rts_policy.applies(msdu.payload))
            }
            _ => (self.config.control_rate, false),
        };
        // Fragmentation: unicast data MSDUs above the threshold become a
        // SIFS-separated fragment burst.
        let (current_payload, pending_fragments) = match (st.frag_threshold, &msdu.kind) {
            (Some(thr), MsduKind::Data { .. }) if unicast && msdu.payload > thr && thr > 0 => {
                let mut chunks: Vec<u32> = Vec::new();
                let mut remaining = msdu.payload;
                while remaining > 0 {
                    let take = remaining.min(thr);
                    chunks.push(take);
                    remaining -= take;
                }
                let first = chunks.remove(0);
                (first, chunks)
            }
            _ => (msdu.payload, Vec::new()),
        };
        st.current = Some(TxOp {
            msdu,
            retries: 0,
            current_payload,
            pending_fragments,
            frag_no: 0,
            use_rts,
            cts_received: false,
            seq,
            rate,
            first_tx_at: None,
        });
        self.begin_access(node);
    }

    /// Enters the channel-access procedure for the current TxOp.
    fn begin_access(&mut self, node: NodeId) {
        let now = self.now;
        let difs = self.defer_interval(node);
        debug_assert!(self.stations[node].current.is_some());
        if self.hot.channel_busy(node, now) {
            if self.hot.backoff_slots[node] == 0 {
                let cw = self.hot.cw[node];
                self.hot.backoff_slots[node] = draw_backoff(&mut self.stations[node].rng, cw);
            }
            self.hot.state[node] = MacState::Frozen;
            return;
        }
        // Channel idle. Immediate transmission is allowed only with no
        // pending backoff and a DIFS of idle time already behind us.
        if self.hot.backoff_slots[node] == 0 && self.hot.idle_since[node] + difs <= now {
            self.transmit_current(node);
            return;
        }
        if self.hot.backoff_slots[node] == 0 {
            let cw = self.hot.cw[node];
            self.hot.backoff_slots[node] = draw_backoff(&mut self.stations[node].rng, cw);
        }
        self.hot.state[node] = MacState::WaitDefer;
        let ready_at = (self.hot.idle_since[node] + difs).max(now);
        self.arm_timer(node, TimerKind::DeferDone, ready_at);
    }

    fn defer_interval(&self, node: NodeId) -> Micros {
        if self.config.eifs_enabled && self.hot.use_eifs[node] {
            self.config.dcf.eifs_us()
        } else {
            self.config.dcf.difs_us()
        }
    }

    fn on_defer_done(&mut self, node: NodeId) {
        let now = self.now;
        if self.hot.state[node] != MacState::WaitDefer {
            return;
        }
        self.hot.use_eifs[node] = false;
        if self.hot.channel_busy(node, now) {
            self.hot.state[node] = MacState::Frozen;
            return;
        }
        let slots = self.hot.backoff_slots[node];
        if slots == 0 {
            self.transmit_current(node);
            return;
        }
        self.hot.state[node] = MacState::Backoff {
            started: now,
            slots_at_start: slots,
        };
        let fire_at = now + slots as Micros * self.config.dcf.slot_us;
        self.arm_timer(node, TimerKind::BackoffDone, fire_at);
    }

    fn on_backoff_done(&mut self, node: NodeId) {
        if !matches!(self.hot.state[node], MacState::Backoff { .. }) {
            return;
        }
        self.hot.backoff_slots[node] = 0;
        self.transmit_current(node);
    }

    /// The channel turned busy for `node`: freeze contention.
    fn on_channel_busy(&mut self, node: NodeId) {
        let now = self.now;
        let slot = self.config.dcf.slot_us;
        let cancelled = match self.hot.state[node] {
            MacState::WaitDefer => {
                self.hot.bump_timer_gen(node);
                self.hot.state[node] = MacState::Frozen;
                true
            }
            MacState::Backoff { started, .. } => {
                self.hot.bump_timer_gen(node);
                self.hot.consume_backoff(node, now - started, slot);
                self.hot.state[node] = MacState::Frozen;
                true
            }
            _ => false,
        };
        if cancelled {
            self.queue.cancel_timer(node);
        }
    }

    /// The channel turned idle for `node`: restart the defer.
    fn on_channel_idle(&mut self, node: NodeId) {
        let now = self.now;
        self.hot.idle_since[node] = now;
        if self.hot.state[node] == MacState::Frozen {
            self.hot.state[node] = MacState::WaitDefer;
            let difs = self.defer_interval(node);
            self.arm_timer(node, TimerKind::DeferDone, now + difs);
        }
    }

    // ------------------------------------------------------------------
    // Transmission
    // ------------------------------------------------------------------

    fn transmit_current(&mut self, node: NodeId) {
        let now = self.now;
        let control_rate = self.config.control_rate;
        let preamble = self.config.preamble;
        let st = &mut self.stations[node];
        let op = st.current.as_mut().expect("transmit without TxOp");
        let mac = st.mac;
        let unicast = !op.msdu.dst.is_multicast();

        if op.use_rts && !op.cts_received {
            // RTS attempt.
            let data_bytes = frame::DATA_OVERHEAD_BYTES as u32 + op.current_payload;
            let data_air = frame_airtime_us(data_bytes as u64, op.rate, preamble);
            let dur = (3 * delay::SIFS + delay::CTS + data_air + delay::ACK).min(u16::MAX as u64);
            let frame = SimFrame::rts(mac, op.msdu.dst, dur as u16);
            st.stats.rts_sent += 1;
            self.start_transmission(node, frame, control_rate, TxPhase::Rts);
            return;
        }

        let retry = op.retries > 0;
        let seq = op.seq;
        op.first_tx_at.get_or_insert(now);
        let frame = match op.msdu.kind {
            MsduKind::Data { to_ds } => {
                let dur = if unicast {
                    (delay::SIFS + delay::ACK) as u16
                } else {
                    0
                };
                SimFrame::data_fragment(
                    mac,
                    op.msdu.dst,
                    op.msdu.bssid,
                    seq,
                    op.frag_no,
                    op.current_payload,
                    retry,
                    dur,
                    to_ds,
                    !op.pending_fragments.is_empty(),
                )
            }
            MsduKind::Null => {
                let mut f = SimFrame::data(
                    mac,
                    op.msdu.dst,
                    op.msdu.bssid,
                    seq,
                    0,
                    retry,
                    (delay::SIFS + delay::ACK) as u16,
                    true,
                );
                f.kind = FrameKind::NullData;
                f.mac_bytes = frame::DATA_OVERHEAD_BYTES as u32;
                f
            }
            MsduKind::Beacon => SimFrame::beacon(mac, seq, op.msdu.payload),
            MsduKind::Mgmt(kind) => SimFrame::mgmt(
                kind,
                mac,
                op.msdu.dst,
                op.msdu.bssid,
                seq,
                op.msdu.payload,
                retry,
                if unicast {
                    (delay::SIFS + delay::ACK) as u16
                } else {
                    0
                },
            ),
        };
        let rate = match op.msdu.kind {
            MsduKind::Data { .. } => op.rate,
            _ => control_rate,
        };
        st.stats.tx_attempts += 1;
        self.ground_truth.data_tx += matches!(op.msdu.kind, MsduKind::Data { .. }) as u64;
        self.start_transmission(node, frame, rate, TxPhase::Data);
    }

    fn start_transmission(&mut self, node: NodeId, frame: SimFrame, rate: Rate, phase: TxPhase) {
        let now = self.now;
        let preamble = self.config.preamble;
        let air = frame_airtime_us(frame.mac_bytes as u64, rate, preamble);
        let end = now + air;
        let medium = self.hot.medium_idx[node];
        self.hot.state[node] = MacState::Transmitting { phase };
        self.hot.tx_until[node] = end;
        // Decide who will sense this transmission: the cached carrier-sense
        // row masked by the medium's membership — a few word ANDs where the
        // unoptimized loop did O(stations) path-loss math per frame. The
        // busy indication lands one detection delay later (the CSMA
        // vulnerability window).
        // Lockstep sharding: a station audible across a shard cut queues a
        // notice for the window-boundary exchange before the frame is moved
        // onto the medium.
        if self.export_mask.get(node).copied().unwrap_or(false) {
            self.remote_notices.push(RemoteNotice {
                node,
                frame: frame.clone(),
                rate,
                start: now,
                end,
            });
        }
        let Simulator {
            media,
            topology,
            medium_members,
            ..
        } = self;
        let mut sensed_by = media[medium].take_set();
        topology.sensed_into(node, &medium_members[medium], &mut sensed_by);
        let tx_id = media[medium].start_tx(node, frame, rate, now, end, sensed_by, |other| {
            topology.coupled(node, other)
        });
        self.queue.push(
            now + self.config.cs_delay_us.min(air.saturating_sub(1)),
            Event::CsBusy { medium, tx_id },
        );
        self.queue.push(end, Event::TxEnd { medium, tx_id });
    }

    /// One detection delay into a transmission: listeners now sense energy.
    fn on_cs_busy(&mut self, medium: usize, tx_id: u64) {
        let now = self.now;
        // Snapshot the listener bitset's words into a reused scratch buffer
        // (the set itself stays on the transmission for the release at
        // TxEnd) and walk the bits in place, ascending — same station order
        // as the id list this replaces, at a fraction of the copy cost.
        let mut words = std::mem::take(&mut self.cs_scratch);
        match self.media[medium]
            .active()
            .iter()
            .find(|t| t.tx_id == tx_id)
        {
            Some(t) => {
                if t.ghost {
                    // Ghost events are bookkeeping of the lockstep exchange,
                    // not part of the scenario's event stream; keep
                    // events_processed equal to the unsharded run's.
                    self.events_processed -= 1;
                }
                t.sensed_by.copy_words_into(&mut words)
            }
            None => {
                self.cs_scratch = words;
                return; // transmission already ended (degenerate cs delay)
            }
        }
        self.media[medium].mark_cs_applied(tx_id);
        for (wi, &w) in words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let i = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let was_busy = self.hot.channel_busy(i, now);
                self.hot.sensed[i] += 1;
                if !was_busy {
                    self.on_channel_busy(i);
                }
            }
        }
        self.cs_scratch = words;
    }

    fn fire_sifs_response(&mut self, node: NodeId) {
        let Some(frame) = self.stations[node].pending_response.take() else {
            return;
        };
        let state = self.hot.state[node];
        let (phase, rate) = match frame.kind {
            // The data frame of an RTS-protected exchange (released a SIFS
            // after its CTS, state AwaitCts) or the next fragment of a burst
            // (released a SIFS after the previous fragment's ACK, state
            // AwaitAck).
            FrameKind::Data | FrameKind::NullData => {
                if state != MacState::AwaitCts && state != MacState::AwaitAck {
                    return;
                }
                let rate = self.stations[node]
                    .current
                    .as_ref()
                    .map(|op| op.rate)
                    .unwrap_or(self.config.control_rate);
                (TxPhase::Data, rate)
            }
            FrameKind::Cts | FrameKind::Ack => {
                // A control response; never interrupt an exchange we are in
                // the middle of (the peer will retry instead).
                if matches!(
                    state,
                    MacState::Transmitting { .. } | MacState::AwaitCts | MacState::AwaitAck
                ) {
                    return;
                }
                // Pause any contention countdown; it resumes after the
                // response.
                self.on_channel_busy(node);
                if frame.kind == FrameKind::Cts {
                    self.stations[node].stats.cts_sent += 1;
                    (TxPhase::Cts, self.config.control_rate)
                } else {
                    self.stations[node].stats.acks_sent += 1;
                    (TxPhase::Ack, self.config.control_rate)
                }
            }
            _ => return,
        };
        self.start_transmission(node, frame, rate, phase);
    }

    // ------------------------------------------------------------------
    // Transmission end: receptions, sniffers, state advance
    // ------------------------------------------------------------------

    fn on_tx_end(&mut self, medium: usize, tx_id: u64) {
        let tx = self.media[medium]
            .end_tx(tx_id)
            .expect("TxEnd for unknown transmission");
        let now = self.now;
        let channel = self.medium_channel[medium];

        // 1. Advance the transmitter's state machine — unless the
        // transmission is a lockstep ghost, whose transmitter lives (and
        // advances) on its owning shard. Ghost events are also excluded
        // from events_processed so shard sums match the unsharded count.
        if tx.ghost {
            self.events_processed -= 1;
        } else {
            self.advance_transmitter(&tx);
        }

        // 2. Intended-receiver reception.
        self.process_reception(medium, &tx);

        // 3. NAV at overhearers, for RTS/CTS only (see module docs).
        if matches!(tx.frame.kind, FrameKind::Rts | FrameKind::Cts) && tx.frame.duration_us > 0 {
            self.process_nav(medium, &tx);
        }

        // 4. Sniffers.
        self.process_sniffers(medium, &tx);

        // 5. Ground truth and channel load accounting (owning shard only:
        // ghost air time and records are accounted where the transmitter
        // lives, so the shard-summed totals equal the unsharded run's).
        if !tx.ghost {
            self.chan_airtime_us[channel] += tx.end.saturating_sub(tx.start);
            self.ground_truth.transmissions += 1;
            if self.config.record_ground_truth {
                let ch = self.config.channels[channel];
                let sig = self.config.radio.tx_power_dbm as i8;
                self.ground_truth
                    .records
                    .push(tx.frame.to_record(tx.end, tx.rate, ch, sig));
            }
        }

        // 6. Release carrier sense. Bitset iteration is ascending, matching
        // the station order the listener set was built in.
        if tx.cs_applied {
            let mut words = std::mem::take(&mut self.cs_scratch);
            tx.sensed_by.copy_words_into(&mut words);
            for (wi, &w) in words.iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let i = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    debug_assert!(self.hot.sensed[i] > 0);
                    self.hot.sensed[i] -= 1;
                    if !self.hot.channel_busy(i, now) {
                        self.on_channel_idle(i);
                    }
                }
            }
            self.cs_scratch = words;
        }
        // The transmitter itself: its own channel went quiet from its side.
        // (A ghost's transmitter is a shell here; it never contends.)
        if !tx.ghost && !self.hot.channel_busy(tx.node, now) {
            self.hot.idle_since[tx.node] = now;
        }
        // 7. Recycle the transmission's listener set and interferer list.
        self.media[medium].recycle(tx);
    }

    fn advance_transmitter(&mut self, tx: &crate::medium::Transmission) {
        let node = tx.node;
        let now = self.now;
        let MacState::Transmitting { phase } = self.hot.state[node] else {
            return;
        };
        match phase {
            TxPhase::Rts => {
                self.hot.state[node] = MacState::AwaitCts;
                let timeout = now + delay::SIFS + delay::CTS + TIMEOUT_MARGIN_US;
                self.arm_timer(node, TimerKind::CtsTimeout, timeout);
            }
            TxPhase::Data => {
                if tx.frame.is_broadcast() {
                    self.complete_delivery(node, false);
                } else {
                    self.hot.state[node] = MacState::AwaitAck;
                    let timeout = now + delay::SIFS + delay::ACK + TIMEOUT_MARGIN_US;
                    self.arm_timer(node, TimerKind::AckTimeout, timeout);
                }
            }
            TxPhase::Cts | TxPhase::Ack => {
                // Response sent; resume whatever we were doing. Contention
                // was paused into Frozen by fire_sifs_response, so the
                // channel-idle path restarts the defer with preserved
                // backoff.
                let has_work = self.stations[node].current.is_some();
                if has_work {
                    self.hot.state[node] = MacState::Frozen;
                    if !self.hot.channel_busy(node, now) {
                        self.on_channel_idle(node);
                    }
                } else {
                    self.hot.state[node] = MacState::Idle;
                    self.hot.idle_since[node] = now;
                    self.try_dequeue(node);
                }
            }
        }
    }

    fn process_reception(&mut self, medium: usize, tx: &crate::medium::Transmission) {
        let frame = &tx.frame;
        if frame.dst.is_multicast() {
            // Broadcast probes solicit responses from every AP that decodes
            // them; other broadcast frames have no modelled consequences.
            if frame.kind == FrameKind::ProbeRequest {
                self.process_probe_request(medium, tx);
            }
            return;
        }
        let Some(&rx_node) = self.mac_index.get(&frame.dst) else {
            return;
        };
        if rx_node == tx.node || self.hot.medium_idx[rx_node] != medium {
            return;
        }
        if self.hot.shell[rx_node] {
            return; // lockstep shell: reception (and its RNG draw) happens
                    // on the receiver's owning shard
        }
        if !self.topology.coupled(tx.node, rx_node) {
            return; // below the pair-coupling floor: no interaction
        }
        if self.hot.was_transmitting_during(rx_node, tx.start, tx.end) {
            return; // half-duplex
        }
        let rssi = self.faded_rssi(tx.node, rx_node);
        if rssi < self.config.radio.sensitivity_dbm {
            return; // out of range
        }
        let sinr = self.station_sinr(rssi, tx, rx_node);
        let p = self
            .config
            .error
            .frame_success_prob(sinr, tx.rate, frame.mac_bytes);
        if self.stations[rx_node].rng.gen::<f64>() >= p {
            if self.config.eifs_enabled {
                self.hot.use_eifs[rx_node] = true;
            }
            return;
        }
        self.deliver_frame(rx_node, tx, sinr);
    }

    /// A broadcast probe request: every AP on the medium that decodes it
    /// queues a probe response to the prober.
    fn process_probe_request(&mut self, medium: usize, tx: &crate::medium::Transmission) {
        let Some(prober) = tx.frame.src else {
            return;
        };
        let now = self.now;
        for i in 0..self.stations.len() {
            if !self.stations[i].is_ap()
                || self.hot.medium_idx[i] != medium
                || i == tx.node
                || self.hot.shell[i]
            {
                continue;
            }
            if !self.topology.coupled(tx.node, i) {
                continue; // below the pair-coupling floor
            }
            if self.hot.was_transmitting_during(i, tx.start, tx.end) {
                continue;
            }
            let rssi = self.faded_rssi(tx.node, i);
            if rssi < self.config.radio.sensitivity_dbm {
                continue;
            }
            let sinr = self.station_sinr(rssi, tx, i);
            let p = self
                .config
                .error
                .frame_success_prob(sinr, tx.rate, tx.frame.mac_bytes);
            if self.stations[i].rng.gen::<f64>() >= p {
                continue;
            }
            let ap_mac = self.stations[i].mac;
            self.stations[i].enqueue(Msdu {
                dst: prober,
                bssid: ap_mac,
                payload: PROBE_RESP_BODY,
                kind: MsduKind::Mgmt(FrameKind::ProbeResponse),
                enqueued_at: now,
            });
            self.try_dequeue(i);
        }
    }

    /// A frame decoded successfully at `rx_node`.
    fn deliver_frame(&mut self, rx_node: NodeId, tx: &crate::medium::Transmission, sinr: f64) {
        let now = self.now;
        let frame = &tx.frame;
        if let Some(src) = frame.src {
            self.stations[rx_node].snr_hints.insert(src, sinr);
        }
        match frame.kind {
            FrameKind::Ack => {
                if self.hot.state[rx_node] == MacState::AwaitAck {
                    self.hot.bump_timer_gen(rx_node); // cancel AckTimeout
                    self.queue.cancel_timer(rx_node);
                    let has_more = self.stations[rx_node]
                        .current
                        .as_ref()
                        .is_some_and(|op| !op.pending_fragments.is_empty());
                    if has_more {
                        self.advance_fragment(rx_node);
                    } else {
                        self.complete_delivery(rx_node, true);
                    }
                }
            }
            FrameKind::Cts => {
                if self.hot.state[rx_node] == MacState::AwaitCts {
                    self.hot.bump_timer_gen(rx_node); // cancel CtsTimeout
                    self.queue.cancel_timer(rx_node);
                    if let Some(op) = self.stations[rx_node].current.as_mut() {
                        op.cts_received = true;
                    }
                    // Data follows after SIFS, bypassing contention.
                    self.schedule_post_cts_data(rx_node);
                }
            }
            FrameKind::Rts => {
                // Respond with CTS only if our NAV is clear.
                if self.hot.nav_until[rx_node] <= now {
                    let src = frame.src.expect("RTS carries a transmitter");
                    let dur = (frame.duration_us as u64)
                        .saturating_sub(delay::SIFS + delay::CTS)
                        .min(u16::MAX as u64) as u16;
                    self.owe_response(rx_node, SimFrame::cts(src, dur));
                }
            }
            FrameKind::Data | FrameKind::NullData => {
                let src = frame.src.expect("data carries a transmitter");
                self.owe_response(rx_node, SimFrame::ack(src));
                // Payload content is not consumed further; duplicates are
                // ACKed like real hardware does.
            }
            FrameKind::AssocRequest => {
                let src = frame.src.expect("mgmt carries a transmitter");
                self.owe_response(rx_node, SimFrame::ack(src));
                if self.stations[rx_node].is_ap() && self.mac_index.contains_key(&src) {
                    let already_queued = self.stations[rx_node].queue.iter().any(|m| {
                        m.dst == src && m.kind == MsduKind::Mgmt(FrameKind::AssocResponse)
                    });
                    if !already_queued {
                        let ap_mac = self.stations[rx_node].mac;
                        self.stations[rx_node].enqueue(Msdu {
                            dst: src,
                            bssid: ap_mac,
                            payload: ASSOC_RESP_BODY,
                            kind: MsduKind::Mgmt(FrameKind::AssocResponse),
                            enqueued_at: now,
                        });
                        self.try_dequeue(rx_node);
                    }
                }
            }
            FrameKind::AssocResponse => {
                let src = frame.src.expect("mgmt carries a transmitter");
                self.owe_response(rx_node, SimFrame::ack(src));
                if let Some(&ap) = self.mac_index.get(&src) {
                    self.complete_association(rx_node, ap);
                }
            }
            _ => {
                // Other management frames: ACK if unicast to us.
                if let Some(src) = frame.src {
                    self.owe_response(rx_node, SimFrame::ack(src));
                }
            }
        }
    }

    fn owe_response(&mut self, node: NodeId, frame: SimFrame) {
        // Never take on a response while mid-exchange: starting a CTS/ACK
        // from AwaitCts/AwaitAck would clobber that state machine. The peer
        // simply retries — comparable to real-hardware behaviour under the
        // same (collision-heavy) conditions.
        if matches!(
            self.hot.state[node],
            MacState::Transmitting { .. } | MacState::AwaitCts | MacState::AwaitAck
        ) {
            return;
        }
        let now = self.now;
        self.stations[node].pending_response = Some(frame);
        let gen = self.hot.timer_gen[node];
        self.queue.push(
            now + delay::SIFS,
            Event::Timer {
                node,
                gen,
                kind: TimerKind::SifsResponse,
            },
        );
    }

    /// The data frame of an RTS-protected exchange follows the CTS by a
    /// SIFS, bypassing contention: store the pre-built frame as the pending
    /// response and let [`Self::fire_sifs_response`] release it.
    fn schedule_post_cts_data(&mut self, node: NodeId) {
        let now = self.now;
        let st = &mut self.stations[node];
        let op = st.current.as_mut().expect("CTS without TxOp");
        let MsduKind::Data { to_ds } = op.msdu.kind else {
            return; // RTS only protects data
        };
        op.first_tx_at.get_or_insert(now + delay::SIFS);
        let retry = op.retries > 0;
        let frame = SimFrame::data(
            st.mac,
            op.msdu.dst,
            op.msdu.bssid,
            op.seq,
            op.msdu.payload,
            retry,
            (delay::SIFS + delay::ACK) as u16,
            to_ds,
        );
        st.stats.tx_attempts += 1;
        st.pending_response = Some(frame);
        let gen = self.hot.timer_gen[node];
        self.ground_truth.data_tx += 1;
        self.queue.push(
            now + delay::SIFS,
            Event::Timer {
                node,
                gen,
                kind: TimerKind::SifsResponse,
            },
        );
    }

    fn process_nav(&mut self, medium: usize, tx: &crate::medium::Transmission) {
        let now = self.now;
        let until = now + tx.frame.duration_us as Micros;
        for i in 0..self.stations.len() {
            if i == tx.node || self.hot.medium_idx[i] != medium || self.hot.shell[i] {
                continue;
            }
            if self.stations[i].mac == tx.frame.dst {
                continue; // the addressee does not set NAV from its own exchange
            }
            if !self.topology.coupled(tx.node, i) {
                continue; // below the pair-coupling floor
            }
            if self.hot.was_transmitting_during(i, tx.start, tx.end) {
                continue;
            }
            let rssi = self.faded_rssi(tx.node, i);
            if rssi < self.config.radio.sensitivity_dbm {
                continue;
            }
            let sinr = self.station_sinr(rssi, tx, i);
            let p = self
                .config
                .error
                .frame_success_prob(sinr, tx.rate, tx.frame.mac_bytes);
            if self.stations[i].rng.gen::<f64>() < p && until > self.hot.nav_until[i] {
                let was_busy = self.hot.channel_busy(i, now);
                self.hot.nav_until[i] = until;
                if !was_busy {
                    self.on_channel_busy(i);
                }
                self.arm_nav_expiry(i, until);
            }
        }
    }

    fn process_sniffers(&mut self, medium: usize, tx: &crate::medium::Transmission) {
        let ch = self.config.channels[self.medium_channel[medium]];
        let now = self.now;
        let floor = self.config.radio.effective_coupling_floor_dbm();
        // Pass 1: gather every sniffer that hears this frame (RSSI + SINR
        // against its local interferer view). Per-sniffer decode draws live
        // on independent RNG streams, so splitting the evaluation from the
        // draws reorders nothing.
        let mut hear = std::mem::take(&mut self.sniffer_hear_scratch);
        let mut sinrs = std::mem::take(&mut self.sniffer_sinr_scratch);
        hear.clear();
        sinrs.clear();
        let fading = self.config.radio.fading;
        for idx in 0..self.sniffers.len() {
            if self.sniffer_medium[idx] != medium {
                continue;
            }
            // The pair-coupling floor applies to sniffer links too: a
            // transmission whose path-loss RSSI at the sniffer is below the
            // floor is not on this sniffer's air at all — not even as a
            // miss. This is what makes per-sniffer traces and statistics
            // independent of how the channel is partitioned into shards.
            if self.topology.sniffer_rssi(idx, tx.node) < floor {
                continue;
            }
            // Sniffer links get their own fade realizations, keyed past the
            // station id space, and a sniffer-specific fade scale.
            let fade_scale = self.sniffers[idx].config.fade_scale;
            let rssi = self.topology.sniffer_rssi(idx, tx.node)
                + fade_scale * self.sniffer_fade(idx, tx.node);
            if rssi < self.config.radio.sensitivity_dbm {
                self.sniffers[idx].miss(MissReason::OutOfRange);
                continue;
            }
            let mut interf = std::mem::take(&mut self.interferer_rssi);
            interf.clear();
            if fading.sigma_db == 0.0 {
                for &nid in &tx.interferers {
                    let path = self.topology.sniffer_rssi(idx, nid);
                    if path < floor {
                        continue; // below the floor at this sniffer
                    }
                    interf.push(path + fade_scale * 0.0);
                }
            } else {
                // Same coherence-bucket prefetch as `station_sinr`, walking
                // this sniffer's fade-cache row directly.
                self.fade_bucket();
                let n = self.stations.len();
                let link = SNIFFER_LINK_BASE + self.sniffer_keys[idx];
                for &nid in &tx.interferers {
                    let path = self.topology.sniffer_rssi(idx, nid);
                    if path < floor {
                        continue; // below the floor at this sniffer
                    }
                    let slot = &mut self.sniffer_fade_cache[idx * n + nid];
                    if slot.is_nan() {
                        *slot = fading.fade_db(self.hot.fade_key(nid), link, now);
                    }
                    interf.push(path + fade_scale * *slot);
                }
            }
            let sinr = batch::effective_sinr_db(
                rssi,
                &interf,
                self.config.radio.noise_floor_dbm,
                processing_gain_db(tx.rate),
            );
            self.interferer_rssi = interf;
            hear.push((idx, rssi));
            sinrs.push(sinr);
        }
        // One batched success-probability evaluation across all concurrent
        // receptions of this frame, then pass 2: draw, token, capture.
        let mut probs = std::mem::take(&mut self.sniffer_prob_scratch);
        probs.clear();
        batch::frame_success_probs(
            &self.config.error,
            &sinrs,
            tx.rate,
            tx.frame.mac_bytes,
            &mut probs,
        );
        for (&(idx, rssi), &p) in hear.iter().zip(&probs) {
            if self.sniffer_rngs[idx].gen::<f64>() >= p {
                if tx.interferers.is_empty() {
                    self.sniffers[idx].stats.missed_clean += 1;
                }
                self.sniffers[idx].miss(MissReason::BitError);
                continue;
            }
            if !self.sniffers[idx].try_take_token(now) {
                self.sniffers[idx].miss(MissReason::HardwareDrop);
                continue;
            }
            let record = tx.frame.to_record(tx.end, tx.rate, ch, rssi.round() as i8);
            self.sniffers[idx].capture(record);
        }
        self.sniffer_hear_scratch = hear;
        self.sniffer_sinr_scratch = sinrs;
        self.sniffer_prob_scratch = probs;
    }

    // ------------------------------------------------------------------
    // Dynamic channel assignment (the Airespace stand-in)
    // ------------------------------------------------------------------

    /// Periodic per-AP evaluation: compare recent air time across channels
    /// and switch to the least-loaded one when the imbalance clears the
    /// hysteresis ratio. Associated clients follow after a staggered delay.
    fn on_channel_eval(&mut self, node: NodeId) {
        let Some(cm) = self.config.channel_mgmt else {
            return;
        };
        self.queue
            .push(self.now + cm.eval_interval_us, Event::ChannelEval { node });
        if !self.stations[node].is_ap() {
            return;
        }
        // First evaluation only takes the baseline snapshot (into the
        // station's reusable snapshot buffer).
        if self.stations[node].chan_airtime_snapshot.is_empty() {
            let snap = &mut self.stations[node].chan_airtime_snapshot;
            snap.extend_from_slice(&self.chan_airtime_us);
            return;
        }
        let (best, best_load, cur, cur_load) = {
            let Simulator {
                stations,
                hot,
                chan_airtime_us,
                eval_deltas,
                ..
            } = self;
            let st = &mut stations[node];
            eval_deltas.clear();
            eval_deltas.extend(
                chan_airtime_us
                    .iter()
                    .zip(&st.chan_airtime_snapshot)
                    .map(|(now_v, then_v)| now_v.saturating_sub(*then_v)),
            );
            st.chan_airtime_snapshot.copy_from_slice(chan_airtime_us);
            let cur = hot.channel_idx[node];
            let Some((best, &best_load)) = eval_deltas
                .iter()
                .enumerate()
                .min_by_key(|&(_, load)| *load)
            else {
                return;
            };
            (best, best_load, cur, eval_deltas[cur] as f64)
        };
        if best == cur {
            return;
        }
        if cur_load <= cm.switch_ratio * best_load as f64 + 1.0 {
            return; // not imbalanced enough
        }
        if !self.move_station_channel(node, best) {
            return; // mid-exchange; try again next interval
        }
        // Associated clients notice the beacon loss and follow.
        let mut followers = std::mem::take(&mut self.followers_scratch);
        followers.clear();
        followers.extend(
            self.stations
                .iter()
                .filter(|s| s.associated_ap == Some(node))
                .map(|s| s.id),
        );
        for &c in &followers {
            self.stations[c].associated_ap = None;
            let delay = self.stations[c]
                .rng
                .gen_range(10_000..cm.follow_delay_max_us.max(10_001));
            self.queue.push(
                self.now + delay,
                Event::FollowAp {
                    node: c,
                    channel_idx: best,
                },
            );
        }
        self.followers_scratch = followers;
    }

    /// A client moves to its AP's new channel and re-associates.
    fn on_follow_ap(&mut self, node: NodeId, channel_idx: usize) {
        if !self.stations[node].joined || self.stations[node].departed {
            return;
        }
        if !self.move_station_channel(node, channel_idx) {
            // Mid-exchange: retry shortly.
            self.queue
                .push(self.now + 50_000, Event::FollowAp { node, channel_idx });
            return;
        }
        self.stations[node].associated_ap = None;
        self.on_user_join(node);
    }

    /// Retunes a station's radio to another channel, maintaining carrier
    /// sense and NAV bookkeeping consistency. Returns false (no change)
    /// when the station is in the middle of a frame exchange.
    fn move_station_channel(&mut self, node: NodeId, new_idx: usize) -> bool {
        assert!(new_idx < self.config.channels.len(), "bad channel index");
        if matches!(
            self.hot.state[node],
            MacState::Transmitting { .. } | MacState::AwaitCts | MacState::AwaitAck
        ) || self.stations[node].pending_response.is_some()
        {
            return false;
        }
        let old_idx = self.hot.channel_idx[node];
        if old_idx == new_idx {
            return true;
        }
        let now = self.now;
        // Detach from the old channel's in-flight transmissions.
        for tx in self.media[old_idx].active_mut() {
            if tx.sensed_by.remove(node) && tx.cs_applied {
                debug_assert!(self.hot.sensed[node] > 0);
                self.hot.sensed[node] = self.hot.sensed[node].saturating_sub(1);
            }
        }
        // Pause any contention countdown; NAV from the old channel is void.
        self.on_channel_busy(node); // freezes WaitDefer/Backoff safely
        self.hot.nav_until[node] = 0;
        self.hot.use_eifs[node] = false;
        self.hot.channel_idx[node] = new_idx;
        // Channel management only runs unpartitioned (media == channels),
        // so the medium index moves in lockstep with the channel index.
        debug_assert!(!self.partitioned);
        self.hot.medium_idx[node] = new_idx;
        self.medium_members[old_idx].remove(node);
        self.medium_members[new_idx].insert(node);
        // Attach to the new channel's in-flight transmissions (carrier-sense
        // reachability comes straight from the cached topology row).
        let mut sensed_gain = 0u32;
        {
            let Simulator {
                media, topology, ..
            } = self;
            for tx in media[new_idx].active_mut() {
                if topology.sensed(tx.node, node) {
                    tx.sensed_by.insert(node);
                    if tx.cs_applied {
                        sensed_gain += 1;
                    }
                }
            }
        }
        self.hot.sensed[node] += sensed_gain;
        self.hot.idle_since[node] = now;
        if self.hot.state[node] == MacState::Frozen && !self.hot.channel_busy(node, now) {
            self.on_channel_idle(node);
        }
        true
    }

    // ------------------------------------------------------------------
    // Mobility (driven between `run_until` calls; see ietf-workloads'
    // waypoint model and docs/DETERMINISM.md §mobility)
    // ------------------------------------------------------------------

    /// Moves a station to `pos` — the position half of a mobility tick,
    /// called between `run_until` calls. The topology cache takes one
    /// incremental row + column update (O(population), not a rebuild); the
    /// station's fade generation is bumped so its links draw fresh fade
    /// realizations, and exactly its row + column of the link fade cache
    /// (plus its column of every sniffer's cache) are invalidated — every
    /// other memoized fade in the coherence bucket stays valid.
    ///
    /// Frames already in the air keep the physics they started with:
    /// `sensed_by` sets and interferer lists are snapshotted at TX start,
    /// and their carrier-sense release consumes those snapshots, so moving
    /// a station mid-frame leaves no dangling CS counts. The new position
    /// governs every transmission that starts after the move.
    pub fn move_station(&mut self, node: NodeId, pos: Pos) {
        self.stations[node].pos = pos;
        self.topology.update_station(node, pos, &self.config.radio);
        self.hot.fade_gen[node] += 1;
        let n = self.stations.len();
        // Per-moved-station invalidation, not a global epoch bump: NAN the
        // dirty row + column only. Caches not yet sized (before the first
        // `run_until`) start all-NAN anyway.
        if self.fade_cache.len() == n * n {
            self.fade_cache[node * n..(node + 1) * n].fill(f64::NAN);
            for rx in 0..n {
                self.fade_cache[rx * n + node] = f64::NAN;
            }
        }
        if self.sniffer_fade_cache.len() == self.sniffers.len() * n {
            for idx in 0..self.sniffers.len() {
                self.sniffer_fade_cache[idx * n + node] = f64::NAN;
            }
        }
    }

    /// Strongest-AP reassociation with hysteresis — the roaming half of a
    /// mobility tick. When some co-medium AP's cached path-loss RSSI beats
    /// the currently associated AP's by at least `hysteresis_db`, the
    /// client disassociates and a `UserJoin` event is queued at the current
    /// time, so the re-association exchange (and the traffic restart it
    /// triggers) runs through the canonical event order of the next
    /// `run_until`. Returns whether a roam was initiated.
    ///
    /// Stations mid-frame-exchange, unassociated, departed, or APs return
    /// `false` unchanged — the next tick simply re-evaluates.
    pub fn reassociate_strongest(&mut self, node: NodeId, hysteresis_db: f64) -> bool {
        let st = &self.stations[node];
        if st.is_ap() || !st.joined || st.departed {
            return false;
        }
        let Some(cur) = st.associated_ap else {
            return false; // association in flight; let it land first
        };
        if matches!(
            self.hot.state[node],
            MacState::Transmitting { .. } | MacState::AwaitCts | MacState::AwaitAck
        ) || st.pending_response.is_some()
        {
            return false;
        }
        let medium_idx = self.hot.medium_idx[node];
        // Same scan (and tie-break: first maximum in build order) as
        // `on_user_join`, so the roam target is exactly the AP the join
        // path would pick.
        let mut best: Option<(NodeId, f64)> = None;
        for (i, ap) in self.stations.iter().enumerate() {
            if ap.is_ap() && self.hot.medium_idx[i] == medium_idx {
                let rssi = self.topology.rssi(i, node);
                if best.is_none_or(|(_, b)| rssi > b) {
                    best = Some((i, rssi));
                }
            }
        }
        let Some((best_ap, best_rssi)) = best else {
            return false;
        };
        if best_ap == cur || best_rssi < self.topology.rssi(cur, node) + hysteresis_db {
            return false;
        }
        self.stations[node].associated_ap = None;
        self.queue.push(self.now, Event::UserJoin { node });
        true
    }

    // ------------------------------------------------------------------
    // Exchange outcomes
    // ------------------------------------------------------------------

    fn on_exchange_timeout(&mut self, node: NodeId, expected: MacState) {
        if self.hot.state[node] != expected {
            return;
        }
        let drop;
        let peer;
        let is_assoc_req;
        let is_data;
        {
            let dcf = self.config.dcf;
            let st = &mut self.stations[node];
            let op = st.current.as_mut().expect("timeout without TxOp");
            peer = op.msdu.dst;
            is_assoc_req = op.msdu.kind == MsduKind::Mgmt(FrameKind::AssocRequest);
            is_data = matches!(op.msdu.kind, MsduKind::Data { .. });
            op.retries += 1;
            op.cts_received = false;
            drop = op.retries > dcf.short_retry_limit;
            self.hot.cw[node] = dcf.cw_after(op.retries);
        }
        // Rate-adaptation feedback for data frames. This is exactly the
        // deficiency the paper identifies: the adapter cannot distinguish a
        // collision from a weak signal, so congestion drives rates down.
        if is_data {
            if drop {
                self.stations[node].adapter_for(peer).on_drop();
            } else {
                self.stations[node].adapter_for(peer).on_failure();
            }
        }
        if drop {
            let cw_min = self.config.dcf.cw_min;
            let st = &mut self.stations[node];
            let backoff = draw_backoff(&mut st.rng, cw_min);
            st.stats.retry_drops += 1;
            st.current = None;
            self.hot.cw[node] = cw_min;
            self.hot.backoff_slots[node] = backoff;
            self.hot.state[node] = MacState::Idle;
            self.ground_truth.retry_drops += 1;
            if is_assoc_req && self.stations[node].joined {
                self.queue
                    .push(self.now + ASSOC_RETRY_US, Event::UserJoin { node });
            }
            self.try_dequeue(node);
            return;
        }
        // Retry: new rate decision, fresh backoff from the grown window.
        let new_rate = self.stations[node].pick_rate(peer);
        {
            let st = &mut self.stations[node];
            if let Some(op) = st.current.as_mut() {
                if matches!(op.msdu.kind, MsduKind::Data { .. }) {
                    op.rate = new_rate;
                }
            }
            let cw = self.hot.cw[node];
            self.hot.backoff_slots[node] = draw_backoff(&mut st.rng, cw);
            self.hot.state[node] = MacState::Idle;
        }
        self.begin_access(node);
    }

    /// A fragment was acknowledged and more remain: release the next one a
    /// SIFS later, without re-contending (the fragment-burst rule).
    fn advance_fragment(&mut self, node: NodeId) {
        let now = self.now;
        let st = &mut self.stations[node];
        let Some(op) = st.current.as_mut() else {
            return;
        };
        let MsduKind::Data { to_ds } = op.msdu.kind else {
            return;
        };
        op.current_payload = op.pending_fragments.remove(0);
        op.frag_no = op.frag_no.wrapping_add(1);
        op.retries = 0; // per-fragment retry counting, as the standard does
        let frame = SimFrame::data_fragment(
            st.mac,
            op.msdu.dst,
            op.msdu.bssid,
            op.seq,
            op.frag_no,
            op.current_payload,
            false,
            (delay::SIFS + delay::ACK) as u16,
            to_ds,
            !op.pending_fragments.is_empty(),
        );
        st.stats.tx_attempts += 1;
        st.pending_response = Some(frame);
        let gen = self.hot.timer_gen[node];
        self.ground_truth.data_tx += 1;
        self.queue.push(
            now + delay::SIFS,
            Event::Timer {
                node,
                gen,
                kind: TimerKind::SifsResponse,
            },
        );
    }

    /// The current MSDU is done: delivered (ACK received) or broadcast sent.
    fn complete_delivery(&mut self, node: NodeId, acked: bool) {
        let now = self.now;
        let peer;
        let is_data;
        {
            let st = &mut self.stations[node];
            let op = st.current.take().expect("completion without TxOp");
            peer = op.msdu.dst;
            is_data = matches!(op.msdu.kind, MsduKind::Data { .. });
            st.stats.delivered += 1;
            st.stats.delivery_delay_total_us += now.saturating_sub(op.msdu.enqueued_at);
            let cw = self.config.dcf.cw_min;
            self.hot.cw[node] = cw;
            self.hot.backoff_slots[node] = draw_backoff(&mut st.rng, cw);
            self.hot.state[node] = MacState::Idle;
        }
        self.ground_truth.delivered += 1;
        if acked && is_data {
            self.stations[node].adapter_for(peer).on_success();
        }
        self.try_dequeue(node);
    }
}

fn draw_backoff(rng: &mut SimRng, cw: u32) -> u32 {
    rng.gen_range(0..=cw)
}
